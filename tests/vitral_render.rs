//! The VITRAL screen (Fig. 9): the windows exist, show partition output,
//! AIR component activity and health-monitoring events, and render
//! deterministically.

use air_core::prototype::PrototypeHarness;
use air_model::prototype::MTF;

const M: u64 = MTF.as_u64();

#[test]
fn fig9_windows_all_present() {
    let mut proto = PrototypeHarness::build_with_vitral();
    proto.system.run_for(2 * M);
    let frame = proto.system.render_vitral().expect("vitral enabled");
    for title in [
        "P0 AOCS",
        "P1 OBDH",
        "P2 TTC",
        "P3 PAYLOAD-FDIR",
        "AIR PMK",
        "Health Monitor",
    ] {
        assert!(frame.contains(title), "missing window '{title}' in\n{frame}");
    }
}

#[test]
fn partition_output_lands_in_its_window() {
    let mut proto = PrototypeHarness::build_with_vitral();
    proto.system.run_for(3 * M);
    let frame = proto.system.render_vitral().unwrap();
    // TTC's received telemetry lines show inside the screen.
    assert!(frame.contains("rx frame-"), "{frame}");
    // AIR activity (partition switches) shows in the AIR PMK window.
    assert!(frame.contains("PartitionSwitch"), "{frame}");
}

#[test]
fn deadline_misses_show_in_the_hm_window() {
    let mut proto = PrototypeHarness::build_with_vitral();
    proto.fault.activate();
    proto.system.run_for(3 * M);
    let frame = proto.system.render_vitral().unwrap();
    assert!(frame.contains("DeadlineMiss"), "{frame}");
}

#[test]
fn rendering_is_stable_between_steps() {
    let mut proto = PrototypeHarness::build_with_vitral();
    proto.system.run_for(M);
    let a = proto.system.render_vitral().unwrap();
    let b = proto.system.render_vitral().unwrap();
    assert_eq!(a, b, "no time passed, no new content");
    proto.system.run_for(M);
    let c = proto.system.render_vitral().unwrap();
    assert_ne!(a, c, "new activity must appear");
}

#[test]
fn disabled_vitral_renders_nothing() {
    let mut proto = PrototypeHarness::build();
    proto.system.run_for(10);
    assert!(proto.system.render_vitral().is_none());
}
