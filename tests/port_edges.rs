//! Port edge cases must reach health monitoring with the correct error
//! class instead of silently succeeding: a queuing overflow raises
//! `IllegalRequest`, a stale sampling read raises `ApplicationError`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use air_core::workload::ProcessApi;
use air_core::{PartitionConfig, ProcessConfig, SystemBuilder};
use air_hm::{ErrorId, ErrorSource};
use air_model::process::{Deadline, ProcessAttributes, Recurrence};
use air_model::schedule::{PartitionRequirement, Schedule, TimeWindow};
use air_model::{Partition, PartitionId, ScheduleId, ScheduleSet, Ticks};
use air_ports::{
    ChannelConfig, Destination, PortAddr, QueuingPortConfig, SamplingPortConfig,
};

const FRAME: u64 = 100;
const P0: PartitionId = PartitionId(0);
const P1: PartitionId = PartitionId(1);

fn two_window_schedule() -> ScheduleSet {
    ScheduleSet::new(vec![Schedule::new(
        ScheduleId(0),
        "duo",
        Ticks(FRAME),
        vec![
            PartitionRequirement::new(P0, Ticks(FRAME), Ticks(50)),
            PartitionRequirement::new(P1, Ticks(FRAME), Ticks(50)),
        ],
        vec![
            TimeWindow::new(P0, Ticks(0), Ticks(50)),
            TimeWindow::new(P1, Ticks(50), Ticks(50)),
        ],
    )])
}

fn periodic_attrs(name: &str) -> ProcessAttributes {
    ProcessAttributes::new(name)
        .with_recurrence(Recurrence::Periodic(Ticks(FRAME)))
        .with_deadline(Deadline::relative(Ticks(FRAME)))
}

#[test]
fn queuing_overflow_reports_illegal_request() {
    // The source queue holds 2 messages and drains once per frame; a
    // burst of 5 per activation overflows on sends 3..5. Every rejected
    // send must surface as an IllegalRequest attributed to the sender.
    let burst = 5usize;
    let depth = 2usize;
    let bursts = Arc::new(AtomicU64::new(0));
    let bursts_in_body = bursts.clone();
    let mut system = SystemBuilder::new(two_window_schedule())
        .with_partition(
            PartitionConfig::new(Partition::new(P0, "burster"))
                .with_queuing_port(QueuingPortConfig::source("tx", 64, depth))
                .with_process(ProcessConfig::new(
                    periodic_attrs("burst"),
                    move |api: &mut ProcessApi<'_>| {
                        bursts_in_body.fetch_add(1, Ordering::Relaxed);
                        for i in 0..burst {
                            let accepted =
                                api.send_queuing_reporting("tx", format!("m{i}").into_bytes());
                            assert_eq!(accepted, i < depth, "send {i}");
                        }
                        let _ = api.apex.periodic_wait(api.me, api.now);
                    },
                )),
        )
        .with_partition(
            PartitionConfig::new(Partition::new(P1, "sink"))
                .with_queuing_port(QueuingPortConfig::destination("rx", 64, 64)),
        )
        .with_channel(ChannelConfig {
            id: 1,
            source: PortAddr::new(P0, "tx"),
            destinations: vec![Destination::Local(PortAddr::new(P1, "rx"))],
        })
        .build()
        .unwrap();

    system.run_for(4 * FRAME);

    let activations = bursts.load(Ordering::Relaxed);
    assert!(activations >= 4, "the burster ran ({activations} activations)");
    let overflows: Vec<_> = system
        .hm()
        .log()
        .entries_for(ErrorId::IllegalRequest)
        .collect();
    assert_eq!(
        overflows.len() as u64,
        (burst - depth) as u64 * activations,
        "every rejected send reports, every accepted one stays silent"
    );
    for entry in overflows {
        assert!(
            entry.detail.contains("queuing overflow on 'tx'"),
            "{entry}"
        );
        assert_eq!(entry.source.partition(), Some(P0), "attributed to the sender");
        assert!(matches!(entry.source, ErrorSource::Process(_)));
    }
    // The correct class, not a generic application error.
    assert_eq!(system.hm().log().entries_for(ErrorId::ApplicationError).count(), 0);
}

#[test]
fn stale_sampling_read_reports_application_error() {
    // The writer publishes exactly once; with a 120-tick refresh period the
    // reader's first read (age ~50) is fresh and every later one (ages
    // 150, 250, ...) is stale.
    let mut wrote = false;
    let reads = Arc::new(AtomicU64::new(0));
    let reads_in_body = reads.clone();
    let mut system = SystemBuilder::new(two_window_schedule())
        .with_partition(
            PartitionConfig::new(Partition::new(P0, "writer"))
                .with_sampling_port(SamplingPortConfig::source("cmd-tx", 64))
                .with_process(ProcessConfig::new(
                    periodic_attrs("announce"),
                    move |api: &mut ProcessApi<'_>| {
                        if !wrote {
                            wrote = true;
                            api.apex
                                .write_sampling_message(
                                    api.ports,
                                    "cmd-tx",
                                    b"attitude".to_vec(),
                                    api.now,
                                )
                                .unwrap();
                        }
                        let _ = api.apex.periodic_wait(api.me, api.now);
                    },
                )),
        )
        .with_partition(
            PartitionConfig::new(Partition::new(P1, "reader"))
                .with_sampling_port(SamplingPortConfig::destination("cmd-rx", 64, Ticks(120)))
                .with_process(ProcessConfig::new(
                    periodic_attrs("consume"),
                    move |api: &mut ProcessApi<'_>| {
                        if api.read_sampling_reporting("cmd-rx").is_some() {
                            reads_in_body.fetch_add(1, Ordering::Relaxed);
                        }
                        let _ = api.apex.periodic_wait(api.me, api.now);
                    },
                )),
        )
        .with_channel(ChannelConfig {
            id: 1,
            source: PortAddr::new(P0, "cmd-tx"),
            destinations: vec![Destination::Local(PortAddr::new(P1, "cmd-rx"))],
        })
        .build()
        .unwrap();

    // Frame 1: fresh read, no error.
    system.run_for(FRAME);
    assert_eq!(
        system.hm().log().len(),
        0,
        "a fresh read must not raise anything"
    );

    // Later frames: the message ages past the refresh period. Exactly one
    // read (the first) was fresh; every other successful read is stale.
    system.run_for(4 * FRAME);
    let successful_reads = reads.load(Ordering::Relaxed);
    assert!(successful_reads >= 2, "the reader kept reading");
    let stale: Vec<_> = system
        .hm()
        .log()
        .entries_for(ErrorId::ApplicationError)
        .collect();
    assert_eq!(
        stale.len() as u64,
        successful_reads - 1,
        "one stale report per read past the refresh period"
    );
    for entry in stale {
        assert!(
            entry.detail.contains("stale sampling message on 'cmd-rx'"),
            "{entry}"
        );
        assert_eq!(entry.source.partition(), Some(P1), "attributed to the reader");
    }
    assert_eq!(system.hm().log().entries_for(ErrorId::IllegalRequest).count(), 0);
}
