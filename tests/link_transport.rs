//! The reliable transport over the cluster link: retransmission, duplicate
//! suppression, failover and the degraded-mode handshake, end to end.

use air_core::cluster::{AirCluster, Node};
use air_core::link_campaign::{link_plan, LinkCampaignRunner};
use air_core::trace::TraceEvent;
use air_core::workload::{QueuingConsumer, QueuingProducer};
use air_core::{PartitionConfig, ProcessConfig, SystemBuilder};
use air_hw::link::LinkEndpoint;
use air_hw::inject::FaultPlan;
use air_hw::redundant::LinkRole;
use air_model::process::{Deadline, Priority, ProcessAttributes, Recurrence};
use air_model::schedule::{PartitionRequirement, Schedule, TimeWindow};
use air_model::{Partition, PartitionId, ScheduleId, ScheduleSet, Ticks};
use air_ports::{ChannelConfig, Destination, PortAddr, QueuingPortConfig};

const P0: PartitionId = PartitionId(0);
const TM_CHANNEL: u32 = 50;

fn mono_schedule() -> ScheduleSet {
    ScheduleSet::new(vec![Schedule::new(
        ScheduleId(0),
        "mono",
        Ticks(100),
        vec![PartitionRequirement::new(P0, Ticks(100), Ticks(100))],
        vec![TimeWindow::new(P0, Ticks(0), Ticks(100))],
    )])
}

fn sender_node() -> air_core::AirSystem {
    SystemBuilder::new(mono_schedule())
        .with_partition(
            PartitionConfig::new(Partition::new(P0, "OBDH"))
                .with_queuing_port(QueuingPortConfig::source("tm", 64, 8))
                .with_process(ProcessConfig::new(
                    ProcessAttributes::new("telemetry")
                        .with_recurrence(Recurrence::Periodic(Ticks(100)))
                        .with_deadline(Deadline::relative(Ticks(100)))
                        .with_base_priority(Priority(1)),
                    QueuingProducer::new("tm"),
                )),
        )
        .with_channel(ChannelConfig {
            id: TM_CHANNEL,
            source: PortAddr::new(P0, "tm"),
            destinations: vec![Destination::Remote {
                addr: PortAddr::new(P0, "tm"),
            }],
        })
        .build()
        .unwrap()
}

fn receiver_node() -> air_core::AirSystem {
    SystemBuilder::new(mono_schedule())
        .with_partition(
            PartitionConfig::new(Partition::new(P0, "GROUND-IF"))
                .with_queuing_port(QueuingPortConfig::destination("tm", 64, 8))
                .with_process(ProcessConfig::new(
                    ProcessAttributes::new("downlink")
                        .with_recurrence(Recurrence::Periodic(Ticks(100)))
                        .with_deadline(Deadline::relative(Ticks(100)))
                        .with_base_priority(Priority(1)),
                    QueuingConsumer::new("tm"),
                )),
        )
        .with_channel(ChannelConfig {
            id: TM_CHANNEL,
            source: PortAddr::new(P0, "tm-remote-source"),
            destinations: vec![Destination::Local(PortAddr::new(P0, "tm"))],
        })
        .build()
        .unwrap()
}

/// A dropped telemetry frame is retransmitted and still arrives in order —
/// and the retransmission is visible in the sender's trace.
#[test]
fn dropped_frame_is_repaired_in_order() {
    let mut cluster = AirCluster::new(sender_node(), receiver_node()).expect("lockstep");
    cluster.run_for(250);
    // Destroy the newest frame inbound to B (second hop).
    let mut dropped = false;
    for _ in 0..400 {
        cluster.step();
        if !dropped {
            dropped = cluster.node_mut(Node::B).machine_mut().inject_link_drop();
        }
    }
    assert!(dropped, "a frame was in flight to drop");
    cluster.run_for(800);

    let health = cluster.link_health(Node::A);
    assert!(health.retransmissions > 0, "{health:?}");
    assert!(cluster
        .node(Node::A)
        .trace()
        .events()
        .iter()
        .any(|e| matches!(e, TraceEvent::FrameRetransmitted { .. })));

    let console = cluster.node(Node::B).console_of(P0).to_owned();
    let indices: Vec<usize> = console
        .lines()
        .filter_map(|l| l.strip_prefix("rx frame-")?.parse().ok())
        .collect();
    assert!(!indices.is_empty());
    for pair in indices.windows(2) {
        assert_eq!(pair[0] + 1, pair[1], "out of order: {indices:?}");
    }
}

/// Destroying acknowledgements forces retransmissions whose duplicates the
/// receiver suppresses: the consumer still sees each frame exactly once.
#[test]
fn lost_acks_never_duplicate_delivery() {
    use air_ports::wire::bytes_look_like_ack;
    let mut cluster = AirCluster::new(sender_node(), receiver_node()).expect("lockstep");
    let mut acks_killed = 0;
    for _ in 0..1500 {
        cluster.step();
        if acks_killed < 3
            && cluster
                .node_mut(Node::B)
                .machine_mut()
                .link
                .drop_in_flight_where(LinkEndpoint::B, bytes_look_like_ack)
        {
            acks_killed += 1;
        }
    }
    assert!(acks_killed > 0, "acknowledgements were in flight to destroy");
    cluster.run_for(600);

    let health_b = cluster.link_health(Node::B);
    assert!(health_b.duplicates_suppressed > 0, "{health_b:?}");
    let console = cluster.node(Node::B).console_of(P0).to_owned();
    let indices: Vec<usize> = console
        .lines()
        .filter_map(|l| l.strip_prefix("rx frame-")?.parse().ok())
        .collect();
    for pair in indices.windows(2) {
        assert_eq!(pair[0] + 1, pair[1], "duplicate or gap: {indices:?}");
    }
}

/// The full campaign: a seeded single-link fault plan cannot lose, double
/// or reorder a message; outages fail over and enter/exit degraded mode.
#[test]
fn campaign_survives_a_seeded_link_fault_plan() {
    let outcome = LinkCampaignRunner::new(link_plan(42, 1)).run();
    assert!(outcome.is_ok(), "{}", outcome.report);
    assert_eq!(outcome.delivered, outcome.expected);
    assert!(outcome.failovers > 0);
    assert!(outcome.degraded_entries > 0);
    assert!(outcome.recovery_latency.is_some());
}

/// A clean cluster run never retransmits and never fails over.
#[test]
fn clean_cluster_run_is_quiet() {
    let outcome = LinkCampaignRunner::new(FaultPlan::empty()).run();
    assert!(outcome.is_ok(), "{}", outcome.report);
    assert_eq!(outcome.retransmissions, 0);
    assert_eq!(outcome.failovers, 0);
    assert_eq!(outcome.degraded_entries, 0);
}

/// Failover is observable through the cluster's health counters: after a
/// sustained outage node A runs on the secondary adapter.
#[test]
fn outage_moves_traffic_to_the_secondary_adapter() {
    let mut a = sender_node();
    a.set_degraded_schedule(ScheduleId(0));
    let mut cluster = AirCluster::new(a, receiver_node()).expect("lockstep");
    cluster.run_for(150);
    cluster
        .node_mut(Node::A)
        .machine_mut()
        .inject_link_outage(500);
    cluster.run_for(600);
    let health = cluster.link_health(Node::A);
    assert!(health.failovers > 0, "{health:?}");
    assert!(cluster
        .node(Node::A)
        .trace()
        .events()
        .iter()
        .any(|e| matches!(
            e,
            TraceEvent::LinkFailover { to: LinkRole::Secondary, .. }
        )));
    // After the probation the link reverts to the repaired primary.
    cluster.run_for(1500);
    let health = cluster.link_health(Node::A);
    assert_eq!(health.active, LinkRole::Primary, "{health:?}");
    assert!(health.reverts > 0, "{health:?}");
}
