//! Coexistence of real-time and generic non-real-time POSs (Sect. 2.5):
//! a Linux-like partition shares the platform with hard-real-time ones
//! without being able to undermine their timeliness.

use std::sync::{Arc, Mutex};

use air_core::workload::{PeriodicCompute, ProcessApi, ProcessBody};
use air_core::{PartitionConfig, ProcessConfig, SystemBuilder};
use air_hw::interrupt::{InterruptLine, ParavirtOutcome, PrivilegeLevel};
use air_model::partition::PosKind;
use air_model::process::{Deadline, Priority, ProcessAttributes, Recurrence};
use air_model::schedule::{PartitionRequirement, Schedule, TimeWindow};
use air_model::{Partition, PartitionId, ScheduleId, ScheduleSet, Ticks};

const RT: PartitionId = PartitionId(0);
const LINUX: PartitionId = PartitionId(1);

/// A Linux-like workload: spins, counts, and periodically *tries* to mask
/// the system clock interrupt (the misbehaviour Sect. 2.5 paravirtualises
/// away).
struct RogueGuest {
    executed: Arc<Mutex<Vec<u64>>>,
}

impl ProcessBody for RogueGuest {
    fn on_tick(&mut self, api: &mut ProcessApi<'_>) {
        self.executed.lock().unwrap().push(api.now.as_u64());
        // The clock-tampering attempt happens at machine level; the test
        // drives it through the interrupt controller directly below.
    }
}

fn build() -> (air_core::AirSystem, Arc<Mutex<Vec<u64>>>) {
    let schedule = Schedule::new(
        ScheduleId(0),
        "mixed",
        Ticks(100),
        vec![
            PartitionRequirement::new(RT, Ticks(100), Ticks(40)),
            // The generic partition has no strict requirement (d = 0 per
            // Sect. 3.1) but still receives a best-effort window.
            PartitionRequirement::new(LINUX, Ticks(100), Ticks(0)),
        ],
        vec![
            TimeWindow::new(RT, Ticks(0), Ticks(40)),
            TimeWindow::new(LINUX, Ticks(40), Ticks(60)),
        ],
    );
    let executed = Arc::new(Mutex::new(Vec::new()));
    let system = SystemBuilder::new(ScheduleSet::new(vec![schedule]))
        .with_partition(
            PartitionConfig::new(Partition::new(RT, "CONTROL")).with_process(
                ProcessConfig::new(
                    ProcessAttributes::new("hard-loop")
                        .with_recurrence(Recurrence::Periodic(Ticks(100)))
                        .with_deadline(Deadline::relative(Ticks(100)))
                        .with_base_priority(Priority(1))
                        .with_wcet(Ticks(30)),
                    PeriodicCompute::new(30),
                ),
            ),
        )
        .with_partition(
            PartitionConfig::new(
                Partition::new(LINUX, "LINUX").with_pos_kind(PosKind::GenericNonRealTime),
            )
            .with_process(ProcessConfig::new(
                ProcessAttributes::new("rogue"),
                RogueGuest {
                    executed: Arc::clone(&executed),
                },
            )),
        )
        .build()
        .unwrap();
    (system, executed)
}

#[test]
fn generic_partition_runs_round_robin_in_its_window() {
    let (mut system, executed) = build();
    system.run_for(500);
    let log = executed.lock().unwrap();
    assert!(!log.is_empty(), "the generic guest must get CPU time");
    // Every execution instant lies inside the LINUX window [40, 100).
    for &t in log.iter() {
        let phase = t % 100;
        assert!((40..100).contains(&phase), "guest ran at phase {phase}");
    }
}

#[test]
fn rt_deadlines_unaffected_by_the_generic_neighbour() {
    let (mut system, _) = build();
    system.run_for(20 * 100);
    assert_eq!(system.trace().deadline_miss_count(), 0);
}

#[test]
fn guest_clock_masking_is_paravirtualised_away() {
    let (mut system, executed) = build();
    system.run_for(150); // inside the LINUX window of the second MTF

    // The guest attempts to disable the system clock interrupt — the
    // instruction is wrapped (Sect. 2.5): the controller records the
    // attempt but the line stays enabled.
    let outcome = system
        .machine_mut()
        .intc
        .mask(InterruptLine::ClockTick, PrivilegeLevel::Guest);
    assert_eq!(outcome, ParavirtOutcome::Wrapped);
    assert!(system.machine_mut().intc.is_enabled(InterruptLine::ClockTick));
    assert_eq!(system.machine_mut().intc.wrapped_clock_attempts(), 1);

    // Time keeps flowing: the scheduler keeps switching partitions and RT
    // deadlines keep being met.
    let before = system.trace().partition_switch_count();
    system.run_for(10 * 100);
    assert!(system.trace().partition_switch_count() > before);
    assert_eq!(system.trace().deadline_miss_count(), 0);
    let after = executed.lock().unwrap().len();
    assert!(after > 0);
}

#[test]
fn rt_services_rejected_on_the_generic_pos() {
    let (mut system, _) = build();
    let rogue = system.partition(LINUX).process_id("rogue").unwrap();
    let err = system
        .partition_mut(LINUX)
        .set_priority(rogue, Priority(0))
        .unwrap_err();
    assert_eq!(err.code, air_apex::ReturnCode::NotAvailable);
    let err = system
        .partition_mut(LINUX)
        .periodic_wait(rogue, Ticks(0))
        .unwrap_err();
    assert_eq!(err.code, air_apex::ReturnCode::NotAvailable);
}

#[test]
fn generic_partition_round_robin_shares_between_processes() {
    // Two guests in the generic partition: both make progress (quantum
    // rotation), unlike the strict-priority RTOS where one would starve.
    let schedule = Schedule::new(
        ScheduleId(0),
        "solo",
        Ticks(50),
        vec![PartitionRequirement::new(RT, Ticks(50), Ticks(0))],
        vec![TimeWindow::new(RT, Ticks(0), Ticks(50))],
    );
    let a = Arc::new(Mutex::new(Vec::new()));
    let b = Arc::new(Mutex::new(Vec::new()));
    let mut system = SystemBuilder::new(ScheduleSet::new(vec![schedule]))
        .with_partition(
            PartitionConfig::new(
                Partition::new(RT, "LINUX").with_pos_kind(PosKind::GenericNonRealTime),
            )
            .with_process(ProcessConfig::new(
                ProcessAttributes::new("task-a"),
                RogueGuest {
                    executed: Arc::clone(&a),
                },
            ))
            .with_process(ProcessConfig::new(
                ProcessAttributes::new("task-b"),
                RogueGuest {
                    executed: Arc::clone(&b),
                },
            )),
        )
        .build()
        .unwrap();
    system.run_for(1000);
    let (na, nb) = (a.lock().unwrap().len(), b.lock().unwrap().len());
    assert!(na > 100, "task-a starved: {na}");
    assert!(nb > 100, "task-b starved: {nb}");
    // Round-robin fairness: within 25% of each other.
    let diff = na.abs_diff(nb) as f64 / na.max(nb) as f64;
    assert!(diff < 0.25, "unfair split: {na} vs {nb}");
}
