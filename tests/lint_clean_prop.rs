//! The linter's soundness property: **a configuration that lints clean
//! (zero Error-level findings) runs without temporal violations.**
//!
//! Configurations are synthesized from random requirements (via
//! `air_tools::synthesize_schedule`, which yields valid tables) and then
//! randomly mutated (window stretching/shifting/dropping, MTF shrinking)
//! so both clean and broken descriptions reach the linter. Every
//! description that `SystemBuilder::lint` passes with zero errors is
//! built through the checked `build()` path and executed for three major
//! time frames; the trace must show zero deadline misses. Failures print
//! the xorshift seed, so any run is reproducible by pinning it.

use air_core::workload::PeriodicCompute;
use air_core::{PartitionConfig, ProcessConfig, SystemBuilder};
use air_model::process::{Deadline, ProcessAttributes, Recurrence};
use air_model::schedule::{PartitionRequirement, Schedule, TimeWindow};
use air_model::testkit::TestRng;
use air_model::{Partition, PartitionId, ScheduleId, ScheduleSet, Ticks};
use air_ports::{ChannelConfig, Destination, PortAddr, SamplingPortConfig};
use air_tools::synthesize_schedule;

/// A synthesized system description, pre-builder.
struct Synth {
    requirements: Vec<PartitionRequirement>,
    mtf: Ticks,
    windows: Vec<TimeWindow>,
    /// Whether to wire a sampling channel from P0 to P1.
    with_channel: bool,
}

fn synthesize(rng: &mut TestRng) -> Option<Synth> {
    let n_partitions = rng.range(1, 5) as u32;
    // Cycles from a divisor-closed set so lcm stays small and Eq. (22)
    // holds by construction.
    let cycle_choices = [50u64, 100, 200];
    let mut requirements = Vec::new();
    for m in 0..n_partitions {
        let cycle = cycle_choices[rng.below_usize(cycle_choices.len())];
        // Keep total utilisation comfortably under 1 so synthesis succeeds
        // for most draws.
        let duration = rng.range(2, cycle / u64::from(n_partitions) + 1);
        requirements.push(PartitionRequirement::new(
            PartitionId(m),
            Ticks(cycle),
            Ticks(duration),
        ));
    }
    let schedule = synthesize_schedule(ScheduleId(0), &requirements).ok()?;
    Some(Synth {
        requirements,
        mtf: schedule.mtf(),
        windows: schedule.windows().to_vec(),
        with_channel: n_partitions >= 2 && rng.chance(1, 2),
    })
}

/// Randomly corrupts (or leaves alone) a synthesized description.
fn mutate(rng: &mut TestRng, synth: &mut Synth) {
    match rng.below_usize(8) {
        // 0..4: leave the description clean half the time.
        0..4 => {}
        4 => {
            // Stretch a window: may overlap its successor or cross the MTF.
            let i = rng.below_usize(synth.windows.len());
            synth.windows[i].duration += Ticks(rng.range(1, 50));
        }
        5 => {
            // Shift a window forward.
            let i = rng.below_usize(synth.windows.len());
            synth.windows[i].offset += Ticks(rng.range(1, 50));
        }
        6 => {
            // Drop a window: its partition may end up under-served.
            let i = rng.below_usize(synth.windows.len());
            synth.windows.remove(i);
        }
        _ => {
            // Shrink the MTF: Eq. (21)/(22) break for most draws.
            synth.mtf = Ticks(synth.mtf.as_u64().saturating_sub(rng.range(1, 60)).max(1));
        }
    }
}

fn builder_for(synth: &Synth) -> SystemBuilder {
    let schedule = Schedule::new(
        ScheduleId(0),
        "prop",
        synth.mtf,
        synth.requirements.clone(),
        synth.windows.clone(),
    );
    let mut builder = SystemBuilder::new(ScheduleSet::new(vec![schedule]));
    for q in &synth.requirements {
        let wcet = (q.duration.as_u64() / 2).max(1);
        let mut config = PartitionConfig::new(Partition::new(
            q.partition,
            format!("prop-{}", q.partition),
        ))
        .with_process(ProcessConfig::new(
            ProcessAttributes::new(format!("work-{}", q.partition))
                .with_recurrence(Recurrence::Periodic(q.cycle))
                .with_deadline(Deadline::Relative(q.cycle))
                .with_wcet(Ticks(wcet)),
            PeriodicCompute::new(wcet),
        ));
        if synth.with_channel {
            if q.partition == PartitionId(0) {
                config = config.with_sampling_port(SamplingPortConfig::source("prop-out", 16));
            } else if q.partition == PartitionId(1) {
                config = config
                    .with_sampling_port(SamplingPortConfig::destination("prop-in", 16, Ticks(1_000)));
            }
        }
        builder = builder.with_partition(config);
    }
    if synth.with_channel {
        builder = builder.with_channel(ChannelConfig {
            id: 0,
            source: PortAddr::new(PartitionId(0), "prop-out"),
            destinations: vec![Destination::Local(PortAddr::new(PartitionId(1), "prop-in"))],
        });
    }
    builder
}

#[test]
fn clean_lint_implies_no_runtime_violations() {
    let mut clean_runs = 0usize;
    let mut rejected = 0usize;
    let mut seed = 0u64;
    // Keep drawing seeds until 50 clean configurations have actually been
    // executed; the cap bounds the test should generation drift.
    while clean_runs < 50 {
        seed += 1;
        assert!(
            seed <= 400,
            "only {clean_runs} clean configs in 400 seeds ({rejected} rejected)"
        );
        let mut rng = TestRng::new(seed);
        let Some(mut synth) = synthesize(&mut rng) else {
            continue;
        };
        mutate(&mut rng, &mut synth);
        let builder = builder_for(&synth);
        let report = builder.lint();
        if report.has_errors() {
            rejected += 1;
            continue;
        }
        let mtf = synth.mtf.as_u64();
        let mut system = builder
            .build()
            .unwrap_or_else(|e| panic!("seed {seed}: lint-clean config failed to build: {e}"));
        system.run_for(3 * mtf);
        assert_eq!(
            system.trace().deadline_miss_count(),
            0,
            "seed {seed}: lint-clean config missed deadlines over 3 MTFs"
        );
        clean_runs += 1;
    }
    // The mutation stage must actually produce broken descriptions, or the
    // property degenerates into "valid synthesis runs fine".
    assert!(
        rejected >= 10,
        "mutations produced only {rejected} lint-rejected configs"
    );
}
