//! Differential fault-injection tests over the campaign harness: removing
//! one fault class from a plan must leave every partition that class never
//! touched with a byte-identical event stream, and equal seeds must yield
//! byte-identical trace logs.
//!
//! The restriction/comparison core is the reusable
//! [`air_model::testkit::isolation_divergence`] assertion — the executable
//! form of the paper's "a fault in partition A never perturbs partition B".

use air_core::campaign::{event_owner, standard_plan, CampaignOutcome, CampaignRunner};
use air_hw::inject::FaultClass;
use air_model::testkit::isolation_divergence;
use air_model::PartitionId;

const PARTITIONS: [PartitionId; 3] = [PartitionId(0), PartitionId(1), PartitionId(2)];

fn affected_by_class(outcome: &CampaignOutcome, class: FaultClass) -> Vec<PartitionId> {
    outcome
        .records
        .iter()
        .filter(|r| r.event.class == class)
        .filter_map(|r| r.affected)
        .collect()
}

#[test]
fn removing_a_fault_class_only_perturbs_its_victims() {
    let seed = 9;
    let plan = standard_plan(seed, 1);
    let full = CampaignRunner::new(plan.clone()).run();
    assert!(full.is_ok(), "{}", full.report);
    assert_eq!(full.detected(), full.injected());

    for &class in &FaultClass::ALL {
        let reduced_plan = plan.without_class(class);
        assert_eq!(reduced_plan.len(), plan.len() - 1);
        // Keep the horizon identical so both runs cover the same ticks.
        let reduced = CampaignRunner::new(reduced_plan)
            .with_horizon(plan.horizon() + 4 * air_core::campaign::CAMPAIGN_MTF)
            .run();
        assert!(reduced.is_ok(), "minus {class}: {}", reduced.report);

        // The differential invariant: a partition the removed class never
        // touched cannot tell the two campaigns apart.
        let victims = affected_by_class(&full, class);
        for &m in &PARTITIONS {
            if victims.contains(&m) {
                continue;
            }
            assert_eq!(
                isolation_divergence(&reduced.events, &full.events, m, event_owner),
                None,
                "removing {class} perturbed {m}"
            );
        }
    }
}

#[test]
fn unaffected_partitions_match_the_clean_baseline() {
    // A plan aimed solely at the control partition (process overruns):
    // the producer and consumer partitions must see exactly the clean
    // run's event stream.
    let plan = standard_plan(21, 1)
        .without_class(FaultClass::MmuTamper)
        .without_class(FaultClass::SpuriousTrap)
        .without_class(FaultClass::LinkDrop)
        .without_class(FaultClass::LinkBitFlip)
        .without_class(FaultClass::ClockInterference);
    let outcome = CampaignRunner::new(plan).run();
    assert!(outcome.is_ok(), "{}", outcome.report);
    assert_eq!(outcome.detected(), 1);
    let victims = affected_by_class(&outcome, FaultClass::ProcessOverrun);
    assert_eq!(victims, vec![PartitionId(0)]);
    for m in [PartitionId(1), PartitionId(2)] {
        assert_eq!(
            isolation_divergence(&outcome.clean_events, &outcome.events, m, event_owner),
            None,
            "an overrun in partition 0 perturbed {m}"
        );
    }
    // The victim itself, of course, diverges (miss + restart events).
    assert!(isolation_divergence(
        &outcome.clean_events,
        &outcome.events,
        PartitionId(0),
        event_owner
    )
    .is_some());
}

#[test]
fn equal_seeds_give_byte_identical_campaigns() {
    let a = CampaignRunner::new(standard_plan(33, 2)).run();
    let b = CampaignRunner::new(standard_plan(33, 2)).run();
    assert!(a.deterministic && b.deterministic);
    assert_eq!(a.trace_log, b.trace_log);
    assert_eq!(a.clean_trace_log, b.clean_trace_log);
    assert_eq!(a.hm_entries, b.hm_entries);
    // A different seed reshuffles the plan and leaves a different log.
    let c = CampaignRunner::new(standard_plan(34, 2)).run();
    assert_ne!(a.trace_log, c.trace_log);
}
