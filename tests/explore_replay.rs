//! Acceptance: the exploration gate catches a defect per-schedule lint
//! cannot see, and its counterexample witness replays to concrete
//! misbehavior on the real system.
//!
//! The seeded configuration is the canonical mode-starvation trap: two
//! schedules, both individually lint-clean, but the only
//! schedule-authority partition (P0) has no window in the alternate
//! schedule — one commanded switch strands the module where P0 never
//! runs again and nobody can command a way back. Per-schedule analysis
//! accepts it; depth-2 exploration refuses the build with AIR081 and a
//! minimal witness; replaying that witness through the real tick loop
//! shows P0 concretely starved.

use air_core::builder::BuildError;
use air_core::{replay_witness, PartitionConfig, SystemBuilder};
use air_lint::{explore, Code, SystemModel};
use air_model::explore::AbstractMode;
use air_model::partition::OperatingMode;
use air_model::schedule::{PartitionRequirement, Schedule, TimeWindow};
use air_model::{Partition, PartitionId, ScheduleId, ScheduleSet, Ticks};

const P0: PartitionId = PartitionId(0);
const P1: PartitionId = PartitionId(1);
const CHI1: ScheduleId = ScheduleId(1);

/// Text twin of the builder configuration below — the explorer runs on
/// this to produce the witness the replay consumes.
const STARVATION: &str = "\
partition P0 name=AOCS authority=true
partition P1 name=PAYLOAD
schedule chi0 name=ops mtf=100
  require P0 cycle=100 duration=40
  require P1 cycle=100 duration=40
  window P0 offset=0 duration=40
  window P1 offset=40 duration=40
schedule chi1 name=payload-only mtf=100
  require P1 cycle=100 duration=80
  window P1 offset=0 duration=80
";

fn starvation_builder() -> SystemBuilder {
    let chi0 = Schedule::new(
        ScheduleId(0),
        "ops",
        Ticks(100),
        vec![
            PartitionRequirement::new(P0, Ticks(100), Ticks(40)),
            PartitionRequirement::new(P1, Ticks(100), Ticks(40)),
        ],
        vec![
            TimeWindow::new(P0, Ticks(0), Ticks(40)),
            TimeWindow::new(P1, Ticks(40), Ticks(40)),
        ],
    );
    let chi1 = Schedule::new(
        CHI1,
        "payload-only",
        Ticks(100),
        vec![PartitionRequirement::new(P1, Ticks(100), Ticks(80))],
        vec![TimeWindow::new(P1, Ticks(0), Ticks(80))],
    );
    SystemBuilder::new(ScheduleSet::new(vec![chi0, chi1]))
        .with_partition(PartitionConfig::new(
            Partition::new(P0, "AOCS").with_schedule_authority(),
        ))
        .with_partition(PartitionConfig::new(Partition::new(P1, "PAYLOAD")))
}

#[test]
fn per_schedule_lint_accepts_the_seeded_config() {
    let report = starvation_builder().lint();
    assert!(!report.has_errors(), "{report}");
}

#[test]
fn default_build_gate_rejects_through_exploration() {
    let err = starvation_builder().build().unwrap_err();
    let BuildError::Lint(report) = &err else {
        panic!("expected Lint rejection, got {err}");
    };
    assert!(report.has_code(Code::ModeStarvation), "{report}");
    assert!(
        report.has_code(Code::AuthorityLostAcrossModes),
        "{report}"
    );
}

#[test]
fn depth_zero_disables_the_exploration_stage() {
    assert!(starvation_builder()
        .with_exploration_depth(0)
        .build()
        .is_ok());
}

#[test]
fn witness_replays_to_concrete_starvation() {
    // The explorer's verdict on the text twin, with its minimal witness.
    let doc = air_tools::config::parse(STARVATION).expect("parses");
    let exploration = explore(&SystemModel::from_config(&doc), 2);
    let witness = exploration
        .witness_for(Code::ModeStarvation)
        .expect("starvation witness")
        .clone();
    assert_eq!(witness.render(), "request(P0->chi1)");

    // Build the real system past the gate and drive the witness through
    // the actual tick loop.
    let mut system = starvation_builder()
        .with_exploration_depth(0)
        .build()
        .expect("assembles without the explorer");
    let report = replay_witness(&mut system, &witness, 3);

    // The switch committed, P0 is still nominally healthy — and it was
    // never dispatched across three full major frames: concretely starved,
    // exactly what AIR081 predicted.
    assert_eq!(report.final_schedule, CHI1);
    assert_eq!(report.starved, vec![P0]);
    let p0_mode = report
        .modes
        .iter()
        .find(|(m, _)| *m == P0)
        .map(|(_, mode)| *mode);
    assert_eq!(p0_mode, Some(OperatingMode::Normal));
    assert_eq!(report.final_state.mode_of(P0), AbstractMode::Running);
}
