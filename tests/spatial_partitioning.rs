//! Spatial-partitioning invariants: "applications running in one partition
//! cannot access addressing spaces outside those belonging to that
//! partition" (Sect. 2.1), and violations flow through health monitoring.

use air_core::prototype::ids::{P1, P2};
use air_core::prototype::PrototypeHarness;
use air_core::TraceEvent;
use air_hm::ErrorId;
use air_hw::mmu::{AccessKind, MmuFault, Privilege};
use air_model::testkit::TestRng;

#[test]
fn partitions_translate_same_va_to_disjoint_frames() {
    let mut proto = PrototypeHarness::build();
    let spatial = proto.system.spatial_mut();
    let a = spatial
        .translate(P1, 0x4000_0000, AccessKind::Execute, Privilege::User)
        .unwrap();
    let b = spatial
        .translate(P2, 0x4000_0000, AccessKind::Execute, Privilege::User)
        .unwrap();
    assert_ne!(a, b, "same virtual address, physically separated");
}

#[test]
fn all_partition_physical_regions_are_disjoint() {
    let mut proto = PrototypeHarness::build();
    let spatial = proto.system.spatial_mut();
    let mut ranges: Vec<(u64, u64)> = Vec::new();
    for m in 0..4u32 {
        for &(desc, pa) in spatial.regions_of(air_model::PartitionId(m)).unwrap() {
            ranges.push((pa, pa + desc.size.max(air_hw::mmu::PAGE_SIZE)));
        }
    }
    ranges.sort();
    for pair in ranges.windows(2) {
        assert!(
            pair[0].1 <= pair[1].0,
            "physical overlap between partition regions: {pair:?}"
        );
    }
}

#[test]
fn user_level_cannot_touch_kernel_regions() {
    let mut proto = PrototypeHarness::build();
    let spatial = proto.system.spatial_mut();
    // The POS kernel code region of the standard layout.
    let err = spatial
        .translate(P1, 0x1000_0000, AccessKind::Read, Privilege::User)
        .unwrap_err();
    assert!(matches!(err, MmuFault::Protection { .. }));
    // Supervisor level may execute it.
    assert!(spatial
        .translate(P1, 0x1000_0000, AccessKind::Execute, Privilege::Supervisor)
        .is_ok());
}

#[test]
fn write_to_code_faults_execute_from_data_faults() {
    let mut proto = PrototypeHarness::build();
    let spatial = proto.system.spatial_mut();
    assert!(matches!(
        spatial.translate(P1, 0x4000_0000, AccessKind::Write, Privilege::User),
        Err(MmuFault::Protection { .. })
    ));
    assert!(matches!(
        spatial.translate(P1, 0x5000_0000, AccessKind::Execute, Privilege::User),
        Err(MmuFault::Protection { .. })
    ));
    assert!(spatial
        .translate(P1, 0x5000_0000, AccessKind::Write, Privilege::User)
        .is_ok());
}

#[test]
fn violation_reaches_health_monitoring_and_restarts_the_partition() {
    // The full containment path: illegal access → MMU fault → HM report →
    // partition-level recovery (the standard table warm-restarts).
    let mut proto = PrototypeHarness::build();
    proto.system.run_for(250); // P2's window under χ1
    let before = proto.system.hm().log().len();
    let err = proto
        .system
        .access_memory(P2, 0xdead_0000, AccessKind::Write, Privilege::User)
        .unwrap_err();
    assert!(matches!(err, MmuFault::Unmapped { .. }));
    assert_eq!(proto.system.hm().log().len(), before + 1);
    assert_eq!(
        proto
            .system
            .hm()
            .log()
            .entries_for(ErrorId::MemoryViolation)
            .count(),
        1
    );
    let restarts: Vec<&TraceEvent> = proto
        .system
        .trace()
        .events()
        .iter()
        .filter(|e| matches!(e, TraceEvent::PartitionRestart { partition, .. } if *partition == P2))
        .collect();
    assert_eq!(restarts.len(), 1, "P2 warm-restarted");
    // The other partitions keep running: fault contained.
    proto.system.run_for(3 * 1300);
    assert_eq!(proto.system.trace().deadline_miss_count(), 0);
}

#[test]
fn legal_accesses_do_not_disturb_anything() {
    let mut proto = PrototypeHarness::build();
    let pa = proto
        .system
        .access_memory(P1, 0x5000_0010, AccessKind::Read, Privilege::User)
        .unwrap();
    assert!(pa > 0);
    assert_eq!(proto.system.hm().log().len(), 0);
}

/// No partition can ever reach a physical frame belonging to another
/// partition's regions, whatever virtual address it tries.
#[test]
fn no_cross_partition_physical_reach() {
    let mut proto = PrototypeHarness::build();
    let mut rng = TestRng::new(0x5A71);
    for case in 0..256 {
        let va = rng.below(1 << 32);
        let m = rng.below(4) as u32;
        let me = air_model::PartitionId(m);
        // Collect every other partition's physical ranges.
        let mut foreign: Vec<(u64, u64)> = Vec::new();
        for other in 0..4u32 {
            if other == m {
                continue;
            }
            let spatial = proto.system.spatial_mut();
            for &(desc, pa) in spatial.regions_of(air_model::PartitionId(other)).unwrap() {
                foreign.push((pa, pa + desc.size.max(air_hw::mmu::PAGE_SIZE)));
            }
        }
        let spatial = proto.system.spatial_mut();
        for kind in [AccessKind::Read, AccessKind::Write, AccessKind::Execute] {
            if let Ok(pa) = spatial.translate(me, va, kind, Privilege::User) {
                for &(lo, hi) in &foreign {
                    assert!(
                        !(lo <= pa && pa < hi),
                        "case {case}: {me} reached foreign frame {pa:#x} via {va:#x} (seed 0x5A71)"
                    );
                }
            }
        }
    }
}
