//! Property tests for the health monitor's log-N-times-then-act policy
//! (Fig. 6): randomized error sequences and thresholds, seeded xorshift —
//! any failure prints its seed for replay.
//!
//! The contract under test: occurrences are counted **per (source, error)
//! pair**, and a `LogThenAct { threshold: N, .. }` handler replenishes on
//! occurrences 1..=N and escalates at exactly occurrence N+1 — never
//! before, never again later than that (a persistent error keeps
//! escalating every occurrence past the threshold).

use std::collections::HashMap;

use air_apex::ErrorHandlerTable;
use air_core::workload::{FaultSwitch, FaultyPeriodic};
use air_core::{AirSystem, PartitionConfig, ProcessConfig, SystemBuilder, TraceEvent};
use air_hm::{
    ErrorId, ErrorSource, EscalatedProcessAction, HealthMonitor, HmDecision, HmTables,
    ProcessRecoveryAction,
};
use air_model::ids::{GlobalProcessId, ProcessId};
use air_model::process::{Deadline, Priority, ProcessAttributes, Recurrence};
use air_model::schedule::{PartitionRequirement, Schedule, TimeWindow};
use air_model::testkit::TestRng;
use air_model::{Partition, PartitionId, ProcessState, ScheduleId, ScheduleSet, Ticks};

/// Process-level error classes of the standard system table.
const PROCESS_ERRORS: [ErrorId; 5] = [
    ErrorId::DeadlineMissed,
    ErrorId::ApplicationError,
    ErrorId::NumericError,
    ErrorId::IllegalRequest,
    ErrorId::StackOverflow,
];

#[test]
fn occurrences_count_per_source_error_pair_independently() {
    for seed in 1..=20u64 {
        let mut rng = TestRng::new(seed);
        let mut hm = HealthMonitor::new(HmTables::standard());
        // A pool of distinct reporters across several partitions.
        let sources: Vec<ErrorSource> = (0..rng.range(2, 5))
            .flat_map(|m| {
                (0..3).map(move |q| {
                    ErrorSource::Process(GlobalProcessId::new(
                        PartitionId(m as u32),
                        ProcessId(q),
                    ))
                })
            })
            .collect();
        let mut mirror: HashMap<(ErrorSource, ErrorId), u64> = HashMap::new();
        for step in 0..200u64 {
            let source = sources[rng.below_usize(sources.len())];
            let error = PROCESS_ERRORS[rng.below_usize(PROCESS_ERRORS.len())];
            let expected = mirror.entry((source, error)).or_insert(0);
            *expected += 1;
            let decision = hm.report(Ticks(step), error, source, "prop");
            // The decision carries this pair's count, not any other pair's.
            let HmDecision::InvokeErrorHandler { occurrences, process, .. } = decision else {
                panic!("seed {seed}: process-level error must invoke the handler");
            };
            assert_eq!(
                occurrences, *expected,
                "seed {seed} step {step}: occurrence count for {source:?}/{error:?}"
            );
            assert_eq!(ErrorSource::Process(process), source);
        }
        // And the counters are queryable pairwise afterwards.
        for (&(source, error), &count) in &mirror {
            assert_eq!(hm.occurrences(source, error), count, "seed {seed}");
        }
    }
}

const P: PartitionId = PartitionId(0);
const FRAME: u64 = 100;

/// One-partition system whose sole process overruns every activation
/// (period 100, deadline 60, window [0, 40)) under a `LogThenAct` policy
/// with the given threshold and escalation.
fn overrunning_log_then_act(threshold: u32, then: EscalatedProcessAction) -> AirSystem {
    let schedule = Schedule::new(
        ScheduleId(0),
        "mono",
        Ticks(FRAME),
        vec![PartitionRequirement::new(P, Ticks(FRAME), Ticks(40))],
        vec![TimeWindow::new(P, Ticks(0), Ticks(40))],
    );
    let fault = FaultSwitch::new();
    fault.activate();
    SystemBuilder::new(ScheduleSet::new(vec![schedule]))
        .with_partition(
            PartitionConfig::new(Partition::new(P, "LAB"))
                .with_error_handler(ErrorHandlerTable::new().with_action(
                    ErrorId::DeadlineMissed,
                    ProcessRecoveryAction::LogThenAct { threshold, then },
                ))
                .with_process(ProcessConfig::new(
                    ProcessAttributes::new("overrunner")
                        .with_recurrence(Recurrence::Periodic(Ticks(FRAME)))
                        .with_deadline(Deadline::relative(Ticks(60)))
                        .with_base_priority(Priority(1)),
                    FaultyPeriodic::new(1, fault),
                )),
        )
        .build()
        .unwrap()
}

fn process_state(system: &AirSystem) -> ProcessState {
    system.partition(P).process_status(ProcessId(0)).unwrap().0.state
}

#[test]
fn stop_process_fires_at_exactly_the_nth_plus_one_occurrence() {
    for seed in 1..=8u64 {
        let mut rng = TestRng::new(seed);
        let threshold = rng.range(1, 6) as u32;
        let mut system =
            overrunning_log_then_act(threshold, EscalatedProcessAction::StopProcess);
        // Advance frame by frame: while the observed misses are within the
        // threshold the process must still be alive (replenished), and the
        // moment the count passes it the process must be stopped.
        for _frame in 0..(u64::from(threshold) + 6) {
            system.run_for(FRAME);
            let misses = system.trace().deadline_miss_count();
            if misses <= u64::from(threshold) {
                assert_ne!(
                    process_state(&system),
                    ProcessState::Dormant,
                    "seed {seed} threshold {threshold}: stopped before the threshold \
                     ({misses} misses)"
                );
            } else {
                assert_eq!(
                    process_state(&system),
                    ProcessState::Dormant,
                    "seed {seed} threshold {threshold}: not stopped after the threshold"
                );
            }
        }
        // The escalation consumed the process: exactly threshold + 1
        // misses, then silence forever.
        assert_eq!(
            system.trace().deadline_miss_count(),
            u64::from(threshold) + 1,
            "seed {seed} threshold {threshold}"
        );
        system.run_for(4 * FRAME);
        assert_eq!(system.trace().deadline_miss_count(), u64::from(threshold) + 1);
    }
}

#[test]
fn restart_partition_escalates_once_per_occurrence_past_the_threshold() {
    for seed in 1..=6u64 {
        let mut rng = TestRng::new(seed);
        let threshold = rng.range(1, 5) as u32;
        let frames = u64::from(threshold) + rng.range(4, 9);
        let mut system =
            overrunning_log_then_act(threshold, EscalatedProcessAction::RestartPartition);
        system.run_for(frames * FRAME);
        let misses = system.trace().deadline_miss_count();
        let restarts = system
            .trace()
            .events()
            .iter()
            .filter(|e| matches!(e, TraceEvent::PartitionRestart { partition, warm: true, .. } if *partition == P))
            .count() as u64;
        assert!(
            misses > u64::from(threshold),
            "seed {seed}: the persistent overrun must outlast the threshold"
        );
        assert_eq!(
            restarts,
            misses - u64::from(threshold),
            "seed {seed} threshold {threshold}: every occurrence past the \
             threshold escalates, none before ({misses} misses)"
        );
    }
}
