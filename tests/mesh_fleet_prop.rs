//! Mesh campaigns under the fleet executor: a machine's rendered
//! per-node trace logs are a pure function of its mesh plan — worker
//! count, shard assignment and batch size must all be invisible.
//!
//! Extends `fleet_determinism_prop.rs` to the N-node routed mesh: for
//! each topology, a small mesh fleet is executed sequentially (the
//! reference) and then with K ∈ {1, 4, 16} workers; every machine's
//! rendered trace — the concatenation of all N nodes' logs — must be
//! byte-identical to the reference.

use air_fleet::workloads::MeshFleet;
use air_fleet::{run_fleet, run_sequential, Capture, FleetConfig, FleetOutcome};
use air_ports::routing::MeshTopology;

const WORKER_COUNTS: [usize; 3] = [1, 4, 16];

fn assert_logs_identical(
    label: &str,
    seed: u64,
    workers: usize,
    got: &FleetOutcome,
    reference: &FleetOutcome,
) {
    assert_eq!(got.outcomes.len(), reference.outcomes.len());
    for (g, r) in got.outcomes.iter().zip(&reference.outcomes) {
        assert_eq!(g.index, r.index);
        let (g_log, r_log) = (
            g.trace_log.as_ref().expect("full capture"),
            r.trace_log.as_ref().expect("full capture"),
        );
        assert!(
            g_log == r_log,
            "{label} seed {seed}, {workers} workers: machine {} diverged from \
             the sequential run\n--- sequential ---\n{r_log}\n--- fleet ---\n{g_log}",
            g.index
        );
        assert_eq!(g.digest, r.digest, "digest must follow the log bytes");
    }
}

#[test]
fn mesh_fleet_is_schedule_invariant_across_topologies() {
    // Mesh machines are 5 protocol nodes each (≈ 2k-tick horizons), so
    // the seed sweep stays narrow per topology; the property is the same
    // one the 50-seed campaign sweep holds for single machines.
    for topology in [MeshTopology::Line, MeshTopology::Star, MeshTopology::Ring] {
        for seed in [1u64, 42] {
            let fleet = MeshFleet::new(seed, 1, topology, 5);
            let machines = 4;
            let reference = run_sequential(&fleet, machines, Capture::FullTrace);
            for workers in WORKER_COUNTS {
                // A deliberately odd batch size: batch boundaries must not
                // align with fault slots or horizons.
                let config = FleetConfig::new(machines, workers)
                    .with_batch_ticks(37)
                    .with_capture(Capture::FullTrace);
                let fleet_run = run_fleet(&fleet, &config);
                assert_logs_identical(topology.label(), seed, workers, &fleet_run, &reference);
            }
        }
    }
}

#[test]
fn mesh_fleet_digests_match_sequential_without_full_capture() {
    let fleet = MeshFleet::new(9, 1, MeshTopology::Line, 5);
    let machines = 8;
    let sequential = run_sequential(&fleet, machines, Capture::Digest);
    for workers in WORKER_COUNTS {
        let outcome = run_fleet(
            &fleet,
            &FleetConfig::new(machines, workers).with_batch_ticks(37),
        );
        assert_eq!(
            outcome.fleet_digest(),
            sequential.fleet_digest(),
            "{workers} workers: digest diverged from sequential"
        );
    }
}
