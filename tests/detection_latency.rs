//! Experiment B4: deadline-violation **detection latency optimality**
//! (Sect. 5): "this methodology is optimal with respect to deadline
//! violation detection latency" — a violation while the partition is
//! active is caught at the very next clock tick; a violation while it is
//! inactive is caught at the partition's next dispatch, "just before
//! invoking the process scheduler".

use air_core::workload::{FaultSwitch, FaultyPeriodic};
use air_core::{PartitionConfig, ProcessConfig, SystemBuilder, TraceEvent};
use air_model::process::{Deadline, Priority, ProcessAttributes, Recurrence};
use air_model::schedule::{PartitionRequirement, Schedule, TimeWindow};
use air_model::{Partition, PartitionId, ScheduleId, ScheduleSet, Ticks};

const P0: PartitionId = PartitionId(0);
const P1: PartitionId = PartitionId(1);

/// Builds a two-partition system (P0: [0, 50), P1: [50, 100)) with one
/// always-overrunning process in P0 whose relative deadline is `d`.
fn overrun_system(d: u64) -> air_core::AirSystem {
    let schedule = Schedule::new(
        ScheduleId(0),
        "lat",
        Ticks(100),
        vec![
            PartitionRequirement::new(P0, Ticks(100), Ticks(50)),
            PartitionRequirement::new(P1, Ticks(100), Ticks(50)),
        ],
        vec![
            TimeWindow::new(P0, Ticks(0), Ticks(50)),
            TimeWindow::new(P1, Ticks(50), Ticks(50)),
        ],
    );
    let fault = FaultSwitch::new();
    fault.activate();
    SystemBuilder::new(ScheduleSet::new(vec![schedule]))
        .with_partition(
            PartitionConfig::new(Partition::new(P0, "victim")).with_process(
                ProcessConfig::new(
                    ProcessAttributes::new("overrunner")
                        .with_recurrence(Recurrence::Periodic(Ticks(100)))
                        .with_deadline(Deadline::relative(Ticks(d)))
                        .with_base_priority(Priority(1)),
                    FaultyPeriodic::new(1, fault),
                ),
            ),
        )
        .with_partition(PartitionConfig::new(Partition::new(P1, "bystander")))
        .build()
        .unwrap()
}

/// First detection instant for a process started at t=0 with deadline `d`.
fn first_detection(d: u64) -> u64 {
    let mut system = overrun_system(d);
    system.run_for(250);
    system
        .trace()
        .deadline_misses()
        .first()
        .map(|e| e.at().as_u64())
        .expect("an always-overrunning process must miss")
}

#[test]
fn active_partition_detects_at_next_tick() {
    // Deadline expires inside P0's own window [0, 50): Eq. 24's strict
    // `D′ < t` means the first violating instant is d + 1 — exactly when
    // the per-tick announcement catches it.
    for d in [10u64, 25, 37, 48] {
        assert_eq!(first_detection(d), d + 1, "deadline {d}");
    }
}

#[test]
fn inactive_partition_detects_at_next_dispatch() {
    // Deadline expires in [50, 100) while P1 holds the CPU: detection
    // waits for P0's dispatch at t = 100 — and no earlier observer exists,
    // so this is optimal (Sect. 5).
    for d in [50u64, 65, 80, 99] {
        assert_eq!(first_detection(d), 100, "deadline {d}");
    }
}

#[test]
fn boundary_case_deadline_at_window_edge() {
    // d = 49: D′ = 49, first violating instant is t = 50 — the tick of the
    // partition switch itself. P0 is switched out at 50; the violation is
    // detected at P0's next dispatch (t = 100).
    // (At t = 50 the dispatcher announces to the heir P1, not to P0.)
    assert_eq!(first_detection(49), 100);
}

#[test]
fn latency_series_for_the_b4_bench_shape() {
    // The shape EXPERIMENTS.md records: latency as a function of where in
    // the MTF the deadline lands — 1 tick inside the partition's window,
    // rising linearly to a worst case of (MTF − window end) + window start
    // across the inactive span.
    let mut series = Vec::new();
    for d in (5..100).step_by(5) {
        let detection = first_detection(d);
        series.push((d, detection - d));
    }
    for &(d, latency) in &series {
        if d < 49 {
            assert_eq!(latency, 1, "in-window deadline {d}");
        } else {
            assert_eq!(latency, 100 - d, "out-of-window deadline {d}");
        }
    }
    // The worst case is right after the window closes.
    let worst = series.iter().map(|&(_, l)| l).max().unwrap();
    assert_eq!(worst, 100 - 50, "worst case: deadline just past the window");
}

#[test]
fn detection_is_reported_with_the_missed_deadline_value() {
    let mut system = overrun_system(30);
    system.run_for(150);
    let TraceEvent::DeadlineMiss { deadline, .. } = system.trace().deadline_misses()[0]
    else {
        unreachable!()
    };
    assert_eq!(deadline.as_u64(), 30);
}

#[test]
fn multiple_pending_violations_detected_in_ascending_order_at_dispatch() {
    // Three processes with staggered deadlines all expire while the
    // partition is inactive; at the next dispatch the Algorithm 3 loop
    // reports them earliest-first.
    let schedule = Schedule::new(
        ScheduleId(0),
        "multi",
        Ticks(100),
        vec![
            PartitionRequirement::new(P0, Ticks(100), Ticks(30)),
            PartitionRequirement::new(P1, Ticks(100), Ticks(70)),
        ],
        vec![
            TimeWindow::new(P0, Ticks(0), Ticks(30)),
            TimeWindow::new(P1, Ticks(30), Ticks(70)),
        ],
    );
    let fault = FaultSwitch::new();
    fault.activate();
    let mut cfg = PartitionConfig::new(Partition::new(P0, "multi"));
    for (i, d) in [70u64, 50, 60].iter().enumerate() {
        cfg = cfg.with_process(ProcessConfig::new(
            ProcessAttributes::new(format!("p{i}"))
                .with_recurrence(Recurrence::Periodic(Ticks(100)))
                .with_deadline(Deadline::relative(Ticks(*d)))
                .with_base_priority(Priority(1)),
            FaultyPeriodic::new(1, fault.clone()),
        ));
    }
    let mut system = SystemBuilder::new(ScheduleSet::new(vec![schedule]))
        .with_partition(cfg)
        .with_partition(PartitionConfig::new(Partition::new(P1, "bystander")))
        .build()
        .unwrap();
    system.run_for(120);
    let order: Vec<u64> = system
        .trace()
        .deadline_misses()
        .iter()
        .map(|e| {
            let TraceEvent::DeadlineMiss { deadline, at, .. } = e else {
                unreachable!()
            };
            assert_eq!(at.as_u64(), 100, "all detected at the dispatch");
            deadline.as_u64()
        })
        .collect();
    assert_eq!(order, vec![50, 60, 70], "ascending deadline order");
}
