//! Property test for the reliable transport (seeded xorshift, 50 seeds):
//! under *any* single-link fault plan — in-flight drops, header bit-flips,
//! sustained outages of the active adapter, acknowledgement destruction —
//! every queuing-port message offered on node A is delivered to node B
//! exactly once, in order, sampling-port staleness stays within the
//! refresh bound plus the ARQ worst-case delay, and the whole run is a
//! pure function of the seed (byte-identical trace logs on re-execution).
//!
//! Any failure prints its seed for replay.

use air_core::link_campaign::{link_plan, LinkCampaignRunner};
use air_hw::inject::{FaultClass, FaultPlan};
use air_model::testkit::TestRng;

/// The single-link fault classes the property quantifies over.
const CLASSES: [FaultClass; 4] = [
    FaultClass::LinkDrop,
    FaultClass::LinkBitFlip,
    FaultClass::LinkOutage,
    FaultClass::AckLoss,
];

#[test]
fn any_single_link_fault_plan_delivers_exactly_once_in_order() {
    let mut rng = TestRng::new(0xA1B2);
    for case in 0..50u64 {
        // Derive each case's plan from the xorshift stream: a fault class
        // and a fresh plan seed.
        let class = CLASSES[rng.below_usize(CLASSES.len())];
        let seed = rng.range(1, 1 << 20);
        let plan = FaultPlan::generate(seed, &[class], 2, 150, 400, 37);
        let outcome = LinkCampaignRunner::new(plan).run();
        assert!(
            outcome.is_ok(),
            "case {case} (class {class}, seed {seed}): {} (deterministic: {})",
            outcome.report,
            outcome.deterministic,
        );
        assert_eq!(
            outcome.delivered, outcome.expected,
            "case {case} (class {class}, seed {seed}): \
             {}/{} messages delivered",
            outcome.delivered, outcome.expected,
        );
        if class == FaultClass::LinkOutage {
            assert!(
                outcome.failovers > 0,
                "case {case} (seed {seed}): outage plan never failed over"
            );
        }
    }
}

/// Mixed-class plans (the campaign's round-robin default) over a second
/// seed stream: same guarantees, plus visible degraded-mode traversal.
#[test]
fn mixed_fault_plans_keep_the_guarantee() {
    let mut rng = TestRng::new(0xC3D4);
    for case in 0..8u64 {
        let seed = rng.range(1, 1 << 20);
        let outcome = LinkCampaignRunner::new(link_plan(seed, 1)).run();
        assert!(
            outcome.is_ok(),
            "case {case} (seed {seed}): {}",
            outcome.report
        );
        assert_eq!(outcome.delivered, outcome.expected, "case {case} (seed {seed})");
        assert!(outcome.degraded_entries > 0, "case {case} (seed {seed})");
        assert!(
            outcome.degraded_exits >= outcome.degraded_entries,
            "case {case} (seed {seed}): stuck in degraded mode"
        );
    }
}
