//! Fuzz-farm soundness gate: generated configurations through lint →
//! exploration → witness minimization → concrete replay, with zero
//! tolerated divergences (the `AIR099` defect class).
//!
//! The in-crate unit test covers a handful of cases; this integration run
//! is the wider sweep that the CI `--smoke-fuzz` gate mirrors. Seeds are
//! fixed so a failure is reproducible by number alone.

use air_core::fuzz::{generate_config_text, run_fuzz};

#[test]
fn farm_sweep_is_divergence_free() {
    let report = run_fuzz(0, 48, 3);
    assert_eq!(report.cases, 48);
    let rendered: Vec<String> =
        report.divergences.iter().map(|d| d.to_string()).collect();
    assert!(
        rendered.is_empty(),
        "abstraction diverged from the concrete system:\n{}",
        rendered.join("\n")
    );
    // The sweep must be a real exercise, not a vacuous pass.
    assert!(
        report.findings >= 10,
        "only {} findings across 48 cases — generator shapes too tame",
        report.findings
    );
    assert!(
        report.replayed >= 10,
        "only {} witnesses replayed across 48 cases",
        report.replayed
    );
}

#[test]
fn minimized_witnesses_still_replay_to_their_violation() {
    // Deeper exploration produces longer raw witnesses, giving the greedy
    // minimizer real work; run_fuzz re-verifies every kept witness by
    // replaying it concretely, so a non-empty `minimized` count plus zero
    // divergences means minimization preserved the violations.
    let report = run_fuzz(500, 24, 4);
    assert!(report.divergences.is_empty());
    assert!(report.replayed > 0);
}

#[test]
fn distinct_seeds_generate_distinct_systems() {
    let mut texts: Vec<String> = (0..32).map(generate_config_text).collect();
    texts.sort();
    texts.dedup();
    assert!(
        texts.len() >= 24,
        "only {} distinct configurations out of 32 seeds",
        texts.len()
    );
}
