//! Experiment E1/E2 (Fig. 8 and the Eq. 25 worked example): the prototype
//! scheduling tables, their verification, and the timeline regeneration —
//! checked end to end against the running system.

use air_core::prototype::ids::{P1, P2, P3, P4};
use air_core::prototype::PrototypeHarness;
use air_model::prototype::{fig8_chi1, fig8_chi2, fig8_system, MTF};
use air_model::verify::{verify_schedule_brute_force, verify_schedule_set};
use air_model::Ticks;
use air_tools::{render_timeline, render_window_table, verification_report};

#[test]
fn fig8_tables_pass_all_verification_conditions() {
    let sys = fig8_system();
    let report = verify_schedule_set(&sys.schedules, &sys.partitions);
    assert!(report.is_ok(), "{report}");
    for schedule in &sys.schedules {
        assert!(verify_schedule_brute_force(schedule));
    }
}

#[test]
fn eq25_worked_example_exactly() {
    // Σ c over {ω_{1,j} | P = Q_{1,1}, O ∈ [0, 1300)} = 200 ≥ d = 200.
    let chi1 = fig8_chi1();
    let assigned = chi1.assigned_in_cycle(P1, Ticks(1300), 0);
    assert_eq!(assigned, Ticks(200));
    let d = chi1.requirement_for(P1).unwrap().duration;
    assert_eq!(d, Ticks(200));
    assert!(assigned >= d);
}

#[test]
fn window_tables_render_the_paper_notation() {
    let text = render_window_table(&fig8_chi1());
    // All seven windows of χ1, in Fig. 8's ⟨partition, offset, duration⟩
    // notation (P0..P3 are the paper's P1..P4).
    for expected in [
        "<P0, 0, 200>",
        "<P1, 200, 100>",
        "<P2, 300, 100>",
        "<P3, 400, 600>",
        "<P1, 1000, 100>",
        "<P2, 1100, 100>",
        "<P3, 1200, 100>",
    ] {
        assert!(text.contains(expected), "missing {expected} in\n{text}");
    }
    let text2 = render_window_table(&fig8_chi2());
    for expected in ["<P3, 200, 100>", "<P1, 400, 600>", "<P1, 1200, 100>"] {
        assert!(text2.contains(expected), "missing {expected} in\n{text2}");
    }
}

#[test]
fn timelines_are_renderable_and_consistent_with_the_model() {
    for schedule in [fig8_chi1(), fig8_chi2()] {
        let text = render_timeline(&schedule, 100);
        // 4 partition rows plus 2 header lines.
        assert_eq!(text.lines().count(), 6, "{text}");
        // Every row has exactly 13 marked-or-dot columns.
        for line in text.lines().skip(2) {
            let cells: String = line.split('|').nth(1).unwrap().to_owned();
            assert_eq!(cells.len(), 13, "{line}");
            // Marked cells must match the model oracle at column starts.
            for (c, ch) in cells.chars().enumerate() {
                let t = Ticks((c as u64) * 100);
                let p: u32 = line.trim_start()[1..2].parse().unwrap();
                let is_active =
                    schedule.partition_active_at(t) == Some(air_model::PartitionId(p));
                if ch == '#' {
                    // The column may be marked due to activity anywhere in
                    // it; at resolution 100 the Fig. 8 tables align, so the
                    // column start is authoritative.
                    assert!(is_active, "{line} col {c}");
                } else {
                    assert!(!is_active, "{line} col {c}");
                }
            }
        }
    }
}

#[test]
fn verification_report_covers_both_schedules() {
    let sys = fig8_system();
    let text = verification_report(&sys.schedules, &sys.partitions);
    assert_eq!(text.matches("PASS").count(), 2, "{text}");
    assert_eq!(text.matches("FAIL").count(), 0);
    // Per-cycle budget lines for the 650-cycle partitions in both tables.
    assert!(text.contains("P1 cycle 0 [0..650)"));
    assert!(text.contains("P1 cycle 1 [650..1300)"));
}

#[test]
fn running_system_follows_chi1_exactly_for_five_mtfs() {
    // The executable counterpart of Fig. 8: the machine-level scheduler
    // agrees with the model table at every single tick.
    let mut proto = PrototypeHarness::build();
    let chi1 = fig8_chi1();
    let expected_partitions = [P1, P2, P3, P4];
    let mut occupancy = [0u64; 4];
    for _ in 0..5 * MTF.as_u64() {
        proto.system.step();
        let phase = Ticks(proto.system.now().as_u64() % MTF.as_u64());
        let expected = chi1.partition_active_at(phase);
        assert_eq!(proto.system.active_partition(), expected);
        if let Some(p) = expected {
            occupancy[p.as_usize()] += 1;
        }
    }
    // Per-MTF occupancy over 5 MTFs matches the window totals.
    let per_mtf: Vec<u64> = occupancy.iter().map(|o| o / 5).collect();
    let expected: Vec<u64> = expected_partitions
        .iter()
        .map(|&p| chi1.total_assigned(p).as_u64())
        .collect();
    assert_eq!(per_mtf, expected);
}
