//! Benchmark-input guard: every example fed to `BENCH_lint.json`'s
//! exploration rows must present a non-degenerate state space, or the
//! published states/sec numbers measure nothing.
//!
//! An earlier revision benched `full_system.air` when it still had a
//! single schedule and no link: one abstract state, zero events, and the
//! "exploration throughput" row timed hash-map boilerplate. This guard
//! pins the floor: each benched example must reach more than 16 distinct
//! abstract states within 3 events, and the deeper benchmark configuration
//! must clear 10^4 states so the parallel engine rows measure real work.

use air_lint::{explore_with, ExploreConfig, SystemModel};

/// The examples the lint benchmark explores, kept in sync with
/// `crates/bench/src/bin/lint.rs`.
const BENCHED: &[&str] = &["full_system.air", "constellation_hub.air"];

fn model_of(example: &str) -> SystemModel {
    let path = format!(
        "{}/../../examples/{example}",
        env!("CARGO_MANIFEST_DIR")
    );
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("{path}: {e}"));
    let doc = air_tools::config::parse(&text)
        .unwrap_or_else(|e| panic!("{example}: parse failure: {e:?}"));
    SystemModel::from_config(&doc)
}

#[test]
fn every_benched_example_is_nondegenerate_at_depth_3() {
    for example in BENCHED {
        let exploration = explore_with(
            &model_of(example),
            &ExploreConfig {
                depth: 3,
                ..ExploreConfig::default()
            },
        );
        assert!(
            exploration.states_explored > 16,
            "{example}: only {} states at depth 3 — degenerate benchmark \
             input",
            exploration.states_explored
        );
    }
}

#[test]
fn the_hub_example_reaches_bench_scale_by_depth_8() {
    let exploration = explore_with(
        &model_of("constellation_hub.air"),
        &ExploreConfig {
            depth: 8,
            ..ExploreConfig::default()
        },
    );
    assert!(
        exploration.states_explored >= 10_000,
        "constellation_hub.air: {} states at depth 8, need >= 10^4 for the \
         benchmark rows",
        exploration.states_explored
    );
    assert!(!exploration.cap_hit, "raise the default cap for the bench");
}

#[test]
fn benched_examples_are_explorer_clean() {
    for example in BENCHED {
        let exploration = explore_with(
            &model_of(example),
            &ExploreConfig {
                depth: 3,
                ..ExploreConfig::default()
            },
        );
        assert!(
            exploration.report.is_empty(),
            "{example}: {}",
            exploration.report
        );
    }
}
