//! Experiment E4 (Sect. 4 / Sect. 6): mode-based schedule switches — they
//! take effect exactly at the end of the current MTF, successive requests
//! are handled correctly, and they introduce no deadline violations.

use air_core::prototype::ids::{CHI_1, CHI_2, P1, P2};
use air_core::prototype::PrototypeHarness;
use air_core::TraceEvent;
use air_model::prototype::{fig8_chi2, MTF};
use air_model::Ticks;

const M: u64 = MTF.as_u64();

#[test]
fn switch_latency_equals_distance_to_mtf_boundary() {
    // Sweep request offsets across the MTF; the effective switch instant
    // is always the next boundary.
    for offset in [1u64, 137, 650, 1000, 1299] {
        let mut proto = PrototypeHarness::build();
        proto.system.run_for(offset);
        proto.system.request_schedule(CHI_2).unwrap();
        assert_eq!(proto.system.schedule_status().current, CHI_1);
        proto.system.run_until(Ticks(M));
        let status = proto.system.schedule_status();
        assert_eq!(status.current, CHI_2, "offset {offset}");
        assert_eq!(status.last_switch, Ticks(M), "offset {offset}");
        let latency = M - offset;
        assert_eq!(
            status.last_switch.as_u64() - offset,
            latency,
            "switch latency is exactly the distance to the boundary"
        );
    }
}

#[test]
fn after_switch_the_system_follows_chi2() {
    let mut proto = PrototypeHarness::build();
    proto.system.request_schedule(CHI_2).unwrap();
    proto.system.run_for(M); // switch effective at t = M
    let chi2 = fig8_chi2();
    for _ in 0..2 * M {
        proto.system.step();
        let phase = Ticks((proto.system.now().as_u64() - M) % M);
        assert_eq!(
            proto.system.active_partition(),
            chi2.partition_active_at(phase),
            "divergence at {}",
            proto.system.now()
        );
    }
}

#[test]
fn successive_requests_cancel_and_override() {
    let mut proto = PrototypeHarness::build();
    proto.system.run_for(10);
    proto.system.request_schedule(CHI_2).unwrap();
    proto.system.request_schedule(CHI_1).unwrap(); // cancel
    proto.system.run_until(Ticks(M + 10));
    assert_eq!(proto.system.schedule_status().current, CHI_1);
    assert_eq!(proto.system.trace().schedule_switch_count(), 0);

    proto.system.request_schedule(CHI_2).unwrap();
    proto.system.run_until(Ticks(2 * M + 10));
    assert_eq!(proto.system.schedule_status().current, CHI_2);
    assert_eq!(proto.system.trace().schedule_switch_count(), 1);
}

#[test]
fn alternating_switches_cause_no_deadline_violations() {
    // Sect. 6's headline property, over many alternations at pseudo-random
    // offsets.
    let mut proto = PrototypeHarness::build();
    let mut offset = 97u64;
    for k in 0..10u64 {
        let target = if k % 2 == 0 { CHI_2 } else { CHI_1 };
        proto.system.run_for(offset % M);
        proto.system.request_schedule(target).unwrap();
        let boundary = proto.system.now().round_up_to(MTF);
        proto.system.run_until(boundary);
        offset = offset.wrapping_mul(31).wrapping_add(17) % M;
    }
    proto.system.run_for(2 * M);
    assert_eq!(proto.system.trace().deadline_miss_count(), 0);
    assert_eq!(proto.system.trace().schedule_switch_count(), 10);
    // Every switch was recorded at an MTF boundary.
    for e in proto.system.trace().schedule_switches() {
        assert_eq!(e.at().as_u64() % M, 0, "{e:?}");
    }
}

#[test]
fn switching_under_fault_changes_nothing_about_detection() {
    // "Successive requests to change schedule … do not introduce deadline
    // violations other than the one injected in a process in P1."
    let mut proto = PrototypeHarness::build();
    proto.fault.activate();
    for k in 0..6u64 {
        let target = if k % 2 == 0 { CHI_2 } else { CHI_1 };
        proto.system.request_schedule(target).unwrap();
        proto.system.run_for(M);
    }
    // Exactly one detection per P1 dispatch, regardless of which table is
    // in force (P1's window is ⟨P1, 0, 200⟩ in both). The fault is active
    // from boot, so the very first activation (released at t = 0, deadline
    // 650) is already detected at the first boundary.
    let misses: Vec<u64> = proto
        .system
        .trace()
        .deadline_misses()
        .iter()
        .map(|e| e.at().as_u64())
        .collect();
    let expected: Vec<u64> = (1..=6).map(|k| k * M).collect();
    assert_eq!(misses, expected);
    for e in proto.system.trace().deadline_misses() {
        let TraceEvent::DeadlineMiss { process, .. } = e else {
            unreachable!()
        };
        assert_eq!(process.partition, P1);
    }
}

#[test]
fn schedule_status_fields_match_sect42() {
    // GET_MODULE_SCHEDULE_STATUS: last switch time (0 if none), current
    // id, next id (== current when nothing pending).
    let mut proto = PrototypeHarness::build();
    let st = proto.system.schedule_status();
    assert_eq!(st.last_switch, Ticks(0));
    assert_eq!(st.current, CHI_1);
    assert_eq!(st.next, CHI_1);

    proto.system.request_schedule(CHI_2).unwrap();
    let st = proto.system.schedule_status();
    assert_eq!(st.current, CHI_1);
    assert_eq!(st.next, CHI_2);

    proto.system.run_for(M);
    let st = proto.system.schedule_status();
    assert_eq!(st.last_switch, Ticks(M));
    assert_eq!(st.current, CHI_2);
    assert_eq!(st.next, CHI_2);
}

#[test]
fn apex_service_checks_schedule_authority() {
    // Only P1 (AOCS) holds module-schedule authority in the prototype;
    // going through the APEX service from another partition fails with
    // INVALID_CONFIG while the operator path always works.
    let mut proto = PrototypeHarness::build();
    let parts = air_model::prototype::fig8_partitions();
    {
        let sys = &mut proto.system;
        // Direct APEX-service calls, as a P2-hosted application would make.
        let err = air_apex::set_module_schedule(
            &parts[P2.as_usize()],
            scheduler_of(sys),
            CHI_2,
        )
        .unwrap_err();
        assert_eq!(err.code, air_apex::ReturnCode::InvalidConfig);
        air_apex::set_module_schedule(&parts[P1.as_usize()], scheduler_of(sys), CHI_2)
            .unwrap();
    }
    proto.system.run_for(M);
    assert_eq!(proto.system.schedule_status().current, CHI_2);
}

/// Test-only access to the scheduler through the public harness surface.
fn scheduler_of(sys: &mut air_core::AirSystem) -> &mut air_pmk::PartitionScheduler {
    sys.scheduler_mut()
}

mod property {
    use air_model::schedule::PartitionRequirement;
    use air_model::testkit::TestRng;
    use air_model::{PartitionId, Schedule, ScheduleId, ScheduleSet, Ticks};
    use air_pmk::PartitionScheduler;
    use air_tools::synthesize_schedule;

    /// Builds a schedule set of `variants` tables over the same partition
    /// demands, each a different (rotated) synthesis of the same
    /// requirements.
    fn schedule_set(demands: &[(u64, u64)], variants: u32) -> Option<ScheduleSet> {
        let mut schedules: Vec<Schedule> = Vec::new();
        for v in 0..variants {
            // Rotate the demand order so layouts differ between variants.
            let rotated: Vec<PartitionRequirement> = (0..demands.len())
                .map(|i| {
                    let (mult, d) = demands[(i + v as usize) % demands.len()];
                    PartitionRequirement::new(
                        PartitionId(((i + v as usize) % demands.len()) as u32),
                        Ticks(60 * mult),
                        Ticks(d.min(60 * mult)),
                    )
                })
                .collect();
            let mut s = synthesize_schedule(ScheduleId(v), &rotated).ok()?;
            // ScheduleSet requires distinct ids; synthesize sets the id.
            let _ = &mut s;
            schedules.push(s);
        }
        Some(ScheduleSet::new(schedules))
    }

    /// Under arbitrary switch requests, the running scheduler always
    /// agrees with the model: the heir at any tick equals the current
    /// schedule's `partition_active_at((t - last_switch) mod MTF)`,
    /// and switches only ever take effect at MTF boundaries.
    #[test]
    fn scheduler_conforms_under_random_switching() {
        let mut rng = TestRng::new(0xC4A0);
        for case in 0..16 {
            let n = rng.below_usize(3) + 1;
            let demands: Vec<(u64, u64)> =
                (0..n).map(|_| (rng.range(1, 4), rng.range(5, 25))).collect();
            let requests: Vec<(u32, u64)> = (0..rng.below_usize(12))
                .map(|_| (rng.below(3) as u32, rng.range(1, 200)))
                .collect();
            let Some(set) = schedule_set(&demands, 3) else {
                continue; // infeasible demands: nothing to test
            };
            let mut sched = PartitionScheduler::new(&set);
            let mut heir = sched.initial_heir();
            let mut pending: std::collections::VecDeque<(u64, u32)> = {
                // Turn (schedule, gap) pairs into absolute request ticks.
                let mut t = 0u64;
                requests
                    .iter()
                    .map(|&(sid, gap)| {
                        t += gap;
                        (t, sid)
                    })
                    .collect()
            };
            let horizon = 6 * set.iter().map(|s| s.mtf().as_u64()).max().unwrap();
            for t in 1..=horizon {
                while pending.front().is_some_and(|&(at, _)| at == t) {
                    let (_, sid) = pending.pop_front().expect("checked");
                    let _ = sched.request_schedule(ScheduleId(sid));
                }
                if let Some(event) = sched.tick(t) {
                    heir = event.heir;
                    if event.switched_to.is_some() {
                        // Effective switches land only on boundaries of the
                        // *new* origin: the scheduler just reset its phase.
                        assert_eq!(sched.status().last_switch, Ticks(t), "case {case}");
                    }
                }
                // Model conformance at every tick.
                let st = sched.status();
                let current = set.get(st.current).expect("configured");
                let phase = Ticks((t - st.last_switch.as_u64()) % current.mtf().as_u64());
                assert_eq!(
                    heir,
                    current.partition_active_at(phase),
                    "case {case}: tick {t} under {} (seed 0xC4A0)",
                    st.current
                );
            }
        }
    }
}
