//! Health-monitoring recovery actions end to end: each entry of the
//! paper's Sect. 5 recovery menu, observed on a running system.

use air_apex::ErrorHandlerTable;
use air_core::workload::{FaultSwitch, FaultyPeriodic};
use air_core::{PartitionConfig, ProcessConfig, SystemBuilder, TraceEvent};
use air_hm::{
    ErrorId, EscalatedProcessAction, HmTables, ModuleRecoveryAction, ProcessRecoveryAction,
    SystemHmTable,
};
use air_model::process::{Deadline, Priority, ProcessAttributes, Recurrence};
use air_model::schedule::{PartitionRequirement, Schedule, TimeWindow};
use air_model::{Partition, PartitionId, ProcessState, ScheduleId, ScheduleSet, Ticks};

const P: PartitionId = PartitionId(0);

/// One-partition system with an always-overrunning process (deadline 60,
/// period 100, window [0, 40)) under the given error-handler action.
fn overruning_system(action: ProcessRecoveryAction) -> air_core::AirSystem {
    overruning_system_with_tables(action, HmTables::standard())
}

fn overruning_system_with_tables(
    action: ProcessRecoveryAction,
    tables: HmTables,
) -> air_core::AirSystem {
    let schedule = Schedule::new(
        ScheduleId(0),
        "mono",
        Ticks(100),
        vec![PartitionRequirement::new(P, Ticks(100), Ticks(40))],
        vec![TimeWindow::new(P, Ticks(0), Ticks(40))],
    );
    let fault = FaultSwitch::new();
    fault.activate();
    SystemBuilder::new(ScheduleSet::new(vec![schedule]))
        .with_hm_tables(tables)
        .with_partition(
            PartitionConfig::new(Partition::new(P, "LAB"))
                .with_error_handler(
                    ErrorHandlerTable::new().with_action(ErrorId::DeadlineMissed, action),
                )
                .with_process(ProcessConfig::new(
                    ProcessAttributes::new("overrunner")
                        .with_recurrence(Recurrence::Periodic(Ticks(100)))
                        .with_deadline(Deadline::relative(Ticks(60)))
                        .with_base_priority(Priority(1)),
                    FaultyPeriodic::new(1, fault),
                )),
        )
        .build()
        .unwrap()
}

fn process_state(system: &air_core::AirSystem) -> ProcessState {
    system
        .partition(P)
        .process_status(air_model::ids::ProcessId(0))
        .unwrap()
        .0
        .state
}

#[test]
fn ignore_logs_once_and_takes_no_action() {
    // The single armed deadline is consumed at detection; with no restart
    // or replenish, exactly one miss is ever observed.
    let mut system = overruning_system(ProcessRecoveryAction::Ignore);
    system.run_for(10 * 100);
    assert_eq!(system.trace().deadline_miss_count(), 1);
    assert_eq!(system.hm().log().len(), 1);
    assert_eq!(process_state(&system), ProcessState::Running);
}

#[test]
fn log_then_act_replenishes_then_escalates() {
    // threshold 3: occurrences 1–3 log + replenish (so monitoring keeps
    // observing the overrun); occurrence 4 stops the process.
    let mut system = overruning_system(ProcessRecoveryAction::LogThenAct {
        threshold: 3,
        then: EscalatedProcessAction::StopProcess,
    });
    system.run_for(12 * 100);
    assert_eq!(system.trace().deadline_miss_count(), 4);
    assert_eq!(process_state(&system), ProcessState::Dormant);
    // No more misses after the stop.
    system.run_for(5 * 100);
    assert_eq!(system.trace().deadline_miss_count(), 4);
}

#[test]
fn restart_process_misses_once_per_activation() {
    let mut system = overruning_system(ProcessRecoveryAction::RestartProcess);
    system.run_for(10 * 100);
    // Restarted each detection → re-armed each time → one miss per
    // detection cycle; the process itself is alive.
    assert!(system.trace().deadline_miss_count() >= 8);
    assert_ne!(process_state(&system), ProcessState::Dormant);
    assert_eq!(
        system
            .trace()
            .events()
            .iter()
            .filter(|e| matches!(e, TraceEvent::PartitionRestart { .. }))
            .count(),
        0,
        "contained at process level"
    );
}

#[test]
fn stop_process_ends_the_story() {
    let mut system = overruning_system(ProcessRecoveryAction::StopProcess);
    system.run_for(10 * 100);
    assert_eq!(system.trace().deadline_miss_count(), 1);
    assert_eq!(process_state(&system), ProcessState::Dormant);
}

#[test]
fn restart_partition_escalates_and_recovers() {
    let mut system = overruning_system(ProcessRecoveryAction::RestartPartition);
    system.run_for(10 * 100);
    let restarts = system
        .trace()
        .events()
        .iter()
        .filter(|e| matches!(e, TraceEvent::PartitionRestart { partition, warm: true, .. } if *partition == P))
        .count();
    assert!(restarts >= 1);
    // After each restart the process auto-starts again and overruns again:
    // the miss/restart loop continues (the error is persistent).
    assert!(system.trace().deadline_miss_count() >= 2);
}

#[test]
fn stop_partition_silences_it_permanently() {
    let mut system = overruning_system(ProcessRecoveryAction::StopPartition);
    system.run_for(10 * 100);
    assert_eq!(system.trace().deadline_miss_count(), 1);
    let stops = system
        .trace()
        .events()
        .iter()
        .filter(|e| matches!(e, TraceEvent::PartitionStop { partition, .. } if *partition == P))
        .count();
    assert_eq!(stops, 1);
    assert_eq!(
        system.partition(P).mode(),
        air_model::OperatingMode::Idle
    );
}

#[test]
fn module_level_classification_halts_the_module() {
    // Reclassify deadline misses as module-level with a shutdown action:
    // the first detection halts the whole system — "errors detected at
    // system level may lead the entire system to be stopped" (Sect. 2.4).
    let mut tables = HmTables::standard();
    tables.system = SystemHmTable::standard()
        .with_level(ErrorId::DeadlineMissed, air_hm::ErrorLevel::Module)
        .with_module_action(ModuleRecoveryAction::Shutdown);
    let mut system =
        overruning_system_with_tables(ProcessRecoveryAction::Ignore, tables);
    system.run_for(10 * 100);
    assert!(system.is_halted());
    // The clock stopped advancing at the halt.
    let frozen = system.now();
    system.run_for(100);
    assert_eq!(system.now(), frozen);
}

mod registry_ablation {
    use super::*;
    use air_pal::pal::RegistryKind;

    /// Builds the overrunning one-partition system with the given PAL
    /// registry structure.
    fn system_with_registry(kind: RegistryKind) -> air_core::AirSystem {
        let schedule = Schedule::new(
            ScheduleId(0),
            "mono",
            Ticks(100),
            vec![PartitionRequirement::new(P, Ticks(100), Ticks(40))],
            vec![TimeWindow::new(P, Ticks(0), Ticks(40))],
        );
        let fault = FaultSwitch::new();
        fault.activate();
        SystemBuilder::new(ScheduleSet::new(vec![schedule]))
            .with_partition(
                PartitionConfig::new(Partition::new(P, "LAB"))
                    .with_registry_kind(kind)
                    .with_error_handler(ErrorHandlerTable::new().with_action(
                        ErrorId::DeadlineMissed,
                        ProcessRecoveryAction::RestartProcess,
                    ))
                    .with_process(ProcessConfig::new(
                        ProcessAttributes::new("overrunner")
                            .with_recurrence(Recurrence::Periodic(Ticks(100)))
                            .with_deadline(Deadline::relative(Ticks(60)))
                            .with_base_priority(Priority(1)),
                        FaultyPeriodic::new(1, fault),
                    )),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn linked_list_and_btree_pals_detect_identically() {
        // Sect. 5.3: the registry structure is a constants decision, never
        // a behavioural one — both produce the same detection trace.
        let mut list = system_with_registry(RegistryKind::LinkedList);
        let mut tree = system_with_registry(RegistryKind::BTree);
        list.run_for(12 * 100);
        tree.run_for(12 * 100);
        let series = |s: &air_core::AirSystem| -> Vec<(u64, u64)> {
            s.trace()
                .deadline_misses()
                .iter()
                .map(|e| {
                    let TraceEvent::DeadlineMiss { at, deadline, .. } = e else {
                        unreachable!()
                    };
                    (at.as_u64(), deadline.as_u64())
                })
                .collect()
        };
        let a = series(&list);
        let b = series(&tree);
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }
}
