//! Engine-equivalence property: the parallel sharded BFS and the
//! partial-order reduction change *how* the state space is walked, never
//! *what* is found.
//!
//! For 50 generated configurations ([`air_core::fuzz::generate_config_text`]
//! — the same corpus the fuzz farm draws from), the exploration is run
//! sequentially (1 worker) and in parallel (4 workers): the state counts
//! and the full counterexample lists (codes, subjects *and* witnesses)
//! must be identical. The partial-order reduction is cross-checked the
//! same way: POR on and off must reach the same states and report the same
//! `(code, subject)` finding set — POR may pick different representative
//! witnesses of the same length, so witness texts are not compared there.

use std::collections::BTreeSet;

use air_core::fuzz::generate_config_text;
use air_lint::{explore_with, ExploreConfig, SystemModel};

const SEEDS: u64 = 50;
const DEPTH: usize = 3;

fn model_of(seed: u64) -> SystemModel {
    let text = generate_config_text(seed);
    let doc = air_tools::config::parse(&text)
        .unwrap_or_else(|e| panic!("seed {seed}: unparsable generation: {e:?}"));
    SystemModel::from_config(&doc)
}

#[test]
fn parallel_and_sequential_exploration_agree() {
    for seed in 0..SEEDS {
        let model = model_of(seed);
        let sequential = explore_with(
            &model,
            &ExploreConfig {
                depth: DEPTH,
                workers: 1,
                ..ExploreConfig::default()
            },
        );
        let parallel = explore_with(
            &model,
            &ExploreConfig {
                depth: DEPTH,
                workers: 4,
                ..ExploreConfig::default()
            },
        );
        assert_eq!(
            sequential.states_explored, parallel.states_explored,
            "seed {seed}: state counts diverge"
        );
        assert_eq!(
            sequential.counterexamples, parallel.counterexamples,
            "seed {seed}: finding sets diverge between 1 and 4 workers"
        );
        assert_eq!(sequential.cap_hit, parallel.cap_hit, "seed {seed}");
    }
}

#[test]
fn partial_order_reduction_preserves_states_and_findings() {
    for seed in 0..SEEDS {
        let model = model_of(seed);
        let with_por = explore_with(
            &model,
            &ExploreConfig {
                depth: DEPTH,
                por: true,
                ..ExploreConfig::default()
            },
        );
        let without_por = explore_with(
            &model,
            &ExploreConfig {
                depth: DEPTH,
                por: false,
                ..ExploreConfig::default()
            },
        );
        assert_eq!(
            with_por.states_explored, without_por.states_explored,
            "seed {seed}: POR dropped or added reachable states"
        );
        let keys = |ex: &air_lint::Exploration| -> BTreeSet<(air_lint::Code, u32)> {
            ex.counterexamples
                .iter()
                .map(|c| (c.code, c.subject))
                .collect()
        };
        assert_eq!(
            keys(&with_por),
            keys(&without_por),
            "seed {seed}: POR changed the (code, subject) finding set"
        );
        // Witnesses may differ in representative but never in length:
        // BFS minimality is engine-independent.
        for (a, b) in with_por
            .counterexamples
            .iter()
            .zip(without_por.counterexamples.iter())
        {
            assert_eq!(
                a.witness.events.len(),
                b.witness.events.len(),
                "seed {seed}: POR changed the minimal witness length for {}",
                a.code
            );
        }
    }
}
