//! Two physically separated AIR nodes exchanging interpartition messages
//! over the communication infrastructure (Sect. 2.1), in clock lockstep —
//! "in a way which is agnostic of whether the partitions are local or
//! remote to one another".

use air_core::cluster::{AirCluster, ClusterError, Node};
use air_core::workload::{QueuingConsumer, QueuingProducer};
use air_core::{PartitionConfig, ProcessConfig, SystemBuilder};
use air_model::process::{Deadline, Priority, ProcessAttributes, Recurrence};
use air_model::schedule::{PartitionRequirement, Schedule, TimeWindow};
use air_model::{Partition, PartitionId, ScheduleId, ScheduleSet, Ticks};
use air_ports::{ChannelConfig, Destination, PortAddr, QueuingPortConfig};

const P0: PartitionId = PartitionId(0);
const TM_CHANNEL: u32 = 50;

fn mono_schedule() -> ScheduleSet {
    ScheduleSet::new(vec![Schedule::new(
        ScheduleId(0),
        "mono",
        Ticks(100),
        vec![PartitionRequirement::new(P0, Ticks(100), Ticks(100))],
        vec![TimeWindow::new(P0, Ticks(0), Ticks(100))],
    )])
}

/// Node A: an OBDH partition queueing telemetry to a *remote* ground
/// interface.
fn sender_node() -> air_core::AirSystem {
    SystemBuilder::new(mono_schedule())
        .with_partition(
            PartitionConfig::new(Partition::new(P0, "OBDH"))
                .with_queuing_port(QueuingPortConfig::source("tm", 64, 8))
                .with_process(ProcessConfig::new(
                    ProcessAttributes::new("telemetry")
                        .with_recurrence(Recurrence::Periodic(Ticks(100)))
                        .with_deadline(Deadline::relative(Ticks(100)))
                        .with_base_priority(Priority(1)),
                    QueuingProducer::new("tm"),
                )),
        )
        .with_channel(ChannelConfig {
            id: TM_CHANNEL,
            source: PortAddr::new(P0, "tm"),
            destinations: vec![Destination::Remote {
                addr: PortAddr::new(P0, "tm"),
            }],
        })
        .build()
        .unwrap()
}

/// Node B: a ground-interface partition draining the telemetry queue the
/// link fills.
fn receiver_node() -> air_core::AirSystem {
    SystemBuilder::new(mono_schedule())
        .with_partition(
            PartitionConfig::new(Partition::new(P0, "GROUND-IF"))
                .with_queuing_port(QueuingPortConfig::destination("tm", 64, 8))
                .with_process(ProcessConfig::new(
                    ProcessAttributes::new("downlink")
                        .with_recurrence(Recurrence::Periodic(Ticks(100)))
                        .with_deadline(Deadline::relative(Ticks(100)))
                        .with_base_priority(Priority(1)),
                    QueuingConsumer::new("tm"),
                )),
        )
        .with_channel(ChannelConfig {
            // The gateway entry: the source is the *remote* node's OBDH
            // port (no such port exists locally), the destination local.
            id: TM_CHANNEL,
            source: PortAddr::new(P0, "tm-remote-source"),
            destinations: vec![Destination::Local(PortAddr::new(P0, "tm"))],
        })
        .build()
        .unwrap()
}

#[test]
fn telemetry_crosses_the_cluster() {
    let mut cluster = AirCluster::new(sender_node(), receiver_node()).expect("lockstep");
    cluster.run_for(10 * 100);
    assert!(cluster.frames_a_to_b() >= 8, "{}", cluster.frames_a_to_b());
    assert_eq!(cluster.frames_b_to_a(), 0);
    let console = cluster.node(Node::B).console_of(P0).to_owned();
    assert!(console.contains("rx frame-0"), "{console}");
    assert!(console.contains("rx frame-5"), "{console}");
    // Frames arrive in order despite the two adapter hops.
    let indices: Vec<usize> = console
        .lines()
        .filter_map(|l| l.strip_prefix("rx frame-")?.parse().ok())
        .collect();
    for pair in indices.windows(2) {
        assert!(pair[0] + 1 == pair[1], "out of order: {indices:?}");
    }
}

#[test]
fn end_to_end_latency_spans_both_adapters() {
    let mut cluster = AirCluster::new(sender_node(), receiver_node()).expect("lockstep");
    cluster.run_for(3 * 100);
    // The default adapter latency is 2 ticks per node: the message written
    // at t is readable at B no earlier than t + 4 (plus boundary routing).
    let msg = cluster
        .node_mut(Node::B)
        .ipc_mut()
        .registry_mut()
        .queuing_port_mut(P0, "tm")
        .unwrap();
    // Consumed already by the downlink process; check trace-level proof
    // instead: frames were shuttled and consumed without integrity errors.
    let _ = msg;
    assert_eq!(cluster.node_mut(Node::B).ipc_mut().frames_rejected(), 0);
    assert!(cluster.node_mut(Node::B).ipc_mut().frames_received() >= 2);
}

#[test]
fn both_nodes_keep_their_own_timeliness() {
    let mut cluster = AirCluster::new(sender_node(), receiver_node()).expect("lockstep");
    cluster.run_for(20 * 100);
    assert_eq!(cluster.node(Node::A).trace().deadline_miss_count(), 0);
    assert_eq!(cluster.node(Node::B).trace().deadline_miss_count(), 0);
    assert_eq!(cluster.now(), Ticks(2000));
    assert_eq!(cluster.node(Node::A).now(), cluster.node(Node::B).now());
}

#[test]
fn misaligned_clocks_rejected() {
    let mut a = sender_node();
    a.run_for(5);
    match AirCluster::new(a, receiver_node()) {
        Err(ClusterError::ClockMisaligned { node_a, node_b }) => {
            assert_eq!(node_a, Ticks(5));
            assert_eq!(node_b, Ticks(0));
        }
        other => panic!("expected a clock-misalignment error, got {other:?}"),
    }
}
