//! Property test for the routed mesh (seeded xorshift, 50 seeds): over
//! every standard topology — line, star, ring — and under seeded
//! per-edge link faults (in-flight drops, header bit-flips, sustained
//! edge outages, acknowledgement destruction), every telecommand the
//! ground node originates is delivered to the executor exactly once, in
//! order, across at least two hops; every command's acceptance, start
//! and completion verification reports make it back to the ground node;
//! and the whole run is a pure function of the plan (byte-identical
//! trace logs on re-execution).
//!
//! Any failure prints its seed and topology for replay.

use air_core::mesh::{mesh_plan, MeshCampaignRunner};
use air_model::testkit::TestRng;
use air_ports::routing::MeshTopology;

const TOPOLOGIES: [MeshTopology; 3] =
    [MeshTopology::Line, MeshTopology::Star, MeshTopology::Ring];

#[test]
fn any_mesh_fault_plan_delivers_exactly_once_in_order_over_50_seeds() {
    let mut rng = TestRng::new(0xE5F6);
    for case in 0..50u64 {
        let topology = TOPOLOGIES[rng.below_usize(TOPOLOGIES.len())];
        let seed = rng.range(1, 1 << 20);
        let plan = mesh_plan(topology, 5, seed, 1);
        let outcome = MeshCampaignRunner::new(plan).run();
        let label = outcome.plan.topology.label();
        assert!(
            outcome.command_hops >= 2,
            "case {case} ({label}, seed {seed}): command path is only \
             {} hop(s)",
            outcome.command_hops
        );
        assert!(
            outcome.report.is_ok(),
            "case {case} ({label}, seed {seed}): {}",
            outcome.report
        );
        assert!(
            outcome.deterministic,
            "case {case} ({label}, seed {seed}): rerun diverged"
        );
        assert_eq!(
            outcome.delivered, outcome.expected,
            "case {case} ({label}, seed {seed}): {}/{} commands delivered",
            outcome.delivered, outcome.expected
        );
        assert_eq!(
            outcome.acks,
            [outcome.expected; 3],
            "case {case} ({label}, seed {seed}): incomplete verification \
             round trips (accept/start/complete = {:?})",
            outcome.acks
        );
        assert_eq!(
            outcome.packets_dropped, 0,
            "case {case} ({label}, seed {seed}): packets dropped in a \
             statically clean mesh"
        );
    }
}

/// Every topology with a fixed seed, re-run in-process: the rendered
/// trace must be byte-identical between two independently constructed
/// runners — the reproducibility contract `air-fleet` relies on.
#[test]
fn reruns_are_byte_identical_per_topology() {
    for topology in TOPOLOGIES {
        let first = MeshCampaignRunner::new(mesh_plan(topology, 5, 7, 1)).run();
        let second = MeshCampaignRunner::new(mesh_plan(topology, 5, 7, 1)).run();
        assert!(first.is_ok(), "{}: {}", topology.label(), first.report);
        assert_eq!(
            first.trace_log,
            second.trace_log,
            "{}: independent runners diverged",
            topology.label()
        );
        assert!(
            !first.trace_log.is_empty()
                && first.trace_log.contains("CommandCompleted")
                && first.trace_log.contains("PacketForwarded"),
            "{}: trace misses the service story",
            topology.label()
        );
    }
}

/// Larger meshes keep the guarantee: a 9-node ring and a 9-node line
/// under mixed faults.
#[test]
fn nine_node_meshes_hold_the_guarantee() {
    for topology in [MeshTopology::Line, MeshTopology::Ring] {
        let outcome = MeshCampaignRunner::new(mesh_plan(topology, 9, 3, 1)).run();
        assert!(
            outcome.is_ok(),
            "{}[9]: {}",
            outcome.plan.topology.label(),
            outcome.report
        );
        assert!(outcome.command_hops >= 4, "{}[9]", outcome.plan.topology.label());
        assert_eq!(outcome.delivered, outcome.expected);
    }
}
