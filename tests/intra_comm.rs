//! Intrapartition communication under the real two-level scheduler:
//! blocking buffers, semaphores and events between processes of one
//! partition, driven through the full blocked-caller protocol
//! (block → yield → wake cause → collect delivery).

use std::sync::{Arc, Mutex};

use air_apex::{Outcome, Timeout};
use air_core::workload::{ProcessApi, ProcessBody};
use air_core::{PartitionConfig, ProcessConfig, SystemBuilder};
use air_model::process::{Priority, ProcessAttributes};
use air_model::schedule::{PartitionRequirement, Schedule, TimeWindow};
use air_model::{Partition, PartitionId, ScheduleId, ScheduleSet, Ticks};
use air_pos::WakeCause;

const P: PartitionId = PartitionId(0);

fn mono_system(
    processes: Vec<ProcessConfig>,
    setup: impl FnOnce(&mut air_apex::IntraPartition),
) -> air_core::AirSystem {
    let schedule = Schedule::new(
        ScheduleId(0),
        "mono",
        Ticks(100),
        vec![PartitionRequirement::new(P, Ticks(100), Ticks(100))],
        vec![TimeWindow::new(P, Ticks(0), Ticks(100))],
    );
    let mut cfg = PartitionConfig::new(Partition::new(P, "SOLO"));
    for p in processes {
        cfg = cfg.with_process(p);
    }
    let mut system = SystemBuilder::new(ScheduleSet::new(vec![schedule]))
        .with_partition(cfg)
        .build()
        .unwrap();
    setup(system.partition_mut(P).intra_mut());
    system
}

/// Produces one buffer message every `period` ticks (busy-waiting between
/// sends, low priority).
struct Producer {
    period: u64,
    next: u64,
    seq: u64,
}

impl ProcessBody for Producer {
    fn on_tick(&mut self, api: &mut ProcessApi<'_>) {
        if api.now.as_u64() >= self.next {
            self.next = api.now.as_u64() + self.period;
            let payload = format!("item-{}", self.seq).into_bytes();
            self.seq += 1;
            let (intra, pos) = api.apex.intra_and_pos();
            let _ = intra.send_buffer(api.me, "work", payload, Timeout::Immediate, api.now, pos);
        }
    }
}

/// Blocking consumer: receives with a bounded timeout, collecting
/// deliveries through the wake protocol.
struct Consumer {
    waiting: bool,
    got: Arc<Mutex<Vec<String>>>,
    timeouts: Arc<Mutex<u32>>,
}

impl ProcessBody for Consumer {
    fn on_tick(&mut self, api: &mut ProcessApi<'_>) {
        if self.waiting {
            // We are running again: the wait ended. Why?
            match api.apex.take_wake_cause(api.me) {
                Some(WakeCause::Unblocked) => {
                    let msg = api
                        .apex
                        .intra_mut()
                        .take_delivery(api.me)
                        .expect("unblock implies a handoff");
                    self.got
                        .lock()
                        .unwrap()
                        .push(String::from_utf8_lossy(&msg).into_owned());
                }
                Some(WakeCause::Timeout) => {
                    *self.timeouts.lock().unwrap() += 1;
                }
                other => panic!("unexpected wake cause {other:?}"),
            }
            self.waiting = false;
            return;
        }
        let (intra, pos) = api.apex.intra_and_pos();
        match intra.receive_buffer(api.me, "work", Timeout::Bounded(Ticks(40)), api.now, pos) {
            Ok(Outcome::Done(msg)) => self
                .got
                .lock()
                .unwrap()
                .push(String::from_utf8_lossy(&msg).into_owned()),
            Ok(Outcome::Blocked) => self.waiting = true,
            Err(e) => panic!("receive failed: {e}"),
        }
    }
}

#[test]
fn blocking_buffer_producer_consumer() {
    let got = Arc::new(Mutex::new(Vec::new()));
    let timeouts = Arc::new(Mutex::new(0));
    let mut system = mono_system(
        vec![
            // Consumer has the more urgent priority: it blocks, the
            // producer runs, the handoff unblocks the consumer.
            ProcessConfig::new(
                ProcessAttributes::new("consumer").with_base_priority(Priority(1)),
                Consumer {
                    waiting: false,
                    got: Arc::clone(&got),
                    timeouts: Arc::clone(&timeouts),
                },
            ),
            ProcessConfig::new(
                ProcessAttributes::new("producer").with_base_priority(Priority(5)),
                Producer {
                    period: 10,
                    next: 0,
                    seq: 0,
                },
            ),
        ],
        |intra| intra.create_buffer("work", 64, 4).unwrap(),
    );
    system.run_for(500);
    let got = got.lock().unwrap();
    assert!(got.len() >= 40, "consumed {} items", got.len());
    // In-order delivery.
    for (i, item) in got.iter().enumerate() {
        assert_eq!(*item, format!("item-{i}"));
    }
    assert_eq!(system.trace().deadline_miss_count(), 0);
}

#[test]
fn consumer_times_out_without_a_producer() {
    let got = Arc::new(Mutex::new(Vec::new()));
    let timeouts = Arc::new(Mutex::new(0));
    let mut system = mono_system(
        vec![ProcessConfig::new(
            ProcessAttributes::new("consumer").with_base_priority(Priority(1)),
            Consumer {
                waiting: false,
                got: Arc::clone(&got),
                timeouts: Arc::clone(&timeouts),
            },
        )],
        |intra| intra.create_buffer("work", 64, 4).unwrap(),
    );
    system.run_for(300);
    assert!(got.lock().unwrap().is_empty());
    // ~one timeout per 40-tick bound (plus the re-issue ticks).
    let n = *timeouts.lock().unwrap();
    assert!((5..=8).contains(&n), "timeouts = {n}");
}

/// Two contenders around a mutex-like semaphore; a shared "critical
/// section" counter must never see overlap.
struct MutexWorker {
    holding: bool,
    waiting: bool,
    in_critical: Arc<Mutex<u32>>,
    overlaps: Arc<Mutex<u32>>,
    hold_left: u64,
}

impl ProcessBody for MutexWorker {
    fn on_tick(&mut self, api: &mut ProcessApi<'_>) {
        if self.waiting {
            if api.apex.take_wake_cause(api.me) == Some(WakeCause::Unblocked) {
                self.waiting = false;
                self.holding = true;
                self.hold_left = 3;
                let mut c = self.in_critical.lock().unwrap();
                if *c != 0 {
                    *self.overlaps.lock().unwrap() += 1;
                }
                *c += 1;
            }
            return;
        }
        if self.holding {
            self.hold_left -= 1;
            if self.hold_left == 0 {
                self.holding = false;
                *self.in_critical.lock().unwrap() -= 1;
                let (intra, pos) = api.apex.intra_and_pos();
                intra.signal_semaphore("mutex", api.now, pos).unwrap();
                // Yield so the peer can take its turn.
                let _ = api.apex.timed_wait(api.me, Ticks(1), api.now);
            }
            return;
        }
        let (intra, pos) = api.apex.intra_and_pos();
        match intra.wait_semaphore(api.me, "mutex", Timeout::Infinite, api.now, pos) {
            Ok(Outcome::Done(())) => {
                self.holding = true;
                self.hold_left = 3;
                let mut c = self.in_critical.lock().unwrap();
                if *c != 0 {
                    *self.overlaps.lock().unwrap() += 1;
                }
                *c += 1;
            }
            Ok(Outcome::Blocked) => self.waiting = true,
            Err(e) => panic!("{e}"),
        }
    }
}

#[test]
fn semaphore_provides_mutual_exclusion() {
    let in_critical = Arc::new(Mutex::new(0));
    let overlaps = Arc::new(Mutex::new(0));
    let make = |prio: u8| {
        ProcessConfig::new(
            ProcessAttributes::new(format!("worker-{prio}")).with_base_priority(Priority(prio)),
            MutexWorker {
                holding: false,
                waiting: false,
                in_critical: Arc::clone(&in_critical),
                overlaps: Arc::clone(&overlaps),
                hold_left: 0,
            },
        )
    };
    let mut system = mono_system(vec![make(1), make(2)], |intra| {
        intra.create_semaphore("mutex", 1, 1).unwrap()
    });
    system.run_for(1000);
    assert_eq!(*overlaps.lock().unwrap(), 0, "critical sections overlapped");
    assert_eq!(system.trace().deadline_miss_count(), 0);
}

/// Waits on the "go" event once, then counts ticks.
struct EventWaiter {
    started: bool,
    waiting: bool,
    progressed: Arc<Mutex<u64>>,
}

impl ProcessBody for EventWaiter {
    fn on_tick(&mut self, api: &mut ProcessApi<'_>) {
        if self.waiting {
            let _ = api.apex.take_wake_cause(api.me);
            self.waiting = false;
            self.started = true;
        }
        if self.started {
            *self.progressed.lock().unwrap() += 1;
            return;
        }
        let (intra, pos) = api.apex.intra_and_pos();
        match intra.wait_event(api.me, "go", Timeout::Infinite, api.now, pos) {
            Ok(Outcome::Done(())) => self.started = true,
            Ok(Outcome::Blocked) => self.waiting = true,
            Err(e) => panic!("{e}"),
        }
    }
}

/// Sets the "go" event at t >= 200.
struct EventSetter {
    done: bool,
}

impl ProcessBody for EventSetter {
    fn on_tick(&mut self, api: &mut ProcessApi<'_>) {
        if !self.done && api.now >= Ticks(200) {
            let (intra, pos) = api.apex.intra_and_pos();
            intra.set_event("go", api.now, pos).unwrap();
            self.done = true;
        }
        let _ = api.apex.timed_wait(api.me, Ticks(5), api.now);
    }
}

#[test]
fn event_gates_progress_until_set() {
    let progressed = Arc::new(Mutex::new(0u64));
    let mut system = mono_system(
        vec![
            ProcessConfig::new(
                ProcessAttributes::new("waiter").with_base_priority(Priority(1)),
                EventWaiter {
                    started: false,
                    waiting: false,
                    progressed: Arc::clone(&progressed),
                },
            ),
            ProcessConfig::new(
                ProcessAttributes::new("setter").with_base_priority(Priority(5)),
                EventSetter { done: false },
            ),
        ],
        |intra| intra.create_event("go").unwrap(),
    );
    system.run_for(195);
    assert_eq!(*progressed.lock().unwrap(), 0, "gated until the event");
    system.run_for(305);
    assert!(*progressed.lock().unwrap() > 200, "released after the event");
}
