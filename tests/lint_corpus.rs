//! Golden corpus for `air-lint`: every `.air` file under
//! `tests/lint_corpus/` is linted and its line-oriented JSON report is
//! compared byte-for-byte against the sibling `.expected` file, so the
//! exact diagnostic codes (and their lines) are pinned down.
//!
//! Conventions:
//!
//! - `clean_*` cases lint without errors, `warn_*` cases have findings
//!   but no errors, everything else must produce at least one error;
//! - a first line `#!explore depth=N [max_states=M]` (a comment to the
//!   parser) runs the case through [`lint_config_text_explored_with`] at
//!   that depth (and, when given, under that state cap), so the golden
//!   pins the exploration diagnostics (AIR081–AIR086, AIR095–AIR098)
//!   too;
//! - `<base>_pair_a.air` / `<base>_pair_b.air` describe the two nodes of
//!   a cluster; they are excluded from the per-file loops and checked
//!   against `<base>_pair.expected`, the concatenation of both per-node
//!   reports and the cluster cross-check (exactly what
//!   `airlint --json --cluster` prints);
//! - `<base>_mesh_a.air`, `<base>_mesh_b.air`, … describe the members of
//!   an N-node routed mesh; they are excluded from the per-file loops and
//!   checked against `<base>_mesh.expected`, the concatenation of every
//!   per-member report and the mesh cross-check (exactly what
//!   `airlint --json --cluster` prints for the member list).
//!
//! To regenerate a golden after an intentional change:
//! `cargo run -p air-lint --bin airlint -- --json tests/lint_corpus/<case>.air`
//! (add `--explore --depth N` — plus `--max-states M` when the marker
//! carries a `max_states=` token — for marked cases,
//! `--cluster <base>_pair_a.air <base>_pair_b.air` for pairs, or
//! `--cluster <base>_mesh_a.air <base>_mesh_b.air …` for mesh sets) and
//! review the diff by hand before committing it.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

use air_lint::{
    lint_cluster_config_texts, lint_config_text, lint_config_text_explored_with,
    lint_mesh_config_texts, Code, ExploreConfig,
};

fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/lint_corpus")
}

/// Per-file corpus cases — cluster pair nodes and mesh members are
/// handled by [`cluster_pairs_match_goldens`] and
/// [`mesh_sets_match_goldens`] instead.
fn corpus_cases() -> Vec<PathBuf> {
    let mut cases: Vec<PathBuf> = std::fs::read_dir(corpus_dir())
        .expect("corpus directory exists")
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "air"))
        .filter(|p| !is_pair_node(p) && !is_mesh_member(p))
        .collect();
    cases.sort();
    cases
}

fn is_pair_node(path: &Path) -> bool {
    path.file_stem()
        .is_some_and(|s| {
            let s = s.to_string_lossy();
            s.ends_with("_pair_a") || s.ends_with("_pair_b")
        })
}

/// Whether `path` is one member of a mesh set (`<base>_mesh_<letter>`).
fn is_mesh_member(path: &Path) -> bool {
    path.file_stem().is_some_and(|s| {
        let s = s.to_string_lossy();
        match s.rsplit_once('_') {
            Some((prefix, suffix)) => {
                prefix.ends_with("_mesh")
                    && suffix.len() == 1
                    && suffix.chars().all(|c| c.is_ascii_lowercase())
            }
            None => false,
        }
    })
}

/// Lints `text` honouring the `#!explore depth=N [max_states=M]`
/// first-line marker.
fn report_for(text: &str) -> air_lint::LintReport {
    if let Some(config) = explore_marker(text) {
        lint_config_text_explored_with(text, &config)
    } else {
        lint_config_text(text)
    }
}

/// Parses the first-line marker into an [`ExploreConfig`]: `depth=` is
/// mandatory, `max_states=` optional, anything else is a corpus bug.
fn explore_marker(text: &str) -> Option<ExploreConfig> {
    let first = text.lines().next()?;
    let rest = first.strip_prefix("#!explore")?;
    let mut config = ExploreConfig::default();
    let mut saw_depth = false;
    for token in rest.split_whitespace() {
        if let Some(depth) = token.strip_prefix("depth=") {
            config.depth = depth.parse().expect("well-formed depth= token");
            saw_depth = true;
        } else if let Some(cap) = token.strip_prefix("max_states=") {
            config.max_states = cap.parse().expect("well-formed max_states= token");
        } else {
            panic!("unrecognised #!explore token '{token}'");
        }
    }
    assert!(saw_depth, "#!explore marker is missing its depth= token");
    Some(config)
}

#[test]
fn corpus_is_not_empty() {
    assert!(
        corpus_cases().len() >= 15,
        "expected at least 15 corpus cases, found {}",
        corpus_cases().len()
    );
}

#[test]
fn corpus_reports_match_goldens() {
    let mut failures = Vec::new();
    for case in corpus_cases() {
        let text = std::fs::read_to_string(&case).expect("readable corpus case");
        let golden_path = case.with_extension("expected");
        let golden = std::fs::read_to_string(&golden_path).unwrap_or_else(|_| {
            panic!("missing golden file {}", golden_path.display())
        });
        let actual = report_for(&text).to_json_lines();
        if actual != golden {
            failures.push(format!(
                "== {} ==\n--- expected\n{golden}--- actual\n{actual}",
                case.display()
            ));
        }
    }
    assert!(failures.is_empty(), "\n{}", failures.join("\n"));
}

#[test]
fn cluster_pairs_match_goldens() {
    let mut pairs = 0;
    for entry in std::fs::read_dir(corpus_dir()).expect("corpus directory exists") {
        let path = entry.expect("readable entry").path();
        let Some(stem) = path.file_stem().map(|s| s.to_string_lossy().into_owned()) else {
            continue;
        };
        if path.extension().is_none_or(|ext| ext != "air") || !stem.ends_with("_pair_a") {
            continue;
        }
        let base = stem.trim_end_matches("_a");
        let a = std::fs::read_to_string(&path).expect("readable pair node A");
        let b = std::fs::read_to_string(path.with_file_name(format!("{base}_b.air")))
            .expect("readable pair node B");
        let golden_path = path.with_file_name(format!("{base}.expected"));
        let golden = std::fs::read_to_string(&golden_path).unwrap_or_else(|_| {
            panic!("missing golden file {}", golden_path.display())
        });
        let actual = format!(
            "{}{}{}",
            report_for(&a).to_json_lines(),
            report_for(&b).to_json_lines(),
            lint_cluster_config_texts(&a, &b).to_json_lines()
        );
        assert_eq!(actual, golden, "pair {base} diverged from its golden");
        // Pairs follow the same naming convention as per-file cases.
        assert!(
            lint_cluster_config_texts(&a, &b).has_errors() != base.starts_with("clean_"),
            "pair {base} violates the naming convention"
        );
        pairs += 1;
    }
    assert!(pairs >= 1, "expected at least one cluster pair case");
}

#[test]
fn mesh_sets_match_goldens() {
    let mut sets = 0;
    for entry in std::fs::read_dir(corpus_dir()).expect("corpus directory exists") {
        let path = entry.expect("readable entry").path();
        let Some(stem) = path.file_stem().map(|s| s.to_string_lossy().into_owned()) else {
            continue;
        };
        if path.extension().is_none_or(|ext| ext != "air") || !stem.ends_with("_mesh_a") {
            continue;
        }
        let base = stem.trim_end_matches("_a");
        // Collect the member files in letter order until the first gap.
        let mut texts = Vec::new();
        for letter in 'a'..='z' {
            let member = path.with_file_name(format!("{base}_{letter}.air"));
            match std::fs::read_to_string(&member) {
                Ok(text) => texts.push(text),
                Err(_) => break,
            }
        }
        assert!(texts.len() >= 2, "mesh set {base} needs at least two members");
        let golden_path = path.with_file_name(format!("{base}.expected"));
        let golden = std::fs::read_to_string(&golden_path).unwrap_or_else(|_| {
            panic!("missing golden file {}", golden_path.display())
        });
        let mut actual = String::new();
        for text in &texts {
            actual.push_str(&report_for(text).to_json_lines());
        }
        let cross = lint_mesh_config_texts(&texts);
        actual.push_str(&cross.to_json_lines());
        assert_eq!(actual, golden, "mesh set {base} diverged from its golden");
        // Mesh sets follow the same naming convention as per-file cases.
        assert!(
            cross.has_errors() != base.starts_with("clean_"),
            "mesh set {base} violates the naming convention"
        );
        sets += 1;
    }
    assert!(sets >= 6, "expected the clean set plus one per AIR09x code, found {sets}");
}

#[test]
fn corpus_exercises_every_registered_code() {
    // Codes the text corpus cannot reach: the parser rejects duplicate
    // partition/schedule ids before lint runs (AIR070/AIR071 guard the
    // programmatic path), AIR014 is the catch-all for model verification
    // violations that have no dedicated code yet, and AIR099 only exists
    // at fuzz-farm runtime — it marks an abstraction/replay divergence,
    // which by construction no committed config may exhibit.
    let exempt: BTreeSet<&str> = ["AIR014", "AIR070", "AIR071", "AIR099"].into();
    let mut covered = BTreeSet::new();
    for entry in std::fs::read_dir(corpus_dir()).expect("corpus directory exists") {
        let path = entry.expect("readable entry").path();
        if path.extension().is_some_and(|ext| ext == "expected") {
            let golden = std::fs::read_to_string(&path).expect("readable golden");
            for code in Code::ALL {
                if golden.contains(&format!("\"{code}\"")) {
                    covered.insert(code.as_str());
                }
            }
        }
    }
    let missing: Vec<&str> = Code::ALL
        .iter()
        .map(|c| c.as_str())
        .filter(|c| !covered.contains(c) && !exempt.contains(c))
        .collect();
    assert!(
        missing.is_empty(),
        "codes with no golden corpus case: {missing:?}"
    );
}

#[test]
fn example_configs_lint_clean() {
    let examples = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples");
    let mut found = 0;
    for entry in std::fs::read_dir(examples).expect("examples directory exists") {
        let path = entry.expect("readable entry").path();
        if path.extension().is_some_and(|ext| ext == "air") {
            let text = std::fs::read_to_string(&path).expect("readable example");
            let report = lint_config_text(&text);
            assert!(!report.has_errors(), "{}:\n{report}", path.display());
            found += 1;
        }
    }
    assert!(found >= 2, "expected at least 2 .air examples, found {found}");
}

#[test]
fn example_fig8_matches_the_generator() {
    // `examples/fig8.air` is the emitted form of the Sect. 6 prototype;
    // regenerate with `cargo run -p air-tools --bin airtool -- fig8`
    // whenever the prototype tables change.
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples/fig8.air");
    let on_disk = std::fs::read_to_string(path).expect("examples/fig8.air exists");
    assert_eq!(
        on_disk,
        air_tools::config::fig8_config_text(),
        "examples/fig8.air drifted from fig8_config_text()"
    );
}

#[test]
fn every_error_case_has_errors() {
    // Corpus convention: `clean_*` cases lint without errors, `warn_*`
    // cases have no errors but at least one finding, and everything else
    // must produce at least one Error-level diagnostic.
    for case in corpus_cases() {
        let text = std::fs::read_to_string(&case).expect("readable corpus case");
        let report = report_for(&text);
        let name = case.file_stem().unwrap().to_string_lossy().into_owned();
        if name.starts_with("clean_") {
            assert!(!report.has_errors(), "{name} should be clean:\n{report}");
        } else if name.starts_with("warn_") {
            assert!(!report.has_errors(), "{name} should have no errors:\n{report}");
            assert!(!report.is_empty(), "{name} should have findings");
        } else {
            assert!(report.has_errors(), "{name} should report errors:\n{report}");
        }
    }
}
