//! Golden corpus for `air-lint`: every `.air` file under
//! `tests/lint_corpus/` is linted and its line-oriented JSON report is
//! compared byte-for-byte against the sibling `.expected` file, so the
//! exact diagnostic codes (and their lines) are pinned down.
//!
//! To regenerate a golden after an intentional change:
//! `cargo run -p air-lint --bin airlint -- --json tests/lint_corpus/<case>.air`
//! and review the diff by hand before committing it.

use std::path::{Path, PathBuf};

use air_lint::lint_config_text;

fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/lint_corpus")
}

fn corpus_cases() -> Vec<PathBuf> {
    let mut cases: Vec<PathBuf> = std::fs::read_dir(corpus_dir())
        .expect("corpus directory exists")
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "air"))
        .collect();
    cases.sort();
    cases
}

#[test]
fn corpus_is_not_empty() {
    assert!(
        corpus_cases().len() >= 15,
        "expected at least 15 corpus cases, found {}",
        corpus_cases().len()
    );
}

#[test]
fn corpus_reports_match_goldens() {
    let mut failures = Vec::new();
    for case in corpus_cases() {
        let text = std::fs::read_to_string(&case).expect("readable corpus case");
        let golden_path = case.with_extension("expected");
        let golden = std::fs::read_to_string(&golden_path).unwrap_or_else(|_| {
            panic!("missing golden file {}", golden_path.display())
        });
        let actual = lint_config_text(&text).to_json_lines();
        if actual != golden {
            failures.push(format!(
                "== {} ==\n--- expected\n{golden}--- actual\n{actual}",
                case.display()
            ));
        }
    }
    assert!(failures.is_empty(), "\n{}", failures.join("\n"));
}

#[test]
fn example_configs_lint_clean() {
    let examples = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples");
    let mut found = 0;
    for entry in std::fs::read_dir(examples).expect("examples directory exists") {
        let path = entry.expect("readable entry").path();
        if path.extension().is_some_and(|ext| ext == "air") {
            let text = std::fs::read_to_string(&path).expect("readable example");
            let report = lint_config_text(&text);
            assert!(!report.has_errors(), "{}:\n{report}", path.display());
            found += 1;
        }
    }
    assert!(found >= 2, "expected at least 2 .air examples, found {found}");
}

#[test]
fn example_fig8_matches_the_generator() {
    // `examples/fig8.air` is the emitted form of the Sect. 6 prototype;
    // regenerate with `cargo run -p air-tools --bin airtool -- fig8`
    // whenever the prototype tables change.
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples/fig8.air");
    let on_disk = std::fs::read_to_string(path).expect("examples/fig8.air exists");
    assert_eq!(
        on_disk,
        air_tools::config::fig8_config_text(),
        "examples/fig8.air drifted from fig8_config_text()"
    );
}

#[test]
fn every_error_case_has_errors() {
    // Corpus convention: `clean_*` cases lint without errors, `warn_*`
    // cases have no errors but at least one finding, and everything else
    // must produce at least one Error-level diagnostic.
    for case in corpus_cases() {
        let text = std::fs::read_to_string(&case).expect("readable corpus case");
        let report = lint_config_text(&text);
        let name = case.file_stem().unwrap().to_string_lossy().into_owned();
        if name.starts_with("clean_") {
            assert!(!report.has_errors(), "{name} should be clean:\n{report}");
        } else if name.starts_with("warn_") {
            assert!(!report.has_errors(), "{name} should have no errors:\n{report}");
            assert!(!report.is_empty(), "{name} should have findings");
        } else {
            assert!(report.has_errors(), "{name} should report errors:\n{report}");
        }
    }
}
