//! Cross-validation property: the explorer's abstraction is sound for the
//! real system — no concrete trace visits an abstract state the explorer
//! calls unreachable.
//!
//! For 50 seeds, a two-schedule system is synthesized (every partition
//! windowed in both schedules, random change actions — including `Stop` —
//! on the alternate schedule), the matching abstract
//! [`TransitionSystem`] is built over the same tables — with the full
//! event alphabet enabled: schedule requests and request races, partition,
//! module and process-deadline faults, link failover/recovery into a
//! degraded schedule, ARQ exhaustion/resync and per-edge mesh link
//! toggles — and a random sequence of abstractly-enabled events is driven
//! through the *real* tick loop via the replay hooks. After each event the
//! concrete system is projected back into the abstract state space and
//! must land inside the set of states the explorer reaches within that
//! many events.

use std::collections::BTreeSet;

use air_core::replay::{apply_event, observe_abstract_state};
use air_core::{PartitionConfig, SystemBuilder};
use air_model::explore::{AbstractState, ExploreOptions, TransitionSystem};
use air_model::schedule::PartitionRequirement;
use air_model::testkit::TestRng;
use air_model::{Partition, PartitionId, ScheduleChangeAction, ScheduleId, ScheduleSet, Ticks};
use air_tools::synthesize_schedule;

const SEEDS: u64 = 50;
const MAX_EVENTS: usize = 4;

/// Two synthesized schedules over 2–3 partitions, every partition windowed
/// in both (durations 10–30 per 100-tick cycle, so earliest-fit always
/// succeeds), with random change actions on the alternate schedule for the
/// non-authority partitions. P0 holds schedule authority.
fn synthesize_system(rng: &mut TestRng) -> (ScheduleSet, Vec<Partition>) {
    let n = 2 + u32::try_from(rng.below(2)).unwrap_or(0);
    let mut schedules = Vec::new();
    for sid in 0..2u32 {
        let reqs: Vec<PartitionRequirement> = (0..n)
            .map(|m| {
                PartitionRequirement::new(PartitionId(m), Ticks(100), Ticks(rng.range(10, 30)))
            })
            .collect();
        let mut schedule = synthesize_schedule(ScheduleId(sid), &reqs).expect("capacity fits");
        if sid == 1 {
            for m in 1..n {
                let action = match rng.below(4) {
                    0 => ScheduleChangeAction::WarmRestart,
                    1 => ScheduleChangeAction::ColdRestart,
                    2 => ScheduleChangeAction::Stop,
                    _ => ScheduleChangeAction::None,
                };
                schedule = schedule.with_change_action(PartitionId(m), action);
            }
        }
        schedules.push(schedule);
    }
    let partitions: Vec<Partition> = (0..n)
        .map(|m| {
            let p = Partition::new(PartitionId(m), format!("p{m}"));
            if m == 0 {
                p.with_schedule_authority()
            } else {
                p
            }
        })
        .collect();
    (ScheduleSet::new(schedules), partitions)
}

/// All abstract states reachable within `depth` events.
fn reachable(ts: &TransitionSystem, depth: usize) -> BTreeSet<AbstractState> {
    let mut seen = BTreeSet::new();
    seen.insert(ts.initial_state());
    let mut frontier = vec![ts.initial_state()];
    for _ in 0..depth {
        let mut next = Vec::new();
        for state in frontier {
            for event in ts.enabled_events(&state) {
                if let Some(t) = ts.step(&state, event) {
                    if seen.insert(t.state.clone()) {
                        next.push(t.state);
                    }
                }
            }
        }
        frontier = next;
    }
    seen
}

#[test]
fn concrete_traces_never_leave_the_explored_state_space() {
    for seed in 0..SEEDS {
        let mut rng = TestRng::new(seed);
        let (schedules, partitions) = synthesize_system(&mut rng);
        let ids: Vec<PartitionId> = partitions.iter().map(Partition::id).collect();
        let ts = TransitionSystem::new(
            schedules.clone(),
            ids.clone(),
            vec![PartitionId(0)],
            ExploreOptions {
                degraded_schedule: Some(ScheduleId(1)),
                module_faults: true,
                partition_faults: true,
                deadline_faults: ids.clone(),
                arq: true,
                mesh_edges: 2,
            },
        )
        .expect("valid transition system");

        let mut builder = SystemBuilder::new(schedules).with_exploration_depth(0);
        for p in partitions {
            builder = builder.with_partition(PartitionConfig::new(p));
        }
        // The campaign drives deliberately adversarial event sequences;
        // the unchecked path keeps the run independent of lint verdicts.
        let mut system = builder.build_unchecked().expect("assembles");
        system.set_degraded_schedule(ScheduleId(1));
        system.enable_arq_tracking();
        system.configure_mesh_edges(2);

        let initial = observe_abstract_state(&system);
        assert_eq!(
            initial,
            ts.initial_state(),
            "seed {seed}: initial states disagree"
        );

        for driven in 1..=MAX_EVENTS {
            let state = observe_abstract_state(&system);
            let enabled = ts.enabled_events(&state);
            let Some(&event) = enabled.get(rng.below_usize(enabled.len().max(1))) else {
                break;
            };
            apply_event(&mut system, &event);
            let observed = observe_abstract_state(&system);
            assert!(
                reachable(&ts, driven).contains(&observed),
                "seed {seed}: after {driven} events ending in '{event}', \
                 concrete state {observed} is not in the explorer's \
                 depth-{driven} reachable set"
            );
        }
    }
}
