//! The fleet determinism property: a machine's rendered trace log is a
//! pure function of its fault plan — the worker count, the shard
//! assignment and the batch size must all be invisible.
//!
//! For 50 base seeds, a small campaign fleet is executed sequentially
//! (the reference) and then with K ∈ {1, 4, 16} workers; every
//! per-machine rendered trace log must be byte-identical to the
//! reference. A link-campaign fleet (two full nodes per machine) holds
//! the same property over a lighter seed sweep.

use air_fleet::workloads::{CampaignFleet, LinkFleet};
use air_fleet::{run_fleet, run_sequential, Capture, FleetConfig, FleetOutcome, FleetWorkload};

const WORKER_COUNTS: [usize; 3] = [1, 4, 16];

/// Asserts byte-identical per-machine logs between `got` and `reference`.
fn assert_logs_identical(seed: u64, workers: usize, got: &FleetOutcome, reference: &FleetOutcome) {
    assert_eq!(got.outcomes.len(), reference.outcomes.len());
    for (g, r) in got.outcomes.iter().zip(&reference.outcomes) {
        assert_eq!(g.index, r.index);
        let (g_log, r_log) = (
            g.trace_log.as_ref().expect("full capture"),
            r.trace_log.as_ref().expect("full capture"),
        );
        assert!(
            g_log == r_log,
            "seed {seed}, {workers} workers: machine {} diverged from the sequential run\n\
             --- sequential ---\n{r_log}\n--- fleet ---\n{g_log}",
            g.index
        );
        assert_eq!(g.digest, r.digest, "digest must follow the log bytes");
    }
}

fn holds_for<W: FleetWorkload>(workload: &W, machines: usize, seed: u64) {
    let reference = run_sequential(workload, machines, Capture::FullTrace);
    for workers in WORKER_COUNTS {
        // A deliberately odd batch size: batch boundaries must not align
        // with MTFs or horizons for the property to be meaningful.
        let config = FleetConfig::new(machines, workers)
            .with_batch_ticks(37)
            .with_capture(Capture::FullTrace);
        let fleet = run_fleet(workload, &config);
        assert_logs_identical(seed, workers, &fleet, &reference);
    }
}

#[test]
fn campaign_fleet_is_schedule_invariant_over_50_seeds() {
    for seed in 1..=50u64 {
        // 6 machines × 3 MTFs per seed keeps 50 × 4 executions tractable
        // while still crossing several batch and window boundaries.
        let fleet = CampaignFleet::new(seed, 1).with_horizon(180);
        holds_for(&fleet, 6, seed);
    }
}

#[test]
fn link_fleet_is_schedule_invariant() {
    // Link machines are two full nodes each (≈ 1500-tick horizons), so
    // the sweep is narrower; the property is the same.
    for seed in [1u64, 7, 42] {
        let fleet = LinkFleet::new(seed, 1);
        holds_for(&fleet, 4, seed);
    }
}
