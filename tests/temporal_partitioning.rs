//! Temporal-partitioning invariants, property-tested: "partitions do not
//! mutually interfere in terms of fulfilment of real-time … requirements".
//!
//! For randomly synthesised (valid) scheduling tables, the running system
//! must (i) activate exactly the partition the model oracle names at every
//! tick, (ii) execute a partition's processes only inside that partition's
//! windows, and (iii) grant every partition its configured duration in
//! every cycle — regardless of what the processes do (including never
//! yielding).

use std::sync::{Arc, Mutex};

use air_core::workload::{ProcessApi, ProcessBody};
use air_core::{PartitionConfig, ProcessConfig, SystemBuilder};
use air_model::process::{Priority, ProcessAttributes};
use air_model::schedule::PartitionRequirement;
use air_model::{Partition, PartitionId, Schedule, ScheduleId, ScheduleSet, Ticks};
use air_model::testkit::TestRng;
use air_tools::synthesize_schedule;

/// Records every tick at which it executes; never yields (a greedy process
/// trying to hog the CPU).
struct TickRecorder {
    log: Arc<Mutex<Vec<u64>>>,
}

impl ProcessBody for TickRecorder {
    fn on_tick(&mut self, api: &mut ProcessApi<'_>) {
        self.log.lock().unwrap().push(api.now.as_u64());
    }
}

/// Builds a system over `schedule` where every partition hosts one greedy
/// tick-recording process; returns the per-partition logs.
fn build_recording_system(
    schedule: Schedule,
) -> (air_core::AirSystem, Vec<Arc<Mutex<Vec<u64>>>>) {
    let partitions: Vec<PartitionId> = schedule.partitions().collect();
    let mut builder = SystemBuilder::new(ScheduleSet::new(vec![schedule]));
    let mut logs = Vec::new();
    for &m in &partitions {
        let log = Arc::new(Mutex::new(Vec::new()));
        logs.push(Arc::clone(&log));
        builder = builder.with_partition(
            PartitionConfig::new(Partition::new(m, format!("part{}", m.as_u32())))
                .with_process(ProcessConfig::new(
                    ProcessAttributes::new("greedy").with_base_priority(Priority(1)),
                    TickRecorder { log },
                )),
        );
    }
    (builder.build().expect("synthesised tables are valid"), logs)
}

#[test]
fn partitions_never_execute_outside_their_windows() {
    let mut rng = TestRng::new(0x7E3D);
    for case in 0..24 {
        let n = rng.below_usize(4) + 1;
        let reqs: Vec<PartitionRequirement> = (0..n)
            .map(|i| {
                let cycle = 60 * rng.range(1, 4);
                let d = rng.range(5, 30);
                PartitionRequirement::new(PartitionId(i as u32), Ticks(cycle), Ticks(d.min(cycle)))
            })
            .collect();
        let Ok(schedule) = synthesize_schedule(ScheduleId(0), &reqs) else {
            continue; // infeasible demand set: nothing to check
        };
        let mtf = schedule.mtf().as_u64();
        let (mut system, logs) = build_recording_system(schedule.clone());
        let horizon = 3 * mtf;
        for _ in 0..horizon {
            system.step();
            // (i) model conformance at every tick.
            let phase = Ticks(system.now().as_u64() % mtf);
            assert_eq!(
                system.active_partition(),
                schedule.partition_active_at(phase),
                "case {case}: divergence at {} (seed 0x7E3D)",
                system.now()
            );
        }
        // (ii) execution containment: every recorded execution tick falls
        // within a window of the owning partition.
        for (i, log) in logs.iter().enumerate() {
            let m = PartitionId(i as u32);
            for &t in log.lock().unwrap().iter() {
                let phase = Ticks(t % mtf);
                assert_eq!(
                    schedule.partition_active_at(phase),
                    Some(m),
                    "case {case}: partition {i} executed at {t} outside its window"
                );
            }
        }
        // (iii) guaranteed duration: over complete cycles, each partition
        // executed at least d per cycle (greedy processes never yield, so
        // execution time equals the window time granted).
        for q in schedule.requirements() {
            if q.duration.is_zero() {
                continue;
            }
            let log = logs[q.partition.as_usize()].lock().unwrap();
            let cycles = horizon / q.cycle.as_u64();
            for k in 0..cycles {
                let lo = k * q.cycle.as_u64();
                let hi = lo + q.cycle.as_u64();
                let got = log.iter().filter(|&&t| lo <= t && t < hi).count() as u64;
                assert!(
                    got >= q.duration.as_u64(),
                    "case {case}: partition {} got {} < {} in cycle {}",
                    q.partition,
                    got,
                    q.duration,
                    k
                );
            }
        }
    }
}

#[test]
fn a_greedy_partition_cannot_steal_anothers_window() {
    // Two partitions, one hog: the hog's process never yields, yet the
    // victim still receives every tick of its windows.
    let hog = PartitionId(0);
    let victim = PartitionId(1);
    let schedule = Schedule::new(
        ScheduleId(0),
        "containment",
        Ticks(100),
        vec![
            PartitionRequirement::new(hog, Ticks(100), Ticks(60)),
            PartitionRequirement::new(victim, Ticks(100), Ticks(40)),
        ],
        vec![
            air_model::TimeWindow::new(hog, Ticks(0), Ticks(60)),
            air_model::TimeWindow::new(victim, Ticks(60), Ticks(40)),
        ],
    );
    let (mut system, logs) = build_recording_system(schedule);
    system.run_for(1000);
    // Execution slots cover t = 0..=1000: ten full MTFs plus the slot at
    // t = 1000 (phase 0, the hog's window).
    let hog_ticks = logs[0].lock().unwrap().len();
    let victim_ticks = logs[1].lock().unwrap().len();
    assert_eq!(hog_ticks, 601);
    assert_eq!(victim_ticks, 400);
}

#[test]
fn idle_windows_harm_nobody() {
    // A schedule with gaps: the processor idles there, and the partition
    // keeps its exact budget.
    let p0 = PartitionId(0);
    let schedule = Schedule::new(
        ScheduleId(0),
        "gappy",
        Ticks(100),
        vec![PartitionRequirement::new(p0, Ticks(100), Ticks(30))],
        vec![air_model::TimeWindow::new(p0, Ticks(50), Ticks(30))],
    );
    let (mut system, logs) = build_recording_system(schedule);
    system.run_for(500);
    assert_eq!(logs[0].lock().unwrap().len(), 150);
    // t = 500 is phase 0: a gap — nobody is active.
    assert_eq!(system.active_partition(), None);
}

#[test]
fn two_level_scheduling_inside_a_window() {
    // Within one partition's window, the POS priority scheduler rules:
    // a higher-priority process preempts; FIFO breaks priority ties —
    // while the partition boundary stays inviolate.
    let p0 = PartitionId(0);
    let p1 = PartitionId(1);
    let schedule = Schedule::new(
        ScheduleId(0),
        "two-level",
        Ticks(100),
        vec![
            PartitionRequirement::new(p0, Ticks(100), Ticks(50)),
            PartitionRequirement::new(p1, Ticks(100), Ticks(50)),
        ],
        vec![
            air_model::TimeWindow::new(p0, Ticks(0), Ticks(50)),
            air_model::TimeWindow::new(p1, Ticks(50), Ticks(50)),
        ],
    );
    let urgent_log = Arc::new(Mutex::new(Vec::new()));
    let lazy_log = Arc::new(Mutex::new(Vec::new()));
    let other_log = Arc::new(Mutex::new(Vec::new()));
    let mut system = SystemBuilder::new(ScheduleSet::new(vec![schedule]))
        .with_partition(
            PartitionConfig::new(Partition::new(p0, "dual"))
                .with_process(ProcessConfig::new(
                    ProcessAttributes::new("lazy").with_base_priority(Priority(9)),
                    TickRecorder {
                        log: Arc::clone(&lazy_log),
                    },
                ))
                .with_process(ProcessConfig::new(
                    ProcessAttributes::new("urgent").with_base_priority(Priority(1)),
                    TickRecorder {
                        log: Arc::clone(&urgent_log),
                    },
                )),
        )
        .with_partition(
            PartitionConfig::new(Partition::new(p1, "other")).with_process(
                ProcessConfig::new(
                    ProcessAttributes::new("any").with_base_priority(Priority(1)),
                    TickRecorder {
                        log: Arc::clone(&other_log),
                    },
                ),
            ),
        )
        .build()
        .unwrap();
    system.run_for(300);
    // urgent (priority 1) monopolises p0's windows; lazy starves.
    // Slots cover t = 0..=300; t = 300 is phase 0, one extra urgent slot.
    assert_eq!(urgent_log.lock().unwrap().len(), 151);
    assert_eq!(lazy_log.lock().unwrap().len(), 0);
    assert_eq!(other_log.lock().unwrap().len(), 150);
}
