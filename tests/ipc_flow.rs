//! Interpartition communication flows through the full system: sampling
//! and queuing semantics, message timing, overflow behaviour, and the
//! location-agnosticism of the APEX services (Sect. 2.1).

use air_core::prototype::ids::{P1, P2, P3, P4};
use air_core::prototype::PrototypeHarness;
use air_hw::link::LinkEndpoint;
use air_model::prototype::MTF;
use air_model::Ticks;
use air_ports::wire::Frame;
use air_ports::{ChannelConfig, Destination, PortAddr, QueuingPortConfig};

const M: u64 = MTF.as_u64();

#[test]
fn telemetry_queue_carries_every_frame_in_order() {
    let mut proto = PrototypeHarness::build();
    proto.system.run_for(6 * M);
    let console = proto.system.console_of(P3);
    // OBDH produces one frame per 650-tick activation; TTC drains them in
    // order. 6 MTFs = 12 activations; allow pipeline latency at the tail.
    let received: Vec<&str> = console
        .lines()
        .filter(|l| l.starts_with("rx frame-"))
        .collect();
    assert!(received.len() >= 10, "{console}");
    for (i, line) in received.iter().enumerate() {
        assert_eq!(*line, format!("rx frame-{i}"), "FIFO order");
    }
}

#[test]
fn sampling_consumer_sees_fresh_attitude_every_mtf() {
    let mut proto = PrototypeHarness::build();
    proto.system.run_for(5 * M);
    let console = proto.system.console_of(P4);
    // Each MTF, the payload reads the attitude written in the same MTF —
    // age < refresh period (1300) ⇒ Valid.
    let valid = console.matches("Valid").count();
    let invalid = console.matches("Invalid").count();
    assert!(valid >= 4, "{console}");
    assert_eq!(invalid, 0, "{console}");
    // Sequence numbers advance.
    assert!(console.contains("read seq=0"));
    assert!(console.contains("read seq=3"));
}

#[test]
fn staleness_is_reported_when_the_producer_dies() {
    // Stop the AOCS control process: the payload keeps reading the last
    // attitude message, which goes Invalid once older than the refresh
    // period.
    let mut proto = PrototypeHarness::build();
    proto.system.run_for(2 * M);
    let control = proto.system.partition(P1).process_id("aocs-control").unwrap();
    proto.system.partition_mut(P1).stop(control).unwrap();
    proto.system.run_for(3 * M);
    let console = proto.system.console_of(P4);
    assert!(console.contains("Invalid"), "{console}");
}

#[test]
fn queue_overflow_is_contained_and_counted() {
    // Stop the TTC consumer: OBDH keeps producing into the 8-deep channel
    // until the destination fills; overflows are counted, nothing crashes,
    // and no deadlines are missed anywhere.
    let mut proto = PrototypeHarness::build();
    proto.system.run_for(M);
    let downlink = proto.system.partition(P3).process_id("ttc-downlink").unwrap();
    proto.system.partition_mut(P3).stop(downlink).unwrap();
    proto.system.run_for(10 * M);
    let dropped = proto.system.ipc_mut().registry().dropped_deliveries();
    assert!(dropped > 0, "destination queue must have overflowed");
    assert_eq!(proto.system.trace().deadline_miss_count(), 0);
}

#[test]
fn messages_carry_source_timestamps_end_to_end() {
    let mut proto = PrototypeHarness::build();
    proto.system.run_for(2 * M);
    // Read the attitude sampling port directly: its written_at must be the
    // AOCS write instant (inside P1's window of some MTF), not the routing
    // or read instant.
    let (msg, _) = proto
        .system
        .ipc_mut()
        .registry_mut()
        .sampling_port_mut(P4, "att-in")
        .unwrap()
        .read(Ticks(2 * M))
        .unwrap();
    let phase = msg.written_at.as_u64() % M;
    assert!(phase < 200, "written inside P1's window, got phase {phase}");
}

#[test]
fn remote_channel_frames_leave_on_the_link() {
    // Add a remote destination channel to a fresh prototype-like system:
    // frames appear on the machine link, with valid wire encoding.
    let mut proto = PrototypeHarness::build();
    {
        let reg = proto.system.ipc_mut().registry_mut();
        reg.create_queuing_port(P2, QueuingPortConfig::source("gs-tx", 64, 8))
            .unwrap();
        reg.add_channel(ChannelConfig {
            id: 77,
            source: PortAddr::new(P2, "gs-tx"),
            destinations: vec![Destination::Remote {
                addr: PortAddr::new(P2, "gs-rx"),
            }],
        })
        .unwrap();
        reg.queuing_port_mut(P2, "gs-tx")
            .unwrap()
            .send(&b"ground frame"[..], Ticks(0))
            .unwrap();
    }
    // Run past the next partition boundary so the PMK routes.
    proto.system.run_for(250);
    let now = proto.system.now().as_u64();
    let bytes = proto
        .system
        .machine_mut()
        .link
        .receive(LinkEndpoint::B, now + 100)
        .expect("a frame must have been transmitted");
    let frame = Frame::decode(&bytes).expect("well-formed wire frame");
    assert_eq!(frame.channel, 77);
    assert_eq!(&frame.payload[..], b"ground frame");
}

#[test]
fn incoming_link_frames_are_delivered_into_local_ports() {
    let mut proto = PrototypeHarness::build();
    // Wire a channel whose local destination is P3's existing queue... use
    // a dedicated inbound channel instead.
    {
        let reg = proto.system.ipc_mut().registry_mut();
        reg.create_queuing_port(P2, QueuingPortConfig::source("unused-src", 64, 1))
            .unwrap();
        reg.create_queuing_port(P4, QueuingPortConfig::destination("gs-in", 64, 8))
            .unwrap();
        reg.add_channel(ChannelConfig {
            id: 88,
            source: PortAddr::new(P2, "unused-src"),
            destinations: vec![Destination::Local(PortAddr::new(P4, "gs-in"))],
        })
        .unwrap();
    }
    // A remote peer sends a frame for channel 88.
    let frame = Frame::new(88, Ticks(5), &b"uplink command"[..]);
    proto
        .system
        .machine_mut()
        .link
        .send(LinkEndpoint::B, 0, frame.encode());
    proto.system.run_for(300); // the Link interrupt fires and delivers
    let msg = proto
        .system
        .ipc_mut()
        .registry_mut()
        .queuing_port_mut(P4, "gs-in")
        .unwrap()
        .receive()
        .unwrap();
    assert_eq!(&msg.payload[..], b"uplink command");
    assert_eq!(msg.written_at, Ticks(5), "source timestamp preserved");
    assert_eq!(proto.system.ipc_mut().frames_received(), 1);
}

#[test]
fn corrupt_link_frame_is_rejected_and_reported() {
    let mut proto = PrototypeHarness::build();
    let mut bytes = Frame::new(1, Ticks(0), &b"zap"[..]).encode();
    let last = bytes.len() - 1;
    bytes[last] ^= 0xff;
    proto
        .system
        .machine_mut()
        .link
        .send(LinkEndpoint::B, 0, bytes);
    proto.system.run_for(10);
    assert_eq!(proto.system.ipc_mut().frames_rejected(), 1);
    assert_eq!(
        proto
            .system
            .hm()
            .log()
            .entries_for(air_hm::ErrorId::HardwareFault)
            .count(),
        1
    );
}
