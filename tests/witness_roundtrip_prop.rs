//! Witness serialisation property: `Witness::parse(w.render()) == w` for
//! random event sequences over the explorer's *full* alphabet, plus a
//! malformed-input case for every parse arm.
//!
//! The witness text format is a contract: `airlint --explore` prints it,
//! the replay harness and the fuzz farm parse it back. A silent mismatch
//! between the two directions would corrupt counterexamples en route to
//! concrete replay, so the round trip is pinned property-style over seeded
//! random sequences rather than a handful of fixed strings.

use air_model::explore::{AbstractEvent, Witness};
use air_model::testkit::TestRng;
use air_model::{PartitionId, ScheduleId};

const SEEDS: u64 = 200;
const MAX_EVENTS: usize = 12;

/// One random event drawn uniformly from the full alphabet.
fn random_event(rng: &mut TestRng) -> AbstractEvent {
    let partition = PartitionId(u32::try_from(rng.below(4)).unwrap_or(0));
    let schedule = ScheduleId(u32::try_from(rng.below(4)).unwrap_or(0));
    let other = ScheduleId(u32::try_from(rng.below(4)).unwrap_or(0));
    let edge = rng.below(16) as u8;
    match rng.below(11) {
        0 => AbstractEvent::ScheduleRequest {
            by: partition,
            to: schedule,
        },
        1 => AbstractEvent::RaceRequest {
            by: partition,
            first: schedule,
            second: other,
        },
        2 => AbstractEvent::PartitionFault { partition },
        3 => AbstractEvent::DeadlineFault { partition },
        4 => AbstractEvent::ModuleFault,
        5 => AbstractEvent::LinkDown,
        6 => AbstractEvent::LinkUp,
        7 => AbstractEvent::ArqExhausted,
        8 => AbstractEvent::ArqRecovered,
        9 => AbstractEvent::MeshLinkDown { edge },
        _ => AbstractEvent::MeshLinkUp { edge },
    }
}

#[test]
fn random_witnesses_round_trip_through_text() {
    for seed in 0..SEEDS {
        let mut rng = TestRng::new(seed);
        let events: Vec<AbstractEvent> = (0..rng.below_usize(MAX_EVENTS + 1))
            .map(|_| random_event(&mut rng))
            .collect();
        let witness = Witness { events };
        let rendered = witness.render();
        let reparsed = Witness::parse(&rendered).unwrap_or_else(|e| {
            panic!("seed {seed}: '{rendered}' failed to parse back: {e}")
        });
        assert_eq!(
            reparsed, witness,
            "seed {seed}: round trip changed the witness ('{rendered}')"
        );
    }
}

#[test]
fn empty_witness_round_trips() {
    let witness = Witness { events: vec![] };
    let rendered = witness.render();
    assert_eq!(Witness::parse(&rendered), Ok(witness));
}

#[test]
fn malformed_inputs_are_rejected_per_arm() {
    // One (or more) broken spelling per parse arm of the event grammar.
    let malformed = [
        // request: missing arrow, bad partition, bad schedule
        "request(P0)",
        "request(chi0->chi1)",
        "request(P0->P1)",
        "request(->chi1)",
        // race: single target, wrong separator, missing source
        "race(P0->chi1)",
        "race(P0:chi1,chi2)",
        "race(->chi1,chi2)",
        "race(P0->chi1,)",
        "race(P0->,chi2)",
        // partition fault: empty, schedule instead of partition
        "fault()",
        "fault(chi0)",
        // deadline fault: empty, schedule instead of partition
        "deadline()",
        "deadline(chi0)",
        // mesh edges: empty, non-numeric, negative, trailing junk
        "mesh_down()",
        "mesh_down(x)",
        "mesh_down(-1)",
        "mesh_up()",
        "mesh_up(edge)",
        // bare keywords with stray arguments
        "module_fault(P0)",
        "link_down(1)",
        "arq_exhausted(now)",
        // entirely unknown event
        "schedule_jump(P0)",
    ];
    for text in malformed {
        assert!(
            Witness::parse(text).is_err(),
            "'{text}' should be rejected"
        );
    }
}

#[test]
fn whitespace_between_events_is_tolerated() {
    let witness = Witness::parse("link_down;  arq_exhausted ; mesh_down(3)")
        .expect("parses");
    assert_eq!(
        witness.render(),
        "link_down; arq_exhausted; mesh_down(3)"
    );
}
