//! Experiment E3 (Sect. 6): the injectable faulty process on P1 and the
//! exact detection pattern — "detected and reported every time (except the
//! first) that P1 is scheduled and dispatched to execute".

use air_core::prototype::ids::{P1, P4};
use air_core::prototype::PrototypeHarness;
use air_core::TraceEvent;
use air_hm::ErrorId;
use air_model::prototype::MTF;

const M: u64 = MTF.as_u64();

#[test]
fn no_fault_no_misses_over_twenty_mtfs() {
    let mut proto = PrototypeHarness::build();
    proto.system.run_for(20 * M);
    assert_eq!(proto.system.trace().deadline_miss_count(), 0);
    assert_eq!(proto.system.hm().log().len(), 0);
}

#[test]
fn detection_happens_each_p1_dispatch_except_the_first() {
    let mut proto = PrototypeHarness::build();
    proto.system.run_for(M); // one clean MTF
    proto.fault.activate();

    // The next activation of the faulty process releases at the start of
    // the next MTF (t = M) and overruns; its deadline (release + 650)
    // expires while P1 is inactive. P1's dispatches happen at k·M.
    proto.system.run_for(10 * M);
    let misses: Vec<u64> = proto
        .system
        .trace()
        .deadline_misses()
        .iter()
        .map(|e| e.at().as_u64())
        .collect();

    // First dispatch after activation (t = M): no pending miss.
    // Every subsequent dispatch (t = 2M .. 11M): exactly one detection.
    let expected: Vec<u64> = (2..=11).map(|k| k * M).collect();
    assert_eq!(misses, expected);
}

#[test]
fn detection_attributes_and_latency() {
    let mut proto = PrototypeHarness::build();
    proto.fault.activate();
    proto.system.run_for(4 * M);

    for event in proto.system.trace().deadline_misses() {
        let TraceEvent::DeadlineMiss {
            at,
            process,
            deadline,
        } = event
        else {
            unreachable!("filtered");
        };
        // Attribution: always the faulty process of P1.
        assert_eq!(process.partition, P1);
        let faulty = proto.system.partition(P1).process_id("aocs-faulty").unwrap();
        assert_eq!(process.process, faulty);
        // Detection is optimal under partition inactivity: it happens at
        // P1's first dispatch after the deadline passed, i.e. the next
        // multiple of the MTF after `deadline`.
        let expected_detection = (deadline.as_u64() / M + 1) * M;
        assert_eq!(at.as_u64(), expected_detection);
    }
}

#[test]
fn hm_log_and_error_handler_cooperate() {
    let mut proto = PrototypeHarness::build();
    proto.fault.activate();
    proto.system.run_for(5 * M);

    // Every detection went through health monitoring…
    let hm_entries = proto
        .system
        .hm()
        .log()
        .entries_for(ErrorId::DeadlineMissed)
        .count();
    assert_eq!(hm_entries as u64, proto.system.trace().deadline_miss_count());
    // …and the P1 error handler's RestartProcess re-armed the process each
    // time: the faulty process is never left dormant.
    let faulty = proto.system.partition(P1).process_id("aocs-faulty").unwrap();
    let (status, _) = proto.system.partition(P1).process_status(faulty).unwrap();
    assert_ne!(status.state, air_model::ProcessState::Dormant);
}

#[test]
fn fault_recovery_returns_to_quiet() {
    let mut proto = PrototypeHarness::build();
    proto.fault.activate();
    proto.system.run_for(4 * M);
    proto.fault.deactivate();
    // One more detection may be pending (the last overrun's deadline was
    // already armed); after it, the restarted process completes normally
    // and misses stop.
    proto.system.run_for(2 * M);
    let count_after_recovery = proto.system.trace().deadline_miss_count();
    proto.system.run_for(6 * M);
    assert_eq!(
        proto.system.trace().deadline_miss_count(),
        count_after_recovery,
        "no further misses once the fault is cleared"
    );
}

#[test]
fn other_partitions_are_unaffected_by_p1_fault() {
    // Fault containment: the P1 malfunction never touches P2–P4 timing or
    // data flows.
    let mut proto = PrototypeHarness::build();
    proto.fault.activate();
    proto.system.run_for(6 * M);
    for e in proto.system.trace().deadline_misses() {
        let TraceEvent::DeadlineMiss { process, .. } = e else {
            unreachable!()
        };
        assert_eq!(process.partition, P1, "misses contained to P1");
    }
    // P4 still consumes valid attitude data produced by P1's (healthy)
    // control process.
    assert!(proto.system.console_of(P4).contains("Valid"));
}
