//! Scratch reuse across campaign seeds must pay off at the allocator: a
//! warm [`CampaignScratch`] already owns the repeat probe's record table,
//! detection FIFO and rendered trace log, so a second campaign on the
//! same scratch performs strictly fewer allocations than the first. The
//! counting global allocator (the PR 1 pattern) proves it — campaigns
//! are deterministic, so allocation counts are too, and a strict
//! inequality is a stable assertion.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use air_core::campaign::{standard_plan, CampaignRunner, CampaignScratch};

/// Counts every allocation (alloc + realloc) while delegating to the
/// system allocator.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations_of(f: impl FnOnce()) -> u64 {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    f();
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

#[test]
fn warm_scratch_allocates_strictly_less_than_cold() {
    let runner = CampaignRunner::new(standard_plan(7, 1));
    let mut scratch = CampaignScratch::default();

    let mut outcomes = Vec::new();
    let cold = allocations_of(|| outcomes.push(runner.run_with_scratch(&mut scratch)));
    let warm = allocations_of(|| outcomes.push(runner.run_with_scratch(&mut scratch)));

    // Identical campaign both times — the runs only differ in scratch
    // temperature.
    assert!(outcomes[0].is_ok(), "{}", outcomes[0].report);
    assert_eq!(outcomes[0].detected(), outcomes[1].detected());
    assert_eq!(
        outcomes[0].report.violations().len(),
        outcomes[1].report.violations().len()
    );

    assert!(
        warm < cold,
        "recycled scratch must save allocations: cold run {cold}, warm run {warm}"
    );
}

#[test]
fn scratch_and_plain_run_agree() {
    let runner = CampaignRunner::new(standard_plan(11, 1));
    let plain = runner.run();
    let scratched = runner.run_with_scratch(&mut CampaignScratch::default());
    assert_eq!(plain.detected(), scratched.detected());
    assert_eq!(plain.deterministic, scratched.deterministic);
    assert_eq!(
        plain.report.violations().len(),
        scratched.report.violations().len()
    );
}
