//! The sharded fleet executor.
//!
//! A *fleet* is N independent emulated AIR systems advanced over their
//! horizons. The executor splits the fleet into contiguous shards, one
//! per worker thread, and runs batched tick delivery: every worker
//! advances each machine of its shard up to [`FleetConfig::batch_ticks`]
//! ticks, then all workers meet at a barrier before the next round. The
//! barrier cadence is the only cross-shard coupling — machines never
//! share state (see [`FleetWorkload`]'s contract), so a fleet's
//! per-machine trace logs are byte-identical whether it ran on 1 worker
//! or 16, batched by 1 tick or 10 000.
//!
//! Worker 0 is the calling thread: the executor spawns `workers - 1`
//! scoped threads and participates itself, which also gives it
//! barrier-aligned timestamps for the build and tick phases without any
//! cross-thread clock plumbing.

use std::ops::Range;
use std::sync::Barrier;
use std::thread;
use std::time::{Duration, Instant};

use crate::trace_digest;

/// A family of independent simulation instances the fleet executor can
/// shard across worker threads.
///
/// # Determinism contract
///
/// * `build(i)` must be a pure function of `i` (and the workload's own
///   configuration): building machine `i` on any thread, in any order,
///   yields the same initial state.
/// * Instances must be fully self-contained — `tick` on one instance
///   must not observe or mutate any other instance, directly or through
///   shared/global state. This is what makes the shard assignment and
///   batch size invisible in the rendered traces.
/// * `tick(inst, n)` advances exactly `min(n, remaining)` ticks; calling
///   it as `tick(inst, a); tick(inst, b)` must leave the same state as
///   `tick(inst, a + b)`.
pub trait FleetWorkload: Sync {
    /// One machine of the fleet, owned by exactly one worker at a time.
    type Instance: Send;

    /// Constructs machine `index` in its initial state.
    fn build(&self, index: usize) -> Self::Instance;

    /// Total ticks machine `index` will execute.
    fn horizon(&self, index: usize) -> u64;

    /// Advances `instance` by up to `ticks` ticks.
    fn tick(&self, instance: &mut Self::Instance, ticks: u64);

    /// Appends `instance`'s canonical rendered trace log to `out`.
    fn render_trace(&self, instance: &Self::Instance, out: &mut String);
}

/// What the executor keeps of each machine's trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Capture {
    /// Only the FNV-1a digest of the rendered log — a thousand-machine
    /// fleet then costs one transient render buffer per worker instead of
    /// a thousand resident logs. Digest equality is the determinism
    /// check's currency.
    Digest,
    /// The full rendered log (plus its digest), for byte-level
    /// comparisons in tests.
    FullTrace,
}

/// Fleet shape: how many machines, across how many workers, at what
/// batch cadence.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of machines in the fleet.
    pub machines: usize,
    /// Worker threads (clamped to `1..=machines`).
    pub workers: usize,
    /// Ticks each worker advances a machine between barriers (≥ 1).
    pub batch_ticks: u64,
    /// Trace retention policy.
    pub capture: Capture,
}

impl FleetConfig {
    /// A fleet of `machines` machines on `workers` workers with a
    /// 64-tick batch, keeping digests only.
    pub fn new(machines: usize, workers: usize) -> Self {
        Self {
            machines,
            workers,
            batch_ticks: 64,
            capture: Capture::Digest,
        }
    }

    /// Overrides the batch size.
    #[must_use]
    pub fn with_batch_ticks(mut self, batch_ticks: u64) -> Self {
        self.batch_ticks = batch_ticks;
        self
    }

    /// Overrides the capture policy.
    #[must_use]
    pub fn with_capture(mut self, capture: Capture) -> Self {
        self.capture = capture;
        self
    }
}

/// One machine's result: identity, work done, and its trace (or just the
/// trace's digest).
#[derive(Debug, Clone)]
pub struct MachineOutcome {
    /// The machine's fleet index.
    pub index: usize,
    /// Ticks executed (the machine's horizon).
    pub ticks: u64,
    /// FNV-1a digest of the rendered trace log.
    pub digest: u64,
    /// The rendered trace log under [`Capture::FullTrace`].
    pub trace_log: Option<String>,
}

/// The whole fleet's result plus executor telemetry.
#[derive(Debug)]
pub struct FleetOutcome {
    /// Per-machine outcomes, in fleet-index order.
    pub outcomes: Vec<MachineOutcome>,
    /// Workers actually used (after clamping).
    pub workers: usize,
    /// Barrier rounds executed.
    pub rounds: u64,
    /// Wall-clock time of the build phase (all shards).
    pub build_elapsed: Duration,
    /// Wall-clock time of the tick phase (all shards, all rounds).
    pub tick_elapsed: Duration,
}

impl FleetOutcome {
    /// Total ticks executed across the fleet.
    pub fn total_ticks(&self) -> u64 {
        self.outcomes.iter().map(|o| o.ticks).sum()
    }

    /// Aggregate throughput: systems × ticks per second of tick-phase
    /// wall clock.
    pub fn systems_ticks_per_sec(&self) -> f64 {
        let secs = self.tick_elapsed.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        #[allow(clippy::cast_precision_loss)] // throughput reporting only
        {
            self.total_ticks() as f64 / secs
        }
    }

    /// A single digest over the whole fleet: FNV-1a folded over the
    /// per-machine digests in index order. Two runs of the same fleet
    /// agree on this iff every machine's trace agreed.
    pub fn fleet_digest(&self) -> u64 {
        let mut bytes = Vec::with_capacity(self.outcomes.len() * 8);
        for o in &self.outcomes {
            bytes.extend_from_slice(&o.digest.to_le_bytes());
        }
        trace_digest(&bytes)
    }
}

/// The contiguous shard ranges for `machines` over `workers` (first
/// `machines % workers` shards take one extra machine).
fn shard_ranges(machines: usize, workers: usize) -> Vec<Range<usize>> {
    let base = machines / workers;
    let extra = machines % workers;
    let mut ranges = Vec::with_capacity(workers);
    let mut start = 0;
    for w in 0..workers {
        let len = base + usize::from(w < extra);
        ranges.push(start..start + len);
        start += len;
    }
    ranges
}

/// One worker's machine: index, live instance, ticks still to run.
struct ShardSlot<I> {
    index: usize,
    instance: I,
    remaining: u64,
    horizon: u64,
}

fn build_shard<W: FleetWorkload>(workload: &W, range: Range<usize>) -> Vec<ShardSlot<W::Instance>> {
    range
        .map(|index| {
            let horizon = workload.horizon(index);
            ShardSlot {
                index,
                instance: workload.build(index),
                remaining: horizon,
                horizon,
            }
        })
        .collect()
}

fn tick_shard<W: FleetWorkload>(workload: &W, shard: &mut [ShardSlot<W::Instance>], batch: u64) {
    for slot in shard.iter_mut() {
        let n = batch.min(slot.remaining);
        if n > 0 {
            workload.tick(&mut slot.instance, n);
            slot.remaining -= n;
        }
    }
}

fn finalize_shard<W: FleetWorkload>(
    workload: &W,
    shard: Vec<ShardSlot<W::Instance>>,
    capture: Capture,
) -> Vec<MachineOutcome> {
    let mut render = String::new();
    shard
        .into_iter()
        .map(|slot| {
            render.clear();
            workload.render_trace(&slot.instance, &mut render);
            MachineOutcome {
                index: slot.index,
                ticks: slot.horizon,
                digest: trace_digest(render.as_bytes()),
                trace_log: (capture == Capture::FullTrace).then(|| render.clone()),
            }
        })
        .collect()
}

/// Runs `workload` as a sharded fleet per `config` and gathers every
/// machine's outcome (fleet-index order).
///
/// # Examples
///
/// ```
/// use air_fleet::{run_fleet, run_sequential, Capture, FleetConfig};
/// use air_fleet::workloads::CampaignFleet;
///
/// let fleet = CampaignFleet::new(42, 1).with_horizon(120);
/// let parallel = run_fleet(&fleet, &FleetConfig::new(8, 4));
/// let sequential = run_sequential(&fleet, 8, Capture::Digest);
/// assert_eq!(parallel.fleet_digest(), sequential.fleet_digest());
/// ```
pub fn run_fleet<W: FleetWorkload>(workload: &W, config: &FleetConfig) -> FleetOutcome {
    let machines = config.machines;
    let workers = config.workers.clamp(1, machines.max(1));
    let batch = config.batch_ticks.max(1);
    let ranges = shard_ranges(machines, workers);
    let max_horizon = (0..machines).map(|i| workload.horizon(i)).max().unwrap_or(0);
    let rounds = max_horizon.div_ceil(batch);
    let capture = config.capture;

    let barrier = Barrier::new(workers);
    let mut shard_results: Vec<Vec<MachineOutcome>> = Vec::new();
    shard_results.resize_with(workers, Vec::new);
    let mut build_elapsed = Duration::ZERO;
    let mut tick_elapsed = Duration::ZERO;

    thread::scope(|s| {
        let (own, spawned) = shard_results.split_at_mut(1);
        for (slot, range) in spawned.iter_mut().zip(ranges[1..].iter().cloned()) {
            let barrier = &barrier;
            s.spawn(move || {
                let mut shard = build_shard(workload, range);
                barrier.wait();
                for _ in 0..rounds {
                    tick_shard(workload, &mut shard, batch);
                    barrier.wait();
                }
                *slot = finalize_shard(workload, shard, capture);
            });
        }
        // The calling thread is worker 0; the barriers after the build
        // phase and after each round make its timestamps fleet-wide.
        let build_start = Instant::now();
        let mut shard = build_shard(workload, ranges[0].clone());
        barrier.wait();
        build_elapsed = build_start.elapsed();
        let tick_start = Instant::now();
        for _ in 0..rounds {
            tick_shard(workload, &mut shard, batch);
            barrier.wait();
        }
        tick_elapsed = tick_start.elapsed();
        own[0] = finalize_shard(workload, shard, capture);
    });

    // Shards are contiguous ascending ranges, so concatenation in worker
    // order is fleet-index order.
    let outcomes: Vec<MachineOutcome> = shard_results.into_iter().flatten().collect();
    FleetOutcome {
        outcomes,
        workers,
        rounds,
        build_elapsed,
        tick_elapsed,
    }
}

/// The sequential baseline: one machine at a time, built and run to its
/// horizon in a plain loop — no threads, no barriers, no batching. The
/// scaling curve's denominator, and the reference the determinism
/// property compares every sharded run against.
pub fn run_sequential<W: FleetWorkload>(
    workload: &W,
    machines: usize,
    capture: Capture,
) -> FleetOutcome {
    let mut build_elapsed = Duration::ZERO;
    let mut tick_elapsed = Duration::ZERO;
    let mut render = String::new();
    let outcomes = (0..machines)
        .map(|index| {
            let build_start_i = Instant::now();
            let mut instance = workload.build(index);
            let horizon = workload.horizon(index);
            build_elapsed += build_start_i.elapsed();
            let tick_start = Instant::now();
            workload.tick(&mut instance, horizon);
            tick_elapsed += tick_start.elapsed();
            render.clear();
            workload.render_trace(&instance, &mut render);
            MachineOutcome {
                index,
                ticks: horizon,
                digest: trace_digest(render.as_bytes()),
                trace_log: (capture == Capture::FullTrace).then(|| render.clone()),
            }
        })
        .collect();
    FleetOutcome {
        outcomes,
        workers: 1,
        rounds: 1,
        build_elapsed,
        tick_elapsed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial deterministic workload: machine `i` counts `100 + i`
    /// ticks and renders its count history length.
    struct Counter;

    impl FleetWorkload for Counter {
        type Instance = (u64, u64); // (count, checksum)

        fn build(&self, index: usize) -> Self::Instance {
            (0, index as u64)
        }

        fn horizon(&self, index: usize) -> u64 {
            100 + index as u64
        }

        fn tick(&self, instance: &mut Self::Instance, ticks: u64) {
            for _ in 0..ticks {
                instance.0 += 1;
                instance.1 = instance.1.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(instance.0);
            }
        }

        fn render_trace(&self, instance: &Self::Instance, out: &mut String) {
            use std::fmt::Write;
            let _ = write!(out, "count={} sum={}", instance.0, instance.1);
        }
    }

    #[test]
    fn shard_ranges_cover_exactly() {
        for machines in [0usize, 1, 7, 16, 100] {
            for workers in [1usize, 2, 3, 16] {
                let ranges = shard_ranges(machines, workers);
                assert_eq!(ranges.len(), workers);
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next);
                    next = r.end;
                }
                assert_eq!(next, machines);
            }
        }
    }

    #[test]
    fn worker_count_and_batch_do_not_change_digests() {
        let reference = run_sequential(&Counter, 33, Capture::Digest);
        for workers in [1, 2, 5, 16] {
            for batch in [1, 7, 1000] {
                let cfg = FleetConfig::new(33, workers).with_batch_ticks(batch);
                let fleet = run_fleet(&Counter, &cfg);
                assert_eq!(fleet.outcomes.len(), 33);
                assert_eq!(
                    fleet.fleet_digest(),
                    reference.fleet_digest(),
                    "workers={workers} batch={batch}"
                );
            }
        }
    }

    #[test]
    fn outcomes_arrive_in_fleet_index_order() {
        let fleet = run_fleet(&Counter, &FleetConfig::new(10, 3));
        let indices: Vec<usize> = fleet.outcomes.iter().map(|o| o.index).collect();
        assert_eq!(indices, (0..10).collect::<Vec<_>>());
        assert_eq!(fleet.total_ticks(), (0..10).map(|i| 100 + i as u64).sum());
    }

    #[test]
    fn full_trace_capture_keeps_logs() {
        let fleet = run_fleet(
            &Counter,
            &FleetConfig::new(3, 2).with_capture(Capture::FullTrace),
        );
        for o in &fleet.outcomes {
            let log = o.trace_log.as_ref().expect("full capture keeps the log");
            assert_eq!(crate::trace_digest(log.as_bytes()), o.digest);
        }
    }
}
