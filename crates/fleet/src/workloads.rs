//! Fleet workloads over the `air-core` campaigns.
//!
//! Each machine of a fleet runs the standard fault campaign (or the
//! two-node link campaign) under its own seeded fault plan, derived from
//! the fleet's base seed by a SplitMix64 mix of the machine index — so a
//! 10 000-machine fleet is 10 000 *different* deterministic experiments,
//! not one experiment repeated.
//!
//! Constructing a workload performs exactly one *checked* system build
//! (static-analysis gate plus bounded exploration) for the fixed
//! configuration; every fleet instance is then mass-constructed through
//! the `new_unchecked` fast path, which skips re-proving the same proof
//! per machine.

use air_core::campaign::{default_horizon, standard_plan, CampaignSim};
use air_core::link_campaign::{link_plan, planned_horizon, LinkSim};
use air_core::mesh::{mesh_plan, planned_mesh_horizon, MeshPlan, MeshSim};
use air_hw::inject::FaultPlan;
use air_hw::machine::MachineConfig;
use air_ports::routing::MeshTopology;

use crate::executor::FleetWorkload;

/// Derives machine `index`'s seed from the fleet's `base` seed
/// (SplitMix64 finalizer over a golden-ratio stride): well-spread,
/// stable, and independent of worker count.
pub fn machine_seed(base: u64, index: usize) -> u64 {
    let mut z = base.wrapping_add((index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A fleet of standard fault campaigns: machine `i` runs the
/// three-partition campaign workload on the compact machine profile under
/// `standard_plan(machine_seed(base_seed, i), per_class)`.
#[derive(Debug, Clone)]
pub struct CampaignFleet {
    base_seed: u64,
    per_class: usize,
    horizon_override: Option<u64>,
    config: MachineConfig,
}

impl CampaignFleet {
    /// A campaign fleet from `base_seed` with `per_class` faults of every
    /// class per machine. Runs the one-time checked build of the fixed
    /// campaign workload on the compact profile.
    pub fn new(base_seed: u64, per_class: usize) -> Self {
        let config = MachineConfig::compact();
        // Validate once: the workload topology is identical for every
        // machine (plans differ, systems don't), so one gated build
        // proves them all.
        let _gate = CampaignSim::with_config(&standard_plan(base_seed, per_class), &config);
        Self {
            base_seed,
            per_class,
            horizon_override: None,
            config,
        }
    }

    /// Caps every machine at `horizon` ticks (the smoke fleet runs 3 MTFs
    /// instead of each plan's full default horizon).
    #[must_use]
    pub fn with_horizon(mut self, horizon: u64) -> Self {
        self.horizon_override = Some(horizon);
        self
    }

    /// Machine `index`'s fault plan.
    pub fn plan_for(&self, index: usize) -> FaultPlan {
        standard_plan(machine_seed(self.base_seed, index), self.per_class)
    }
}

impl FleetWorkload for CampaignFleet {
    type Instance = CampaignSim;

    fn build(&self, index: usize) -> CampaignSim {
        let plan = self.plan_for(index);
        let sim = CampaignSim::new_unchecked(&plan, &self.config);
        match self.horizon_override {
            Some(h) => sim.with_horizon(h),
            None => sim,
        }
    }

    fn horizon(&self, index: usize) -> u64 {
        self.horizon_override
            .unwrap_or_else(|| default_horizon(&self.plan_for(index)))
    }

    fn tick(&self, instance: &mut CampaignSim, ticks: u64) {
        instance.run_for(ticks);
    }

    fn render_trace(&self, instance: &CampaignSim, out: &mut String) {
        instance.render_trace_into(out);
    }
}

/// A fleet of link campaigns: machine `i` is a *pair* of nodes running
/// the reliable-transport workload under
/// `link_plan(machine_seed(base_seed, i), per_class)`.
#[derive(Debug, Clone)]
pub struct LinkFleet {
    base_seed: u64,
    per_class: usize,
}

impl LinkFleet {
    /// A link-campaign fleet from `base_seed` with `per_class` faults of
    /// every link class per machine. Runs the one-time checked build of
    /// both node configurations.
    pub fn new(base_seed: u64, per_class: usize) -> Self {
        let _gate = LinkSim::new(&link_plan(base_seed, per_class));
        Self {
            base_seed,
            per_class,
        }
    }

    /// Machine `index`'s link-fault plan.
    pub fn plan_for(&self, index: usize) -> FaultPlan {
        link_plan(machine_seed(self.base_seed, index), self.per_class)
    }
}

impl FleetWorkload for LinkFleet {
    type Instance = LinkSim;

    fn build(&self, index: usize) -> LinkSim {
        LinkSim::new_unchecked(&self.plan_for(index))
    }

    fn horizon(&self, index: usize) -> u64 {
        planned_horizon(&self.plan_for(index))
    }

    fn tick(&self, instance: &mut LinkSim, ticks: u64) {
        instance.run_for(ticks);
    }

    fn render_trace(&self, instance: &LinkSim, out: &mut String) {
        instance.render_trace_into(out);
    }
}

/// A fleet of mesh campaigns: machine `i` is an N-node routed mesh
/// running the TM/TC workload under
/// `mesh_plan(topology, nodes, machine_seed(base_seed, i), per_class)`.
#[derive(Debug, Clone)]
pub struct MeshFleet {
    base_seed: u64,
    per_class: usize,
    topology: MeshTopology,
    nodes: usize,
}

impl MeshFleet {
    /// A mesh-campaign fleet from `base_seed` with `per_class` faults of
    /// every link class per machine, each machine a `nodes`-node
    /// `topology`. Runs the one-time reachability-gated build.
    pub fn new(base_seed: u64, per_class: usize, topology: MeshTopology, nodes: usize) -> Self {
        let _gate = MeshSim::new(&mesh_plan(topology, nodes, base_seed, per_class));
        Self {
            base_seed,
            per_class,
            topology,
            nodes,
        }
    }

    /// Machine `index`'s mesh plan.
    pub fn plan_for(&self, index: usize) -> MeshPlan {
        mesh_plan(
            self.topology,
            self.nodes,
            machine_seed(self.base_seed, index),
            self.per_class,
        )
    }
}

impl FleetWorkload for MeshFleet {
    type Instance = MeshSim;

    fn build(&self, index: usize) -> MeshSim {
        MeshSim::new_unchecked(&self.plan_for(index))
    }

    fn horizon(&self, index: usize) -> u64 {
        planned_mesh_horizon(&self.plan_for(index))
    }

    fn tick(&self, instance: &mut MeshSim, ticks: u64) {
        instance.run_for(ticks);
    }

    fn render_trace(&self, instance: &MeshSim, out: &mut String) {
        instance.render_trace_into(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn machine_seeds_are_well_spread() {
        let seeds: Vec<u64> = (0..64).map(|i| machine_seed(42, i)).collect();
        let mut unique = seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), seeds.len(), "no seed collisions in a small fleet");
        // Adjacent indices must not produce adjacent seeds.
        assert!(seeds[1].abs_diff(seeds[0]) > 1 << 32);
    }

    #[test]
    fn campaign_fleet_machines_differ() {
        let fleet = CampaignFleet::new(7, 1);
        assert_ne!(fleet.plan_for(0).events(), fleet.plan_for(1).events());
    }

    #[test]
    fn mesh_fleet_machines_differ() {
        let fleet = MeshFleet::new(7, 1, MeshTopology::Ring, 5);
        assert_ne!(
            fleet.plan_for(0).faults.events(),
            fleet.plan_for(1).faults.events()
        );
    }
}
