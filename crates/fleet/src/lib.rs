//! # air-fleet — sharded fleet execution of emulated AIR systems
//!
//! Every crate below this one reasons about *one* emulated AIR system at
//! a time. This crate turns the repo into a traffic-serving engine: a
//! *fleet* of thousands of independent emulated systems — each a full
//! machine + PMK + partitions stack under its own seeded fault plan — is
//! split into contiguous shards and advanced concurrently on
//! `std::thread` workers with batched tick delivery (each worker runs a
//! machine `batch_ticks` ticks between synchronization barriers).
//!
//! The load-bearing property is **strict per-machine determinism**: a
//! machine's rendered trace log is a pure function of its fault plan.
//! Machines own all of their state (no globals anywhere in the stack —
//! see [`air_hw::machine::MachineConfig::compact`]), so neither the
//! worker count, nor the shard assignment, nor the batch size can leak
//! into a trace. `tests/fleet_determinism_prop.rs` holds this property
//! over 50 seeds × {1, 4, 16} workers against the sequential baseline.
//!
//! ## Quickstart
//!
//! ```
//! use air_fleet::{run_fleet, FleetConfig};
//! use air_fleet::workloads::CampaignFleet;
//!
//! // 16 campaign machines, 4 workers, 3 MTFs each.
//! let fleet = CampaignFleet::new(42, 1).with_horizon(180);
//! let outcome = run_fleet(&fleet, &FleetConfig::new(16, 4));
//! assert_eq!(outcome.outcomes.len(), 16);
//! println!("{:.0} systems×ticks/sec", outcome.systems_ticks_per_sec());
//! ```

#![warn(missing_docs)]

pub mod executor;
pub mod workloads;

pub use executor::{
    run_fleet, run_sequential, Capture, FleetConfig, FleetOutcome, FleetWorkload, MachineOutcome,
};
pub use workloads::{machine_seed, CampaignFleet, LinkFleet};

/// FNV-1a over `bytes`: the fleet's trace-digest function. Stable across
/// platforms and runs — digests are comparable between a CI log and a
/// local reproduction.
pub fn trace_digest(bytes: &[u8]) -> u64 {
    const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET_BASIS;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

/// The worker count for this run: `AIR_FLEET_WORKERS` if set and valid
/// (≥ 1), else `default`. CI pins the variable so fleet runs are
/// reproducible machine to machine.
pub fn workers_from_env(default: usize) -> usize {
    std::env::var("AIR_FLEET_WORKERS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&w| w >= 1)
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_digest_matches_fnv1a_vectors() {
        // Reference vectors for 64-bit FNV-1a.
        assert_eq!(trace_digest(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(trace_digest(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(trace_digest(b"foobar"), 0x85944171f73967e8);
    }
}
