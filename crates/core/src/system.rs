//! The assembled AIR system and its tick loop.

use std::collections::HashMap;

use air_apex::{ApexPartition, ErrorHandlerTable, RecoveryEscalation};
use air_hm::{ErrorId, ErrorSource, HealthMonitor, HmDecision, ModuleRecoveryAction,
             PartitionRecoveryAction};
use air_hw::console::KeyEvent;
use air_hw::interrupt::InterruptLine;
use air_hw::Machine;
use air_model::ids::{GlobalProcessId, ProcessId};
use air_model::partition::{OperatingMode, StartCondition};
use air_model::{PartitionId, ScheduleChangeAction, ScheduleId, ScheduleSet, Ticks};
use air_hw::redundant::LinkRole;
use air_pmk::{LinkTransportEvent, PartitionDispatcher, PartitionScheduler, PmkIpc,
              SpatialManager};
use air_vitral::Vitral;

use crate::trace::{RecoveryDisposition, Trace, TraceEvent};
use crate::workload::{FaultSwitch, ProcessApi, ProcessBody};

/// Per-partition boot/restart recipe retained by the system: which
/// processes auto-start and which error handler to (re)install.
#[derive(Debug, Default, Clone)]
pub(crate) struct PartitionRuntime {
    pub(crate) auto_start: Vec<ProcessId>,
    pub(crate) error_handler: Option<ErrorHandlerTable>,
}

/// An action bound to a console key (the Fig. 9 keyboard interaction).
pub enum KeyAction {
    /// Request a module schedule switch (effective at the MTF boundary).
    SwitchSchedule(ScheduleId),
    /// Toggle a fault switch.
    ToggleFault(FaultSwitch),
}

impl std::fmt::Debug for KeyAction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KeyAction::SwitchSchedule(id) => write!(f, "SwitchSchedule({id})"),
            KeyAction::ToggleFault(s) => write!(f, "ToggleFault(active={})", s.is_active()),
        }
    }
}

/// The complete, running AIR system.
///
/// Build one with [`crate::builder::SystemBuilder`]; drive it with
/// [`step`](AirSystem::step) / [`run_for`](AirSystem::run_for); observe it
/// through [`trace`](AirSystem::trace), the health-monitor log, per-
/// partition consoles and the optional VITRAL screen.
pub struct AirSystem {
    pub(crate) machine: Machine,
    pub(crate) scheduler: PartitionScheduler,
    pub(crate) dispatcher: PartitionDispatcher,
    pub(crate) spatial: SpatialManager,
    pub(crate) ipc: PmkIpc,
    pub(crate) hm: HealthMonitor,
    pub(crate) schedules: ScheduleSet,
    pub(crate) partitions: Vec<ApexPartition>,
    pub(crate) runtime: Vec<PartitionRuntime>,
    pub(crate) bodies: HashMap<GlobalProcessId, Box<dyn ProcessBody>>,
    pub(crate) consoles: Vec<String>,
    key_actions: HashMap<char, KeyAction>,
    trace: Trace,
    vitral: Option<Vitral>,
    /// Trace events already mirrored into the VITRAL status windows.
    vitral_synced: usize,
    halted: bool,
    /// Whether the initial partition (tick-0 heir) was dispatched.
    booted: bool,
    /// Wrapped guest clock-mask attempts already reported to HM.
    wrapped_clock_seen: u64,
    /// Schedule to switch to when the reliable transport fails over to the
    /// secondary link (the Sect. 4 mode-based degraded schedule).
    pub(crate) degraded_schedule: Option<ScheduleId>,
    /// Schedule that was current when degraded mode was entered, restored
    /// on link recovery.
    pub(crate) nominal_schedule: Option<ScheduleId>,
    /// Whether the system is currently in link-degraded mode.
    degraded_mode: bool,
    /// Whether ARQ health is being tracked for abstract-state projection
    /// (set when the configuration declares an `arq` directive).
    arq_tracking: bool,
    /// Whether the ARQ retransmit budget is currently exhausted (latched
    /// from `DeliveryExhausted`, cleared by transport recovery).
    arq_exhausted: bool,
    /// Number of mesh edges tracked for abstract-state projection.
    mesh_edge_count: u8,
    /// Bitmask of mesh edges currently forced down.
    mesh_down_mask: u16,
}

impl std::fmt::Debug for AirSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AirSystem")
            .field("now", &self.machine.clock.now())
            .field("partitions", &self.partitions.len())
            .field("active", &self.dispatcher.active_partition())
            .field("halted", &self.halted)
            .finish()
    }
}

impl AirSystem {
    #[allow(clippy::too_many_arguments)] // one-time internal assembly of the Fig. 1 stack
    pub(crate) fn assemble(
        machine: Machine,
        scheduler: PartitionScheduler,
        dispatcher: PartitionDispatcher,
        spatial: SpatialManager,
        ipc: PmkIpc,
        hm: HealthMonitor,
        schedules: ScheduleSet,
        partitions: Vec<ApexPartition>,
        runtime: Vec<PartitionRuntime>,
        bodies: HashMap<GlobalProcessId, Box<dyn ProcessBody>>,
        vitral: Option<Vitral>,
    ) -> Self {
        let consoles = vec![String::new(); partitions.len()];
        Self {
            machine,
            scheduler,
            dispatcher,
            spatial,
            ipc,
            hm,
            schedules,
            partitions,
            runtime,
            bodies,
            consoles,
            key_actions: HashMap::new(),
            trace: Trace::new(),
            vitral,
            vitral_synced: 0,
            halted: false,
            booted: false,
            wrapped_clock_seen: 0,
            degraded_schedule: None,
            nominal_schedule: None,
            degraded_mode: false,
            arq_tracking: false,
            arq_exhausted: false,
            mesh_edge_count: 0,
            mesh_down_mask: 0,
        }
    }

    // -- observation --------------------------------------------------------

    /// Current time.
    pub fn now(&self) -> Ticks {
        Ticks(self.machine.clock.now())
    }

    /// The event trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Mutable trace access for in-crate harnesses (the fault-injection
    /// campaign records its injection markers here so they interleave with
    /// the system's own events in sequence order).
    pub(crate) fn trace_mut(&mut self) -> &mut Trace {
        &mut self.trace
    }

    /// The health monitor (tables, log, occurrence counters).
    pub fn hm(&self) -> &HealthMonitor {
        &self.hm
    }

    /// The partition currently holding the CPU.
    pub fn active_partition(&self) -> Option<PartitionId> {
        self.dispatcher.active_partition()
    }

    /// The APEX instance of partition `m`.
    ///
    /// # Panics
    ///
    /// Panics if `m` is not a configured partition.
    pub fn partition(&self, m: PartitionId) -> &ApexPartition {
        &self.partitions[m.as_usize()]
    }

    /// Mutable APEX access (test harnesses and demo controls).
    ///
    /// # Panics
    ///
    /// Panics if `m` is not a configured partition.
    pub fn partition_mut(&mut self, m: PartitionId) -> &mut ApexPartition {
        &mut self.partitions[m.as_usize()]
    }

    /// The module schedule status (`GET_MODULE_SCHEDULE_STATUS`).
    pub fn schedule_status(&self) -> air_pmk::ScheduleStatus {
        self.scheduler.status()
    }

    /// The spatial-partitioning manager.
    pub fn spatial_mut(&mut self) -> &mut SpatialManager {
        &mut self.spatial
    }

    /// The PMK IPC component (port registry access for harnesses).
    pub fn ipc_mut(&mut self) -> &mut PmkIpc {
        &mut self.ipc
    }

    /// The machine (console, link, fault injection against devices).
    pub fn machine_mut(&mut self) -> &mut Machine {
        &mut self.machine
    }

    /// The AIR Partition Scheduler (APEX module-schedule services take it
    /// as a parameter; see [`air_apex::set_module_schedule`]).
    pub fn scheduler_mut(&mut self) -> &mut PartitionScheduler {
        &mut self.scheduler
    }

    /// Performs a memory access on behalf of partition `m` through the
    /// spatial-partitioning MMU. On a fault, the violation is reported to
    /// health monitoring as a memory protection violation (Sect. 2.4) and
    /// the configured partition-level recovery action is applied — the
    /// full containment path of Fig. 3.
    ///
    /// # Errors
    ///
    /// The [`air_hw::mmu::MmuFault`] exactly as the MMU raised it.
    pub fn access_memory(
        &mut self,
        m: PartitionId,
        va: u64,
        kind: air_hw::mmu::AccessKind,
        privilege: air_hw::mmu::Privilege,
    ) -> Result<u64, air_hw::mmu::MmuFault> {
        let now = self.now();
        match self.spatial.translate(m, va, kind, privilege) {
            Ok(pa) => Ok(pa),
            Err(fault) => {
                let decision = self.hm.report(
                    now,
                    ErrorId::MemoryViolation,
                    ErrorSource::Partition(m),
                    fault.to_string(),
                );
                self.trace.record(TraceEvent::HmReport {
                    at: now,
                    error: ErrorId::MemoryViolation,
                    partition: Some(m),
                });
                self.apply_decision_for(ErrorId::MemoryViolation, decision, now);
                Err(fault)
            }
        }
    }

    /// Accumulated console text of partition `m` (drained by VITRAL when
    /// enabled).
    ///
    /// # Panics
    ///
    /// Panics if `m` is not a configured partition.
    pub fn console_of(&self, m: PartitionId) -> &str {
        &self.consoles[m.as_usize()]
    }

    /// Renders the VITRAL screen, if enabled.
    pub fn render_vitral(&mut self) -> Option<String> {
        self.sync_vitral();
        self.vitral.as_ref().map(Vitral::render)
    }

    /// Whether a module-level HM action halted the system.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    // -- operator interface --------------------------------------------------

    /// Operator-level schedule switch request (the keyboard path of the
    /// prototype; authority-checked requests go through
    /// [`air_apex::set_module_schedule`] from a process body instead).
    ///
    /// # Errors
    ///
    /// [`air_pmk::SchedulerError`] for an unknown schedule.
    pub fn request_schedule(
        &mut self,
        schedule: ScheduleId,
    ) -> Result<(), air_pmk::SchedulerError> {
        self.scheduler.request_schedule(schedule)
    }

    /// Configures the schedule the module switches to when the reliable
    /// transport fails over to the secondary link (Sect. 4 mode-based
    /// scheduling: the degraded mode trades functionality for the slower
    /// standby link). Link recovery switches back to the schedule that was
    /// current at failover.
    pub fn set_degraded_schedule(&mut self, schedule: ScheduleId) {
        self.degraded_schedule = Some(schedule);
    }

    /// Whether the module is currently in link-degraded mode.
    pub fn is_degraded_mode(&self) -> bool {
        self.degraded_mode
    }

    /// Turns on ARQ health tracking for abstract-state projection; the
    /// builder calls this when the configuration declares an `arq`
    /// directive.
    pub fn enable_arq_tracking(&mut self) {
        self.arq_tracking = true;
    }

    /// Whether ARQ health is tracked (the abstract `arq` dimension exists).
    pub fn arq_tracking(&self) -> bool {
        self.arq_tracking
    }

    /// Whether the ARQ retransmit budget is currently exhausted.
    pub fn arq_exhausted(&self) -> bool {
        self.arq_exhausted
    }

    /// Declares how many mesh edges this node routes over, for
    /// abstract-state projection (clamped to the explorer's edge-mask
    /// width of 16).
    pub fn configure_mesh_edges(&mut self, count: u8) {
        self.mesh_edge_count = count.min(16);
    }

    /// Number of mesh edges tracked for abstract-state projection.
    pub fn mesh_edge_count(&self) -> u8 {
        self.mesh_edge_count
    }

    /// Bitmask of mesh edges currently forced down.
    pub fn mesh_edges_down(&self) -> u16 {
        self.mesh_down_mask
    }

    // -- fault/link injection (witness replay) -------------------------------

    /// Reports a partition-scoped fault against `m` to the health monitor
    /// and enforces the resulting decision immediately — the concrete
    /// counterpart of the explorer's abstract `fault(P)` event. Under the
    /// standard tables ([`air_hm::HmTables::standard`]) a memory violation
    /// is partition-level and warm-restarts the partition.
    pub fn inject_partition_fault(&mut self, m: PartitionId) {
        let now = Ticks(self.machine.clock.now());
        let decision = self.hm.report(
            now,
            ErrorId::MemoryViolation,
            ErrorSource::Partition(m),
            "injected partition-scoped fault (witness replay)",
        );
        self.trace.record(TraceEvent::HmReport {
            at: now,
            error: ErrorId::MemoryViolation,
            partition: Some(m),
        });
        self.apply_decision_for(ErrorId::MemoryViolation, decision, now);
    }

    /// Reports a module-scoped hardware fault to the health monitor and
    /// enforces the resulting decision — the concrete counterpart of the
    /// explorer's abstract `module_fault` event. Under the standard tables
    /// the module action is Reset: every partition cold-restarts.
    pub fn inject_module_fault(&mut self) {
        let now = Ticks(self.machine.clock.now());
        let decision = self.hm.report(
            now,
            ErrorId::HardwareFault,
            ErrorSource::Module,
            "injected module-scoped fault (witness replay)",
        );
        self.trace.record(TraceEvent::HmReport {
            at: now,
            error: ErrorId::HardwareFault,
            partition: None,
        });
        self.apply_decision_for(ErrorId::HardwareFault, decision, now);
    }

    /// Forces the link-failover path as if the reliable transport had
    /// switched to the secondary adapter: reports `LinkDegraded`
    /// (report-only, like the real failover branch) and enters the
    /// configured degraded schedule — the concrete counterpart of the
    /// explorer's abstract `link_down` event. The schedule switch takes
    /// effect at the next major-time-frame boundary.
    pub fn force_link_down(&mut self) {
        let now = Ticks(self.machine.clock.now());
        self.hm.report(
            now,
            ErrorId::LinkDegraded,
            ErrorSource::Module,
            "forced link failover (witness replay)",
        );
        self.trace.record(TraceEvent::HmReport {
            at: now,
            error: ErrorId::LinkDegraded,
            partition: None,
        });
        self.enter_degraded_mode(now);
    }

    /// Forces link recovery: leaves degraded mode and restores the
    /// schedule in force at failover — the concrete counterpart of the
    /// explorer's abstract `link_up` event. No-op when not degraded.
    pub fn force_link_up(&mut self) {
        let now = Ticks(self.machine.clock.now());
        self.exit_degraded_mode(now);
    }

    /// Reports a deadline miss for partition `m`'s first process through
    /// the regular HM path — the concrete counterpart of the explorer's
    /// abstract `deadline(P)` event. Follows the same report/trace/enforce
    /// sequence as a miss detected by the partition abstraction layer.
    pub fn inject_deadline_fault(&mut self, m: PartitionId) {
        let now = Ticks(self.machine.clock.now());
        let gpid = GlobalProcessId::new(m, ProcessId(0));
        let decision = self.hm.report(
            now,
            ErrorId::DeadlineMissed,
            ErrorSource::Process(gpid),
            "injected deadline miss (witness replay)",
        );
        self.trace.record(TraceEvent::HmReport {
            at: now,
            error: ErrorId::DeadlineMissed,
            partition: Some(m),
        });
        self.apply_decision_for(ErrorId::DeadlineMissed, decision, now);
    }

    /// Latches ARQ retransmit exhaustion as if the reliable transport had
    /// reported `DeliveryExhausted` — the concrete counterpart of the
    /// explorer's abstract `arq_exhausted` event. Report-only at HM level,
    /// exactly like the real exhaustion branch.
    pub fn inject_arq_exhaustion(&mut self) {
        let now = Ticks(self.machine.clock.now());
        self.hm.report(
            now,
            ErrorId::LinkDegraded,
            ErrorSource::Module,
            "injected ARQ delivery exhaustion (witness replay)",
        );
        self.trace.record(TraceEvent::HmReport {
            at: now,
            error: ErrorId::LinkDegraded,
            partition: None,
        });
        self.arq_exhausted = true;
    }

    /// Clears the latched ARQ exhaustion as a transport resynchronisation
    /// would — the concrete counterpart of the explorer's abstract
    /// `arq_recovered` event.
    pub fn clear_arq_exhaustion(&mut self) {
        self.arq_exhausted = false;
    }

    /// Forces mesh edge `edge` down in the projection mask and surfaces it
    /// as a link-degraded HM report — the concrete counterpart of the
    /// explorer's abstract `mesh_down(e)` event. Out-of-range edges are
    /// ignored.
    pub fn force_mesh_edge_down(&mut self, edge: u8) {
        if edge >= self.mesh_edge_count {
            return;
        }
        let now = Ticks(self.machine.clock.now());
        self.hm.report(
            now,
            ErrorId::LinkDegraded,
            ErrorSource::Module,
            format!("forced mesh edge {edge} down (witness replay)"),
        );
        self.trace.record(TraceEvent::HmReport {
            at: now,
            error: ErrorId::LinkDegraded,
            partition: None,
        });
        self.mesh_down_mask |= 1 << edge;
    }

    /// Restores mesh edge `edge` — the concrete counterpart of the
    /// explorer's abstract `mesh_up(e)` event. Out-of-range edges are
    /// ignored.
    pub fn force_mesh_edge_up(&mut self, edge: u8) {
        if edge >= self.mesh_edge_count {
            return;
        }
        self.mesh_down_mask &= !(1 << edge);
    }

    /// Binds console key `key` to `action`.
    pub fn bind_key(&mut self, key: char, action: KeyAction) {
        self.key_actions.insert(key, action);
    }

    /// Injects a keyboard event (as the QEMU console would).
    pub fn push_key(&mut self, key: char) {
        self.machine.console.push_key(KeyEvent::Char(key));
    }

    // -- the tick loop --------------------------------------------------------

    /// Boots the system: dispatches the initial schedule's tick-0 heir.
    /// Called automatically by the first [`step`](AirSystem::step).
    fn boot(&mut self) {
        let heir = self.scheduler.initial_heir();
        let outcome = self.dispatcher.dispatch(heir, 0, &mut self.machine.cpu);
        self.trace.record(TraceEvent::PartitionSwitch {
            at: Ticks(0),
            from: None,
            to: heir,
        });
        if let Some(m) = heir {
            let misses = self.partitions[m.as_usize()]
                .announce_clock_ticks(outcome.elapsed_ticks, Ticks(0));
            self.handle_misses(m, &misses, Ticks(0));
        }
        // The time-0 execution slot belongs to the initial heir: windows
        // starting at the MTF origin get their full duration even in the
        // very first frame.
        self.run_active_process(Ticks(0));
        self.booted = true;
    }

    /// Advances the system by one clock tick — the paper's clock ISR:
    /// scheduler (Algorithm 1), dispatcher (Algorithm 2), PAL announcement
    /// (Algorithm 3), process scheduling (Eq. 14), application execution,
    /// and interpartition routing at partition boundaries.
    pub fn step(&mut self) {
        if self.halted {
            return;
        }
        if !self.booted {
            self.boot();
        }
        let ticks = self.machine.advance_tick();
        let now = Ticks(ticks);

        // Service the interrupt controller as the ISR dispatch layer.
        while let Some(line) = self.machine.intc.acknowledge() {
            match line {
                InterruptLine::ClockTick => self.on_clock_tick(ticks),
                InterruptLine::Link => {
                    let errors = self.ipc.receive(&mut self.machine.link, now);
                    self.drain_transport_events(now);
                    for e in errors {
                        self.hm.report(
                            now,
                            ErrorId::HardwareFault,
                            ErrorSource::Module,
                            e.to_string(),
                        );
                        self.trace.record(TraceEvent::HmReport {
                            at: now,
                            error: ErrorId::HardwareFault,
                            partition: None,
                        });
                    }
                }
                InterruptLine::ConsoleInput => self.on_console_input(),
                InterruptLine::Device(line) => {
                    // No device is configured on these lines: any interrupt
                    // here is spurious (fault injection, or a real platform
                    // glitch) and goes to health monitoring as a module-
                    // scoped hardware fault.
                    let decision = self.hm.report(
                        now,
                        ErrorId::HardwareFault,
                        ErrorSource::Module,
                        format!("spurious trap on device line {line}"),
                    );
                    self.trace.record(TraceEvent::HmReport {
                        at: now,
                        error: ErrorId::HardwareFault,
                        partition: None,
                    });
                    self.apply_decision_for(ErrorId::HardwareFault, decision, now);
                }
            }
        }

        // Paravirtualised clock protection (Sect. 2.5): guest attempts to
        // mask the clock-tick source were wrapped by the interrupt
        // controller; surface each as an HM report against the partition
        // that was running. Report-only — the wrap already *is* the
        // recovery; the log entry is the observable detection.
        let wrapped = self.machine.intc.wrapped_clock_attempts();
        while self.wrapped_clock_seen < wrapped {
            self.wrapped_clock_seen += 1;
            let source = match self.dispatcher.active_partition() {
                Some(m) => ErrorSource::Partition(m),
                None => ErrorSource::Module,
            };
            self.hm.report(
                now,
                ErrorId::IllegalRequest,
                source,
                "guest attempt to mask the clock-tick source (wrapped)",
            );
            self.trace.record(TraceEvent::HmReport {
                at: now,
                error: ErrorId::IllegalRequest,
                partition: self.dispatcher.active_partition(),
            });
        }

        // Execute the active partition's heir process for this tick.
        self.trace
            .record_occupancy(self.dispatcher.active_partition());
        self.run_active_process(now);
    }

    /// Runs `n` ticks.
    pub fn run_for(&mut self, n: u64) {
        for _ in 0..n {
            if self.halted {
                break;
            }
            self.step();
        }
    }

    /// Runs until the clock reaches `t` (inclusive of the tick at `t`).
    pub fn run_until(&mut self, t: Ticks) {
        while self.machine.clock.now() < t.as_u64() && !self.halted {
            self.step();
        }
    }

    fn on_clock_tick(&mut self, ticks: u64) {
        let now = Ticks(ticks);
        let Some(event) = self.scheduler.tick(ticks) else {
            // Best/most-frequent case: no preemption point. The active
            // partition still receives its tick (Fig. 7 announcement with
            // elapsedTicks = 1).
            if let Some(m) = self.dispatcher.active_partition() {
                let misses = self.partitions[m.as_usize()].announce_clock_ticks(1, now);
                self.handle_misses(m, &misses, now);
            }
            return;
        };

        // A preemption point: a partition boundary. Interpartition traffic
        // moves here, never inside a window.
        let frame_errors = self.ipc.service(&mut self.machine);
        self.drain_transport_events(now);
        for e in frame_errors {
            self.hm
                .report(now, ErrorId::HardwareFault, ErrorSource::Module, e.to_string());
            self.trace.record(TraceEvent::HmReport {
                at: now,
                error: ErrorId::HardwareFault,
                partition: None,
            });
        }

        if let Some(sid) = event.switched_to {
            self.trace
                .record(TraceEvent::ScheduleSwitch { at: now, to: sid });
            // Queue the new schedule's per-partition change actions, to be
            // applied at each partition's first dispatch (Sect. 4.3).
            let schedule = self
                .schedules
                .get(sid)
                .expect("scheduler only switches to configured schedules");
            let actions: Vec<(PartitionId, ScheduleChangeAction)> = schedule
                .partitions()
                .map(|p| (p, schedule.change_action_for(p)))
                .collect();
            self.dispatcher.queue_schedule_change_actions(actions);
        }

        let previous = self.dispatcher.active_partition();
        let outcome = self
            .dispatcher
            .dispatch(event.heir, ticks, &mut self.machine.cpu);
        if outcome.switched {
            self.trace.record(TraceEvent::PartitionSwitch {
                at: now,
                from: previous,
                to: event.heir,
            });
            // The incoming partition's MMU context becomes active; the MMU
            // flushes its TLB on the change, so no translation cached for
            // the outgoing partition survives the switch. Partitions
            // without a spatial configuration have no context to activate.
            if let Some(m) = event.heir {
                let _ = self.spatial.activate_partition(m);
            }
        }
        for (partition, action) in &outcome.actions {
            self.trace.record(TraceEvent::ScheduleChangeActionApplied {
                at: now,
                partition: *partition,
                action: *action,
            });
            match action {
                ScheduleChangeAction::None => {}
                ScheduleChangeAction::WarmRestart => self.restart_partition(*partition, true, now),
                ScheduleChangeAction::ColdRestart => {
                    self.restart_partition(*partition, false, now)
                }
                ScheduleChangeAction::Stop => self.stop_partition(*partition, now),
            }
        }

        // The dispatched partition's PAL announces the elapsed ticks
        // (covers the whole inactive interval; Fig. 7) — this is where
        // deadline misses that occurred while the partition was inactive
        // are detected (Sect. 5).
        if let Some(m) = event.heir {
            let misses =
                self.partitions[m.as_usize()].announce_clock_ticks(outcome.elapsed_ticks, now);
            self.handle_misses(m, &misses, now);
        }
    }

    fn run_active_process(&mut self, now: Ticks) {
        let Some(m) = self.dispatcher.active_partition() else {
            return;
        };
        let idx = m.as_usize();
        let Some(pid) = self.partitions[idx].select_heir(now) else {
            return;
        };
        let gpid = GlobalProcessId::new(m, pid);
        // Temporarily detach the body so it can borrow the system pieces.
        let Some(mut body) = self.bodies.remove(&gpid) else {
            return;
        };
        let mut raised = Vec::new();
        {
            let mut api = ProcessApi {
                now,
                me: pid,
                apex: &mut self.partitions[idx],
                ports: self.ipc.registry_mut(),
                scheduler: &mut self.scheduler,
                console: &mut self.consoles[idx],
                raised_errors: &mut raised,
            };
            body.on_tick(&mut api);
        }
        self.machine.cpu.retire_work(1);
        self.bodies.insert(gpid, body);
        // RAISE_APPLICATION_ERROR path (and the reporting port services):
        // route raised errors through HM under their own error class.
        for (raiser, error, message) in raised {
            let gp = GlobalProcessId::new(m, raiser);
            let decision = self.hm.report(now, error, ErrorSource::Process(gp), message);
            self.trace.record(TraceEvent::HmReport {
                at: now,
                error,
                partition: Some(m),
            });
            self.apply_decision_for(error, decision, now);
        }
    }

    fn on_console_input(&mut self) {
        while let Some(key) = self.machine.console.pop_key() {
            let KeyEvent::Char(c) = key else { continue };
            match self.key_actions.get(&c) {
                Some(KeyAction::SwitchSchedule(sid)) => {
                    let _ = self.scheduler.request_schedule(*sid);
                }
                Some(KeyAction::ToggleFault(s)) => {
                    s.toggle();
                }
                None => {}
            }
        }
    }

    fn handle_misses(&mut self, m: PartitionId, misses: &[(ProcessId, Ticks)], now: Ticks) {
        for &(pid, deadline) in misses {
            let gpid = GlobalProcessId::new(m, pid);
            self.trace.record(TraceEvent::DeadlineMiss {
                at: now,
                process: gpid,
                deadline,
            });
            let decision = self.hm.report(
                now,
                ErrorId::DeadlineMissed,
                ErrorSource::Process(gpid),
                format!("deadline {deadline} missed, detected at {now}"),
            );
            self.trace.record(TraceEvent::HmReport {
                at: now,
                error: ErrorId::DeadlineMissed,
                partition: Some(m),
            });
            self.apply_decision_for(ErrorId::DeadlineMissed, decision, now);
        }
    }

    /// Surfaces the reliable transport's events (retransmissions, link
    /// failover, delivery exhaustion, recovery) into the trace and health
    /// monitor, and drives the Sect. 4 mode-based schedule switch: failover
    /// to the secondary link enters the configured degraded schedule, link
    /// recovery restores the schedule that was in force at failover.
    ///
    /// Link degradation is deliberately report-only at HM level — the
    /// degraded-schedule switch *is* the recovery, so the standard module-
    /// level action (Reset) must not also fire.
    fn drain_transport_events(&mut self, now: Ticks) {
        for event in self.ipc.take_transport_events() {
            match event {
                LinkTransportEvent::Retransmitted { seq, retries } => {
                    self.trace.record(TraceEvent::FrameRetransmitted {
                        at: now,
                        seq,
                        retries,
                    });
                }
                LinkTransportEvent::Failover { to } => {
                    self.trace
                        .record(TraceEvent::LinkFailover { at: now, to });
                    match to {
                        LinkRole::Secondary => {
                            self.hm.report(
                                now,
                                ErrorId::LinkDegraded,
                                ErrorSource::Module,
                                format!("reliable transport failed over to {to} link"),
                            );
                            self.trace.record(TraceEvent::HmReport {
                                at: now,
                                error: ErrorId::LinkDegraded,
                                partition: None,
                            });
                            self.enter_degraded_mode(now);
                        }
                        // Reverting to the primary link is a recovery: the
                        // standby interval is over.
                        LinkRole::Primary => self.exit_degraded_mode(now),
                    }
                }
                LinkTransportEvent::Recovered => {
                    self.arq_exhausted = false;
                    self.exit_degraded_mode(now);
                }
                LinkTransportEvent::DeliveryExhausted { seq } => {
                    self.hm.report(
                        now,
                        ErrorId::LinkDegraded,
                        ErrorSource::Module,
                        format!("delivery retries exhausted for frame #{seq}"),
                    );
                    self.trace.record(TraceEvent::HmReport {
                        at: now,
                        error: ErrorId::LinkDegraded,
                        partition: None,
                    });
                    self.arq_exhausted = true;
                }
                _ => {}
            }
        }
    }

    /// Switches to the configured degraded schedule (if any) and records
    /// the mode entry. Idempotent while already degraded.
    fn enter_degraded_mode(&mut self, now: Ticks) {
        if self.degraded_mode {
            return;
        }
        let Some(degraded) = self.degraded_schedule else {
            return;
        };
        self.nominal_schedule = Some(self.scheduler.status().current);
        if self.scheduler.request_schedule(degraded).is_ok() {
            self.degraded_mode = true;
            self.trace.record(TraceEvent::DegradedModeEntered {
                at: now,
                schedule: degraded,
            });
        }
    }

    /// Restores the schedule that was in force at failover and records the
    /// mode exit. No-op when not degraded.
    fn exit_degraded_mode(&mut self, now: Ticks) {
        if !self.degraded_mode {
            return;
        }
        self.degraded_mode = false;
        if let Some(nominal) = self.nominal_schedule.take() {
            let _ = self.scheduler.request_schedule(nominal);
            self.trace.record(TraceEvent::DegradedModeExited {
                at: now,
                schedule: nominal,
            });
        }
    }

    /// Enforces an HM decision for `error` and records exactly one
    /// [`TraceEvent::RecoveryApplied`] describing what was done — the
    /// campaign's escalation-count invariants read that record.
    fn apply_decision_for(&mut self, error: ErrorId, decision: HmDecision, now: Ticks) {
        let (partition, disposition) = match decision {
            HmDecision::InvokeErrorHandler {
                process,
                fallback,
                occurrences,
            } => {
                let apex = &mut self.partitions[process.partition.as_usize()];
                let escalation = apex.handle_process_error(
                    process.process,
                    error,
                    fallback,
                    occurrences,
                    now,
                );
                let disposition = match escalation {
                    RecoveryEscalation::None => RecoveryDisposition::HandlerContained,
                    RecoveryEscalation::RestartPartition => {
                        self.restart_partition(process.partition, true, now);
                        RecoveryDisposition::PartitionWarmRestart
                    }
                    RecoveryEscalation::StopPartition => {
                        self.stop_partition(process.partition, now);
                        RecoveryDisposition::PartitionStopped
                    }
                };
                (Some(process.partition), disposition)
            }
            HmDecision::PartitionAction { partition, action } => {
                let disposition = match action {
                    PartitionRecoveryAction::Ignore => RecoveryDisposition::Logged,
                    PartitionRecoveryAction::WarmRestart => {
                        self.restart_partition(partition, true, now);
                        RecoveryDisposition::PartitionWarmRestart
                    }
                    PartitionRecoveryAction::ColdRestart => {
                        self.restart_partition(partition, false, now);
                        RecoveryDisposition::PartitionColdRestart
                    }
                    PartitionRecoveryAction::Stop => {
                        self.stop_partition(partition, now);
                        RecoveryDisposition::PartitionStopped
                    }
                };
                (Some(partition), disposition)
            }
            HmDecision::ModuleAction { action } => {
                let disposition = match action {
                    ModuleRecoveryAction::Ignore => RecoveryDisposition::Logged,
                    ModuleRecoveryAction::Shutdown => {
                        self.halted = true;
                        RecoveryDisposition::ModuleShutdown
                    }
                    ModuleRecoveryAction::Reset => {
                        let ids: Vec<PartitionId> =
                            self.partitions.iter().map(ApexPartition::id).collect();
                        for m in ids {
                            self.restart_partition(m, false, now);
                        }
                        RecoveryDisposition::ModuleReset
                    }
                };
                (None, disposition)
            }
        };
        self.trace.record(TraceEvent::RecoveryApplied {
            at: now,
            error,
            partition,
            disposition,
        });
    }

    /// Restarts partition `m` through its ARINC mode automaton and re-runs
    /// its boot recipe (error handler + auto-start processes).
    pub(crate) fn restart_partition(&mut self, m: PartitionId, warm: bool, now: Ticks) {
        let idx = m.as_usize();
        let target = if warm {
            OperatingMode::WarmStart
        } else {
            OperatingMode::ColdStart
        };
        let condition = StartCondition::HmPartitionRestart;
        let apex = &mut self.partitions[idx];
        if apex.set_partition_mode(target, condition, now).is_err() {
            // coldStart → warmStart is forbidden; degrade to cold.
            let _ = apex.set_partition_mode(OperatingMode::ColdStart, condition, now);
        }
        if let Some(handler) = self.runtime[idx].error_handler.clone() {
            let _ = apex.create_error_handler(handler);
        }
        let _ = apex.set_partition_mode(OperatingMode::Normal, condition, now);
        let auto = self.runtime[idx].auto_start.clone();
        for pid in auto {
            let _ = apex.start(pid, now);
        }
        // Restarting re-establishes the partition's spatial configuration
        // from its descriptors, healing any corrupted/revoked mappings
        // (partitions without a spatial configuration have nothing to do).
        let _ = self.spatial.reload_partition(m);
        self.trace.record(TraceEvent::PartitionRestart {
            at: now,
            partition: m,
            warm,
        });
    }

    pub(crate) fn stop_partition(&mut self, m: PartitionId, now: Ticks) {
        let _ = self.partitions[m.as_usize()].set_partition_mode(
            OperatingMode::Idle,
            StartCondition::HmPartitionRestart,
            now,
        );
        self.trace
            .record(TraceEvent::PartitionStop { at: now, partition: m });
    }

    fn sync_vitral(&mut self) {
        let Some(vitral) = &mut self.vitral else {
            return;
        };
        for (i, console) in self.consoles.iter_mut().enumerate() {
            if i < vitral.partition_count() && !console.is_empty() {
                let text = std::mem::take(console);
                vitral.partition_window_mut(i).write(&text);
            }
        }
        // Mirror trace events not yet shown into the AIR / HM windows.
        // Campaign bookkeeping events (injection markers, recovery
        // dispositions) are observability metadata, not VITRAL content.
        for event in &self.trace.events()[self.vitral_synced..] {
            let line = format!("{event:?}");
            match event {
                TraceEvent::FaultInjected { .. } | TraceEvent::RecoveryApplied { .. } => {}
                TraceEvent::DeadlineMiss { .. } | TraceEvent::HmReport { .. } => {
                    vitral.hm_window_mut().write_line(&line)
                }
                _ => vitral.air_window_mut().write_line(&line),
            }
        }
        self.vitral_synced = self.trace.events().len();
    }
}
