//! The system integrator: builds an [`AirSystem`] from configuration,
//! performing the verification and initialisation steps the paper assigns
//! to "system integration time".

use std::collections::HashMap;

use air_apex::{ApexPartition, ErrorHandlerTable};
use air_hm::{HealthMonitor, HmTables};
use air_hw::machine::MachineConfig;
use air_hw::{CpuContext, Machine};
use air_model::ids::GlobalProcessId;
use air_model::partition::{OperatingMode, Partition, PosKind, StartCondition};
use air_lint::{LintReport, SystemModel};
use air_model::process::ProcessAttributes;
use air_model::{ScheduleSet, Ticks};
use air_pal::pal::RegistryKind;
use air_pmk::spatial::standard_application_layout;
use air_pmk::{PartitionDispatcher, PartitionScheduler, PmkIpc, SpatialManager};
use air_ports::{ChannelConfig, PortRegistry, QueuingPortConfig, SamplingPortConfig};
use air_pos::{GenericNonRt, PartitionOs, RtemsLike};
use air_vitral::Vitral;

use crate::system::{AirSystem, PartitionRuntime};
use crate::workload::ProcessBody;

/// Configuration of one process: its model attributes, its application
/// body, and whether it auto-starts when the partition enters normal mode.
pub struct ProcessConfig {
    /// Static attributes (Eq. 11).
    pub attributes: ProcessAttributes,
    /// The application body driven while the process runs.
    pub body: Box<dyn ProcessBody>,
    /// Start automatically on entering normal mode (and on restarts).
    pub auto_start: bool,
}

impl ProcessConfig {
    /// An auto-started process.
    pub fn new(attributes: ProcessAttributes, body: impl ProcessBody + 'static) -> Self {
        Self {
            attributes,
            body: Box::new(body),
            auto_start: true,
        }
    }

    /// Marks the process as manually started (e.g. a recovery process).
    #[must_use]
    pub fn manual_start(mut self) -> Self {
        self.auto_start = false;
        self
    }
}

/// Configuration of one partition.
pub struct PartitionConfig {
    /// The model-level partition descriptor.
    pub partition: Partition,
    /// Its processes.
    pub processes: Vec<ProcessConfig>,
    /// Error handler to install during initialisation.
    pub error_handler: Option<ErrorHandlerTable>,
    /// Sampling ports to create during initialisation.
    pub sampling_ports: Vec<SamplingPortConfig>,
    /// Queuing ports to create during initialisation.
    pub queuing_ports: Vec<QueuingPortConfig>,
    /// PAL deadline-registry structure (Sect. 5.3 ablation).
    pub registry_kind: RegistryKind,
}

impl PartitionConfig {
    /// A partition with no processes or ports yet.
    pub fn new(partition: Partition) -> Self {
        Self {
            partition,
            processes: Vec::new(),
            error_handler: None,
            sampling_ports: Vec::new(),
            queuing_ports: Vec::new(),
            registry_kind: RegistryKind::default(),
        }
    }

    /// Adds a process.
    #[must_use]
    pub fn with_process(mut self, process: ProcessConfig) -> Self {
        self.processes.push(process);
        self
    }

    /// Installs an error handler table.
    #[must_use]
    pub fn with_error_handler(mut self, handler: ErrorHandlerTable) -> Self {
        self.error_handler = Some(handler);
        self
    }

    /// Adds a sampling port.
    #[must_use]
    pub fn with_sampling_port(mut self, config: SamplingPortConfig) -> Self {
        self.sampling_ports.push(config);
        self
    }

    /// Adds a queuing port.
    #[must_use]
    pub fn with_queuing_port(mut self, config: QueuingPortConfig) -> Self {
        self.queuing_ports.push(config);
        self
    }

    /// Selects the PAL deadline-registry structure.
    #[must_use]
    pub fn with_registry_kind(mut self, kind: RegistryKind) -> Self {
        self.registry_kind = kind;
        self
    }
}

/// Errors from system assembly.
#[derive(Debug)]
#[non_exhaustive]
pub enum BuildError {
    /// Static analysis found Error-level defects in the configuration
    /// (Eq. 21–23 violations, broken channel wiring, duplicate names, …);
    /// the report lists every finding with its stable `AIR` code.
    Lint(LintReport),
    /// Partition ids must be contiguous `0..n` in declaration order.
    NonContiguousPartitionIds,
    /// A POS/APEX/port initialisation step failed.
    Initialisation(String),
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::Lint(r) => {
                write!(f, "configuration rejected by static analysis:\n{r}")?;
                if r.has_code(air_lint::Code::ExplorationCapped) {
                    write!(
                        f,
                        "\nnote: the bounded exploration hit its state cap \
                         (AIR098), so this report may be incomplete; re-run \
                         `airlint --explore` with a larger --max-states"
                    )?;
                }
                Ok(())
            }
            BuildError::NonContiguousPartitionIds => {
                f.write_str("partition ids must be contiguous from 0 in declaration order")
            }
            BuildError::Initialisation(s) => write!(f, "initialisation failed: {s}"),
        }
    }
}

impl std::error::Error for BuildError {}

/// Builds a complete AIR system.
///
/// # Examples
///
/// ```
/// use air_core::{SystemBuilder, PartitionConfig, ProcessConfig};
/// use air_core::workload::PeriodicCompute;
/// use air_model::process::{Deadline, ProcessAttributes, Recurrence};
/// use air_model::schedule::{PartitionRequirement, Schedule, TimeWindow};
/// use air_model::{Partition, PartitionId, ScheduleId, ScheduleSet, Ticks};
///
/// let p0 = PartitionId(0);
/// let schedule = Schedule::new(
///     ScheduleId(0), "single", Ticks(100),
///     vec![PartitionRequirement::new(p0, Ticks(100), Ticks(50))],
///     vec![TimeWindow::new(p0, Ticks(0), Ticks(50))],
/// );
/// let mut system = SystemBuilder::new(ScheduleSet::new(vec![schedule]))
///     .with_partition(
///         PartitionConfig::new(Partition::new(p0, "solo")).with_process(
///             ProcessConfig::new(
///                 ProcessAttributes::new("work")
///                     .with_recurrence(Recurrence::Periodic(Ticks(100)))
///                     .with_deadline(Deadline::relative(Ticks(100))),
///                 PeriodicCompute::new(10),
///             ),
///         ),
///     )
///     .build()?;
/// system.run_for(300);
/// assert_eq!(system.trace().deadline_miss_count(), 0);
/// # Ok::<(), air_core::builder::BuildError>(())
/// ```
pub struct SystemBuilder {
    schedules: ScheduleSet,
    partitions: Vec<PartitionConfig>,
    channels: Vec<ChannelConfig>,
    hm_tables: HmTables,
    machine_config: MachineConfig,
    vitral: bool,
    exploration_depth: usize,
}

/// Default bounded-exploration depth applied by [`SystemBuilder::build`]:
/// every state reachable within two mode-change/HM/link events is checked.
pub const DEFAULT_EXPLORATION_DEPTH: usize = 2;

impl SystemBuilder {
    /// Starts a build over the given schedule set.
    pub fn new(schedules: ScheduleSet) -> Self {
        Self {
            schedules,
            partitions: Vec::new(),
            channels: Vec::new(),
            hm_tables: HmTables::standard(),
            machine_config: MachineConfig::default(),
            vitral: false,
            exploration_depth: DEFAULT_EXPLORATION_DEPTH,
        }
    }

    /// Adds a partition (ids must be contiguous in declaration order).
    #[must_use]
    pub fn with_partition(mut self, config: PartitionConfig) -> Self {
        self.partitions.push(config);
        self
    }

    /// Adds an interpartition channel.
    #[must_use]
    pub fn with_channel(mut self, channel: ChannelConfig) -> Self {
        self.channels.push(channel);
        self
    }

    /// Replaces the health-monitoring tables.
    #[must_use]
    pub fn with_hm_tables(mut self, tables: HmTables) -> Self {
        self.hm_tables = tables;
        self
    }

    /// Replaces the machine configuration.
    #[must_use]
    pub fn with_machine_config(mut self, config: MachineConfig) -> Self {
        self.machine_config = config;
        self
    }

    /// Enables the VITRAL screen (one window per partition plus AIR/HM
    /// windows, Fig. 9).
    #[must_use]
    pub fn with_vitral(mut self) -> Self {
        self.vitral = true;
        self
    }

    /// Sets how many mode-change/HM/link events deep
    /// [`SystemBuilder::build`] explores the configuration's reachable
    /// state space (AIR081–AIR086) before accepting it. The default is
    /// [`DEFAULT_EXPLORATION_DEPTH`]; `0` disables the exploration stage
    /// (the per-schedule static analyses still run).
    #[must_use]
    pub fn with_exploration_depth(mut self, depth: usize) -> Self {
        self.exploration_depth = depth;
        self
    }

    /// Snapshots the builder's description into the lint model both
    /// [`SystemBuilder::lint`] and the build gate analyse.
    fn snapshot(&self) -> SystemModel {
        let mut model = SystemModel {
            partitions: self.partitions.iter().map(|p| p.partition.clone()).collect(),
            schedules: self.schedules.iter().cloned().collect(),
            channels: self.channels.clone(),
            // Programmatic descriptions may legitimately wire gateway
            // channels whose source lives on another node (see
            // `tests/cluster.rs`), and always carry complete standard HM
            // tables, so coverage checks stay off.
            gateways_allowed: true,
            hm_declared: false,
            ..SystemModel::default()
        };
        for p in &self.partitions {
            let m = p.partition.id();
            for proc in &p.processes {
                model.processes.push((m, proc.attributes.clone()));
            }
            for cfg in &p.sampling_ports {
                model.sampling_ports.push((m, cfg.clone()));
            }
            for cfg in &p.queuing_ports {
                model.queuing_ports.push((m, cfg.clone()));
            }
            if let Some(handler) = &p.error_handler {
                for (error, action) in handler.actions() {
                    model.handlers.push((m, error, action));
                }
            }
        }
        model
    }

    /// Runs the `air-lint` static analyses over the builder's current
    /// description, without building anything.
    ///
    /// This is the same snapshot [`SystemBuilder::build`] gates on:
    /// temporal (Eq. 21–23 and schedulability), mode-graph, port/channel
    /// and health-monitoring checks. Warnings never block a build —
    /// inspect them here. The build gate additionally explores the
    /// reachable mode/HM state space
    /// ([`SystemBuilder::with_exploration_depth`]); use
    /// [`air_lint::lint_explored`] on the same description to reproduce
    /// that stage ahead of building.
    pub fn lint(&self) -> LintReport {
        air_lint::lint(&self.snapshot())
    }

    /// Verifies the configuration and assembles the system: the
    /// "integration and configuration" the ARINC 653 spec insists on
    /// (Sect. 6) happens here. The configuration is first linted
    /// ([`SystemBuilder::lint`]) and its mode/HM state space explored to
    /// the configured depth ([`SystemBuilder::with_exploration_depth`]);
    /// any Error-level finding — including one only reachable through a
    /// sequence of mode switches and faults (AIR081, AIR085) — refuses
    /// the build. [`SystemBuilder::build_unchecked`] skips the gate.
    ///
    /// # Errors
    ///
    /// [`BuildError::Lint`] when static analysis finds Error-level
    /// defects, or [`BuildError`] when partition ids are not contiguous
    /// or an initialisation step fails.
    pub fn build(self) -> Result<AirSystem, BuildError> {
        let report = if self.exploration_depth > 0 {
            air_lint::lint_explored(&self.snapshot(), self.exploration_depth)
        } else {
            self.lint()
        };
        if report.has_errors() {
            return Err(BuildError::Lint(report));
        }
        self.build_unchecked()
    }

    /// Assembles the system without the static-analysis gate.
    ///
    /// The escape hatch for deliberately broken configurations —
    /// fault-injection campaigns and robustness tests that *want* to run
    /// defective tables. Production integrations should call
    /// [`SystemBuilder::build`].
    ///
    /// # Errors
    ///
    /// [`BuildError`] when partition ids are not contiguous or an
    /// initialisation step fails.
    pub fn build_unchecked(self) -> Result<AirSystem, BuildError> {
        for (i, p) in self.partitions.iter().enumerate() {
            if p.partition.id().as_usize() != i {
                return Err(BuildError::NonContiguousPartitionIds);
            }
        }

        // 2. Machine and PMK components.
        let mut machine_config = self.machine_config;
        machine_config.console_channels = machine_config
            .console_channels
            .max(self.partitions.len());
        let machine = Machine::new(machine_config.clone());
        let scheduler = PartitionScheduler::new(&self.schedules);
        let mut dispatcher = PartitionDispatcher::new();
        let mut spatial = SpatialManager::new(machine_config.memory_size as u64);

        // 3. Ports and channels.
        let mut registry = PortRegistry::new();
        for p in &self.partitions {
            for cfg in &p.sampling_ports {
                registry
                    .create_sampling_port(p.partition.id(), cfg.clone())
                    .map_err(|e| BuildError::Initialisation(e.to_string()))?;
            }
            for cfg in &p.queuing_ports {
                registry
                    .create_queuing_port(p.partition.id(), cfg.clone())
                    .map_err(|e| BuildError::Initialisation(e.to_string()))?;
            }
        }
        for channel in self.channels {
            registry
                .add_channel(channel)
                .map_err(|e| BuildError::Initialisation(e.to_string()))?;
        }
        let ipc = PmkIpc::with_registry(registry);

        // 4. Per-partition spatial configuration, CPU context, APEX boot.
        let mut partitions = Vec::with_capacity(self.partitions.len());
        let mut runtime = Vec::with_capacity(self.partitions.len());
        let mut bodies: HashMap<GlobalProcessId, Box<dyn ProcessBody>> = HashMap::new();
        let titles: Vec<String> = self
            .partitions
            .iter()
            .map(|p| format!("{} {}", p.partition.id(), p.partition.name()))
            .collect();

        for config in self.partitions {
            let m = config.partition.id();
            let layout = standard_application_layout(0x10000, 0x10000, 0x4000);
            let context = spatial
                .configure_partition(m, &layout)
                .map_err(|e| BuildError::Initialisation(e.to_string()))?;
            dispatcher.register_partition(
                m,
                CpuContext::new(0x4000_0000, 0x6000_0000 + 0x4000, context),
            );

            let pos: Box<dyn PartitionOs> = match config.partition.pos_kind() {
                PosKind::RealTime => Box::new(RtemsLike::new()),
                PosKind::GenericNonRealTime => Box::new(GenericNonRt::new()),
            };
            let mut apex =
                ApexPartition::with_registry_kind(config.partition, pos, config.registry_kind);

            // ARINC 653 initialisation: create processes and the error
            // handler in coldStart, then transition to normal and start
            // the auto-start set.
            let mut auto_start = Vec::new();
            for proc in config.processes {
                let pid = apex
                    .create_process(proc.attributes)
                    .map_err(|e| BuildError::Initialisation(e.to_string()))?;
                bodies.insert(GlobalProcessId::new(m, pid), proc.body);
                if proc.auto_start {
                    auto_start.push(pid);
                }
            }
            if let Some(handler) = config.error_handler.clone() {
                apex.create_error_handler(handler)
                    .map_err(|e| BuildError::Initialisation(e.to_string()))?;
            }
            apex.set_partition_mode(OperatingMode::Normal, StartCondition::NormalStart, Ticks(0))
                .map_err(|e| BuildError::Initialisation(e.to_string()))?;
            for &pid in &auto_start {
                apex.start(pid, Ticks(0))
                    .map_err(|e| BuildError::Initialisation(e.to_string()))?;
            }

            partitions.push(apex);
            runtime.push(PartitionRuntime {
                auto_start,
                error_handler: config.error_handler,
            });
        }

        let vitral = self.vitral.then(|| {
            let title_refs: Vec<&str> = titles.iter().map(String::as_str).collect();
            Vitral::fig9_layout(&title_refs)
        });

        Ok(AirSystem::assemble(
            machine,
            scheduler,
            dispatcher,
            spatial,
            ipc,
            HealthMonitor::new(self.hm_tables),
            self.schedules,
            partitions,
            runtime,
            bodies,
            vitral,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::BusyLoop;
    use air_model::schedule::{PartitionRequirement, Schedule, TimeWindow};
    use air_model::{PartitionId, ScheduleId};

    fn schedule(windows: Vec<(u32, u64, u64)>) -> ScheduleSet {
        let reqs: Vec<PartitionRequirement> = windows
            .iter()
            .map(|&(m, _, c)| PartitionRequirement::new(PartitionId(m), Ticks(100), Ticks(c)))
            .collect();
        ScheduleSet::new(vec![Schedule::new(
            ScheduleId(0),
            "t",
            Ticks(100),
            reqs,
            windows
                .into_iter()
                .map(|(m, o, c)| TimeWindow::new(PartitionId(m), Ticks(o), Ticks(c)))
                .collect(),
        )])
    }

    #[test]
    fn invalid_schedules_are_rejected_with_the_report() {
        // Overlapping windows: the builder refuses before anything runs.
        let set = schedule(vec![(0, 0, 60), (1, 40, 40)]);
        let err = SystemBuilder::new(set)
            .with_partition(PartitionConfig::new(Partition::new(PartitionId(0), "a")))
            .with_partition(PartitionConfig::new(Partition::new(PartitionId(1), "b")))
            .build()
            .unwrap_err();
        let BuildError::Lint(report) = &err else {
            panic!("expected Lint, got {err}");
        };
        assert!(report.has_code(air_lint::Code::WindowsOverlap), "{report}");
        assert!(err.to_string().contains("Eq. 21"), "{err}");
    }

    #[test]
    fn non_contiguous_partition_ids_rejected() {
        let set = schedule(vec![(0, 0, 40), (2, 40, 40)]);
        let err = SystemBuilder::new(set)
            .with_partition(PartitionConfig::new(Partition::new(PartitionId(0), "a")))
            .with_partition(PartitionConfig::new(Partition::new(PartitionId(2), "c")))
            .build()
            .unwrap_err();
        let BuildError::Lint(report) = &err else {
            panic!("expected Lint, got {err}");
        };
        assert!(
            report.has_code(air_lint::Code::NonContiguousPartitionIds),
            "{report}"
        );
    }

    #[test]
    fn duplicate_port_names_rejected_by_lint() {
        let set = schedule(vec![(0, 0, 40)]);
        let err = SystemBuilder::new(set)
            .with_partition(
                PartitionConfig::new(Partition::new(PartitionId(0), "a"))
                    .with_sampling_port(SamplingPortConfig::source("x", 8))
                    .with_queuing_port(QueuingPortConfig::source("x", 8, 2)),
            )
            .build()
            .unwrap_err();
        let BuildError::Lint(report) = &err else {
            panic!("expected Lint, got {err}");
        };
        assert!(report.has_code(air_lint::Code::DuplicatePortName), "{report}");
    }

    #[test]
    fn duplicate_port_names_still_fail_unchecked_initialisation() {
        // The escape hatch skips the linter but not the registry's own
        // integration-time rules.
        let set = schedule(vec![(0, 0, 40)]);
        let err = SystemBuilder::new(set)
            .with_partition(
                PartitionConfig::new(Partition::new(PartitionId(0), "a"))
                    .with_sampling_port(SamplingPortConfig::source("x", 8))
                    .with_queuing_port(QueuingPortConfig::source("x", 8, 2)),
            )
            .build_unchecked()
            .unwrap_err();
        assert!(matches!(err, BuildError::Initialisation(_)), "{err}");
    }

    #[test]
    fn duplicate_process_names_rejected_by_lint() {
        let set = schedule(vec![(0, 0, 40)]);
        let err = SystemBuilder::new(set)
            .with_partition(
                PartitionConfig::new(Partition::new(PartitionId(0), "a"))
                    .with_process(ProcessConfig::new(
                        ProcessAttributes::new("dup"),
                        BusyLoop::new(),
                    ))
                    .with_process(ProcessConfig::new(
                        ProcessAttributes::new("dup"),
                        BusyLoop::new(),
                    )),
            )
            .build()
            .unwrap_err();
        let BuildError::Lint(report) = &err else {
            panic!("expected Lint, got {err}");
        };
        assert!(report.has_code(air_lint::Code::DuplicateProcessName), "{report}");
    }

    #[test]
    fn bad_channel_wiring_rejected_by_lint() {
        let set = schedule(vec![(0, 0, 40)]);
        let err = SystemBuilder::new(set)
            .with_partition(PartitionConfig::new(Partition::new(PartitionId(0), "a")))
            .with_channel(ChannelConfig {
                id: 1,
                source: air_ports::PortAddr::new(PartitionId(0), "ghost"),
                destinations: vec![],
            })
            .build()
            .unwrap_err();
        let BuildError::Lint(report) = &err else {
            panic!("expected Lint, got {err}");
        };
        assert!(report.has_code(air_lint::Code::EmptyChannel), "{report}");
    }

    #[test]
    fn overlapping_windows_build_through_the_escape_hatch() {
        // Robustness campaigns deliberately run defective tables; the
        // unchecked path must still assemble them.
        let set = schedule(vec![(0, 0, 60), (1, 40, 40)]);
        let system = SystemBuilder::new(set)
            .with_partition(PartitionConfig::new(Partition::new(PartitionId(0), "a")))
            .with_partition(PartitionConfig::new(Partition::new(PartitionId(1), "b")))
            .build_unchecked();
        assert!(system.is_ok());
    }

    #[test]
    fn lint_is_inspectable_without_building() {
        let set = schedule(vec![(0, 0, 40)]);
        let builder = SystemBuilder::new(set)
            .with_partition(PartitionConfig::new(Partition::new(PartitionId(0), "a")));
        let report = builder.lint();
        assert!(!report.has_errors(), "{report}");
        assert!(builder.build().is_ok());
    }

    #[test]
    fn manual_start_processes_stay_dormant() {
        let set = schedule(vec![(0, 0, 40)]);
        let mut system = SystemBuilder::new(set)
            .with_partition(
                PartitionConfig::new(Partition::new(PartitionId(0), "a"))
                    .with_process(ProcessConfig::new(
                        ProcessAttributes::new("auto"),
                        BusyLoop::new(),
                    ))
                    .with_process(
                        ProcessConfig::new(ProcessAttributes::new("recovery"), BusyLoop::new())
                            .manual_start(),
                    ),
            )
            .build()
            .unwrap();
        system.run_for(10);
        let rec = system.partition(PartitionId(0)).process_id("recovery").unwrap();
        let (status, _) = system.partition(PartitionId(0)).process_status(rec).unwrap();
        assert_eq!(status.state, air_model::ProcessState::Dormant);
        let auto = system.partition(PartitionId(0)).process_id("auto").unwrap();
        let (status, _) = system.partition(PartitionId(0)).process_status(auto).unwrap();
        assert_ne!(status.state, air_model::ProcessState::Dormant);
    }

    #[test]
    fn console_channels_scale_with_partition_count() {
        // More partitions than the default console channels: the builder
        // widens the console rather than panicking on writes.
        let mut windows = Vec::new();
        for m in 0..10u32 {
            windows.push((m, u64::from(m) * 10, 10));
        }
        let mut b = SystemBuilder::new(schedule(windows)).with_machine_config(
            air_hw::machine::MachineConfig {
                console_channels: 2,
                ..Default::default()
            },
        );
        for m in 0..10u32 {
            b = b.with_partition(PartitionConfig::new(Partition::new(
                PartitionId(m),
                format!("p{m}"),
            )));
        }
        let mut system = b.build().unwrap();
        system.run_for(100);
        assert_eq!(system.trace().deadline_miss_count(), 0);
    }
}
