//! The paper's Sect. 6 prototype, assembled and runnable.
//!
//! Four partitions execute "mockup applications representative of typical
//! functions present in a satellite system" over the Fig. 8 scheduling
//! tables, "configured with two PSTs, between which it is possible to
//! alternate through the mode-based schedules service". A faulty process
//! can be injected on P1 "so that a deadline miss occurs even though both
//! PSTs comply with P1's timing requirements".
//!
//! Workload layout (periods are multiples of the partition cycles, as the
//! paper requires):
//!
//! | Partition | Process | T | D | C | Role |
//! |---|---|---|---|---|---|
//! | P1 AOCS | `aocs-control` | 1300 | 1300 | 100 | attitude control; publishes the `att` sampling message |
//! | P1 AOCS | `aocs-faulty` | 1300 | 650 | 20 | the injectable faulty process |
//! | P2 OBDH | `obdh-telemetry` | 650 | 650 | 1 | queues telemetry frames to TTC |
//! | P2 OBDH | `obdh-housekeeping` | 1300 | 1300 | 30 | background computation |
//! | P3 TTC | `ttc-downlink` | 650 | 650 | 1 | drains the telemetry queue |
//! | P4 PAYLOAD-FDIR | `fdir` | 650 | 650 | 10 | fault-detection sweep |
//! | P4 PAYLOAD-FDIR | `payload-proc` | 1300 | 1300 | 1 | consumes AOCS attitude data |
//!
//! The faulty process has `D = 650 < η₁ = 1300` and P1 holds a single
//! window per MTF, so when the fault is active its deadline always expires
//! **while P1 is inactive**: the violation is "detected and reported every
//! time (except the first) that P1 is scheduled and dispatched to execute"
//! — at P1's dispatch, by the PAL's Algorithm 3 check over the elapsed
//! interval.

use air_apex::ErrorHandlerTable;
use air_hm::{ErrorId, ProcessRecoveryAction};
use air_model::process::{Deadline, Priority, ProcessAttributes, Recurrence};
use air_model::prototype::{fig8_partitions, fig8_system, CHI_1, CHI_2, P1, P2, P3, P4};
use air_model::Ticks;
use air_ports::{ChannelConfig, Destination, PortAddr, QueuingPortConfig, SamplingPortConfig};

use crate::builder::{PartitionConfig, ProcessConfig, SystemBuilder};
use crate::system::{AirSystem, KeyAction};
use crate::workload::{
    FaultSwitch, FaultyPeriodic, PeriodicCompute, QueuingConsumer, QueuingProducer,
    SamplingConsumer, SamplingProducer,
};

/// The assembled prototype plus its control handles.
#[derive(Debug)]
pub struct PrototypeHarness {
    /// The running system.
    pub system: AirSystem,
    /// The faulty-process switch (the prototype's keyboard `f` command).
    pub fault: FaultSwitch,
}

impl PrototypeHarness {
    /// Builds the Sect. 6 system (no VITRAL screen).
    pub fn build() -> Self {
        Self::build_inner(false)
    }

    /// Builds the Sect. 6 system with the VITRAL screen enabled.
    pub fn build_with_vitral() -> Self {
        Self::build_inner(true)
    }

    fn build_inner(vitral: bool) -> Self {
        let fault = FaultSwitch::new();
        let model = fig8_system();
        let parts = fig8_partitions();

        let p1 = PartitionConfig::new(parts[0].clone())
            .with_sampling_port(SamplingPortConfig::source("att-out", 64))
            .with_error_handler(
                ErrorHandlerTable::new()
                    .with_action(ErrorId::DeadlineMissed, ProcessRecoveryAction::RestartProcess),
            )
            .with_process(ProcessConfig::new(
                ProcessAttributes::new("aocs-control")
                    .with_recurrence(Recurrence::Periodic(Ticks(1300)))
                    .with_deadline(Deadline::relative(Ticks(1300)))
                    .with_base_priority(Priority(1))
                    .with_wcet(Ticks(100)),
                SamplingProducer::new("att-out", 100),
            ))
            .with_process(ProcessConfig::new(
                ProcessAttributes::new("aocs-faulty")
                    .with_recurrence(Recurrence::Periodic(Ticks(1300)))
                    .with_deadline(Deadline::relative(Ticks(650)))
                    .with_base_priority(Priority(5))
                    .with_wcet(Ticks(20)),
                FaultyPeriodic::new(20, fault.clone()),
            ));

        let p2 = PartitionConfig::new(parts[1].clone())
            .with_queuing_port(QueuingPortConfig::source("tm-tx", 64, 8))
            .with_process(ProcessConfig::new(
                ProcessAttributes::new("obdh-telemetry")
                    .with_recurrence(Recurrence::Periodic(Ticks(650)))
                    .with_deadline(Deadline::relative(Ticks(650)))
                    .with_base_priority(Priority(2))
                    .with_wcet(Ticks(1)),
                QueuingProducer::new("tm-tx"),
            ))
            .with_process(ProcessConfig::new(
                ProcessAttributes::new("obdh-housekeeping")
                    .with_recurrence(Recurrence::Periodic(Ticks(1300)))
                    .with_deadline(Deadline::relative(Ticks(1300)))
                    .with_base_priority(Priority(8))
                    .with_wcet(Ticks(30)),
                PeriodicCompute::new(30),
            ));

        let p3 = PartitionConfig::new(parts[2].clone())
            .with_queuing_port(QueuingPortConfig::destination("tm-rx", 64, 8))
            .with_process(ProcessConfig::new(
                ProcessAttributes::new("ttc-downlink")
                    .with_recurrence(Recurrence::Periodic(Ticks(650)))
                    .with_deadline(Deadline::relative(Ticks(650)))
                    .with_base_priority(Priority(2))
                    .with_wcet(Ticks(1)),
                QueuingConsumer::new("tm-rx"),
            ));

        let p4 = PartitionConfig::new(parts[3].clone())
            .with_sampling_port(SamplingPortConfig::destination(
                "att-in",
                64,
                Ticks(1300),
            ))
            .with_process(ProcessConfig::new(
                ProcessAttributes::new("fdir")
                    .with_recurrence(Recurrence::Periodic(Ticks(650)))
                    .with_deadline(Deadline::relative(Ticks(650)))
                    .with_base_priority(Priority(1))
                    .with_wcet(Ticks(10)),
                PeriodicCompute::new(10),
            ))
            .with_process(ProcessConfig::new(
                ProcessAttributes::new("payload-proc")
                    .with_recurrence(Recurrence::Periodic(Ticks(1300)))
                    .with_deadline(Deadline::relative(Ticks(1300)))
                    .with_base_priority(Priority(3))
                    .with_wcet(Ticks(1)),
                SamplingConsumer::new("att-in"),
            ));

        let mut builder = SystemBuilder::new(model.schedules)
            .with_partition(p1)
            .with_partition(p2)
            .with_partition(p3)
            .with_partition(p4)
            .with_channel(ChannelConfig {
                id: 1,
                source: PortAddr::new(P1, "att-out"),
                destinations: vec![Destination::Local(PortAddr::new(P4, "att-in"))],
            })
            .with_channel(ChannelConfig {
                id: 2,
                source: PortAddr::new(P2, "tm-tx"),
                destinations: vec![Destination::Local(PortAddr::new(P3, "tm-rx"))],
            });
        if vitral {
            builder = builder.with_vitral();
        }
        let mut system = builder
            .build()
            .expect("the Fig. 8 prototype configuration is valid");

        // The prototype's keyboard interaction (Sect. 6): switch to a
        // given PST at the end of the present MTF, activate the fault.
        system.bind_key('1', KeyAction::SwitchSchedule(CHI_1));
        system.bind_key('2', KeyAction::SwitchSchedule(CHI_2));
        system.bind_key('f', KeyAction::ToggleFault(fault.clone()));

        Self { system, fault }
    }
}

/// Convenience: the partition ids of the prototype, re-exported.
pub mod ids {
    pub use air_model::prototype::{CHI_1, CHI_2, P1, P2, P3, P4};
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceEvent;
    use air_model::ids::GlobalProcessId;

    #[test]
    fn healthy_run_has_no_misses_and_full_schedule_conformance() {
        let mut proto = PrototypeHarness::build();
        let chi1 = air_model::prototype::fig8_chi1();
        for _ in 0..3 * 1300u64 {
            proto.system.step();
            // Conformance against the model oracle: the active partition
            // is exactly the one χ1 names for this instant.
            let t = proto.system.now();
            let phase = Ticks(t.as_u64() % 1300);
            assert_eq!(
                proto.system.active_partition(),
                chi1.partition_active_at(phase),
                "divergence at {t}"
            );
        }
        assert_eq!(proto.system.trace().deadline_miss_count(), 0);
    }

    #[test]
    fn fault_injection_detects_once_per_p1_dispatch_except_first() {
        let mut proto = PrototypeHarness::build();
        // Run two clean MTFs, then inject the fault.
        proto.system.run_for(2 * 1300);
        proto.fault.activate();
        // Run six more MTFs.
        proto.system.run_for(6 * 1300);
        let misses: Vec<&TraceEvent> = proto.system.trace().deadline_misses();
        // Fault active from t=2600. The activation released at 2600 runs
        // over; its deadline 3250 passes while P1 is inactive; the miss is
        // detected at P1's next dispatch (3900), then once per dispatch:
        // exactly the paper's "every time (except the first) that P1 is
        // scheduled and dispatched".
        let times: Vec<u64> = misses.iter().map(|e| e.at().as_u64()).collect();
        assert_eq!(times, vec![3900, 5200, 6500, 7800, 9100, 10400]);
        for e in &misses {
            let TraceEvent::DeadlineMiss { process, .. } = e else {
                panic!("filtered")
            };
            assert_eq!(
                *process,
                GlobalProcessId::new(P1, proto.system.partition(P1).process_id("aocs-faulty").unwrap())
            );
        }
        // Detection happens exactly at P1 dispatch instants (MTF starts).
        assert!(times.iter().all(|t| t % 1300 == 0));
    }

    #[test]
    fn telemetry_flows_p2_to_p3() {
        let mut proto = PrototypeHarness::build();
        proto.system.run_for(3 * 1300);
        let console = proto.system.console_of(P3);
        assert!(console.contains("rx frame-0"), "{console}");
        assert!(console.contains("rx frame-1"), "{console}");
    }

    #[test]
    fn attitude_flows_p1_to_p4() {
        let mut proto = PrototypeHarness::build();
        proto.system.run_for(3 * 1300);
        let console = proto.system.console_of(P4);
        assert!(console.contains("read seq=0"), "{console}");
        assert!(console.contains("Valid"), "{console}");
    }

    #[test]
    fn keyboard_schedule_switch_honoured_at_mtf_end() {
        let mut proto = PrototypeHarness::build();
        proto.system.run_for(100);
        proto.system.push_key('2');
        proto.system.run_for(1); // the key is consumed on the next tick
        assert_eq!(proto.system.schedule_status().next, CHI_2);
        assert_eq!(proto.system.schedule_status().current, CHI_1);
        proto.system.run_until(Ticks(1300));
        assert_eq!(proto.system.schedule_status().current, CHI_2);
        assert_eq!(
            proto.system.schedule_status().last_switch,
            Ticks(1300)
        );
        // χ2: P4 is active in [200, 300).
        proto.system.run_until(Ticks(1550));
        assert_eq!(proto.system.active_partition(), Some(P4));
    }

    #[test]
    fn schedule_switches_cause_no_extra_misses() {
        // Sect. 6: "successive requests to change schedule are correctly
        // handled at the end of the current MTF and do not introduce
        // deadline violations other than the one injected".
        let mut proto = PrototypeHarness::build();
        for k in 0..6u64 {
            // Alternate χ1/χ2 with requests at assorted offsets.
            let target = if k % 2 == 0 { CHI_2 } else { CHI_1 };
            proto.system.run_for(137 + 97 * k);
            proto.system.request_schedule(target).unwrap();
            let boundary = proto
                .system
                .now()
                .round_up_to(Ticks(1300));
            proto.system.run_until(boundary);
        }
        proto.system.run_for(1300);
        assert_eq!(proto.system.trace().deadline_miss_count(), 0);
        assert!(proto.system.trace().schedule_switch_count() >= 5);
    }
}
