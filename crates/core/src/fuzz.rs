//! Generated-configuration fuzz farm: abstraction-soundness at scale.
//!
//! The exploration stage of `air-lint` is only trustworthy if its abstract
//! transition system agrees with the concrete machine. This module mass-
//! produces that evidence: a seeded generator emits randomized-but-parsable
//! system configurations, each is pushed through lint → bounded exploration
//! → witness minimization, and every minimized counterexample witness is
//! replayed against a freshly built *concrete* system. The final concrete
//! state, projected back through
//! [`crate::replay::observe_abstract_state`], must equal the state the
//! abstract transition system predicts for the same event sequence — any
//! disagreement is an abstraction-soundness defect, reported under the
//! `AIR099` code and reproducible from its seed alone.
//!
//! The concrete twin is built *without* processes: process workloads would
//! raise their own spontaneous HM events (deadline misses on their own
//! clock) and the comparison would race them. Every abstract event is
//! driven by an explicit injection instead, so the twin's trajectory is
//! exactly the witness's, which is the property under test.

use air_lint::{
    explore_with, minimize_witness_with, transition_system_for, ExploreConfig,
    SystemModel,
};
use air_model::explore::{AbstractState, ArqHealth, LinkState, Witness};
use air_model::schedule::ScheduleSet;
use air_model::testkit::TestRng;

use crate::builder::{PartitionConfig, SystemBuilder};
use crate::replay::{observe_abstract_state, replay_witness};

/// One abstract-vs-concrete disagreement (the `AIR099` defect class).
#[derive(Debug, Clone)]
pub struct Divergence {
    /// The generator seed that produced the configuration.
    pub seed: u64,
    /// The diagnostic code of the finding whose witness diverged.
    pub finding: air_lint::Code,
    /// The minimized witness that was replayed.
    pub witness: Witness,
    /// The state the abstract transition system predicts.
    pub predicted: AbstractState,
    /// The state the concrete system actually reached.
    pub observed: AbstractState,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "AIR099 seed {}: witness [{}] (from {}) predicted {} but the \
             concrete system reached {}",
            self.seed,
            self.witness.render(),
            self.finding,
            self.predicted,
            self.observed
        )
    }
}

/// Aggregate outcome of a fuzz run.
#[derive(Debug, Clone, Default)]
pub struct FuzzReport {
    /// Configurations generated and explored.
    pub cases: usize,
    /// Exploration findings across all cases (pre-minimization).
    pub findings: usize,
    /// Witnesses replayed against concrete twins.
    pub replayed: usize,
    /// Witnesses the greedy minimizer actually shortened.
    pub minimized: usize,
    /// Abstract-vs-concrete disagreements (must be empty).
    pub divergences: Vec<Divergence>,
}

/// Deterministically generates one parsable configuration text from
/// `seed`. The shapes cover the explorer's whole event alphabet: 2–4
/// partitions (the first always a schedule authority), 2–4 schedules with
/// varying windows and change actions, and optional process, link/degraded,
/// ARQ and mesh-route directives.
pub fn generate_config_text(seed: u64) -> String {
    let mut rng = TestRng::new(seed ^ 0x9e37_79b9_7f4a_7c15);
    let n_parts = rng.range(2, 5) as usize;
    let n_scheds = rng.range(2, 5) as usize;
    let mtf = 120u64;
    let slice = mtf / n_parts as u64;
    let mut text = String::new();

    for p in 0..n_parts {
        let authority = p == 0 || rng.chance(1, 4);
        text.push_str(&format!(
            "partition P{p} name=GEN{p}{}\n",
            if authority { " authority=true" } else { "" }
        ));
    }

    for s in 0..n_scheds {
        text.push_str(&format!("schedule chi{s} name=gen{s} mtf={mtf}\n"));
        let mut windowed = Vec::new();
        for p in 0..n_parts {
            // The boot schedule always windows the authority so the
            // explorer has commands to play; otherwise windows are random.
            let include = (s == 0 && p == 0) || rng.chance(3, 4);
            if !include {
                continue;
            }
            let duration = rng.range(slice / 2, slice + 1);
            text.push_str(&format!(
                "  require P{p} cycle={mtf} duration={duration}\n"
            ));
            text.push_str(&format!(
                "  window P{p} offset={} duration={duration}\n",
                p as u64 * slice
            ));
            windowed.push(p);
        }
        // Change actions only for windowed partitions: the concrete
        // dispatcher applies actions at first dispatch under the new
        // schedule, so a windowless partition would never see its action.
        for &p in &windowed {
            if rng.chance(1, 4) {
                let action = match rng.below(3) {
                    0 => "stop",
                    1 => "warm_restart",
                    _ => "cold_restart",
                };
                text.push_str(&format!("  action P{p} {action}\n"));
            }
        }
    }

    // Processes feed the deadline-fault alphabet and the AIR095 check.
    for p in 0..n_parts {
        if rng.chance(1, 3) {
            let wcet = rng.range(5, slice.max(6));
            text.push_str(&format!(
                "process P{p} name=w{p} period={mtf} deadline={mtf} \
                 wcet={wcet} priority=1\n"
            ));
        }
    }

    if rng.chance(2, 3) {
        let degraded = if rng.chance(1, 2) {
            format!(" degraded=chi{}", rng.below(n_scheds as u64))
        } else {
            String::new()
        };
        text.push_str(&format!(
            "link primary_latency=3 secondary_latency=6 \
             failover_threshold=2{degraded}\n"
        ));
        if rng.chance(2, 3) {
            text.push_str("arq window=8 timeout=24\n");
        }
    }

    // A routed-mesh identity with a few next-hop edges exercises the
    // mesh-edge alphabet.
    if rng.chance(1, 3) {
        text.push_str("node N0 name=GENNODE\n");
        let edges = rng.range(1, 4);
        for n in 0..edges {
            text.push_str(&format!("route N{} via=N{}\n", n + 1, n + 1));
        }
    }

    text
}

/// Builds the concrete twin of `model`: same schedules and partitions,
/// no processes, with the degraded-schedule binding, ARQ tracking and
/// mesh edge count mirrored from the exploration options.
fn build_twin(model: &SystemModel) -> Option<crate::system::AirSystem> {
    let ts = transition_system_for(model)?;
    let schedules = ScheduleSet::try_new(model.schedules.clone()).ok()?;
    let mut builder = SystemBuilder::new(schedules).with_exploration_depth(0);
    for partition in &model.partitions {
        builder = builder.with_partition(PartitionConfig::new(partition.clone()));
    }
    let mut system = builder.build_unchecked().ok()?;
    let options = ts.options();
    if let Some(degraded) = options.degraded_schedule {
        system.set_degraded_schedule(degraded);
    }
    if options.arq {
        system.enable_arq_tracking();
    }
    system.configure_mesh_edges(options.mesh_edges);
    Some(system)
}

/// The abstract state `events` leads to from the initial state, or `None`
/// if any event is disabled along the way.
fn predict(model: &SystemModel, witness: &Witness) -> Option<AbstractState> {
    let ts = transition_system_for(model)?;
    let mut state = ts.initial_state();
    for &event in &witness.events {
        state = ts.step(&state, event)?.state;
    }
    Some(state)
}

/// Runs `count` generated configurations starting at `first_seed` through
/// lint → exploration (to `depth` events) → witness minimization →
/// concrete replay, and reports every abstraction divergence found.
pub fn run_fuzz(first_seed: u64, count: usize, depth: usize) -> FuzzReport {
    let config = ExploreConfig {
        depth,
        ..ExploreConfig::default()
    };
    let mut report = FuzzReport::default();
    for i in 0..count {
        let seed = first_seed.wrapping_add(i as u64);
        let text = generate_config_text(seed);
        let doc = match air_tools::config::parse(&text) {
            Ok(doc) => doc,
            // The generator must always emit parsable text; a parse
            // failure is itself a divergence-grade defect.
            Err(_) => {
                report.cases += 1;
                let empty = AbstractState {
                    schedule: air_model::ScheduleId(0),
                    modes: Default::default(),
                    link: LinkState::Absent,
                    arq: ArqHealth::Absent,
                    mesh_down: 0,
                };
                report.divergences.push(Divergence {
                    seed,
                    finding: air_lint::Code::ParseError,
                    witness: Witness::default(),
                    predicted: empty.clone(),
                    observed: empty,
                });
                continue;
            }
        };
        let model = SystemModel::from_config(&doc);
        report.cases += 1;
        let exploration = explore_with(&model, &config);
        report.findings += exploration.counterexamples.len();
        for cx in &exploration.counterexamples {
            let minimized = minimize_witness_with(&model, cx, &config);
            if minimized.events.len() < cx.witness.events.len() {
                report.minimized += 1;
            }
            let Some(predicted) = predict(&model, &minimized) else {
                continue;
            };
            let Some(mut twin) = build_twin(&model) else {
                continue;
            };
            replay_witness(&mut twin, &minimized, 2);
            let observed = observe_abstract_state(&twin);
            report.replayed += 1;
            if observed != predicted {
                report.divergences.push(Divergence {
                    seed,
                    finding: cx.code,
                    witness: minimized,
                    predicted,
                    observed,
                });
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_configs_always_parse() {
        for seed in 0..64 {
            let text = generate_config_text(seed);
            air_tools::config::parse(&text).unwrap_or_else(|e| {
                panic!("seed {seed} produced unparsable text: {e:?}\n{text}")
            });
        }
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(generate_config_text(7), generate_config_text(7));
        assert_ne!(generate_config_text(7), generate_config_text(8));
    }

    #[test]
    fn a_small_farm_run_finds_no_divergences() {
        let report = run_fuzz(1000, 16, 3);
        assert_eq!(report.cases, 16);
        let rendered: Vec<String> =
            report.divergences.iter().map(|d| d.to_string()).collect();
        assert!(rendered.is_empty(), "{}", rendered.join("\n"));
        // The generator shapes must actually exercise the explorer.
        assert!(report.findings > 0, "no findings across 16 fuzz cases");
        assert!(report.replayed > 0, "no witness ever replayed");
    }
}
