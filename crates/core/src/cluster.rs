//! A two-node AIR cluster: physically separated partitions exchanging
//! messages over the inter-node communication infrastructure (Sect. 2.1).
//!
//! Each node is a complete [`AirSystem`] (its own machine, PMK, schedules,
//! partitions); the cluster steps both in clock lockstep and shuttles link
//! frames between them. Each node's [`air_hw::RedundantLink`] models its
//! dual network adapters (primary + standby), so the end-to-end latency of
//! a frame is the sum of the two nodes' configured link latencies on the
//! paths the frame takes.
//!
//! Channel identifiers are global integration data: a channel configured
//! with a [`air_ports::Destination::Remote`] on the sending node must be
//! configured with the same id and a local destination on the receiving
//! node (exactly how the Sect. 2.1 transport resolves "partitions remote
//! to one another").
//!
//! Joining two systems into a cluster enables the reliable transport
//! ([`air_ports::ArqEndpoint`]) on both nodes by default: cluster channels
//! are sequenced, acknowledged, retransmitted on loss and delivered
//! exactly once in order. Pass an explicit `None` to
//! [`AirCluster::new_with`] to get the legacy best-effort link (frame loss
//! is then only *detected*, via sequence gaps, not repaired).

use std::fmt;

use air_hw::link::LinkEndpoint;
use air_hw::redundant::LinkRole;
use air_model::Ticks;
use air_ports::wire::bytes_look_like_ack;
use air_ports::ArqConfig;

use crate::system::AirSystem;

/// Which node of the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Node {
    /// The first node.
    A,
    /// The second node.
    B,
}

/// Why two systems could not be joined into a cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ClusterError {
    /// The two systems' clocks disagree: lockstep requires both to be
    /// freshly built or equally advanced.
    ClockMisaligned {
        /// Node A's clock at join time.
        node_a: Ticks,
        /// Node B's clock at join time.
        node_b: Ticks,
    },
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::ClockMisaligned { node_a, node_b } => write!(
                f,
                "cluster nodes must start in clock lockstep \
                 (node A at {node_a}, node B at {node_b})"
            ),
        }
    }
}

impl std::error::Error for ClusterError {}

/// A point-in-time snapshot of one node's link health: which adapter is
/// active, how close it is to failover, and the reliable-transport
/// counters behind the delivery guarantee.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkHealth {
    /// The adapter currently carrying traffic.
    pub active: LinkRole,
    /// Consecutive loss units (retransmission-timeout rounds) observed on
    /// the active adapter.
    pub consecutive_losses: u32,
    /// Loss streak at which the node fails over (0 disables failover).
    pub failover_threshold: u32,
    /// Total primary→secondary failovers so far.
    pub failovers: u64,
    /// Total secondary→primary reverts so far.
    pub reverts: u64,
    /// Frames retransmitted by the reliable transport.
    pub retransmissions: u64,
    /// Duplicate frames suppressed at the receiver.
    pub duplicates_suppressed: u64,
    /// Out-of-order frames discarded at the receiver (later retransmitted
    /// by the peer).
    pub out_of_order_discarded: u64,
    /// Acknowledgement frames sent.
    pub acks_sent: u64,
}

/// Two AIR systems joined by the (dual redundant) inter-node link.
#[derive(Debug)]
pub struct AirCluster {
    node_a: AirSystem,
    node_b: AirSystem,
    frames_a_to_b: u64,
    frames_b_to_a: u64,
    acks_a_to_b: u64,
    acks_b_to_a: u64,
}

impl AirCluster {
    /// Joins two systems into a cluster with the reliable transport
    /// enabled on both nodes (default [`ArqConfig`]).
    ///
    /// # Errors
    ///
    /// [`ClusterError::ClockMisaligned`] if the two systems' clocks are
    /// not aligned — lockstep is the whole point.
    pub fn new(node_a: AirSystem, node_b: AirSystem) -> Result<Self, ClusterError> {
        Self::new_with(node_a, node_b, Some(ArqConfig::default()))
    }

    /// Joins two systems into a cluster, choosing the transport: pass a
    /// config to enable the reliable transport (sequencing, ACKs,
    /// retransmission, failover) on both nodes, or `None` for the legacy
    /// best-effort link.
    ///
    /// # Errors
    ///
    /// [`ClusterError::ClockMisaligned`] if the two systems' clocks are
    /// not aligned.
    pub fn new_with(
        mut node_a: AirSystem,
        mut node_b: AirSystem,
        transport: Option<ArqConfig>,
    ) -> Result<Self, ClusterError> {
        if node_a.now() != node_b.now() {
            return Err(ClusterError::ClockMisaligned {
                node_a: node_a.now(),
                node_b: node_b.now(),
            });
        }
        if let Some(config) = transport {
            node_a.ipc_mut().enable_reliable_transport(config);
            node_b.ipc_mut().enable_reliable_transport(config);
        }
        Ok(Self {
            node_a,
            node_b,
            frames_a_to_b: 0,
            frames_b_to_a: 0,
            acks_a_to_b: 0,
            acks_b_to_a: 0,
        })
    }

    /// The requested node.
    pub fn node(&self, node: Node) -> &AirSystem {
        match node {
            Node::A => &self.node_a,
            Node::B => &self.node_b,
        }
    }

    /// Mutable access to the requested node.
    pub fn node_mut(&mut self, node: Node) -> &mut AirSystem {
        match node {
            Node::A => &mut self.node_a,
            Node::B => &mut self.node_b,
        }
    }

    /// Data frames shuttled A→B so far (acknowledgements not included).
    pub fn frames_a_to_b(&self) -> u64 {
        self.frames_a_to_b
    }

    /// Data frames shuttled B→A so far (acknowledgements not included).
    pub fn frames_b_to_a(&self) -> u64 {
        self.frames_b_to_a
    }

    /// Acknowledgement frames shuttled A→B so far.
    pub fn acks_a_to_b(&self) -> u64 {
        self.acks_a_to_b
    }

    /// Acknowledgement frames shuttled B→A so far.
    pub fn acks_b_to_a(&self) -> u64 {
        self.acks_b_to_a
    }

    /// A snapshot of `node`'s link health: active adapter, loss streak,
    /// failover/revert totals and the reliable-transport counters.
    pub fn link_health(&self, node: Node) -> LinkHealth {
        let sys = self.node(node);
        let link = &sys.machine.link;
        LinkHealth {
            active: link.active(),
            consecutive_losses: link.consecutive_losses(),
            failover_threshold: link.failover_threshold(),
            failovers: link.failovers(),
            reverts: link.reverts(),
            retransmissions: sys.ipc.retransmissions(),
            duplicates_suppressed: sys.ipc.duplicates_suppressed(),
            out_of_order_discarded: sys.ipc.out_of_order_discarded(),
            acks_sent: sys.ipc.acks_sent(),
        }
    }

    /// Advances both nodes by one clock tick, then shuttles any frames
    /// that completed their sender-side propagation onto the receiving
    /// node's inbound queue.
    pub fn step(&mut self) {
        self.node_a.step();
        self.node_b.step();
        self.shuttle();
    }

    /// Runs `n` lockstep ticks.
    pub fn run_for(&mut self, n: u64) {
        for _ in 0..n {
            self.step();
        }
    }

    fn shuttle(&mut self) {
        let now_a = self.node_a.now().as_u64();
        let now_b = self.node_b.now().as_u64();
        // Outbound frames of A become inbound frames of B (arriving at B's
        // endpoint A after B's own adapter latency), and vice versa.
        while let Some(bytes) = self
            .node_a
            .machine_mut()
            .link
            .receive(LinkEndpoint::B, now_a)
        {
            if bytes_look_like_ack(&bytes) {
                self.acks_a_to_b += 1;
            } else {
                self.frames_a_to_b += 1;
            }
            self.node_b
                .machine_mut()
                .link
                .send(LinkEndpoint::B, now_b, bytes);
        }
        while let Some(bytes) = self
            .node_b
            .machine_mut()
            .link
            .receive(LinkEndpoint::B, now_b)
        {
            if bytes_look_like_ack(&bytes) {
                self.acks_b_to_a += 1;
            } else {
                self.frames_b_to_a += 1;
            }
            self.node_a
                .machine_mut()
                .link
                .send(LinkEndpoint::B, now_a, bytes);
        }
    }

    /// The common cluster time.
    pub fn now(&self) -> Ticks {
        self.node_a.now()
    }
}
