//! A two-node AIR cluster: physically separated partitions exchanging
//! messages over the inter-node communication infrastructure (Sect. 2.1).
//!
//! Each node is a complete [`AirSystem`] (its own machine, PMK, schedules,
//! partitions); the cluster steps both in clock lockstep and shuttles link
//! frames between them. Each node's [`air_hw::link::InterNodeLink`] models
//! its network adapter, so the end-to-end latency of a frame is the sum of
//! the two nodes' configured link latencies.
//!
//! Channel identifiers are global integration data: a channel configured
//! with a [`air_ports::Destination::Remote`] on the sending node must be
//! configured with the same id and a local destination on the receiving
//! node (exactly how the Sect. 2.1 transport resolves "partitions remote
//! to one another").

use air_hw::link::LinkEndpoint;
use air_model::Ticks;

use crate::system::AirSystem;

/// Which node of the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Node {
    /// The first node.
    A,
    /// The second node.
    B,
}

/// Two AIR systems joined by the inter-node link.
#[derive(Debug)]
pub struct AirCluster {
    node_a: AirSystem,
    node_b: AirSystem,
    frames_a_to_b: u64,
    frames_b_to_a: u64,
}

impl AirCluster {
    /// Joins two systems into a cluster.
    ///
    /// # Panics
    ///
    /// Panics if the two systems' clocks are not aligned (both must be
    /// freshly built or equally advanced) — lockstep is the whole point.
    pub fn new(node_a: AirSystem, node_b: AirSystem) -> Self {
        assert_eq!(
            node_a.now(),
            node_b.now(),
            "cluster nodes must start in clock lockstep"
        );
        Self {
            node_a,
            node_b,
            frames_a_to_b: 0,
            frames_b_to_a: 0,
        }
    }

    /// The requested node.
    pub fn node(&self, node: Node) -> &AirSystem {
        match node {
            Node::A => &self.node_a,
            Node::B => &self.node_b,
        }
    }

    /// Mutable access to the requested node.
    pub fn node_mut(&mut self, node: Node) -> &mut AirSystem {
        match node {
            Node::A => &mut self.node_a,
            Node::B => &mut self.node_b,
        }
    }

    /// Frames shuttled A→B so far.
    pub fn frames_a_to_b(&self) -> u64 {
        self.frames_a_to_b
    }

    /// Frames shuttled B→A so far.
    pub fn frames_b_to_a(&self) -> u64 {
        self.frames_b_to_a
    }

    /// Advances both nodes by one clock tick, then shuttles any frames
    /// that completed their sender-side propagation onto the receiving
    /// node's inbound queue.
    pub fn step(&mut self) {
        self.node_a.step();
        self.node_b.step();
        self.shuttle();
    }

    /// Runs `n` lockstep ticks.
    pub fn run_for(&mut self, n: u64) {
        for _ in 0..n {
            self.step();
        }
    }

    fn shuttle(&mut self) {
        let now_a = self.node_a.now().as_u64();
        let now_b = self.node_b.now().as_u64();
        // Outbound frames of A become inbound frames of B (arriving at B's
        // endpoint A after B's own adapter latency), and vice versa.
        while let Some(bytes) = self
            .node_a
            .machine_mut()
            .link
            .receive(LinkEndpoint::B, now_a)
        {
            self.frames_a_to_b += 1;
            self.node_b
                .machine_mut()
                .link
                .send(LinkEndpoint::B, now_b, bytes);
        }
        while let Some(bytes) = self
            .node_b
            .machine_mut()
            .link
            .receive(LinkEndpoint::B, now_b)
        {
            self.frames_b_to_a += 1;
            self.node_a
                .machine_mut()
                .link
                .send(LinkEndpoint::B, now_a, bytes);
        }
    }

    /// The common cluster time.
    pub fn now(&self) -> Ticks {
        self.node_a.now()
    }
}
