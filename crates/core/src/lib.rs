//! # air-core — AIR system composition and simulation
//!
//! This crate assembles every layer of the AIR architecture (Fig. 1) into a
//! runnable system and drives it tick by tick, exactly as the clock ISR of
//! the paper's prototype would:
//!
//! 1. the machine advances one tick and raises the clock interrupt
//!    ([`air_hw::Machine::advance_tick`]);
//! 2. the **AIR Partition Scheduler** (Algorithm 1) checks for a partition
//!    preemption point and, with mode-based schedules, makes pending
//!    switches effective at MTF boundaries;
//! 3. on a preemption point, the **AIR Partition Dispatcher** (Algorithm 2)
//!    saves/restores contexts, computes the heir's elapsed ticks, and
//!    applies pending schedule-change actions at first dispatch;
//! 4. the heir partition's **PAL surrogate tick announcement**
//!    (Algorithm 3) announces the elapsed ticks to its POS and verifies
//!    process deadlines, reporting violations to **health monitoring**;
//! 5. inside the partition's window, the POS process scheduler picks the
//!    heir process (Eq. 14) and its application body executes, invoking
//!    **APEX** services;
//! 6. at partition boundaries the PMK routes **interpartition messages**
//!    (local copies and link frames).
//!
//! The [`builder::SystemBuilder`] is the integrator: it validates the
//! scheduling tables against the formal model (Eq. 21–23), loads spatial
//! configurations, wires ports and channels, and boots every partition
//! through its ARINC 653 initialisation (coldStart → create processes,
//! ports, error handler → normal).
//!
//! [`prototype`] reconstructs the paper's Sect. 6 demonstration system —
//! four satellite-function partitions over the Fig. 8 scheduling tables,
//! with the injectable faulty process on P1.
//!
//! ## Quickstart
//!
//! ```
//! use air_core::prototype::PrototypeHarness;
//!
//! let mut proto = PrototypeHarness::build();
//! proto.system.run_for(2 * 1300); // two major time frames
//! assert_eq!(proto.system.trace().deadline_misses().len(), 0);
//! proto.fault.activate();
//! proto.system.run_for(4 * 1300);
//! assert!(!proto.system.trace().deadline_misses().is_empty());
//! ```

#![warn(missing_docs)]

pub mod builder;
pub mod campaign;
pub mod cluster;
pub mod fuzz;
pub mod link_campaign;
pub mod mesh;
pub mod prototype;
pub mod replay;
pub mod system;
pub mod trace;
pub mod workload;

pub use builder::{PartitionConfig, ProcessConfig, SystemBuilder, DEFAULT_EXPLORATION_DEPTH};
pub use replay::{observe_abstract_state, replay_witness, ReplayReport};
pub use campaign::{
    default_horizon, standard_plan, CampaignOutcome, CampaignRunner, CampaignScratch, CampaignSim,
    EscalationTally, FaultRecord,
};
pub use cluster::{AirCluster, ClusterError, LinkHealth, Node};
pub use link_campaign::{
    link_plan, planned_horizon, LinkCampaignOutcome, LinkCampaignRunner, LinkSim,
};
pub use system::{AirSystem, KeyAction};
pub use trace::{RecoveryDisposition, Trace, TraceEvent};
pub use workload::{FaultSwitch, ProcessApi, ProcessBody};
