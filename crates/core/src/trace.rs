//! Event trace of a simulation run: the observability layer every
//! experiment in EXPERIMENTS.md reads its numbers from.

use air_hm::ErrorId;
use air_hw::inject::FaultClass;
use air_hw::redundant::LinkRole;
use air_model::ids::GlobalProcessId;
use air_model::{PartitionId, ScheduleChangeAction, ScheduleId, Ticks};

/// How an HM decision was discharged — the terminal edge of every
/// report → classify → act chain, recorded so fault-injection campaigns
/// can count escalations without re-deriving them from restarts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryDisposition {
    /// The partition's error handler (or process-level fallback) contained
    /// the error at process scope.
    HandlerContained,
    /// The error was logged and deliberately ignored (log-N-then-act below
    /// threshold, or an `Ignore` table entry).
    Logged,
    /// Partition warm restart.
    PartitionWarmRestart,
    /// Partition cold restart.
    PartitionColdRestart,
    /// The partition was stopped (set idle).
    PartitionStopped,
    /// Module-level reset: every partition cold-restarted.
    ModuleReset,
    /// Module-level shutdown: the system halted.
    ModuleShutdown,
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TraceEvent {
    /// The dispatcher switched the active partition.
    PartitionSwitch {
        /// When.
        at: Ticks,
        /// Previous active partition (`None`: idle).
        from: Option<PartitionId>,
        /// New active partition (`None`: idle).
        to: Option<PartitionId>,
    },
    /// A pending schedule switch became effective (MTF boundary).
    ScheduleSwitch {
        /// When.
        at: Ticks,
        /// The newly effective schedule.
        to: ScheduleId,
    },
    /// A schedule-change action was applied to a partition at its first
    /// dispatch after a switch (Algorithm 2 line 9).
    ScheduleChangeActionApplied {
        /// When.
        at: Ticks,
        /// The affected partition.
        partition: PartitionId,
        /// The applied action.
        action: ScheduleChangeAction,
    },
    /// The PAL detected a process deadline violation (Algorithm 3 line 6).
    DeadlineMiss {
        /// Detection instant.
        at: Ticks,
        /// The violating process.
        process: GlobalProcessId,
        /// The missed absolute deadline `D′`.
        deadline: Ticks,
    },
    /// Health monitoring recorded an error report.
    HmReport {
        /// When.
        at: Ticks,
        /// The error.
        error: ErrorId,
        /// The partition it is contained in, if partition-scoped.
        partition: Option<PartitionId>,
    },
    /// A partition was restarted (HM action or schedule-change action).
    PartitionRestart {
        /// When.
        at: Ticks,
        /// The restarted partition.
        partition: PartitionId,
        /// Whether state was preserved (warm) or not (cold).
        warm: bool,
    },
    /// A partition was stopped (set idle).
    PartitionStop {
        /// When.
        at: Ticks,
        /// The stopped partition.
        partition: PartitionId,
    },
    /// A fault-injection campaign delivered a planned fault into the
    /// machine (marker event; the detection, if any, appears as a later
    /// [`TraceEvent::HmReport`]).
    FaultInjected {
        /// Injection instant.
        at: Ticks,
        /// The injected fault class.
        class: FaultClass,
        /// The partition the fault aims at, when partition-scoped.
        partition: Option<PartitionId>,
    },
    /// A health-monitoring decision was enforced.
    RecoveryApplied {
        /// When.
        at: Ticks,
        /// The error the decision answered.
        error: ErrorId,
        /// The partition the recovery applied to (`None`: module scope).
        partition: Option<PartitionId>,
        /// What was actually done.
        disposition: RecoveryDisposition,
    },
    /// The reliable transport retransmitted its in-flight window after a
    /// timeout round (loss evidence on the active link).
    FrameRetransmitted {
        /// When.
        at: Ticks,
        /// Sequence number of the window head.
        seq: u64,
        /// The head's retry count after this round.
        retries: u32,
    },
    /// The redundant link pair switched its active side — a threshold
    /// failover to the standby, or revertive switching back.
    LinkFailover {
        /// When.
        at: Ticks,
        /// The newly active link role.
        to: LinkRole,
    },
    /// The system entered degraded mode: link failover triggered the
    /// Sect. 4 mode-based switch to the degraded schedule.
    DegradedModeEntered {
        /// When.
        at: Ticks,
        /// The degraded schedule now requested.
        schedule: ScheduleId,
    },
    /// The system left degraded mode: the link recovered and the nominal
    /// schedule was requested again.
    DegradedModeExited {
        /// When.
        at: Ticks,
        /// The nominal schedule now requested.
        schedule: ScheduleId,
    },
    /// A mesh node relayed a space packet one hop toward its destination.
    PacketForwarded {
        /// When.
        at: Ticks,
        /// APID of the forwarded packet.
        apid: u16,
        /// Final destination node.
        dst: u16,
        /// The neighbour the packet left through.
        via: u16,
        /// Remaining hop budget after the decrement.
        ttl: u8,
    },
    /// A mesh node discarded a space packet instead of relaying it.
    PacketDropped {
        /// When.
        at: Ticks,
        /// APID of the dropped packet.
        apid: u16,
        /// Final destination node the packet never reached.
        dst: u16,
        /// Why it was dropped.
        reason: PacketDropReason,
    },
    /// A telecommand passed acceptance verification at its executor
    /// (PUS service 1 subservice 1).
    CommandAccepted {
        /// When.
        at: Ticks,
        /// APID of the command.
        apid: u16,
        /// Source sequence count of the command.
        seq: u16,
    },
    /// A telecommand began executing (PUS service 1 subservice 3).
    CommandStarted {
        /// When.
        at: Ticks,
        /// APID of the command.
        apid: u16,
        /// Source sequence count of the command.
        seq: u16,
    },
    /// A telecommand finished executing (PUS service 1 subservice 7).
    CommandCompleted {
        /// When.
        at: Ticks,
        /// APID of the command.
        apid: u16,
        /// Source sequence count of the command.
        seq: u16,
    },
    /// The commander received a verification report for one of its
    /// outstanding telecommands.
    CommandAckReceived {
        /// When.
        at: Ticks,
        /// APID of the acknowledged command.
        apid: u16,
        /// Source sequence count of the acknowledged command.
        seq: u16,
        /// The verification stage the report confirms.
        stage: air_ports::pus::AckStage,
    },
    /// A mesh node published an event report (PUS service 5) toward the
    /// ground node.
    TelemetryPublished {
        /// When.
        at: Ticks,
        /// APID the report was published on.
        apid: u16,
        /// The report's sequence count.
        seq: u16,
    },
    /// The ground node received an event report.
    TelemetryReceived {
        /// When.
        at: Ticks,
        /// APID of the received report.
        apid: u16,
        /// The report's sequence count.
        seq: u16,
        /// The node that published it.
        src: u16,
    },
}

/// Why a mesh node discarded a packet instead of forwarding it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketDropReason {
    /// The hop budget reached zero before the destination.
    TtlExpired,
    /// The node's routing table has no entry for the destination.
    NoRoute,
}

impl TraceEvent {
    /// The instant of the event.
    pub fn at(&self) -> Ticks {
        match self {
            TraceEvent::PartitionSwitch { at, .. }
            | TraceEvent::ScheduleSwitch { at, .. }
            | TraceEvent::ScheduleChangeActionApplied { at, .. }
            | TraceEvent::DeadlineMiss { at, .. }
            | TraceEvent::HmReport { at, .. }
            | TraceEvent::PartitionRestart { at, .. }
            | TraceEvent::PartitionStop { at, .. }
            | TraceEvent::FaultInjected { at, .. }
            | TraceEvent::RecoveryApplied { at, .. }
            | TraceEvent::FrameRetransmitted { at, .. }
            | TraceEvent::LinkFailover { at, .. }
            | TraceEvent::DegradedModeEntered { at, .. }
            | TraceEvent::DegradedModeExited { at, .. }
            | TraceEvent::PacketForwarded { at, .. }
            | TraceEvent::PacketDropped { at, .. }
            | TraceEvent::CommandAccepted { at, .. }
            | TraceEvent::CommandStarted { at, .. }
            | TraceEvent::CommandCompleted { at, .. }
            | TraceEvent::CommandAckReceived { at, .. }
            | TraceEvent::TelemetryPublished { at, .. }
            | TraceEvent::TelemetryReceived { at, .. } => *at,
        }
    }
}

/// The recorded event stream plus aggregate counters.
#[derive(Debug, Default)]
pub struct Trace {
    events: Vec<TraceEvent>,
    /// Hard cap on retained events (long benches would otherwise grow
    /// unbounded); counters keep counting past it.
    retain_limit: usize,
    /// Total events ever recorded (including ones dropped by the cap).
    recorded: u64,
    partition_switches: u64,
    deadline_miss_count: u64,
    schedule_switch_count: u64,
    /// Run-length-encoded occupancy: who held the CPU, for how long.
    gantt: Vec<(Option<PartitionId>, u64)>,
}

impl Trace {
    /// Default retained-event cap.
    pub const DEFAULT_RETAIN: usize = 1 << 20;

    /// Creates an empty trace.
    pub fn new() -> Self {
        Self {
            retain_limit: Self::DEFAULT_RETAIN,
            ..Self::default()
        }
    }

    /// Records `event`.
    ///
    /// Events recorded within the same tick keep their emission order: the
    /// retained vector is append-only (the cap drops the *tail*, never
    /// reorders), so an event's index is a stable sequence number — equal
    /// runs produce byte-identical [`render_log`](Trace::render_log)
    /// output, which is what the fault-campaign differential tests diff.
    pub fn record(&mut self, event: TraceEvent) {
        match &event {
            TraceEvent::PartitionSwitch { .. } => self.partition_switches += 1,
            TraceEvent::DeadlineMiss { .. } => self.deadline_miss_count += 1,
            TraceEvent::ScheduleSwitch { .. } => self.schedule_switch_count += 1,
            _ => {}
        }
        self.recorded += 1;
        if self.events.len() < self.retain_limit {
            self.events.push(event);
        }
    }

    /// All retained events, in order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Total events ever recorded, including any dropped by the retention
    /// cap (counter, not capped).
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Retained events with their stable sequence numbers. The sequence
    /// number is assigned at recording time (it is the retained index), so
    /// two events at the same tick always compare in emission order.
    pub fn sequenced(&self) -> impl Iterator<Item = (u64, &TraceEvent)> {
        self.events.iter().enumerate().map(|(i, e)| (i as u64, e))
    }

    /// Renders the retained events as a canonical text log, one line per
    /// event: `seq tick event`. Byte-stable for equal runs (same seed ⇒
    /// identical bytes), which makes campaign determinism checkable with a
    /// plain string comparison.
    pub fn render_log(&self) -> String {
        let mut out = String::new();
        self.render_log_into(&mut out);
        out
    }

    /// Appends the canonical text log to `out` without clearing it —
    /// callers that render many runs (campaign repeat probes, fleet
    /// machines) clear and reuse one buffer instead of allocating a fresh
    /// `String` per run. Byte-for-byte identical to
    /// [`render_log`](Trace::render_log).
    pub fn render_log_into(&self, out: &mut String) {
        use std::fmt::Write;
        for (seq, event) in self.sequenced() {
            let _ = writeln!(out, "{seq:06} t={} {event:?}", event.at().as_u64());
        }
    }

    /// Retained deadline-miss events.
    pub fn deadline_misses(&self) -> Vec<&TraceEvent> {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::DeadlineMiss { .. }))
            .collect()
    }

    /// Retained schedule-switch events.
    pub fn schedule_switches(&self) -> Vec<&TraceEvent> {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::ScheduleSwitch { .. }))
            .collect()
    }

    /// Total partition context switches (counter, not capped).
    pub fn partition_switch_count(&self) -> u64 {
        self.partition_switches
    }

    /// Total deadline misses (counter, not capped).
    pub fn deadline_miss_count(&self) -> u64 {
        self.deadline_miss_count
    }

    /// Total schedule switches (counter, not capped).
    pub fn schedule_switch_count(&self) -> u64 {
        self.schedule_switch_count
    }

    /// Records one tick of CPU occupancy by `holder` (run-length encoded;
    /// the simulator calls this every tick).
    pub fn record_occupancy(&mut self, holder: Option<PartitionId>) {
        match self.gantt.last_mut() {
            Some((h, len)) if *h == holder => *len += 1,
            _ => self.gantt.push((holder, 1)),
        }
    }

    /// The run-length-encoded occupancy history:
    /// `(partition-or-idle, ticks)` segments in time order.
    pub fn occupancy(&self) -> &[(Option<PartitionId>, u64)] {
        &self.gantt
    }

    /// Renders the recorded occupancy as an ASCII Gantt strip, one
    /// character per `resolution` ticks (`0`–`9` for partitions by id,
    /// `.` for idle) — the *actual* execution counterpart of the planned
    /// Fig. 8 timelines, for eyeballing planned-vs-actual.
    ///
    /// # Panics
    ///
    /// Panics if `resolution` is zero.
    pub fn render_gantt(&self, resolution: u64) -> String {
        assert!(resolution > 0, "resolution must be positive");
        let mut out = String::new();
        let mut col_fill: u64 = 0;
        let mut col_char: Option<Option<PartitionId>> = None;
        for &(holder, len) in &self.gantt {
            let mut remaining = len;
            while remaining > 0 {
                if col_char.is_none() {
                    col_char = Some(holder);
                }
                let take = remaining.min(resolution - col_fill);
                col_fill += take;
                remaining -= take;
                if col_fill == resolution {
                    let ch = match col_char.expect("set above") {
                        Some(p) => {
                            char::from_digit(p.as_u32().min(9), 10).expect("digit")
                        }
                        None => '.',
                    };
                    out.push(ch);
                    col_fill = 0;
                    col_char = None;
                }
            }
        }
        out
    }

    /// Clears retained events and counters.
    pub fn reset(&mut self) {
        self.events.clear();
        self.recorded = 0;
        self.partition_switches = 0;
        self.deadline_miss_count = 0;
        self.schedule_switch_count = 0;
        self.gantt.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use air_model::ids::ProcessId;

    #[test]
    fn counters_and_filters() {
        let mut t = Trace::new();
        t.record(TraceEvent::PartitionSwitch {
            at: Ticks(1),
            from: None,
            to: Some(PartitionId(0)),
        });
        t.record(TraceEvent::DeadlineMiss {
            at: Ticks(2),
            process: GlobalProcessId::new(PartitionId(0), ProcessId(1)),
            deadline: Ticks(1),
        });
        t.record(TraceEvent::ScheduleSwitch {
            at: Ticks(3),
            to: ScheduleId(1),
        });
        assert_eq!(t.partition_switch_count(), 1);
        assert_eq!(t.deadline_miss_count(), 1);
        assert_eq!(t.schedule_switch_count(), 1);
        assert_eq!(t.deadline_misses().len(), 1);
        assert_eq!(t.schedule_switches().len(), 1);
        assert_eq!(t.events().len(), 3);
        assert_eq!(t.events()[1].at(), Ticks(2));
        t.reset();
        assert!(t.events().is_empty());
        assert_eq!(t.deadline_miss_count(), 0);
    }

    #[test]
    fn occupancy_rle_and_gantt() {
        let mut t = Trace::new();
        for _ in 0..10 {
            t.record_occupancy(Some(PartitionId(0)));
        }
        for _ in 0..5 {
            t.record_occupancy(None);
        }
        for _ in 0..5 {
            t.record_occupancy(Some(PartitionId(2)));
        }
        assert_eq!(
            t.occupancy(),
            &[
                (Some(PartitionId(0)), 10),
                (None, 5),
                (Some(PartitionId(2)), 5)
            ]
        );
        // Resolution 5: columns take the holder of their first tick.
        assert_eq!(t.render_gantt(5), "00.2");
        assert_eq!(t.render_gantt(1).len(), 20);
        t.reset();
        assert!(t.occupancy().is_empty());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn gantt_zero_resolution_panics() {
        Trace::new().render_gantt(0);
    }

    fn same_tick_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::HmReport {
                at: Ticks(7),
                error: ErrorId::DeadlineMissed,
                partition: Some(PartitionId(0)),
            },
            TraceEvent::RecoveryApplied {
                at: Ticks(7),
                error: ErrorId::DeadlineMissed,
                partition: Some(PartitionId(0)),
                disposition: RecoveryDisposition::HandlerContained,
            },
            TraceEvent::FaultInjected {
                at: Ticks(7),
                class: FaultClass::SpuriousTrap,
                partition: None,
            },
        ]
    }

    #[test]
    fn same_tick_events_keep_emission_order() {
        let mut t = Trace::new();
        for e in same_tick_events() {
            t.record(e);
        }
        let seqs: Vec<u64> = t.sequenced().map(|(s, _)| s).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
        // Sorting by (tick, seq) must be the identity: the sequence number
        // is the tiebreaker that makes same-tick ordering total.
        let mut keyed: Vec<(u64, u64)> = t
            .sequenced()
            .map(|(s, e)| (e.at().as_u64(), s))
            .collect();
        let original = keyed.clone();
        keyed.sort();
        assert_eq!(keyed, original);
        assert_eq!(t.recorded(), 3);
    }

    #[test]
    fn render_log_is_byte_stable_across_equal_runs() {
        let build = || {
            let mut t = Trace::new();
            for e in same_tick_events() {
                t.record(e);
            }
            t.render_log()
        };
        let a = build();
        let b = build();
        assert_eq!(a, b);
        assert_eq!(a.lines().count(), 3);
        assert!(a.starts_with("000000 t=7 "), "{a}");
    }
}
