//! Application process bodies: the mockup workloads running inside
//! partitions.
//!
//! The prototype's partitions run "RTEMS-based mockup applications
//! representative of typical functions present in a satellite system"
//! (Sect. 6). A [`ProcessBody`] is such a mockup: a state machine invoked
//! once per clock tick *while its process is the running heir*, free to
//! invoke APEX services through the [`ProcessApi`]. Calling a waiting
//! service (e.g. `PERIODIC_WAIT`) mid-tick relinquishes the CPU from the
//! next tick on.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use air_apex::ApexPartition;
use air_hm::ErrorId;
use air_model::ids::ProcessId;
use air_model::{ScheduleId, Ticks};
use air_pmk::PartitionScheduler;
use air_ports::{Message, PortRegistry};

/// A shared on/off switch for fault injection (the prototype's "activating
/// the faulty process on P1" keyboard command, Sect. 6).
#[derive(Debug, Clone, Default)]
pub struct FaultSwitch(Arc<AtomicBool>);

impl FaultSwitch {
    /// Creates an inactive switch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Activates the fault.
    pub fn activate(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Deactivates the fault.
    pub fn deactivate(&self) {
        self.0.store(false, Ordering::Relaxed);
    }

    /// Toggles the fault; returns the new state.
    pub fn toggle(&self) -> bool {
        !self.0.fetch_xor(true, Ordering::Relaxed)
    }

    /// Whether the fault is active.
    pub fn is_active(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// Everything a process body may touch during its tick.
pub struct ProcessApi<'a> {
    /// Current time.
    pub now: Ticks,
    /// The calling process's identifier.
    pub me: ProcessId,
    /// The APEX instance of the owning partition.
    pub apex: &'a mut ApexPartition,
    /// The PMK port registry (interpartition communication services).
    pub ports: &'a mut PortRegistry,
    /// The AIR Partition Scheduler (module-schedule services; authority is
    /// checked by the service).
    pub scheduler: &'a mut PartitionScheduler,
    /// The partition's console output channel.
    pub console: &'a mut String,
    /// Errors raised this tick (raiser, error class, detail), drained by
    /// the PMK into health monitoring after the body returns.
    pub raised_errors: &'a mut Vec<(ProcessId, ErrorId, String)>,
}

impl ProcessApi<'_> {
    /// Writes a line to the partition's console window.
    pub fn log(&mut self, line: impl AsRef<str>) {
        self.console.push_str(line.as_ref());
        self.console.push('\n');
    }

    /// `SET_MODULE_SCHEDULE` on behalf of the owning partition.
    ///
    /// # Errors
    ///
    /// As [`air_apex::set_module_schedule`].
    pub fn set_module_schedule(&mut self, schedule: ScheduleId) -> air_apex::ApexResult<()> {
        air_apex::set_module_schedule(self.apex.descriptor(), self.scheduler, schedule)
    }

    /// `RAISE_APPLICATION_ERROR`: reports an application-detected error to
    /// health monitoring (handled at process level per the HM tables; the
    /// partition's error handler — or the configured fallback — decides
    /// the recovery).
    pub fn raise_application_error(&mut self, message: impl Into<String>) {
        self.raised_errors
            .push((self.me, ErrorId::ApplicationError, message.into()));
    }

    /// `SEND_QUEUING_MESSAGE` that reports failures to health monitoring
    /// instead of silently succeeding: a full destination queue (overflow)
    /// raises an [`ErrorId::IllegalRequest`] against the caller. Returns
    /// whether the message was accepted.
    pub fn send_queuing_reporting(&mut self, port: &str, payload: Vec<u8>) -> bool {
        match self
            .apex
            .send_queuing_message(self.ports, port, payload, self.now)
        {
            Ok(()) => true,
            Err(e) => {
                self.raised_errors.push((
                    self.me,
                    ErrorId::IllegalRequest,
                    format!("queuing overflow on '{port}': {e}"),
                ));
                false
            }
        }
    }

    /// `READ_SAMPLING_MESSAGE` that reports a stale read (validity
    /// `Invalid`: the message is older than the port's refresh period) to
    /// health monitoring as an [`ErrorId::ApplicationError`]. Returns the
    /// message when one was present, stale or not.
    pub fn read_sampling_reporting(&mut self, port: &str) -> Option<Message> {
        match self.apex.read_sampling_message(self.ports, port, self.now) {
            Ok((msg, validity)) => {
                if !validity.is_valid() {
                    self.raised_errors.push((
                        self.me,
                        ErrorId::ApplicationError,
                        format!("stale sampling message on '{port}'"),
                    ));
                }
                Some(msg)
            }
            Err(_) => None,
        }
    }

    /// `REPORT_APPLICATION_MESSAGE`: writes a diagnostic message to the
    /// partition's console (the prototype routes these to the partition's
    /// VITRAL window).
    pub fn report_application_message(&mut self, message: impl AsRef<str>) {
        self.log(message);
    }
}

/// A process application body, ticked while its process runs.
pub trait ProcessBody: Send {
    /// Executes one tick of the process's work.
    fn on_tick(&mut self, api: &mut ProcessApi<'_>);
}

impl<F: FnMut(&mut ProcessApi<'_>) + Send> ProcessBody for F {
    fn on_tick(&mut self, api: &mut ProcessApi<'_>) {
        self(api)
    }
}

// ---------------------------------------------------------------------------
// Library bodies
// ---------------------------------------------------------------------------

/// A periodic computation: burns `compute_ticks` per activation, then
/// calls `PERIODIC_WAIT`.
#[derive(Debug)]
pub struct PeriodicCompute {
    compute_ticks: u64,
    done_this_activation: u64,
    activations: u64,
}

impl PeriodicCompute {
    /// Creates a body computing `compute_ticks` per activation.
    pub fn new(compute_ticks: u64) -> Self {
        Self {
            compute_ticks,
            done_this_activation: 0,
            activations: 0,
        }
    }

    /// Completed activations.
    pub fn activations(&self) -> u64 {
        self.activations
    }
}

impl ProcessBody for PeriodicCompute {
    fn on_tick(&mut self, api: &mut ProcessApi<'_>) {
        self.done_this_activation += 1;
        if self.done_this_activation >= self.compute_ticks {
            self.done_this_activation = 0;
            self.activations += 1;
            let _ = api.apex.periodic_wait(api.me, api.now);
        }
    }
}

/// The injectable faulty process of Sect. 6: behaves like
/// [`PeriodicCompute`] until its [`FaultSwitch`] goes active, after which
/// it overruns forever (never reaching `PERIODIC_WAIT`), so its armed
/// deadline passes and the PAL detects the violation at P1's next
/// dispatch.
#[derive(Debug)]
pub struct FaultyPeriodic {
    inner: PeriodicCompute,
    switch: FaultSwitch,
}

impl FaultyPeriodic {
    /// Creates the faulty body: normal compute of `compute_ticks` per
    /// activation, overrun when `switch` is active.
    pub fn new(compute_ticks: u64, switch: FaultSwitch) -> Self {
        Self {
            inner: PeriodicCompute::new(compute_ticks),
            switch,
        }
    }
}

impl ProcessBody for FaultyPeriodic {
    fn on_tick(&mut self, api: &mut ProcessApi<'_>) {
        if self.switch.is_active() {
            // Malfunction: spin, consuming the window without completing.
            return;
        }
        self.inner.on_tick(api);
    }
}

/// A periodic producer writing a sampling message each activation, then
/// `PERIODIC_WAIT`.
#[derive(Debug)]
pub struct SamplingProducer {
    port: String,
    compute_ticks: u64,
    done: u64,
    seq: u64,
}

impl SamplingProducer {
    /// Creates a producer on sampling port `port`, computing
    /// `compute_ticks` before each write.
    pub fn new(port: impl Into<String>, compute_ticks: u64) -> Self {
        Self {
            port: port.into(),
            compute_ticks: compute_ticks.max(1),
            done: 0,
            seq: 0,
        }
    }
}

impl ProcessBody for SamplingProducer {
    fn on_tick(&mut self, api: &mut ProcessApi<'_>) {
        self.done += 1;
        if self.done >= self.compute_ticks {
            self.done = 0;
            let payload = format!("seq={} t={}", self.seq, api.now);
            self.seq += 1;
            let _ = api
                .apex
                .write_sampling_message(api.ports, &self.port, payload.into_bytes(), api.now);
            let _ = api.apex.periodic_wait(api.me, api.now);
        }
    }
}

/// A periodic consumer reading a sampling message each activation and
/// logging its validity.
#[derive(Debug)]
pub struct SamplingConsumer {
    port: String,
    reads: u64,
    valid_reads: u64,
}

impl SamplingConsumer {
    /// Creates a consumer on sampling port `port`.
    pub fn new(port: impl Into<String>) -> Self {
        Self {
            port: port.into(),
            reads: 0,
            valid_reads: 0,
        }
    }
}

impl ProcessBody for SamplingConsumer {
    fn on_tick(&mut self, api: &mut ProcessApi<'_>) {
        if let Ok((msg, validity)) = api.apex.read_sampling_message(api.ports, &self.port, api.now)
        {
            self.reads += 1;
            if validity.is_valid() {
                self.valid_reads += 1;
            }
            let text = String::from_utf8_lossy(&msg.payload).into_owned();
            api.log(format!("read {text} ({validity:?})"));
        }
        let _ = api.apex.periodic_wait(api.me, api.now);
    }
}

/// A periodic producer pushing one queuing message per activation.
#[derive(Debug)]
pub struct QueuingProducer {
    port: String,
    seq: u64,
    sent: u64,
    rejected: u64,
}

impl QueuingProducer {
    /// Creates a producer on queuing port `port`.
    pub fn new(port: impl Into<String>) -> Self {
        Self {
            port: port.into(),
            seq: 0,
            sent: 0,
            rejected: 0,
        }
    }
}

impl ProcessBody for QueuingProducer {
    fn on_tick(&mut self, api: &mut ProcessApi<'_>) {
        let payload = format!("frame-{}", self.seq);
        self.seq += 1;
        match api
            .apex
            .send_queuing_message(api.ports, &self.port, payload.into_bytes(), api.now)
        {
            Ok(()) => self.sent += 1,
            Err(_) => self.rejected += 1,
        }
        let _ = api.apex.periodic_wait(api.me, api.now);
    }
}

/// A periodic producer pushing one queuing message per activation until a
/// fixed budget is exhausted, then idling — the link campaigns use it so
/// "every offered message" is a closed set the invariants can count.
#[derive(Debug)]
pub struct FiniteQueuingProducer {
    port: String,
    budget: u64,
    seq: u64,
    sent: u64,
    rejected: u64,
}

impl FiniteQueuingProducer {
    /// Creates a producer on queuing port `port` that stops after `budget`
    /// accepted messages.
    pub fn new(port: impl Into<String>, budget: u64) -> Self {
        Self {
            port: port.into(),
            budget,
            seq: 0,
            sent: 0,
            rejected: 0,
        }
    }
}

impl ProcessBody for FiniteQueuingProducer {
    fn on_tick(&mut self, api: &mut ProcessApi<'_>) {
        if self.sent < self.budget {
            let payload = format!("frame-{}", self.seq);
            match api
                .apex
                .send_queuing_message(api.ports, &self.port, payload.into_bytes(), api.now)
            {
                Ok(()) => {
                    self.seq += 1;
                    self.sent += 1;
                }
                Err(_) => self.rejected += 1,
            }
        }
        let _ = api.apex.periodic_wait(api.me, api.now);
    }
}

/// A periodic consumer draining its queuing port each activation.
#[derive(Debug)]
pub struct QueuingConsumer {
    port: String,
    received: u64,
}

impl QueuingConsumer {
    /// Creates a consumer on queuing port `port`.
    pub fn new(port: impl Into<String>) -> Self {
        Self {
            port: port.into(),
            received: 0,
        }
    }
}

impl ProcessBody for QueuingConsumer {
    fn on_tick(&mut self, api: &mut ProcessApi<'_>) {
        while let Ok(msg) = api.apex.receive_queuing_message(api.ports, &self.port) {
            self.received += 1;
            let text = String::from_utf8_lossy(&msg.payload).into_owned();
            api.log(format!("rx {text}"));
        }
        let _ = api.apex.periodic_wait(api.me, api.now);
    }
}

/// An idle body: spins without ever blocking (background workload).
#[derive(Debug, Default)]
pub struct BusyLoop {
    ticks: u64,
}

impl BusyLoop {
    /// Creates an idle spinner.
    pub fn new() -> Self {
        Self::default()
    }
}

impl ProcessBody for BusyLoop {
    fn on_tick(&mut self, _api: &mut ProcessApi<'_>) {
        self.ticks += 1;
    }
}
