//! Deterministic fault-injection campaigns driving the Health Monitor.
//!
//! The paper's robustness argument (Sect. 2.4, Sect. 5) is that *any*
//! fault — spatial violation, spurious trap, link corruption, timing
//! interference, process overrun — surfaces through the existing
//! trap/interrupt paths, reaches AIR health monitoring, and is answered by
//! the configured recovery action *without perturbing the other
//! partitions*. This module turns that argument into an executable
//! experiment:
//!
//! * a fixed three-partition workload (control loop, telemetry producer,
//!   link-fed consumer) runs under a seeded [`FaultPlan`];
//! * each planned fault is realised through the machine's injection hooks
//!   (never by calling into the PMK's bookkeeping directly);
//! * every health-monitor log entry is attributed back to an injected
//!   fault, FIFO per fault class;
//! * the robustness invariants are checked into an
//!   [`air_model::verify::Report`]:
//!   1. **total detection** — every injected fault produces exactly one
//!      HM decision (no misses, no duplicates, no spurious extras);
//!   2. **isolation** — a fault aimed at partition A never perturbs
//!      partition B's dispatch windows or event stream (checked against an
//!      internally re-executed clean run);
//!   3. **log-N-then-act** — the deadline-miss policy escalates at exactly
//!      the configured occurrence count.
//!
//! Everything is a pure function of the plan seed: the runner executes the
//! faulted simulation twice and demands byte-identical trace logs.

use air_apex::ErrorHandlerTable;
use air_hm::{
    ErrorId, EscalatedProcessAction, HmLogEntry, HmTables, ModuleRecoveryAction,
    PartitionHmTable, ProcessRecoveryAction, SystemHmTable,
};
use air_hw::inject::{FaultClass, FaultEvent, FaultPlan};
use air_hw::link::LinkEndpoint;
use air_hw::machine::MachineConfig;
use air_hw::mmu::{AccessKind, Privilege};
use air_model::schedule::{PartitionRequirement, Schedule, TimeWindow};
use air_model::testkit;
use air_model::verify::{Report, Violation};
use air_model::{Partition, PartitionId, ProcessAttributes, ScheduleId, ScheduleSet, Ticks};
use air_model::{Deadline, Recurrence};
use air_ports::wire::Frame;
use air_ports::{ChannelConfig, Destination, PortAddr, QueuingPortConfig};

use crate::builder::{PartitionConfig, ProcessConfig, SystemBuilder};
use crate::system::AirSystem;
use crate::trace::{RecoveryDisposition, TraceEvent};
use crate::workload::{FaultSwitch, FaultyPeriodic, QueuingConsumer, QueuingProducer};

/// Major time frame of the campaign workload.
pub const CAMPAIGN_MTF: u64 = 60;
/// Log-N-then-act threshold of the control partition's deadline policy.
pub const OVERRUN_THRESHOLD: u32 = 2;
/// Virtual address probed at each window start (inside the app-data
/// region every partition maps at `0x5000_0000`).
const PROBE_VA: u64 = 0x5000_0010;
/// The page the MMU-tamper fault revokes.
const TAMPER_PAGE: u64 = 0x5000_0000;
/// Period of the remote peer's echo traffic (link frames into P2).
const ECHO_PERIOD: u64 = 7;
/// Channel carrying P1's outbound telemetry to the remote node.
const TX_CHANNEL: u32 = 1;
/// Channel carrying the remote peer's echo frames into P2.
const ECHO_CHANNEL: u32 = 2;

/// The control partition (overrun victim).
const P_CTL: PartitionId = PartitionId(0);
/// The telemetry producer partition.
const P_TX: PartitionId = PartitionId(1);
/// The link-fed consumer partition.
const P_RX: PartitionId = PartitionId(2);

/// A convenient all-classes plan for `seed`: `per_class` faults of every
/// [`FaultClass`], interleaved round-robin from tick 70 with 40-tick slots
/// and seeded jitter.
pub fn standard_plan(seed: u64, per_class: usize) -> FaultPlan {
    FaultPlan::generate(seed, &FaultClass::ALL, per_class, 70, 40, 11)
}

/// The default simulated horizon for `plan`: four MTFs past the last
/// planned fault, so trailing detections (worst case: a process overrun
/// discovered two frames later) land inside the run.
pub fn default_horizon(plan: &FaultPlan) -> u64 {
    plan.horizon() + 4 * CAMPAIGN_MTF
}

/// One injected fault and what became of it.
#[derive(Debug, Clone)]
pub struct FaultRecord {
    /// The planned fault.
    pub event: FaultEvent,
    /// The partition the fault was aimed at (None: module scope).
    pub affected: Option<PartitionId>,
    /// When health monitoring logged the matching decision.
    pub detected_at: Option<Ticks>,
    /// Monitor entries beyond the first that matched this fault.
    pub extra_detections: u64,
}

impl FaultRecord {
    /// Detection latency in ticks, when detected.
    pub fn latency(&self) -> Option<u64> {
        self.detected_at
            .map(|t| t.as_u64().saturating_sub(self.event.at))
    }

    fn describe(&self) -> String {
        format!("{} (target {:#x})", self.event.class, self.event.target)
    }
}

/// Recovery dispositions observed during a campaign run, tallied from the
/// [`TraceEvent::RecoveryApplied`] stream.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EscalationTally {
    /// Errors contained by the partition's error handler or fallback.
    pub handler_contained: u64,
    /// Errors logged and deliberately ignored.
    pub logged: u64,
    /// Partition warm restarts.
    pub warm_restarts: u64,
    /// Partition cold restarts.
    pub cold_restarts: u64,
    /// Partitions stopped.
    pub partition_stops: u64,
    /// Module resets.
    pub module_resets: u64,
    /// Module shutdowns.
    pub module_shutdowns: u64,
}

/// The result of one campaign: per-fault records, the invariant report,
/// and the byte-stable trace logs the determinism check compares.
#[derive(Debug)]
pub struct CampaignOutcome {
    /// The executed plan.
    pub plan: FaultPlan,
    /// One record per planned fault, in injection order.
    pub records: Vec<FaultRecord>,
    /// The robustness-invariant report (empty = all invariants hold).
    pub report: Report,
    /// Canonical trace log of the faulted run.
    pub trace_log: String,
    /// Canonical trace log of the clean (no-fault) baseline run.
    pub clean_trace_log: String,
    /// Trace events of the faulted run (for differential restriction via
    /// [`air_model::testkit::isolation_divergence`] and [`event_owner`]).
    pub events: Vec<TraceEvent>,
    /// Trace events of the clean baseline run.
    pub clean_events: Vec<TraceEvent>,
    /// Whether re-executing the same plan reproduced `trace_log` byte for
    /// byte.
    pub deterministic: bool,
    /// Recovery dispositions observed in the faulted run.
    pub escalations: EscalationTally,
    /// Health-monitor log entries recorded in the faulted run.
    pub hm_entries: usize,
}

impl CampaignOutcome {
    /// Number of faults injected.
    pub fn injected(&self) -> usize {
        self.records.len()
    }

    /// Number of faults detected by health monitoring.
    pub fn detected(&self) -> usize {
        self.records.iter().filter(|r| r.detected_at.is_some()).count()
    }

    /// Detection latencies (ticks) of the detected faults.
    pub fn latencies(&self) -> Vec<u64> {
        self.records.iter().filter_map(FaultRecord::latency).collect()
    }

    /// Whether every robustness invariant held and the run reproduced.
    pub fn is_ok(&self) -> bool {
        self.report.is_ok() && self.deterministic
    }
}

/// The partition a trace event belongs to, for isolation restriction
/// (`None`: module-scoped or bookkeeping events owned by no partition).
pub fn event_owner(event: &TraceEvent) -> Option<PartitionId> {
    match event {
        TraceEvent::PartitionSwitch { to, .. } => *to,
        TraceEvent::ScheduleSwitch { .. }
        | TraceEvent::FaultInjected { .. }
        | TraceEvent::FrameRetransmitted { .. }
        | TraceEvent::LinkFailover { .. }
        | TraceEvent::DegradedModeEntered { .. }
        | TraceEvent::DegradedModeExited { .. }
        // Mesh-layer events are owned by protocol nodes, not partitions.
        | TraceEvent::PacketForwarded { .. }
        | TraceEvent::PacketDropped { .. }
        | TraceEvent::CommandAccepted { .. }
        | TraceEvent::CommandStarted { .. }
        | TraceEvent::CommandCompleted { .. }
        | TraceEvent::CommandAckReceived { .. }
        | TraceEvent::TelemetryPublished { .. }
        | TraceEvent::TelemetryReceived { .. } => None,
        TraceEvent::ScheduleChangeActionApplied { partition, .. }
        | TraceEvent::PartitionRestart { partition, .. }
        | TraceEvent::PartitionStop { partition, .. } => Some(*partition),
        TraceEvent::DeadlineMiss { process, .. } => Some(process.partition),
        TraceEvent::HmReport { partition, .. }
        | TraceEvent::RecoveryApplied { partition, .. } => *partition,
    }
}

/// Runs a [`FaultPlan`] against the campaign workload and checks the
/// robustness invariants.
///
/// # Examples
///
/// ```
/// use air_core::campaign::{standard_plan, CampaignRunner};
///
/// let outcome = CampaignRunner::new(standard_plan(7, 1)).run();
/// assert_eq!(outcome.detected(), outcome.injected());
/// assert!(outcome.is_ok(), "{}", outcome.report);
/// ```
#[derive(Debug, Clone)]
pub struct CampaignRunner {
    plan: FaultPlan,
    horizon: u64,
}

impl CampaignRunner {
    /// A runner for `plan` over the default horizon ([`default_horizon`]).
    pub fn new(plan: FaultPlan) -> Self {
        let horizon = default_horizon(&plan);
        Self { plan, horizon }
    }

    /// Overrides the simulated horizon (ticks).
    #[must_use]
    pub fn with_horizon(mut self, horizon: u64) -> Self {
        self.horizon = horizon;
        self
    }

    /// Executes the campaign: the faulted run (twice, for the determinism
    /// check), the clean baseline, detection attribution and the
    /// invariant checks.
    pub fn run(&self) -> CampaignOutcome {
        self.run_with_scratch(&mut CampaignScratch::default())
    }

    /// [`run`](CampaignRunner::run), reusing `scratch` for the repeat
    /// probe's record table, detection FIFO and rendered trace log. A
    /// sweep over many seeds keeps one scratch alive instead of churning
    /// the allocator once per seed — the fleet path runs thousands of
    /// campaigns per worker, so the saved buffers add up.
    pub fn run_with_scratch(&self, scratch: &mut CampaignScratch) -> CampaignOutcome {
        let faulted = execute(&self.plan, self.horizon);
        // The repeat probe only exists to prove byte-identical re-execution:
        // its records and log live in the scratch, not in the outcome.
        let mut repeat = CampaignSim::new_reusing(
            &self.plan,
            std::mem::take(&mut scratch.records),
            std::mem::take(&mut scratch.spurious),
        )
        .with_horizon(self.horizon);
        repeat.run_to_horizon();
        scratch.repeat_log.clear();
        repeat.render_trace_into(&mut scratch.repeat_log);
        (scratch.records, scratch.spurious) = repeat.into_buffers();
        let clean = execute(&FaultPlan::empty(), self.horizon);
        analyse(&self.plan, faulted, &scratch.repeat_log, clean)
    }
}

/// Reusable buffers for [`CampaignRunner::run_with_scratch`]: the repeat
/// probe's per-fault record table, its spurious-detection FIFO and its
/// rendered trace log survive from one seed to the next, so only the
/// first campaign of a sweep pays their allocations.
#[derive(Debug, Default)]
pub struct CampaignScratch {
    records: Vec<FaultRecord>,
    spurious: Vec<(Ticks, String)>,
    repeat_log: String,
}

/// Everything observed in one simulation run.
struct RunArtifacts {
    records: Vec<FaultRecord>,
    events: Vec<TraceEvent>,
    occupancy: Vec<(Option<PartitionId>, u64)>,
    trace_log: String,
    hm_entries: usize,
    deadline_misses: u64,
    spurious: Vec<(Ticks, String)>,
}

/// One incrementally-steppable campaign execution: the standard
/// three-partition workload under a seeded [`FaultPlan`], advanced one
/// tick at a time.
///
/// [`CampaignRunner`] drives three of these back to back (faulted,
/// repeat, clean); the fleet executor (`air-fleet`) instead interleaves
/// thousands of them across worker threads in batches of ticks. All state
/// — machine, PMK, trace, fault cursor, detection FIFO — is owned by the
/// instance, so two sims never share anything and per-machine trace logs
/// are a pure function of the plan, independent of scheduling order.
///
/// # Examples
///
/// ```
/// use air_core::campaign::{default_horizon, standard_plan, CampaignSim};
///
/// let plan = standard_plan(7, 1);
/// let mut sim = CampaignSim::new(&plan);
/// sim.run_to_horizon();
/// assert_eq!(sim.now(), default_horizon(&plan));
/// assert_eq!(sim.detected(), plan.len());
/// ```
pub struct CampaignSim {
    system: AirSystem,
    overrun: FaultSwitch,
    records: Vec<FaultRecord>,
    spurious: Vec<(Ticks, String)>,
    next_fault: usize,
    echo_seq: u64,
    hm_cursor: usize,
    prev_active: Option<PartitionId>,
    horizon: u64,
}

impl CampaignSim {
    /// A sim for `plan` on the default machine profile, over
    /// [`default_horizon`]. The workload configuration passes the full
    /// build gate (lint + bounded exploration).
    pub fn new(plan: &FaultPlan) -> Self {
        Self::assemble(plan, &MachineConfig::default(), true, Vec::new(), Vec::new())
    }

    /// A sim for `plan` on machine profile `config`, lint-gated like
    /// [`CampaignSim::new`].
    pub fn with_config(plan: &FaultPlan, config: &MachineConfig) -> Self {
        Self::assemble(plan, config, true, Vec::new(), Vec::new())
    }

    /// The fleet fast path: builds the (fixed, statically valid) campaign
    /// workload without re-running the static-analysis gate. The
    /// configuration is identical for every instance, so a fleet validates
    /// it once ([`CampaignSim::with_config`]) and then constructs
    /// thousands of instances through this constructor.
    pub fn new_unchecked(plan: &FaultPlan, config: &MachineConfig) -> Self {
        Self::assemble(plan, config, false, Vec::new(), Vec::new())
    }

    /// A sim reusing previously recycled buffers ([`CampaignSim::into_buffers`]).
    fn new_reusing(
        plan: &FaultPlan,
        records: Vec<FaultRecord>,
        spurious: Vec<(Ticks, String)>,
    ) -> Self {
        Self::assemble(plan, &MachineConfig::default(), true, records, spurious)
    }

    fn assemble(
        plan: &FaultPlan,
        config: &MachineConfig,
        checked: bool,
        mut records: Vec<FaultRecord>,
        mut spurious: Vec<(Ticks, String)>,
    ) -> Self {
        let (system, overrun) = build_campaign_system(config, checked);
        records.clear();
        records.extend(plan.events().iter().map(|&event| FaultRecord {
            event,
            affected: None,
            detected_at: None,
            extra_detections: 0,
        }));
        spurious.clear();
        let prev_active = system.active_partition();
        Self {
            system,
            overrun,
            records,
            spurious,
            next_fault: 0,
            echo_seq: 0,
            hm_cursor: 0,
            prev_active,
            horizon: default_horizon(plan),
        }
    }

    /// Overrides the simulated horizon (ticks).
    #[must_use]
    pub fn with_horizon(mut self, horizon: u64) -> Self {
        self.horizon = horizon;
        self
    }

    /// Current time.
    pub fn now(&self) -> u64 {
        self.system.now().as_u64()
    }

    /// The tick the sim stops at.
    pub fn horizon(&self) -> u64 {
        self.horizon
    }

    /// Whether the sim has reached its horizon.
    pub fn is_done(&self) -> bool {
        self.now() >= self.horizon
    }

    /// Advances one tick: due echo traffic and planned faults strike
    /// first, the system executes the tick, the window-start probe touches
    /// application data, and new health-monitor entries are attributed to
    /// pending fault records. No-op past the horizon.
    pub fn step(&mut self) {
        if self.is_done() {
            return;
        }
        let now = self.system.now().as_u64();
        // The remote peer's periodic echo traffic (sequenced link frames
        // into P2) — identical in faulted and clean runs.
        if now.is_multiple_of(ECHO_PERIOD) {
            self.echo_seq += 1;
            send_echo(&mut self.system, self.echo_seq, now);
        }
        // Faults planned for this tick strike before the tick executes.
        while self.next_fault < self.records.len() && self.records[self.next_fault].event.at == now
        {
            realise(
                &mut self.system,
                &mut self.records[self.next_fault],
                &self.overrun,
                &mut self.echo_seq,
            );
            self.next_fault += 1;
        }
        self.system.step();
        // Window-start probe: each partition touches its application data
        // once per dispatch, so a revoked mapping faults (and is detected)
        // at the victim's next window.
        let active = self.system.active_partition();
        if active != self.prev_active {
            if let Some(m) = active {
                let _ = self
                    .system
                    .access_memory(m, PROBE_VA, AccessKind::Read, Privilege::User);
            }
            self.prev_active = active;
        }
        attribute_detections(
            &self.system,
            &mut self.records,
            &mut self.hm_cursor,
            &self.overrun,
            &mut self.spurious,
        );
    }

    /// Advances up to `n` ticks, stopping at the horizon.
    pub fn run_for(&mut self, n: u64) {
        for _ in 0..n {
            if self.is_done() {
                break;
            }
            self.step();
        }
    }

    /// Runs to the horizon.
    pub fn run_to_horizon(&mut self) {
        while !self.is_done() {
            self.step();
        }
    }

    /// Appends the canonical trace log to `out` (byte-stable; see
    /// [`Trace::render_log`](crate::trace::Trace::render_log)).
    pub fn render_trace_into(&self, out: &mut String) {
        self.system.trace().render_log_into(out);
    }

    /// Per-fault records, in injection order.
    pub fn records(&self) -> &[FaultRecord] {
        &self.records
    }

    /// Number of faults detected by health monitoring so far.
    pub fn detected(&self) -> usize {
        self.records.iter().filter(|r| r.detected_at.is_some()).count()
    }

    /// The underlying system (trace, health-monitor log, consoles).
    pub fn system(&self) -> &AirSystem {
        &self.system
    }

    /// Recycles the record table and detection FIFO for the next run.
    fn into_buffers(self) -> (Vec<FaultRecord>, Vec<(Ticks, String)>) {
        (self.records, self.spurious)
    }

    fn into_artifacts(self) -> RunArtifacts {
        RunArtifacts {
            records: self.records,
            events: self.system.trace().events().to_vec(),
            occupancy: self.system.trace().occupancy().to_vec(),
            trace_log: self.system.trace().render_log(),
            hm_entries: self.system.hm().log().len(),
            deadline_misses: self.system.trace().deadline_miss_count(),
            spurious: self.spurious,
        }
    }
}

fn execute(plan: &FaultPlan, horizon: u64) -> RunArtifacts {
    let mut sim = CampaignSim::new(plan).with_horizon(horizon);
    sim.run_to_horizon();
    sim.into_artifacts()
}

/// Builds the fixed campaign workload: three partitions over a 60-tick
/// MTF — `ctl` (faultable control loop with a log-2-then-restart deadline
/// policy), `tx` (telemetry producer on a remote channel), `rx` (consumer
/// fed by the remote peer's echo frames).
fn build_campaign_system(config: &MachineConfig, checked: bool) -> (AirSystem, FaultSwitch) {
    let window = CAMPAIGN_MTF / 3;
    let schedule = Schedule::new(
        ScheduleId(0),
        "campaign",
        Ticks(CAMPAIGN_MTF),
        vec![
            PartitionRequirement::new(P_CTL, Ticks(CAMPAIGN_MTF), Ticks(window)),
            PartitionRequirement::new(P_TX, Ticks(CAMPAIGN_MTF), Ticks(window)),
            PartitionRequirement::new(P_RX, Ticks(CAMPAIGN_MTF), Ticks(window)),
        ],
        vec![
            TimeWindow::new(P_CTL, Ticks(0), Ticks(window)),
            TimeWindow::new(P_TX, Ticks(window), Ticks(window)),
            TimeWindow::new(P_RX, Ticks(2 * window), Ticks(window)),
        ],
    );
    // Module-level faults (spurious traps, link-frame problems) are logged
    // and contained — a campaign must never let the default module Reset
    // wipe every partition over a single corrupt frame.
    let mut tables = HmTables::standard();
    tables.system = SystemHmTable::standard().with_module_action(ModuleRecoveryAction::Ignore);
    for m in [P_CTL, P_TX, P_RX] {
        tables = tables.with_partition_table(m, PartitionHmTable::standard());
    }

    let overrun = FaultSwitch::new();
    let builder = SystemBuilder::new(ScheduleSet::new(vec![schedule]))
        .with_hm_tables(tables)
        .with_partition(
            PartitionConfig::new(Partition::new(P_CTL, "ctl"))
                .with_error_handler(ErrorHandlerTable::new().with_action(
                    ErrorId::DeadlineMissed,
                    ProcessRecoveryAction::LogThenAct {
                        threshold: OVERRUN_THRESHOLD,
                        then: EscalatedProcessAction::RestartPartition,
                    },
                ))
                .with_process(ProcessConfig::new(
                    ProcessAttributes::new("ctl-loop")
                        .with_recurrence(Recurrence::Periodic(Ticks(CAMPAIGN_MTF)))
                        .with_deadline(Deadline::relative(Ticks(2 * window))),
                    FaultyPeriodic::new(5, overrun.clone()),
                )),
        )
        .with_partition(
            PartitionConfig::new(Partition::new(P_TX, "tx"))
                .with_queuing_port(QueuingPortConfig::source("tx", 64, 8))
                .with_queuing_port(QueuingPortConfig::source("echo-feed", 64, 1))
                .with_process(ProcessConfig::new(
                    ProcessAttributes::new("telemetry")
                        .with_recurrence(Recurrence::Periodic(Ticks(CAMPAIGN_MTF)))
                        .with_deadline(Deadline::relative(Ticks(CAMPAIGN_MTF))),
                    QueuingProducer::new("tx"),
                )),
        )
        .with_partition(
            PartitionConfig::new(Partition::new(P_RX, "rx"))
                .with_queuing_port(QueuingPortConfig::destination("echo-rx", 64, 64))
                .with_process(ProcessConfig::new(
                    ProcessAttributes::new("echo-drain")
                        .with_recurrence(Recurrence::Periodic(Ticks(CAMPAIGN_MTF)))
                        .with_deadline(Deadline::relative(Ticks(CAMPAIGN_MTF))),
                    QueuingConsumer::new("echo-rx"),
                )),
        )
        .with_channel(ChannelConfig {
            id: TX_CHANNEL,
            source: PortAddr::new(P_TX, "tx"),
            destinations: vec![Destination::Remote {
                addr: PortAddr::new(P_TX, "gs-rx"),
            }],
        })
        .with_channel(ChannelConfig {
            id: ECHO_CHANNEL,
            source: PortAddr::new(P_TX, "echo-feed"),
            destinations: vec![Destination::Local(PortAddr::new(P_RX, "echo-rx"))],
        })
        .with_machine_config(config.clone());
    let system = if checked {
        builder.build().expect("the campaign workload is statically valid")
    } else {
        // The workload is fixed and was validated on a checked build of the
        // same configuration; skipping the gate here only skips re-proving
        // a proof that cannot change between instances.
        builder
            .build_unchecked()
            .expect("the campaign workload is statically valid")
    };
    (system, overrun)
}

/// Sends one sequenced echo frame from the remote peer towards P2.
fn send_echo(system: &mut AirSystem, seq: u64, now: u64) {
    let payload = format!("echo-{seq}");
    let bytes = Frame::new(ECHO_CHANNEL, Ticks(now), payload.into_bytes())
        .with_link_seq(seq)
        .encode();
    system.machine_mut().link.send(LinkEndpoint::B, now, bytes);
}

/// Realises one planned fault through the injection hooks and records the
/// injection marker in the trace.
fn realise(
    system: &mut AirSystem,
    record: &mut FaultRecord,
    overrun: &FaultSwitch,
    echo_seq: &mut u64,
) {
    let now = system.now();
    let target = record.event.target;
    match record.event.class {
        FaultClass::MmuTamper => {
            // Revoke the app-data page of P1 or P2 (never the overrun
            // victim P0, so deadline misses stay attributable). Detected
            // by the victim's window-start probe as a memory violation.
            let victim = if target.is_multiple_of(2) { P_TX } else { P_RX };
            record.affected = Some(victim);
            let _ = system.spatial_mut().revoke_page(victim, TAMPER_PAGE);
        }
        FaultClass::SpuriousTrap => {
            system.machine_mut().inject_spurious_trap((target % 8) as u8);
        }
        FaultClass::LinkDrop => {
            // Send one extra sequenced echo frame and destroy it in
            // flight: the receiver sees the jump at the next echo.
            *echo_seq += 1;
            send_echo(system, *echo_seq, now.as_u64());
            let _ = system.machine_mut().inject_link_drop();
        }
        FaultClass::LinkBitFlip => {
            // Corrupt an extra (unsequenced) frame so the checksum trips
            // without disturbing the sequence stream. Mask 0xFF is the one
            // value Fletcher-16 cannot see (0x00 ↔ 0xFF alias); keep it
            // odd and below 0x80 so corruption is always detected.
            let junk = Frame::new(ECHO_CHANNEL, now, &b"flip-fodder"[..]).encode();
            system
                .machine_mut()
                .link
                .send(LinkEndpoint::B, now.as_u64(), junk);
            let mask = ((target >> 8) as u8 & 0x7F) | 0x01;
            let _ = system
                .machine_mut()
                .inject_link_tamper(target as usize, mask);
        }
        FaultClass::ClockInterference => {
            record.affected = system.active_partition();
            let _ = system.machine_mut().inject_clock_mask_attempt();
        }
        FaultClass::ProcessOverrun => {
            record.affected = Some(P_CTL);
            overrun.activate();
        }
        // `FaultClass` is non-exhaustive: an unknown class is left
        // unrealised and will surface as a FaultUndetected violation,
        // which is the honest answer for a plan this harness cannot run.
        _ => {}
    }
    system.trace_mut().record(TraceEvent::FaultInjected {
        at: now,
        class: record.event.class,
        partition: record.affected,
    });
}

/// Maps a health-monitor entry to the fault class that explains it.
fn classify_entry(entry: &HmLogEntry) -> Option<FaultClass> {
    match entry.error {
        ErrorId::MemoryViolation => Some(FaultClass::MmuTamper),
        ErrorId::HardwareFault if entry.detail.starts_with("spurious trap") => {
            Some(FaultClass::SpuriousTrap)
        }
        ErrorId::HardwareFault if entry.detail.contains("sequence gap") => {
            Some(FaultClass::LinkDrop)
        }
        ErrorId::HardwareFault if entry.detail.contains("corrupt link frame") => {
            Some(FaultClass::LinkBitFlip)
        }
        ErrorId::IllegalRequest if entry.detail.contains("clock-tick") => {
            Some(FaultClass::ClockInterference)
        }
        ErrorId::DeadlineMissed => Some(FaultClass::ProcessOverrun),
        _ => None,
    }
}

/// Attributes new health-monitor entries to pending fault records, FIFO
/// per fault class. Unexplained entries are collected as spurious.
fn attribute_detections(
    system: &AirSystem,
    records: &mut [FaultRecord],
    hm_cursor: &mut usize,
    overrun: &FaultSwitch,
    spurious: &mut Vec<(Ticks, String)>,
) {
    let log = system.hm().log();
    for entry in log.entries().skip(*hm_cursor) {
        let Some(class) = classify_entry(entry) else {
            spurious.push((entry.time, format!("{entry}")));
            continue;
        };
        // A partition-scoped fault class must also match the victim.
        let source_matches = |r: &FaultRecord| match class {
            FaultClass::MmuTamper | FaultClass::ProcessOverrun => {
                entry.source.partition() == r.affected
            }
            _ => true,
        };
        let pending = records.iter_mut().find(|r| {
            r.event.class == class
                && r.detected_at.is_none()
                && r.event.at < entry.time.as_u64()
                && source_matches(r)
        });
        if let Some(record) = pending {
            record.detected_at = Some(entry.time);
            if class == FaultClass::ProcessOverrun {
                // The overrun was observed; let the control loop recover
                // so the next overrun fault starts from a clean slate.
                overrun.deactivate();
            }
            continue;
        }
        // No pending record: either a duplicate decision for an
        // already-detected fault, or fully spurious.
        let matched = records
            .iter_mut()
            .rev()
            .find(|r| r.event.class == class && r.detected_at.is_some() && source_matches(r));
        match matched {
            Some(record) => record.extra_detections += 1,
            None => spurious.push((entry.time, format!("{entry}"))),
        }
    }
    *hm_cursor = log.len();
}

/// Checks the robustness invariants and assembles the outcome.
fn analyse(
    plan: &FaultPlan,
    faulted: RunArtifacts,
    repeat_log: &str,
    clean: RunArtifacts,
) -> CampaignOutcome {
    let mut report = Report::new();

    // Invariant 1: every injected fault produces exactly one HM decision.
    for record in &faulted.records {
        match record.detected_at {
            None => report.record(Violation::FaultUndetected {
                at: Ticks(record.event.at),
                fault: record.describe(),
            }),
            Some(_) if record.extra_detections > 0 => {
                report.record(Violation::DuplicateDetection {
                    at: Ticks(record.event.at),
                    fault: record.describe(),
                    count: 1 + record.extra_detections,
                });
            }
            Some(_) => {}
        }
    }
    for (at, detail) in &faulted.spurious {
        report.record(Violation::SpuriousDetection {
            at: *at,
            detail: detail.clone(),
        });
    }

    // Invariant 2: isolation. Dispatch windows are schedule-driven, so the
    // occupancy history must be identical to the clean run's; partitions no
    // fault was aimed at must also see an identical event stream.
    if faulted.occupancy != clean.occupancy {
        let partition = first_occupancy_divergence(&clean.occupancy, &faulted.occupancy);
        report.record(Violation::IsolationBreach {
            partition,
            detail: "dispatch-window occupancy diverges from the clean run".into(),
        });
    }
    let affected: Vec<PartitionId> =
        faulted.records.iter().filter_map(|r| r.affected).collect();
    for m in [P_CTL, P_TX, P_RX] {
        if affected.contains(&m) {
            continue;
        }
        if let Some(detail) =
            testkit::isolation_divergence(&clean.events, &faulted.events, m, event_owner)
        {
            report.record(Violation::IsolationBreach {
                partition: m,
                detail,
            });
        }
    }

    // Invariant 3: log-N-then-act fires at exactly the configured count —
    // every deadline miss past the threshold escalates to a warm restart,
    // none before.
    let escalations = tally_escalations(&faulted.events);
    let deadline_escalations = faulted
        .events
        .iter()
        .filter(|e| {
            matches!(
                e,
                TraceEvent::RecoveryApplied {
                    error: ErrorId::DeadlineMissed,
                    disposition: RecoveryDisposition::PartitionWarmRestart,
                    ..
                }
            )
        })
        .count() as u64;
    let expected = faulted
        .deadline_misses
        .saturating_sub(u64::from(OVERRUN_THRESHOLD));
    if deadline_escalations != expected {
        report.record(Violation::EscalationMiscount {
            detail: format!(
                "{} deadline misses with threshold {} must escalate {} times, saw {}",
                faulted.deadline_misses, OVERRUN_THRESHOLD, expected, deadline_escalations
            ),
        });
    }

    CampaignOutcome {
        plan: plan.clone(),
        deterministic: faulted.trace_log == repeat_log,
        records: faulted.records,
        report,
        trace_log: faulted.trace_log,
        clean_trace_log: clean.trace_log,
        events: faulted.events,
        clean_events: clean.events,
        escalations,
        hm_entries: faulted.hm_entries,
    }
}

/// The partition at the first point where two occupancy histories diverge.
fn first_occupancy_divergence(
    clean: &[(Option<PartitionId>, u64)],
    faulted: &[(Option<PartitionId>, u64)],
) -> PartitionId {
    for (c, f) in clean.iter().zip(faulted.iter()) {
        if c != f {
            return f.0.or(c.0).unwrap_or(P_CTL);
        }
    }
    clean
        .len()
        .checked_sub(faulted.len())
        .and_then(|_| clean.last().and_then(|s| s.0))
        .unwrap_or(P_CTL)
}

fn tally_escalations(events: &[TraceEvent]) -> EscalationTally {
    let mut tally = EscalationTally::default();
    for event in events {
        let TraceEvent::RecoveryApplied { disposition, .. } = event else {
            continue;
        };
        match disposition {
            RecoveryDisposition::HandlerContained => tally.handler_contained += 1,
            RecoveryDisposition::Logged => tally.logged += 1,
            RecoveryDisposition::PartitionWarmRestart => tally.warm_restarts += 1,
            RecoveryDisposition::PartitionColdRestart => tally.cold_restarts += 1,
            RecoveryDisposition::PartitionStopped => tally.partition_stops += 1,
            RecoveryDisposition::ModuleReset => tally.module_resets += 1,
            RecoveryDisposition::ModuleShutdown => tally.module_shutdowns += 1,
        }
    }
    tally
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_campaign_has_no_findings() {
        let outcome = CampaignRunner::new(FaultPlan::empty())
            .with_horizon(6 * CAMPAIGN_MTF)
            .run();
        assert_eq!(outcome.injected(), 0);
        assert!(outcome.is_ok(), "{}", outcome.report);
        assert_eq!(outcome.hm_entries, 0, "clean run must stay silent");
        assert_eq!(outcome.trace_log, outcome.clean_trace_log);
    }

    #[test]
    fn every_fault_class_is_detected_exactly_once() {
        let outcome = CampaignRunner::new(standard_plan(3, 1)).run();
        assert_eq!(outcome.injected(), FaultClass::ALL.len());
        assert_eq!(outcome.detected(), outcome.injected(), "{}", outcome.report);
        assert!(outcome.is_ok(), "{}", outcome.report);
        for record in &outcome.records {
            assert_eq!(record.extra_detections, 0, "{}", record.describe());
            assert!(record.latency().unwrap() > 0);
        }
    }

    #[test]
    fn same_seed_reproduces_byte_identical_traces() {
        let a = CampaignRunner::new(standard_plan(11, 1)).run();
        let b = CampaignRunner::new(standard_plan(11, 1)).run();
        assert!(a.deterministic && b.deterministic);
        assert_eq!(a.trace_log, b.trace_log);
        assert_ne!(a.trace_log, a.clean_trace_log, "faults must leave a mark");
    }

    #[test]
    fn overruns_escalate_past_the_threshold() {
        // Three overruns against threshold 2: exactly one warm restart.
        let events: Vec<FaultEvent> = (0..3)
            .map(|i| FaultEvent {
                at: 70 + i * 200,
                class: FaultClass::ProcessOverrun,
                target: i,
            })
            .collect();
        let outcome = CampaignRunner::new(FaultPlan::from_events(5, events)).run();
        assert!(outcome.is_ok(), "{}", outcome.report);
        assert_eq!(outcome.escalations.warm_restarts, 1);
        assert_eq!(outcome.detected(), 3);
    }
}
