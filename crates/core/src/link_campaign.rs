//! Deterministic link-fault campaigns against a two-node cluster.
//!
//! The tentpole claim of the reliable transport is *exactly-once, in-order
//! delivery under any single-link fault plan*: frames may be dropped,
//! corrupted, or lost to a sustained outage of the active adapter, and
//! acknowledgements may vanish — yet every queuing-port message offered on
//! node A arrives at node B exactly once, in order, and sampling-port
//! readings stay within their staleness budget. This module turns that
//! claim into a seeded, reproducible experiment:
//!
//! * node A runs a telemetry producer (a closed budget of queuing
//!   messages) and an attitude sampling producer, both on remote channels;
//! * node B runs the matching consumers behind gateway channels;
//! * a seeded [`FaultPlan`] over [`FaultClass::LINK`] strikes the link
//!   through the machine's injection hooks (in-flight frame drops, header
//!   corruption, active-link outages, acknowledgement destruction);
//! * sustained outages push the loss streak past the failover threshold:
//!   the cluster fails over to the secondary adapter, health monitoring
//!   logs [`air_hm::ErrorId::LinkDegraded`], and node A switches to its
//!   degraded schedule (Sect. 4 mode-based scheduling) until the link
//!   recovers;
//! * the reliability invariants are checked into an
//!   [`air_model::verify::Report`], and the whole campaign is re-executed
//!   to demand byte-identical trace logs.

use air_hm::{HmTables, ModuleRecoveryAction, SystemHmTable};
use air_hw::inject::{FaultClass, FaultEvent, FaultPlan};
use air_hw::link::LinkEndpoint;
use air_hw::redundant::LinkRole;
use air_hw::machine::MachineConfig;
use air_model::process::Priority;
use air_model::schedule::{PartitionRequirement, Schedule, TimeWindow};
use air_model::verify::{Report, Violation};
use air_model::{Partition, PartitionId, ProcessAttributes, ScheduleId, ScheduleSet, Ticks};
use air_model::{Deadline, Recurrence};
use air_ports::wire::bytes_look_like_ack;
use air_ports::{ArqConfig, ChannelConfig, Destination, PortAddr, QueuingPortConfig,
                SamplingPortConfig};

use crate::builder::{PartitionConfig, ProcessConfig, SystemBuilder};
use crate::cluster::{AirCluster, Node};
use crate::trace::TraceEvent;
use crate::workload::{FiniteQueuingProducer, QueuingConsumer, SamplingConsumer,
                      SamplingProducer};

/// Major time frame of both cluster nodes.
pub const LINK_MTF: u64 = 100;
/// Telemetry production period (one queuing message per period).
const TM_PERIOD: u64 = 10;
/// Attitude sampling production period.
const ATT_PERIOD: u64 = 20;
/// Refresh period of the attitude sample at the consumer.
const ATT_REFRESH: u64 = 2 * LINK_MTF;
/// The telemetry channel (queuing, A→B).
const TM_CHANNEL: u32 = 50;
/// The attitude channel (sampling, A→B).
const ATT_CHANNEL: u32 = 51;
/// Consecutive timeout rounds before node A fails over.
const FAILOVER_THRESHOLD: u32 = 2;
/// Probation ticks on the secondary before reverting to the primary.
const REVERT_TICKS: u64 = 600;
/// The nominal schedule of node A.
const NOMINAL: ScheduleId = ScheduleId(0);
/// The degraded schedule node A switches to on failover.
const DEGRADED: ScheduleId = ScheduleId(1);

const P0: PartitionId = PartitionId(0);

/// A convenient link-fault plan for `seed`: `per_class` faults of every
/// [`FaultClass::LINK`] class, round-robin from tick 150 in 400-tick slots
/// with seeded jitter (wide slots let each outage resolve — failover,
/// probation, revert — before the next fault lands).
pub fn link_plan(seed: u64, per_class: usize) -> FaultPlan {
    FaultPlan::generate(seed, &FaultClass::LINK, per_class, 150, 400, 37)
}

/// The result of one link campaign: the invariant report, the delivery
/// and failover metrics, and the trace logs the determinism check
/// compares.
#[derive(Debug)]
pub struct LinkCampaignOutcome {
    /// The executed plan.
    pub plan: FaultPlan,
    /// The reliability-invariant report (empty = all invariants hold).
    pub report: Report,
    /// Queuing messages offered on node A (the closed producer budget).
    pub expected: u64,
    /// Queuing messages delivered to node B's consumer.
    pub delivered: u64,
    /// Frames retransmitted by node A's reliable transport.
    pub retransmissions: u64,
    /// Duplicate frames suppressed at node B.
    pub duplicates_suppressed: u64,
    /// Primary→secondary failovers on node A.
    pub failovers: u64,
    /// Secondary→primary reverts on node A.
    pub reverts: u64,
    /// Degraded-mode entries observed in node A's trace.
    pub degraded_entries: u64,
    /// Degraded-mode exits observed in node A's trace.
    pub degraded_exits: u64,
    /// Ticks from the first failover to the first degraded-mode exit.
    pub recovery_latency: Option<u64>,
    /// Canonical trace log of node A.
    pub trace_log_a: String,
    /// Canonical trace log of node B.
    pub trace_log_b: String,
    /// Whether re-executing the same plan reproduced both trace logs byte
    /// for byte.
    pub deterministic: bool,
}

impl LinkCampaignOutcome {
    /// Delivered-to-expected ratio (1.0 = every message arrived).
    pub fn delivery_ratio(&self) -> f64 {
        if self.expected == 0 {
            return 1.0;
        }
        #[allow(clippy::cast_precision_loss)] // campaign budgets are tiny
        {
            self.delivered as f64 / self.expected as f64
        }
    }

    /// Whether every reliability invariant held and the run reproduced.
    pub fn is_ok(&self) -> bool {
        self.report.is_ok() && self.deterministic
    }
}

/// Runs a [`FaultPlan`] over [`FaultClass::LINK`] against the two-node
/// workload and checks the exactly-once delivery invariants.
///
/// # Examples
///
/// ```
/// use air_core::link_campaign::{link_plan, LinkCampaignRunner};
///
/// let outcome = LinkCampaignRunner::new(link_plan(7, 1)).run();
/// assert!(outcome.is_ok(), "{}", outcome.report);
/// assert_eq!(outcome.delivered, outcome.expected);
/// ```
#[derive(Debug, Clone)]
pub struct LinkCampaignRunner {
    plan: FaultPlan,
}

impl LinkCampaignRunner {
    /// A runner for `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        Self { plan }
    }

    /// Executes the campaign twice (the second run is the determinism
    /// probe) and checks every invariant.
    pub fn run(&self) -> LinkCampaignOutcome {
        let first = execute(&self.plan);
        let second = execute(&self.plan);

        let mut report = Report::new();
        check_exactly_once(&first, &mut report);
        check_staleness(&first, &mut report);
        check_degradation_visibility(&self.plan, &first, &mut report);
        let deterministic =
            first.trace_log_a == second.trace_log_a && first.trace_log_b == second.trace_log_b;

        let (degraded_entries, degraded_exits, recovery_latency) = degraded_stats(&first.events_a);
        LinkCampaignOutcome {
            plan: self.plan.clone(),
            report,
            expected: first.expected,
            delivered: first.delivered.len() as u64,
            retransmissions: first.retransmissions,
            duplicates_suppressed: first.duplicates_suppressed,
            failovers: first.failovers,
            reverts: first.reverts,
            degraded_entries,
            degraded_exits,
            recovery_latency,
            trace_log_a: first.trace_log_a,
            trace_log_b: first.trace_log_b,
            deterministic,
        }
    }
}

/// Everything one faulted execution leaves behind.
struct RunArtifacts {
    expected: u64,
    /// Frame indices in the order node B's consumer logged them.
    delivered: Vec<u64>,
    retransmissions: u64,
    duplicates_suppressed: u64,
    failovers: u64,
    reverts: u64,
    /// Worst sampling-message age observed at any boundary probe.
    worst_sample_age: Option<Ticks>,
    events_a: Vec<TraceEvent>,
    trace_log_a: String,
    trace_log_b: String,
}

/// The total simulated horizon of a link campaign over `plan`: traffic
/// outlives the plan so late faults find frames to strike, and the drain
/// covers the ARQ's worst-case repair plus the secondary-link probation
/// and a few routing rounds.
pub fn planned_horizon(plan: &FaultPlan) -> u64 {
    let horizon = plan.horizon() + 2 * LINK_MTF;
    let drain = ArqConfig::default().worst_case_delay() + REVERT_TICKS + 4 * LINK_MTF;
    horizon + drain
}

/// One incrementally-steppable link campaign: the two-node reliable-
/// transport workload under a seeded link-fault plan, advanced one tick
/// at a time.
///
/// [`LinkCampaignRunner`] drives two of these back to back (the second is
/// the determinism probe); the fleet executor (`air-fleet`) interleaves
/// many across worker threads. Both nodes, the in-flight frames and the
/// fault cursor are owned by the instance — nothing is shared between two
/// sims, so trace logs are a pure function of the plan.
pub struct LinkSim {
    cluster: AirCluster,
    pending: Vec<FaultEvent>,
    worst_sample_age: Option<Ticks>,
    expected: u64,
    end: u64,
}

impl LinkSim {
    /// A sim for `plan`; both nodes pass the full build gate.
    pub fn new(plan: &FaultPlan) -> Self {
        Self::assemble(plan, true)
    }

    /// The fleet fast path: the fixed two-node workload is built without
    /// re-running the static-analysis gate (validate once with
    /// [`LinkSim::new`], then mass-construct through this).
    pub fn new_unchecked(plan: &FaultPlan) -> Self {
        Self::assemble(plan, false)
    }

    fn assemble(plan: &FaultPlan, checked: bool) -> Self {
        let horizon = plan.horizon() + 2 * LINK_MTF;
        let budget = horizon / TM_PERIOD;
        let cluster = AirCluster::new(sender_node(budget, checked), receiver_node(checked))
            .expect("freshly built nodes start in lockstep");
        Self {
            cluster,
            pending: plan.events().to_vec(),
            worst_sample_age: None,
            expected: budget,
            end: planned_horizon(plan),
        }
    }

    /// Current time (both nodes run in lockstep).
    pub fn now(&self) -> u64 {
        self.cluster.now().as_u64()
    }

    /// The tick the sim stops at (traffic horizon plus drain).
    pub fn horizon(&self) -> u64 {
        self.end
    }

    /// Whether the sim has reached its horizon.
    pub fn is_done(&self) -> bool {
        self.now() >= self.end
    }

    /// The closed producer budget (queuing messages offered on node A).
    pub fn expected(&self) -> u64 {
        self.expected
    }

    /// Advances one tick: due link faults strike first, both nodes execute
    /// the tick in lockstep, and MTF boundaries probe the attitude
    /// sample's age. No-op past the horizon.
    pub fn step(&mut self) {
        if self.is_done() {
            return;
        }
        let now = self.cluster.now().as_u64();
        realise_due_faults(&mut self.cluster, &mut self.pending, now);
        self.cluster.step();
        if self.cluster.now().as_u64().is_multiple_of(LINK_MTF) {
            probe_sample_age(&mut self.cluster, &mut self.worst_sample_age);
        }
    }

    /// Advances up to `n` ticks, stopping at the horizon.
    pub fn run_for(&mut self, n: u64) {
        for _ in 0..n {
            if self.is_done() {
                break;
            }
            self.step();
        }
    }

    /// Runs to the horizon.
    pub fn run_to_horizon(&mut self) {
        while !self.is_done() {
            self.step();
        }
    }

    /// Appends both nodes' canonical trace logs (headed `== node A ==` /
    /// `== node B ==`) to `out`, byte-stable across reruns.
    pub fn render_trace_into(&self, out: &mut String) {
        out.push_str("== node A ==\n");
        self.cluster.node(Node::A).trace().render_log_into(out);
        out.push_str("== node B ==\n");
        self.cluster.node(Node::B).trace().render_log_into(out);
    }

    /// The underlying cluster (traces, consoles, link health).
    pub fn cluster(&self) -> &AirCluster {
        &self.cluster
    }

    fn into_artifacts(self) -> RunArtifacts {
        let health_a = self.cluster.link_health(Node::A);
        let health_b = self.cluster.link_health(Node::B);
        let delivered: Vec<u64> = self
            .cluster
            .node(Node::B)
            .console_of(P0)
            .lines()
            .filter_map(|l| l.strip_prefix("rx frame-")?.parse().ok())
            .collect();
        RunArtifacts {
            expected: self.expected,
            delivered,
            retransmissions: health_a.retransmissions,
            duplicates_suppressed: health_b.duplicates_suppressed,
            failovers: health_a.failovers,
            reverts: health_a.reverts,
            worst_sample_age: self.worst_sample_age,
            events_a: self.cluster.node(Node::A).trace().events().to_vec(),
            trace_log_a: self.cluster.node(Node::A).trace().render_log(),
            trace_log_b: self.cluster.node(Node::B).trace().render_log(),
        }
    }
}

fn execute(plan: &FaultPlan) -> RunArtifacts {
    let mut sim = LinkSim::new(plan);
    sim.run_to_horizon();
    sim.into_artifacts()
}

/// Strikes every fault whose time has come. Drop- and tamper-style faults
/// need a frame in flight; when none is there yet, the fault stays armed
/// and strikes the first frame that shows up (still fully deterministic).
fn realise_due_faults(cluster: &mut AirCluster, pending: &mut Vec<FaultEvent>, now: u64) {
    pending.retain(|event| {
        if event.at > now {
            return true;
        }
        let realised = match event.class {
            // Destroy the newest telemetry frame on its second hop, inbound
            // to node B's adapter.
            FaultClass::LinkDrop => cluster.node_mut(Node::B).machine_mut().inject_link_drop(),
            // Corrupt a header byte of an inbound frame: the sequence /
            // channel region, so decode integrity must catch it.
            FaultClass::LinkBitFlip => {
                let byte = 2 + (event.target as usize % 8);
                let mask = ((event.target >> 8) as u8) | 0x01;
                cluster
                    .node_mut(Node::B)
                    .machine_mut()
                    .inject_link_tamper(byte, mask)
            }
            // A sustained outage of node A's active adapter: long enough to
            // cross the failover threshold before any retransmission lands.
            FaultClass::LinkOutage => {
                let duration = 220 + event.target % 80;
                cluster
                    .node_mut(Node::A)
                    .machine_mut()
                    .inject_link_outage(duration);
                true
            }
            // Destroy an acknowledgement on its first hop out of node B,
            // forcing a spurious retransmission A must dedupe.
            FaultClass::AckLoss => cluster
                .node_mut(Node::B)
                .machine_mut()
                .link
                .drop_in_flight_where(LinkEndpoint::B, bytes_look_like_ack),
            _ => true,
        };
        !realised
    });
}

/// Reads node B's attitude port at an MTF boundary and tracks the worst
/// observed sample age.
fn probe_sample_age(cluster: &mut AirCluster, worst: &mut Option<Ticks>) {
    let now = cluster.now();
    let node = cluster.node_mut(Node::B);
    if let Ok(port) = node.ipc_mut().registry_mut().sampling_port_mut(P0, "att") {
        if let Some(msg) = port.last_written() {
            let age = msg.age_at(now);
            if worst.is_none_or(|w| age > w) {
                *worst = Some(age);
            }
        }
    }
}

fn check_exactly_once(run: &RunArtifacts, report: &mut Report) {
    let mut seen = vec![0u64; run.expected as usize];
    let mut next_expected = 0u64;
    for &seq in &run.delivered {
        if seq >= run.expected {
            report.record(Violation::SpuriousDetection {
                at: Ticks::ZERO,
                detail: format!("consumer logged frame #{seq} beyond the producer budget"),
            });
            continue;
        }
        seen[seq as usize] += 1;
        if seq < next_expected {
            report.record(Violation::DuplicateDelivery { seq });
        } else if seq > next_expected {
            report.record(Violation::OutOfOrderDelivery {
                expected: next_expected,
                got: seq,
            });
            next_expected = seq + 1;
        } else {
            next_expected = seq + 1;
        }
    }
    for (seq, &count) in seen.iter().enumerate() {
        if count == 0 {
            report.record(Violation::MessageLost { seq: seq as u64 });
        }
    }
}

fn check_staleness(run: &RunArtifacts, report: &mut Report) {
    let bound = Ticks(ATT_REFRESH + ArqConfig::default().worst_case_delay() + REVERT_TICKS);
    if let Some(age) = run.worst_sample_age {
        if age > bound {
            report.record(Violation::StaleSample {
                at: Ticks::ZERO,
                age,
                bound,
            });
        }
    }
}

/// Outage plans must be *visible*: the failover, the degraded-mode entry
/// and the eventual exit all have to appear in node A's trace.
fn check_degradation_visibility(plan: &FaultPlan, run: &RunArtifacts, report: &mut Report) {
    let outages = plan
        .events()
        .iter()
        .filter(|e| e.class == FaultClass::LinkOutage)
        .count();
    if outages == 0 {
        return;
    }
    let failovers = run
        .events_a
        .iter()
        .filter(|e| {
            matches!(e, TraceEvent::LinkFailover { to: LinkRole::Secondary, .. })
        })
        .count();
    let (entries, exits, _) = degraded_stats(&run.events_a);
    if failovers == 0 {
        report.record(Violation::FaultUndetected {
            at: Ticks::ZERO,
            fault: "link_outage produced no failover".to_owned(),
        });
    }
    if entries == 0 || exits < entries {
        report.record(Violation::FaultUndetected {
            at: Ticks::ZERO,
            fault: format!(
                "degraded mode not fully traversed ({entries} entries, {exits} exits)"
            ),
        });
    }
}

/// Degraded-mode entries/exits and the first failover→exit latency.
fn degraded_stats(events: &[TraceEvent]) -> (u64, u64, Option<u64>) {
    let mut entries = 0;
    let mut exits = 0;
    let mut first_failover: Option<Ticks> = None;
    let mut latency = None;
    for event in events {
        match event {
            TraceEvent::LinkFailover { at, to: LinkRole::Secondary }
                if first_failover.is_none() =>
            {
                first_failover = Some(*at);
            }
            TraceEvent::DegradedModeEntered { .. } => entries += 1,
            TraceEvent::DegradedModeExited { at, .. } => {
                exits += 1;
                if latency.is_none() {
                    if let Some(start) = first_failover {
                        latency = Some(at.as_u64().saturating_sub(start.as_u64()));
                    }
                }
            }
            _ => {}
        }
    }
    (entries, exits, latency)
}

fn schedules() -> ScheduleSet {
    let full = |id: ScheduleId, name: &str| {
        Schedule::new(
            id,
            name,
            Ticks(LINK_MTF),
            vec![PartitionRequirement::new(P0, Ticks(LINK_MTF), Ticks(LINK_MTF))],
            vec![TimeWindow::new(P0, Ticks(0), Ticks(LINK_MTF))],
        )
    };
    ScheduleSet::new(vec![full(NOMINAL, "nominal"), full(DEGRADED, "degraded")])
}

/// Module-level link errors are logged, not answered with a module Reset:
/// the degraded-schedule switch *is* the recovery.
fn report_only_tables() -> HmTables {
    let mut tables = HmTables::standard();
    tables.system = SystemHmTable::standard().with_module_action(ModuleRecoveryAction::Ignore);
    tables
}

fn sender_node(budget: u64, checked: bool) -> crate::system::AirSystem {
    let mut config = MachineConfig::default();
    // A slower standby adapter: failover is survivable but observable.
    config.secondary_link_latency_ticks = Some(2 * config.link_latency_ticks);
    config.link_failover_threshold = FAILOVER_THRESHOLD;
    config.link_revert_ticks = REVERT_TICKS;
    let builder = SystemBuilder::new(schedules())
        .with_machine_config(config)
        .with_hm_tables(report_only_tables())
        .with_partition(
            PartitionConfig::new(Partition::new(P0, "OBDH"))
                .with_queuing_port(QueuingPortConfig::source("tm", 64, 16))
                .with_sampling_port(SamplingPortConfig::source("att", 64))
                .with_process(ProcessConfig::new(
                    ProcessAttributes::new("telemetry")
                        .with_recurrence(Recurrence::Periodic(Ticks(TM_PERIOD)))
                        .with_deadline(Deadline::relative(Ticks(TM_PERIOD)))
                        .with_base_priority(Priority(2)),
                    FiniteQueuingProducer::new("tm", budget),
                ))
                .with_process(ProcessConfig::new(
                    ProcessAttributes::new("attitude")
                        .with_recurrence(Recurrence::Periodic(Ticks(ATT_PERIOD)))
                        .with_deadline(Deadline::relative(Ticks(ATT_PERIOD)))
                        .with_base_priority(Priority(1)),
                    SamplingProducer::new("att", 1),
                )),
        )
        .with_channel(ChannelConfig {
            id: TM_CHANNEL,
            source: PortAddr::new(P0, "tm"),
            destinations: vec![Destination::Remote {
                addr: PortAddr::new(P0, "tm"),
            }],
        })
        .with_channel(ChannelConfig {
            id: ATT_CHANNEL,
            source: PortAddr::new(P0, "att"),
            destinations: vec![Destination::Remote {
                addr: PortAddr::new(P0, "att"),
            }],
        });
    let mut system = if checked {
        builder.build().expect("link campaign sender node must build")
    } else {
        builder
            .build_unchecked()
            .expect("link campaign sender node must build")
    };
    system.set_degraded_schedule(DEGRADED);
    system
}

fn receiver_node(checked: bool) -> crate::system::AirSystem {
    let builder = SystemBuilder::new(schedules())
        .with_hm_tables(report_only_tables())
        .with_partition(
            PartitionConfig::new(Partition::new(P0, "GROUND-IF"))
                .with_queuing_port(QueuingPortConfig::destination("tm", 64, 16))
                .with_sampling_port(SamplingPortConfig::destination(
                    "att",
                    64,
                    Ticks(ATT_REFRESH),
                ))
                .with_process(ProcessConfig::new(
                    ProcessAttributes::new("downlink")
                        .with_recurrence(Recurrence::Periodic(Ticks(TM_PERIOD)))
                        .with_deadline(Deadline::relative(Ticks(TM_PERIOD)))
                        .with_base_priority(Priority(2)),
                    QueuingConsumer::new("tm"),
                ))
                .with_process(ProcessConfig::new(
                    ProcessAttributes::new("att-monitor")
                        .with_recurrence(Recurrence::Periodic(Ticks(ATT_PERIOD)))
                        .with_deadline(Deadline::relative(Ticks(ATT_PERIOD)))
                        .with_base_priority(Priority(1)),
                    SamplingConsumer::new("att"),
                )),
        )
        .with_channel(ChannelConfig {
            // Gateway entry: the source names the remote node's port.
            id: TM_CHANNEL,
            source: PortAddr::new(P0, "tm-remote-source"),
            destinations: vec![Destination::Local(PortAddr::new(P0, "tm"))],
        })
        .with_channel(ChannelConfig {
            id: ATT_CHANNEL,
            source: PortAddr::new(P0, "att-remote-source"),
            destinations: vec![Destination::Local(PortAddr::new(P0, "att"))],
        });
    if checked {
        builder.build().expect("link campaign receiver node must build")
    } else {
        builder
            .build_unchecked()
            .expect("link campaign receiver node must build")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_plan_delivers_everything() {
        let outcome = LinkCampaignRunner::new(FaultPlan::empty()).run();
        assert!(outcome.is_ok(), "{}", outcome.report);
        assert_eq!(outcome.delivered, outcome.expected);
        assert_eq!(outcome.failovers, 0);
    }

    #[test]
    fn single_link_faults_cannot_lose_messages() {
        let outcome = LinkCampaignRunner::new(link_plan(7, 1)).run();
        assert!(outcome.is_ok(), "{}", outcome.report);
        assert_eq!(outcome.delivered, outcome.expected);
        assert!(outcome.retransmissions > 0);
        assert!(outcome.failovers > 0);
        assert!(outcome.degraded_entries > 0);
        assert!(outcome.degraded_exits >= outcome.degraded_entries);
    }
}
