//! Deterministic campaigns over an N-node routed mesh with TM/TC
//! services.
//!
//! The two-node cluster of [`crate::link_campaign`] generalises here to
//! an arbitrary topology: N lightweight protocol nodes wired by a
//! [`MeshFabric`] (one latency-modelled, fault-injectable link per
//! edge), each node running one go-back-N [`ArqEndpoint`] per neighbour,
//! a static next-hop [`RoutingTable`], and the PUS-flavoured services —
//! command verification (accept/start/complete reports) and event
//! telemetry. A ground node originates a closed budget of telecommands
//! toward an executor at least two hops away; every hop is a reliable
//! ARQ link; verification reports and event telemetry route back. A
//! seeded [`FaultPlan`] over [`FaultClass::LINK`] strikes individual
//! edges — in-flight drops, header corruption, sustained outages,
//! acknowledgement destruction — and the campaign checks exactly-once
//! in-order command delivery, complete verification-ack round trips, and
//! byte-identical trace logs on re-execution.
//!
//! Mesh nodes are deliberately *not* full [`crate::system::AirSystem`]s:
//! the mesh layer exercises the transport, routing and service state
//! machines; the partition-scheduling story lives in the other
//! campaigns. DESIGN.md §12 records the soundness caveats of that cut.

use air_hw::inject::{FaultClass, FaultEvent, FaultPlan};
use air_hw::link::LinkEndpoint;
use air_hw::mesh::MeshFabric;
use air_model::verify::{Report, Violation};
use air_model::Ticks;
use air_ports::pus::{
    verification_report, AckStage, CommandVerifier, EventReporter, EventSeverity,
    SERVICE_EVENT, SERVICE_VERIFICATION,
};
use air_ports::routing::{MeshTopology, NodeId, RoutingTable};
use air_ports::spacepacket::{PacketKind, SpacePacket};
use air_ports::transport::{ArqConfig, ArqEndpoint, ArqEvent, DataDisposition};
use air_ports::wire::{bytes_look_like_ack, Frame};

use crate::trace::{PacketDropReason, Trace, TraceEvent};

/// Per-hop link latency of every mesh edge, in ticks.
pub const MESH_LATENCY: u64 = 2;
/// Initial hop budget stamped on every originated packet.
pub const MESH_TTL: u8 = 16;
/// The wire channel mesh frames ride on (distinct from the cluster's
/// telemetry/attitude channels).
const MESH_CHANNEL: u32 = 60;
/// APID of the ground node's command stream.
pub const CMD_APID: u16 = 100;
/// Base APID of per-node event telemetry (node `i` publishes on
/// `EVENT_APID_BASE + i`).
pub const EVENT_APID_BASE: u16 = 200;
/// First command origination tick.
pub const CMD_START: u64 = 20;
/// Ticks between command originations.
const CMD_PERIOD: u64 = 40;
/// Executor-side ticks between command start and completion.
const EXEC_TICKS: u64 = 5;
/// Post-plan traffic margin: commands keep flowing this long past the
/// last fault so late faults find frames to strike.
const TRAFFIC_TAIL: u64 = 200;
/// Fixed drain slack on top of the structural worst-case repair bound.
const DRAIN_SLACK: u64 = 100;

/// A mesh campaign's complete, deterministic input: the topology, the
/// node count and the seeded link-fault plan.
#[derive(Debug, Clone)]
pub struct MeshPlan {
    /// The mesh shape.
    pub topology: MeshTopology,
    /// Number of nodes (minimum 3: the campaign demands ≥ 2 hops).
    pub nodes: usize,
    /// The seeded edge-fault plan.
    pub faults: FaultPlan,
}

/// A convenient mesh-fault plan: `per_class` faults of every
/// [`FaultClass::LINK`] class over a `nodes`-node `topology`, round-robin
/// from tick 150 in 400-tick slots with seeded jitter — the same cadence
/// as [`crate::link_campaign::link_plan`], so each fault resolves before
/// the next lands.
pub fn mesh_plan(topology: MeshTopology, nodes: usize, seed: u64, per_class: usize) -> MeshPlan {
    MeshPlan {
        topology,
        nodes,
        faults: FaultPlan::generate(seed, &FaultClass::LINK, per_class, 150, 400, 37),
    }
}

/// The commander (ground) and executor nodes of a campaign over
/// `topology`: the pair is chosen so the command path crosses at least
/// two hops — the far end of a line, leaf to leaf across a star's hub,
/// halfway around a ring.
pub fn command_endpoints(topology: MeshTopology, nodes: usize) -> (usize, usize) {
    match topology {
        MeshTopology::Line => (0, nodes - 1),
        MeshTopology::Star => (1, nodes - 1),
        MeshTopology::Ring => (0, nodes / 2),
    }
}

/// Number of hops from `src` to `dst` under `tables` (`None`: no route
/// or a loop).
fn hop_count(tables: &[RoutingTable], src: usize, dst: usize) -> Option<u64> {
    let n = tables.len();
    let mut at = src;
    let mut hops = 0u64;
    while at != dst {
        let via = tables.get(at)?.next_hop(NodeId(dst as u16))?;
        at = via.as_u16() as usize;
        hops += 1;
        if hops > n as u64 {
            return None;
        }
    }
    Some(hops)
}

/// End of the command-origination window for `plan`.
fn traffic_window_end(plan: &MeshPlan) -> u64 {
    plan.faults.horizon() + TRAFFIC_TAIL
}

/// The closed command budget of a campaign over `plan`.
pub fn planned_budget(plan: &MeshPlan) -> u64 {
    (traffic_window_end(plan).saturating_sub(CMD_START) / CMD_PERIOD).max(4)
}

/// The total simulated horizon of a mesh campaign: the traffic window,
/// then a drain long enough for one worst-case ARQ repair plus a clean
/// multi-hop round trip of the last command's completion report.
pub fn planned_mesh_horizon(plan: &MeshPlan) -> u64 {
    let per_hop = ArqConfig::default().worst_case_delay() + MESH_LATENCY + 4;
    traffic_window_end(plan) + EXEC_TICKS + 2 * (plan.nodes as u64) * per_hop + DRAIN_SLACK
}

/// One mesh node: routing, per-neighbour reliable transport, the PUS
/// services, and its own trace.
struct MeshNode {
    id: u16,
    router: RoutingTable,
    /// `(peer index, endpoint)` pairs sorted by peer — the deterministic
    /// service order.
    arqs: Vec<(usize, ArqEndpoint)>,
    verifier: CommandVerifier,
    reporter: EventReporter,
    trace: Trace,
    /// Command sequence counts delivered here as final destination, in
    /// arrival order (the exactly-once oracle).
    delivered_cmds: Vec<u16>,
    /// Verification reports received here, indexed
    /// acceptance/start/completion.
    acks: [u64; 3],
    /// Event reports received here (the ground role).
    events_received: u64,
    /// Frames that failed wire decode (header corruption caught by the
    /// frame checksum).
    corrupt_frames: u64,
    /// Packets discarded by TTL exhaustion or missing routes.
    packets_dropped: u64,
}

impl MeshNode {
    fn new(id: u16, router: RoutingTable, neighbors: &[usize]) -> Self {
        Self {
            id,
            router,
            arqs: neighbors
                .iter()
                .map(|&peer| (peer, ArqEndpoint::new(ArqConfig::default())))
                .collect(),
            verifier: CommandVerifier::new(EXEC_TICKS),
            reporter: EventReporter::new(EVENT_APID_BASE + id),
            trace: Trace::new(),
            delivered_cmds: Vec::new(),
            acks: [0; 3],
            events_received: 0,
            corrupt_frames: 0,
            packets_dropped: 0,
        }
    }

    fn arq_toward(&mut self, peer: usize) -> Option<&mut ArqEndpoint> {
        self.arqs
            .iter_mut()
            .find(|(p, _)| *p == peer)
            .map(|(_, arq)| arq)
    }

    /// Routes `packet` out of this node: decrements the hop budget,
    /// consults the table, and offers the encoded packet to the ARQ
    /// toward the next hop. Records the forward (or the drop) in the
    /// node's trace.
    fn forward(&mut self, packet: SpacePacket, now: u64) {
        let at = Ticks(now);
        if packet.ttl == 0 {
            self.packets_dropped += 1;
            self.trace.record(TraceEvent::PacketDropped {
                at,
                apid: packet.apid,
                dst: packet.dst,
                reason: PacketDropReason::TtlExpired,
            });
            return;
        }
        let Some(via) = self.router.next_hop(NodeId(packet.dst)) else {
            self.packets_dropped += 1;
            self.trace.record(TraceEvent::PacketDropped {
                at,
                apid: packet.apid,
                dst: packet.dst,
                reason: PacketDropReason::NoRoute,
            });
            return;
        };
        let mut relayed = packet;
        relayed.ttl -= 1;
        self.trace.record(TraceEvent::PacketForwarded {
            at,
            apid: relayed.apid,
            dst: relayed.dst,
            via: via.as_u16(),
            ttl: relayed.ttl,
        });
        let bytes = relayed.encode();
        if let Some(arq) = self.arq_toward(via.as_u16() as usize) {
            arq.offer(Frame::new(MESH_CHANNEL, at, bytes));
        } else {
            // The table names a non-neighbour: statically a lint error
            // (AIR090/AIR093); dynamically the packet is unroutable.
            self.packets_dropped += 1;
            self.trace.record(TraceEvent::PacketDropped {
                at,
                apid: relayed.apid,
                dst: relayed.dst,
                reason: PacketDropReason::NoRoute,
            });
        }
    }

    /// Hands a locally built packet to the service layer: delivered in
    /// place when addressed to this node, otherwise forwarded.
    fn send_or_deliver(&mut self, packet: SpacePacket, now: u64) {
        if packet.dst == self.id {
            self.deliver(packet, now);
        } else {
            self.forward(packet, now);
        }
    }

    /// Terminal delivery: the packet reached its destination node.
    fn deliver(&mut self, packet: SpacePacket, now: u64) {
        let at = Ticks(now);
        match (packet.kind, packet.service) {
            (PacketKind::Tc, _) => {
                if let Some(transition) = self.verifier.accept(packet.apid, packet.seq, now) {
                    self.delivered_cmds.push(packet.seq);
                    self.trace.record(TraceEvent::CommandAccepted {
                        at,
                        apid: packet.apid,
                        seq: packet.seq,
                    });
                    if let Ok(report) =
                        verification_report(transition, self.id, packet.src, MESH_TTL)
                    {
                        self.send_or_deliver(report, now);
                    }
                }
                // A duplicate surviving ARQ dedup would be re-accepted and
                // re-recorded — exactly what the exactly-once check hunts.
            }
            (PacketKind::Tm, SERVICE_VERIFICATION) => {
                if let Some(stage) = AckStage::from_subservice(packet.subservice) {
                    self.acks[stage as usize] += 1;
                    self.trace.record(TraceEvent::CommandAckReceived {
                        at,
                        apid: packet.apid,
                        seq: packet.seq,
                        stage,
                    });
                }
            }
            (PacketKind::Tm, SERVICE_EVENT) => {
                self.events_received += 1;
                self.trace.record(TraceEvent::TelemetryReceived {
                    at,
                    apid: packet.apid,
                    seq: packet.seq,
                    src: packet.src,
                });
            }
            _ => {}
        }
    }

    /// Publishes an event report toward the ground node (the event
    /// manager: transport-health reports become telemetry packets).
    fn publish_event(&mut self, ground: u16, severity: EventSeverity, payload: Vec<u8>, now: u64) {
        let Ok(report) = self
            .reporter
            .report(self.id, ground, MESH_TTL, severity, payload)
        else {
            return;
        };
        self.trace.record(TraceEvent::TelemetryPublished {
            at: Ticks(now),
            apid: report.apid,
            seq: report.seq,
        });
        self.send_or_deliver(report, now);
    }
}

/// One incrementally-steppable mesh campaign: N nodes in lockstep over a
/// faulted fabric, advanced one tick at a time. [`MeshCampaignRunner`]
/// drives two back to back (the second is the determinism probe); the
/// fleet executor interleaves many across worker threads.
pub struct MeshSim {
    plan: MeshPlan,
    fabric: MeshFabric,
    nodes: Vec<MeshNode>,
    pending: Vec<FaultEvent>,
    commander: usize,
    executor: usize,
    hops: u64,
    sent: u64,
    expected: u64,
    now: u64,
    end: u64,
}

impl MeshSim {
    /// A sim for `plan`, with the routing tables walked end to end as a
    /// build gate (every pair reachable, no loops).
    ///
    /// # Panics
    ///
    /// Panics if `plan` names fewer than 3 nodes or its built-in
    /// topology fails the reachability walk (impossible for the
    /// generated tables).
    pub fn new(plan: &MeshPlan) -> Self {
        Self::assemble(plan, true)
    }

    /// The fleet fast path: construction without the reachability gate
    /// (validate once with [`MeshSim::new`], then mass-construct
    /// through this).
    pub fn new_unchecked(plan: &MeshPlan) -> Self {
        Self::assemble(plan, false)
    }

    fn assemble(plan: &MeshPlan, checked: bool) -> Self {
        assert!(plan.nodes >= 3, "a mesh campaign needs at least 3 nodes");
        let tables = plan.topology.routing_tables(plan.nodes);
        if checked {
            for src in 0..plan.nodes {
                for dst in 0..plan.nodes {
                    if src != dst {
                        assert!(
                            hop_count(&tables, src, dst).is_some(),
                            "{}[{}]: {src} cannot reach {dst}",
                            plan.topology.label(),
                            plan.nodes
                        );
                    }
                }
            }
        }
        let fabric = MeshFabric::new(
            plan.nodes,
            &plan.topology.edges(plan.nodes),
            MESH_LATENCY,
        )
        .expect("built-in topologies are valid fabrics");
        let (commander, executor) = command_endpoints(plan.topology, plan.nodes);
        let hops = hop_count(&tables, commander, executor).unwrap_or(plan.nodes as u64);
        let nodes = tables
            .into_iter()
            .enumerate()
            .map(|(i, table)| {
                let neighbors: Vec<usize> =
                    fabric.neighbors(i).iter().map(|&(peer, _)| peer).collect();
                MeshNode::new(i as u16, table, &neighbors)
            })
            .collect();
        Self {
            fabric,
            nodes,
            pending: plan.faults.events().to_vec(),
            commander,
            executor,
            hops,
            sent: 0,
            expected: planned_budget(plan),
            now: 0,
            end: planned_mesh_horizon(plan),
            plan: plan.clone(),
        }
    }

    /// The executed plan.
    pub fn plan(&self) -> &MeshPlan {
        &self.plan
    }

    /// Current tick (all nodes run in lockstep).
    pub fn now(&self) -> u64 {
        self.now
    }

    /// The tick the sim stops at (traffic window plus drain).
    pub fn horizon(&self) -> u64 {
        self.end
    }

    /// Whether the sim has reached its horizon.
    pub fn is_done(&self) -> bool {
        self.now >= self.end
    }

    /// The closed command budget the ground node originates.
    pub fn expected(&self) -> u64 {
        self.expected
    }

    /// Hops between commander and executor.
    pub fn command_hops(&self) -> u64 {
        self.hops
    }

    /// The ground node's index.
    pub fn commander(&self) -> usize {
        self.commander
    }

    /// The executor node's index.
    pub fn executor(&self) -> usize {
        self.executor
    }

    /// Advances one tick: due edge faults strike first, then every node
    /// (ascending index) drains its inbound links, dispatches packets,
    /// services its verifier, and transmits. No-op past the horizon.
    pub fn step(&mut self) {
        if self.is_done() {
            return;
        }
        let now = self.now;
        self.realise_due_faults(now);
        self.originate_commands(now);
        for i in 0..self.nodes.len() {
            self.node_receive(i, now);
            self.node_service(i, now);
            self.node_transmit(i, now);
        }
        self.now += 1;
    }

    /// Advances up to `n` ticks, stopping at the horizon.
    pub fn run_for(&mut self, n: u64) {
        for _ in 0..n {
            if self.is_done() {
                break;
            }
            self.step();
        }
    }

    /// Runs to the horizon.
    pub fn run_to_horizon(&mut self) {
        while !self.is_done() {
            self.step();
        }
    }

    /// Appends every node's canonical trace log (headed `== node 0 ==`,
    /// `== node 1 ==`, …) to `out`, byte-stable across reruns.
    pub fn render_trace_into(&self, out: &mut String) {
        use std::fmt::Write;
        for (i, node) in self.nodes.iter().enumerate() {
            let _ = writeln!(out, "== node {i} ==");
            node.trace.render_log_into(out);
        }
    }

    /// Strikes every fault whose time has come. The faulted edge is
    /// derived from the event's target; drop- and tamper-style faults
    /// stay armed until a frame is in flight on that edge (still fully
    /// deterministic).
    fn realise_due_faults(&mut self, now: u64) {
        let edges = self.fabric.edge_count();
        if edges == 0 {
            self.pending.clear();
            return;
        }
        let fabric = &mut self.fabric;
        self.pending.retain(|event| {
            if event.at > now {
                return true;
            }
            let edge = (event.target as usize) % edges;
            // Direction bit: which endpoint the in-flight fault hunts
            // frames toward.
            let toward = if event.target & (1 << 7) == 0 {
                LinkEndpoint::A
            } else {
                LinkEndpoint::B
            };
            let Some(link) = fabric.link_mut(edge) else {
                return false;
            };
            let realised = match event.class {
                FaultClass::LinkDrop => link.drop_in_flight(toward),
                FaultClass::LinkBitFlip => {
                    let byte = 2 + (event.target as usize % 8);
                    let mask = ((event.target >> 8) as u8) | 0x01;
                    link.tamper_in_flight(toward, byte, mask)
                }
                FaultClass::LinkOutage => {
                    let duration = 220 + event.target % 80;
                    link.begin_outage(now + duration);
                    true
                }
                FaultClass::AckLoss => link.drop_in_flight_where(toward, bytes_look_like_ack),
                _ => true,
            };
            !realised
        });
    }

    /// The ground node originates one telecommand per period toward the
    /// executor until the budget closes.
    fn originate_commands(&mut self, now: u64) {
        if self.sent >= self.expected
            || now < CMD_START
            || !(now - CMD_START).is_multiple_of(CMD_PERIOD)
        {
            return;
        }
        let seq = (self.sent & 0x3FFF) as u16;
        self.sent += 1;
        let commander = self.commander;
        let executor = self.executor as u16;
        let Ok(packet) = SpacePacket::new(
            CMD_APID,
            PacketKind::Tc,
            seq,
            commander as u16,
            executor,
            MESH_TTL,
            0,
            0,
            vec![0xC0],
        ) else {
            return;
        };
        self.nodes[commander].send_or_deliver(packet, now);
    }

    /// Drains every inbound link of node `i`: ACK frames feed the ARQ
    /// sender, data frames pass receiver-side dedup/ordering, delivered
    /// payloads decode into space packets and dispatch (terminal
    /// delivery or forward), and a cumulative ACK goes back per
    /// neighbour that produced one.
    fn node_receive(&mut self, i: usize, now: u64) {
        let node = &mut self.nodes[i];
        let fabric = &mut self.fabric;
        let mut inbox: Vec<SpacePacket> = Vec::new();
        for a in 0..node.arqs.len() {
            let peer = node.arqs[a].0;
            while let Some(bytes) = fabric.receive_from(i, peer, now) {
                let arq = &mut node.arqs[a].1;
                match Frame::decode(&bytes) {
                    Err(_) => node.corrupt_frames += 1,
                    Ok(frame) if frame.is_ack() => {
                        arq.on_ack(frame.link_seq);
                    }
                    Ok(frame) => {
                        if frame.link_seq == 0 {
                            continue; // unsequenced frames don't ride the mesh
                        }
                        if arq.on_data(&frame) == DataDisposition::Deliver {
                            if let Ok(packet) = SpacePacket::decode(&frame.payload) {
                                inbox.push(packet);
                            } else {
                                node.corrupt_frames += 1;
                            }
                        }
                    }
                }
            }
            if let Some(ack) = node.arqs[a].1.take_ack(Ticks(now)) {
                fabric.send(i, peer, now, ack.encode());
            }
        }
        for packet in inbox {
            self.nodes[i].send_or_deliver(packet, now);
        }
    }

    /// Runs node `i`'s command-verification state machine: due stage
    /// transitions become trace events and service 1 reports routed back
    /// to the commander.
    fn node_service(&mut self, i: usize, now: u64) {
        let commander = self.commander as u16;
        let node = &mut self.nodes[i];
        let at = Ticks(now);
        for transition in node.verifier.tick(now) {
            let event = match transition.stage {
                AckStage::Start => TraceEvent::CommandStarted {
                    at,
                    apid: transition.apid,
                    seq: transition.seq,
                },
                AckStage::Completion => TraceEvent::CommandCompleted {
                    at,
                    apid: transition.apid,
                    seq: transition.seq,
                },
                // Acceptance transitions are emitted inline by `deliver`.
                AckStage::Acceptance => continue,
            };
            node.trace.record(event);
            if let Ok(report) = verification_report(transition, node.id, commander, MESH_TTL) {
                node.send_or_deliver(report, now);
            }
        }
    }

    /// Polls node `i`'s per-neighbour ARQ senders and puts the produced
    /// frames on the fabric; transport-health events become trace lines
    /// and event telemetry toward the ground node.
    fn node_transmit(&mut self, i: usize, now: u64) {
        let ground = self.commander as u16;
        let node = &mut self.nodes[i];
        let at = Ticks(now);
        let mut health: Vec<(EventSeverity, Vec<u8>)> = Vec::new();
        let mut outbound: Vec<(usize, Vec<Vec<u8>>)> = Vec::new();
        for (peer, arq) in &mut node.arqs {
            let batch = arq.poll_transmit(now);
            for event in arq.take_events() {
                match event {
                    ArqEvent::Retransmitted { seq, retries } => {
                        node.trace
                            .record(TraceEvent::FrameRetransmitted { at, seq, retries });
                    }
                    ArqEvent::Exhausted { seq } => {
                        health.push((EventSeverity::High, seq.to_be_bytes().to_vec()));
                    }
                    ArqEvent::Recovered => {
                        health.push((EventSeverity::Info, Vec::new()));
                    }
                    _ => {}
                }
            }
            if !batch.frames.is_empty() {
                outbound.push((*peer, batch.frames));
            }
        }
        for (severity, payload) in health {
            node.publish_event(ground, severity, payload, now);
        }
        // Health telemetry may have offered new frames; poll again so
        // they leave this tick when the window allows.
        for (peer, arq) in &mut node.arqs {
            let batch = arq.poll_transmit(now);
            if !batch.frames.is_empty() {
                if let Some(slot) = outbound.iter_mut().find(|(p, _)| p == peer) {
                    slot.1.extend(batch.frames);
                } else {
                    outbound.push((*peer, batch.frames));
                }
            }
        }
        for (peer, frames) in outbound {
            for bytes in frames {
                self.fabric.send(i, peer, now, bytes);
            }
        }
    }

    fn into_artifacts(self) -> MeshArtifacts {
        let mut trace_log = String::new();
        self.render_trace_into(&mut trace_log);
        let executor = &self.nodes[self.executor];
        let commander = &self.nodes[self.commander];
        MeshArtifacts {
            expected: self.expected,
            delivered: executor.delivered_cmds.clone(),
            acks: commander.acks,
            events_received: commander.events_received,
            retransmissions: self
                .nodes
                .iter()
                .flat_map(|n| n.arqs.iter())
                .map(|(_, arq)| arq.retransmissions())
                .sum(),
            forwarded: self
                .nodes
                .iter()
                .map(|n| {
                    n.trace
                        .events()
                        .iter()
                        .filter(|e| matches!(e, TraceEvent::PacketForwarded { .. }))
                        .count() as u64
                })
                .sum(),
            packets_dropped: self.nodes.iter().map(|n| n.packets_dropped).sum(),
            corrupt_frames: self.nodes.iter().map(|n| n.corrupt_frames).sum(),
            trace_log,
        }
    }
}

/// Everything one faulted mesh execution leaves behind.
struct MeshArtifacts {
    expected: u64,
    delivered: Vec<u16>,
    acks: [u64; 3],
    events_received: u64,
    retransmissions: u64,
    forwarded: u64,
    packets_dropped: u64,
    corrupt_frames: u64,
    trace_log: String,
}

/// The result of one mesh campaign: the invariant report, the delivery
/// and service metrics, and the determinism verdict.
#[derive(Debug)]
pub struct MeshCampaignOutcome {
    /// The executed plan.
    pub plan: MeshPlan,
    /// The reliability-invariant report (empty = all invariants hold).
    pub report: Report,
    /// Telecommands originated by the ground node (the closed budget).
    pub expected: u64,
    /// Telecommands delivered to the executor.
    pub delivered: u64,
    /// Verification reports received back at the ground node, indexed
    /// acceptance/start/completion.
    pub acks: [u64; 3],
    /// Event-telemetry reports received at the ground node.
    pub events_received: u64,
    /// Frames retransmitted by any ARQ sender in the mesh.
    pub retransmissions: u64,
    /// Per-hop packet relays recorded across all nodes.
    pub forwarded: u64,
    /// Packets discarded (TTL exhaustion, missing routes).
    pub packets_dropped: u64,
    /// Frames rejected by wire-decode integrity.
    pub corrupt_frames: u64,
    /// Hops between commander and executor.
    pub command_hops: u64,
    /// Concatenated per-node trace logs.
    pub trace_log: String,
    /// Whether re-executing the same plan reproduced the trace log byte
    /// for byte.
    pub deterministic: bool,
}

impl MeshCampaignOutcome {
    /// Whether every invariant held: exactly-once in-order delivery, a
    /// complete accept/start/complete ack round trip per command, and a
    /// reproduced trace log.
    pub fn is_ok(&self) -> bool {
        self.report.is_ok()
            && self.deterministic
            && self.acks.iter().all(|&a| a == self.expected)
    }
}

/// Runs a [`MeshPlan`] twice (the second run is the determinism probe)
/// and checks exactly-once in-order command delivery plus the
/// verification-ack round trips.
///
/// # Examples
///
/// ```
/// use air_core::mesh::{mesh_plan, MeshCampaignRunner};
/// use air_ports::routing::MeshTopology;
///
/// let plan = mesh_plan(MeshTopology::Line, 5, 7, 1);
/// let outcome = MeshCampaignRunner::new(plan).run();
/// assert!(outcome.is_ok(), "{}", outcome.report);
/// assert!(outcome.command_hops >= 2);
/// ```
#[derive(Debug, Clone)]
pub struct MeshCampaignRunner {
    plan: MeshPlan,
}

impl MeshCampaignRunner {
    /// A runner for `plan`.
    pub fn new(plan: MeshPlan) -> Self {
        Self { plan }
    }

    /// Executes the campaign twice and checks every invariant.
    pub fn run(&self) -> MeshCampaignOutcome {
        let first = execute(&self.plan);
        let second = execute(&self.plan);
        let mut report = Report::new();
        check_exactly_once(&first, &mut report);
        let deterministic = first.trace_log == second.trace_log;
        let hops = {
            let tables = self.plan.topology.routing_tables(self.plan.nodes);
            let (src, dst) = command_endpoints(self.plan.topology, self.plan.nodes);
            hop_count(&tables, src, dst).unwrap_or(0)
        };
        MeshCampaignOutcome {
            plan: self.plan.clone(),
            report,
            expected: first.expected,
            delivered: first.delivered.len() as u64,
            acks: first.acks,
            events_received: first.events_received,
            retransmissions: first.retransmissions,
            forwarded: first.forwarded,
            packets_dropped: first.packets_dropped,
            corrupt_frames: first.corrupt_frames,
            command_hops: hops,
            trace_log: first.trace_log,
            deterministic,
        }
    }
}

fn execute(plan: &MeshPlan) -> MeshArtifacts {
    let mut sim = MeshSim::new(plan);
    sim.run_to_horizon();
    sim.into_artifacts()
}

/// Walks the executor's delivered command sequence against the closed
/// budget: every index exactly once, in order.
fn check_exactly_once(run: &MeshArtifacts, report: &mut Report) {
    let expected = run.expected;
    let mut seen = vec![0u64; expected as usize];
    let mut next_expected = 0u64;
    for &seq in &run.delivered {
        let seq = u64::from(seq);
        if seq >= expected {
            report.record(Violation::SpuriousDetection {
                at: Ticks::ZERO,
                detail: format!("executor delivered unknown command seq {seq}"),
            });
            continue;
        }
        seen[seq as usize] += 1;
        if seen[seq as usize] > 1 {
            report.record(Violation::DuplicateDelivery { seq });
            continue;
        }
        if seq != next_expected {
            report.record(Violation::OutOfOrderDelivery {
                expected: next_expected,
                got: seq,
            });
        }
        next_expected = seq + 1;
    }
    for (seq, &count) in seen.iter().enumerate() {
        if count == 0 {
            report.record(Violation::MessageLost { seq: seq as u64 });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_line_mesh_delivers_and_verifies() {
        let plan = MeshPlan {
            topology: MeshTopology::Line,
            nodes: 5,
            faults: FaultPlan::generate(1, &[], 0, 150, 400, 37),
        };
        let outcome = MeshCampaignRunner::new(plan).run();
        assert!(outcome.is_ok(), "{}", outcome.report);
        assert_eq!(outcome.delivered, outcome.expected);
        assert_eq!(outcome.command_hops, 4);
        assert_eq!(outcome.acks, [outcome.expected; 3]);
        assert!(outcome.forwarded >= outcome.expected * 4);
        assert_eq!(outcome.packets_dropped, 0);
        assert!(outcome.trace_log.contains("CommandAccepted"));
        assert!(outcome.trace_log.contains("CommandStarted"));
        assert!(outcome.trace_log.contains("CommandCompleted"));
        assert!(outcome.trace_log.contains("CommandAckReceived"));
    }

    #[test]
    fn faulted_star_mesh_survives_and_reproduces() {
        let plan = mesh_plan(MeshTopology::Star, 5, 42, 1);
        let outcome = MeshCampaignRunner::new(plan).run();
        assert!(outcome.is_ok(), "{}", outcome.report);
        assert_eq!(outcome.delivered, outcome.expected);
        assert_eq!(outcome.command_hops, 2);
    }

    #[test]
    fn ring_endpoints_sit_at_least_two_hops_apart() {
        for n in [4usize, 5, 9] {
            let (src, dst) = command_endpoints(MeshTopology::Ring, n);
            let tables = MeshTopology::Ring.routing_tables(n);
            assert!(hop_count(&tables, src, dst).unwrap_or(0) >= 2, "ring[{n}]");
        }
    }

    #[test]
    fn sim_is_steppable_and_idempotent_past_horizon() {
        let plan = mesh_plan(MeshTopology::Line, 3, 9, 1);
        let mut sim = MeshSim::new(&plan);
        let horizon = sim.horizon();
        sim.run_for(10);
        assert_eq!(sim.now(), 10);
        sim.run_to_horizon();
        assert_eq!(sim.now(), horizon);
        sim.step();
        assert_eq!(sim.now(), horizon, "step past horizon is a no-op");
    }
}
