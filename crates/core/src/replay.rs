//! Concrete replay of exploration counterexample witnesses.
//!
//! `air-lint --explore` reports each mode/HM invariant violation with a
//! [`Witness`]: the minimal abstract event sequence that reaches the bad
//! state. This module closes the loop back to the real system — it parses
//! no approximation, it drives the *actual* tick loop: every abstract
//! event maps to a concrete injection ([`AirSystem::request_schedule`],
//! [`AirSystem::inject_partition_fault`],
//! [`AirSystem::inject_module_fault`], [`AirSystem::force_link_down`],
//! [`AirSystem::force_link_up`]), each followed by at least one full major
//! time frame so MTF-boundary commits (schedule switches, change actions)
//! take effect exactly as they would in flight.
//!
//! After the last event the system runs an observation window and the
//! replay reports what concretely happened: the schedule in force, each
//! partition's operating mode, which running partitions were never
//! dispatched (the concrete face of AIR081 starvation), and how many
//! deadlines were missed. [`observe_abstract_state`] maps the concrete
//! system back into the explorer's abstract state space, which is how the
//! cross-validation property test checks that no real trace visits a
//! state the explorer calls unreachable.

use std::collections::BTreeSet;

use air_model::explore::{
    AbstractEvent, AbstractMode, AbstractState, ArqHealth, LinkState, Witness,
};
use air_model::partition::OperatingMode;
use air_model::{PartitionId, ScheduleId, Ticks};

use crate::system::AirSystem;
use crate::trace::TraceEvent;

/// What a witness replay concretely produced.
#[derive(Debug, Clone)]
pub struct ReplayReport {
    /// The schedule in force when the observation window closed.
    pub final_schedule: ScheduleId,
    /// The full abstract projection of the final concrete state.
    pub final_state: AbstractState,
    /// Every partition's operating mode at the end of the observation.
    pub modes: Vec<(PartitionId, OperatingMode)>,
    /// Partitions in `Normal` mode that were never dispatched during the
    /// observation window — concretely starved.
    pub starved: Vec<PartitionId>,
    /// Deadline misses recorded during the observation window alone.
    pub deadline_misses: u64,
    /// Length of the observation window in ticks.
    pub observed_ticks: u64,
}

/// The major time frame of the schedule currently in force (at least 1 so
/// replay always advances, even over a defective zero-MTF table).
fn current_mtf(system: &AirSystem) -> u64 {
    let current = system.schedule_status().current;
    system
        .schedules
        .iter()
        .find(|s| s.id() == current)
        .map(|s| s.mtf().as_u64())
        .unwrap_or(1)
        .max(1)
}

/// Runs the system past the next MTF boundary (committing any pending
/// schedule switch) and then through one full frame of the schedule now
/// in force — change actions fire at each partition's *first dispatch*
/// under the new schedule, so a whole frame must elapse before the state
/// is settled rather than transient.
fn run_past_next_mtf_boundary(system: &mut AirSystem) {
    let mtf = current_mtf(system);
    let now = system.now().as_u64();
    system.run_until(Ticks((now / mtf + 1) * mtf + 1));
    let mtf = current_mtf(system);
    let now = system.now().as_u64();
    system.run_until(Ticks((now / mtf + 1) * mtf + 1));
}

/// Applies one abstract event to the concrete system and runs past the
/// next MTF boundary so its effects commit.
pub fn apply_event(system: &mut AirSystem, event: &AbstractEvent) {
    match event {
        // The witness's `by` partition is the abstract authority; the
        // concrete injection uses the operator path, which the scheduler
        // treats identically (commit at the MTF boundary).
        AbstractEvent::ScheduleRequest { to, .. } => {
            let _ = system.request_schedule(*to);
        }
        // Racing requests: both land before the same MTF boundary and the
        // scheduler's last-wins rule commits the second — exactly the
        // abstract semantics.
        AbstractEvent::RaceRequest { first, second, .. } => {
            let _ = system.request_schedule(*first);
            let _ = system.request_schedule(*second);
        }
        AbstractEvent::PartitionFault { partition } => system.inject_partition_fault(*partition),
        AbstractEvent::DeadlineFault { partition } => system.inject_deadline_fault(*partition),
        AbstractEvent::ModuleFault => system.inject_module_fault(),
        AbstractEvent::LinkDown => system.force_link_down(),
        AbstractEvent::LinkUp => system.force_link_up(),
        AbstractEvent::ArqExhausted => system.inject_arq_exhaustion(),
        AbstractEvent::ArqRecovered => system.clear_arq_exhaustion(),
        AbstractEvent::MeshLinkDown { edge } => system.force_mesh_edge_down(*edge),
        AbstractEvent::MeshLinkUp { edge } => system.force_mesh_edge_up(*edge),
    }
    run_past_next_mtf_boundary(system);
}

/// Projects the concrete system into the explorer's abstract state tuple:
/// the schedule in force, each partition collapsed to running/stopped
/// (`Idle` is the stopped mode; cold/warm start are transients of
/// running), and the link health.
pub fn observe_abstract_state(system: &AirSystem) -> AbstractState {
    let schedule = system.schedule_status().current;
    let modes = system
        .partitions
        .iter()
        .map(|p| {
            let mode = match p.mode() {
                OperatingMode::Idle => AbstractMode::Stopped,
                _ => AbstractMode::Running,
            };
            (p.id(), mode)
        })
        .collect();
    let link = if system.is_degraded_mode() {
        LinkState::Degraded {
            nominal: system.nominal_schedule.unwrap_or(schedule),
        }
    } else if system.degraded_schedule.is_some() {
        LinkState::Nominal
    } else {
        LinkState::Absent
    };
    let arq = if !system.arq_tracking() {
        ArqHealth::Absent
    } else if system.arq_exhausted() {
        ArqHealth::Exhausted
    } else {
        ArqHealth::Nominal
    };
    AbstractState {
        schedule,
        modes,
        link,
        arq,
        mesh_down: system.mesh_edges_down(),
    }
}

/// Replays `witness` through the running system, then observes it for
/// `observe_mtfs` major time frames (at least one) and reports what
/// concretely happened.
///
/// The system should be freshly built; the replay first runs one full
/// frame to reach steady state, then applies each event with
/// [`apply_event`].
pub fn replay_witness(
    system: &mut AirSystem,
    witness: &Witness,
    observe_mtfs: u64,
) -> ReplayReport {
    run_past_next_mtf_boundary(system);
    for event in &witness.events {
        apply_event(system, event);
    }

    let trace_mark = system.trace().events().len();
    let misses_before = system.trace().deadline_miss_count();
    let start = system.now().as_u64();
    let mut dispatched: BTreeSet<PartitionId> = BTreeSet::new();
    if let Some(m) = system.active_partition() {
        dispatched.insert(m);
    }
    let mtf = current_mtf(system);
    system.run_until(Ticks(start + observe_mtfs.max(1) * mtf));
    for event in &system.trace().events()[trace_mark..] {
        if let TraceEvent::PartitionSwitch { to: Some(m), .. } = event {
            dispatched.insert(*m);
        }
    }

    let final_state = observe_abstract_state(system);
    let modes: Vec<(PartitionId, OperatingMode)> = system
        .partitions
        .iter()
        .map(|p| (p.id(), p.mode()))
        .collect();
    let starved = modes
        .iter()
        .filter(|(m, mode)| *mode == OperatingMode::Normal && !dispatched.contains(m))
        .map(|(m, _)| *m)
        .collect();
    ReplayReport {
        final_schedule: final_state.schedule,
        final_state,
        modes,
        starved,
        deadline_misses: system.trace().deadline_miss_count() - misses_before,
        observed_ticks: system.now().as_u64() - start,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{PartitionConfig, SystemBuilder};
    use air_model::schedule::{PartitionRequirement, Schedule, TimeWindow};
    use air_model::{Partition, ScheduleSet};

    const P0: PartitionId = PartitionId(0);
    const P1: PartitionId = PartitionId(1);
    const CHI0: ScheduleId = ScheduleId(0);
    const CHI1: ScheduleId = ScheduleId(1);

    fn two_schedule_system() -> AirSystem {
        let chi0 = Schedule::new(
            CHI0,
            "nominal",
            Ticks(100),
            vec![
                PartitionRequirement::new(P0, Ticks(100), Ticks(40)),
                PartitionRequirement::new(P1, Ticks(100), Ticks(40)),
            ],
            vec![
                TimeWindow::new(P0, Ticks(0), Ticks(40)),
                TimeWindow::new(P1, Ticks(40), Ticks(40)),
            ],
        );
        let chi1 = Schedule::new(
            CHI1,
            "p1-only",
            Ticks(100),
            vec![PartitionRequirement::new(P1, Ticks(100), Ticks(80))],
            vec![TimeWindow::new(P1, Ticks(0), Ticks(80))],
        );
        let mut system = SystemBuilder::new(ScheduleSet::new(vec![chi0, chi1]))
            .with_partition(PartitionConfig::new(Partition::new(P0, "a")))
            .with_partition(PartitionConfig::new(Partition::new(P1, "b")))
            .with_exploration_depth(0)
            .build()
            .expect("assembles");
        system.set_degraded_schedule(CHI1);
        system
    }

    #[test]
    fn empty_witness_observes_the_initial_schedule() {
        let mut system = two_schedule_system();
        let report = replay_witness(&mut system, &Witness { events: vec![] }, 2);
        assert_eq!(report.final_schedule, CHI0);
        assert!(report.starved.is_empty(), "{:?}", report.starved);
        assert_eq!(report.final_state.mode_of(P0), AbstractMode::Running);
    }

    #[test]
    fn schedule_request_commits_and_starves_the_windowless_partition() {
        let mut system = two_schedule_system();
        let witness = Witness::parse("request(P0->chi1)").expect("parses");
        let report = replay_witness(&mut system, &witness, 3);
        assert_eq!(report.final_schedule, CHI1);
        // P0 stays in normal mode but never gets a window in chi1.
        assert_eq!(report.starved, vec![P0]);
    }

    #[test]
    fn link_down_and_up_round_trip_through_the_degraded_schedule() {
        let mut system = two_schedule_system();
        let down = replay_witness(&mut system, &Witness::parse("link_down").expect("parses"), 1);
        assert_eq!(down.final_schedule, CHI1);
        assert!(matches!(
            down.final_state.link,
            LinkState::Degraded { nominal: CHI0 }
        ));
        apply_event(&mut system, &AbstractEvent::LinkUp);
        assert_eq!(observe_abstract_state(&system).schedule, CHI0);
        assert_eq!(observe_abstract_state(&system).link, LinkState::Nominal);
    }

    #[test]
    fn partition_fault_leaves_the_partition_running() {
        let mut system = two_schedule_system();
        let witness = Witness::parse("fault(P1)").expect("parses");
        let report = replay_witness(&mut system, &witness, 2);
        assert_eq!(report.final_state.mode_of(P1), AbstractMode::Running);
        assert!(report.starved.is_empty(), "{:?}", report.starved);
    }

    #[test]
    fn module_fault_restarts_everyone_into_running() {
        let mut system = two_schedule_system();
        let witness = Witness::parse("module_fault").expect("parses");
        let report = replay_witness(&mut system, &witness, 2);
        assert_eq!(report.final_state.mode_of(P0), AbstractMode::Running);
        assert_eq!(report.final_state.mode_of(P1), AbstractMode::Running);
    }

    #[test]
    fn deadline_fault_is_concretely_a_self_loop() {
        // No handler is installed, so the standard process-level
        // classification falls back to Ignore: tuple unchanged.
        let mut system = two_schedule_system();
        let witness = Witness::parse("deadline(P0)").expect("parses");
        let report = replay_witness(&mut system, &witness, 2);
        assert_eq!(report.final_schedule, CHI0);
        assert_eq!(report.final_state.mode_of(P0), AbstractMode::Running);
        assert_eq!(report.final_state.mode_of(P1), AbstractMode::Running);
    }

    #[test]
    fn arq_exhaustion_latches_and_recovery_clears() {
        let mut system = two_schedule_system();
        system.enable_arq_tracking();
        assert_eq!(observe_abstract_state(&system).arq, ArqHealth::Nominal);
        apply_event(&mut system, &AbstractEvent::ArqExhausted);
        assert_eq!(observe_abstract_state(&system).arq, ArqHealth::Exhausted);
        apply_event(&mut system, &AbstractEvent::ArqRecovered);
        assert_eq!(observe_abstract_state(&system).arq, ArqHealth::Nominal);
    }

    #[test]
    fn untracked_arq_projects_as_absent() {
        let system = two_schedule_system();
        assert_eq!(observe_abstract_state(&system).arq, ArqHealth::Absent);
    }

    #[test]
    fn mesh_edges_toggle_the_projection_mask() {
        let mut system = two_schedule_system();
        system.configure_mesh_edges(3);
        apply_event(&mut system, &AbstractEvent::MeshLinkDown { edge: 0 });
        apply_event(&mut system, &AbstractEvent::MeshLinkDown { edge: 2 });
        assert_eq!(observe_abstract_state(&system).mesh_down, 0b101);
        apply_event(&mut system, &AbstractEvent::MeshLinkUp { edge: 0 });
        assert_eq!(observe_abstract_state(&system).mesh_down, 0b100);
        // Edge 7 is beyond the configured count: ignored, not latched.
        apply_event(&mut system, &AbstractEvent::MeshLinkDown { edge: 7 });
        assert_eq!(observe_abstract_state(&system).mesh_down, 0b100);
    }

    #[test]
    fn racing_requests_commit_the_second_target() {
        let mut system = two_schedule_system();
        let witness = Witness::parse("race(P0->chi1,chi0)").expect("parses");
        let report = replay_witness(&mut system, &witness, 2);
        // Last request wins the MTF boundary: chi0 stays in force.
        assert_eq!(report.final_schedule, CHI0);
    }
}
