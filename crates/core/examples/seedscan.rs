//! Scratch: scan seeds for campaign invariant violations.
use air_core::campaign::{standard_plan, CampaignRunner};

fn main() {
    let mut bad = 0;
    for seed in 1..=120u64 {
        let outcome = CampaignRunner::new(standard_plan(seed, 2)).run();
        if !outcome.is_ok() || outcome.detected() != outcome.injected() {
            bad += 1;
            println!(
                "seed {seed}: detected {}/{}, deterministic={}",
                outcome.detected(),
                outcome.injected(),
                outcome.deterministic
            );
            print!("{}", outcome.report);
        }
    }
    println!("done, {bad} bad seeds of 120");
}
