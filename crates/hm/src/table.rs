//! Integration-time health-monitoring tables.
//!
//! ARINC 653 structures error handling around tables resolved at system
//! integration time: a **system (module) HM table** assigning each error an
//! error level, and per-partition **partition HM tables** selecting the
//! recovery action for errors handled at partition level. Process-level
//! errors go to the application error handler; when a partition has none,
//! a per-partition default action applies.

use std::collections::BTreeMap;


use air_model::PartitionId;

use crate::action::{ModuleRecoveryAction, PartitionRecoveryAction, ProcessRecoveryAction};
use crate::error_id::{ErrorId, ErrorLevel};

/// The system (module) HM table: classifies each error identifier into the
/// level at which it is handled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SystemHmTable {
    levels: BTreeMap<ErrorId, ErrorLevel>,
    /// Action for errors classified at module level.
    module_action: ModuleRecoveryAction,
}

impl SystemHmTable {
    /// The conventional default classification: application-visible errors
    /// at process level, containment breaches at partition level, platform
    /// failures at module level.
    pub fn standard() -> Self {
        let mut levels = BTreeMap::new();
        levels.insert(ErrorId::DeadlineMissed, ErrorLevel::Process);
        levels.insert(ErrorId::ApplicationError, ErrorLevel::Process);
        levels.insert(ErrorId::NumericError, ErrorLevel::Process);
        levels.insert(ErrorId::IllegalRequest, ErrorLevel::Process);
        levels.insert(ErrorId::StackOverflow, ErrorLevel::Process);
        levels.insert(ErrorId::MemoryViolation, ErrorLevel::Partition);
        levels.insert(ErrorId::HardwareFault, ErrorLevel::Module);
        levels.insert(ErrorId::PowerFail, ErrorLevel::Module);
        levels.insert(ErrorId::ConfigError, ErrorLevel::Module);
        levels.insert(ErrorId::LinkDegraded, ErrorLevel::Module);
        Self {
            levels,
            module_action: ModuleRecoveryAction::Reset,
        }
    }

    /// Overrides the level of `error`.
    #[must_use]
    pub fn with_level(mut self, error: ErrorId, level: ErrorLevel) -> Self {
        self.levels.insert(error, level);
        self
    }

    /// Sets the module-level recovery action.
    #[must_use]
    pub fn with_module_action(mut self, action: ModuleRecoveryAction) -> Self {
        self.module_action = action;
        self
    }

    /// The level assigned to `error` (defaults to partition level for
    /// unlisted errors: contain first, escalate by configuration).
    pub fn level_of(&self, error: ErrorId) -> ErrorLevel {
        self.levels
            .get(&error)
            .copied()
            .unwrap_or(ErrorLevel::Partition)
    }

    /// The module-level recovery action.
    pub fn module_action(&self) -> ModuleRecoveryAction {
        self.module_action
    }
}

impl Default for SystemHmTable {
    fn default() -> Self {
        Self::standard()
    }
}

/// One partition's HM table: the partition-level recovery action per error,
/// and the default process-level action used when the application installed
/// no error handler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionHmTable {
    actions: BTreeMap<ErrorId, PartitionRecoveryAction>,
    default_partition_action: PartitionRecoveryAction,
    /// Applied to process-level errors when no error handler exists.
    default_process_action: ProcessRecoveryAction,
}

impl PartitionHmTable {
    /// A table that warm-restarts the partition on any partition-level
    /// error and ignores (logs) unhandled process-level errors.
    pub fn standard() -> Self {
        Self {
            actions: BTreeMap::new(),
            default_partition_action: PartitionRecoveryAction::WarmRestart,
            default_process_action: ProcessRecoveryAction::Ignore,
        }
    }

    /// Overrides the partition-level action for `error`.
    #[must_use]
    pub fn with_action(mut self, error: ErrorId, action: PartitionRecoveryAction) -> Self {
        self.actions.insert(error, action);
        self
    }

    /// Sets the default partition-level action.
    #[must_use]
    pub fn with_default_partition_action(mut self, action: PartitionRecoveryAction) -> Self {
        self.default_partition_action = action;
        self
    }

    /// Sets the process-level action used when no error handler exists.
    #[must_use]
    pub fn with_default_process_action(mut self, action: ProcessRecoveryAction) -> Self {
        self.default_process_action = action;
        self
    }

    /// The partition-level action for `error`.
    pub fn action_for(&self, error: ErrorId) -> PartitionRecoveryAction {
        self.actions
            .get(&error)
            .copied()
            .unwrap_or(self.default_partition_action)
    }

    /// The default process-level action (no error handler installed).
    pub fn default_process_action(&self) -> ProcessRecoveryAction {
        self.default_process_action
    }
}

impl Default for PartitionHmTable {
    fn default() -> Self {
        Self::standard()
    }
}

/// The complete HM configuration of a module: system table plus one
/// partition table per partition.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HmTables {
    /// The module-wide classification table.
    pub system: SystemHmTable,
    partition_tables: BTreeMap<PartitionId, PartitionHmTable>,
}

impl HmTables {
    /// Standard tables with no per-partition overrides.
    pub fn standard() -> Self {
        Self::default()
    }

    /// Installs (or replaces) the table of `partition`.
    #[must_use]
    pub fn with_partition_table(
        mut self,
        partition: PartitionId,
        table: PartitionHmTable,
    ) -> Self {
        self.partition_tables.insert(partition, table);
        self
    }

    /// The table of `partition`; a standard table when none was installed.
    pub fn partition_table(&self, partition: PartitionId) -> PartitionHmTable {
        self.partition_tables
            .get(&partition)
            .cloned()
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_classification_matches_the_paper() {
        let t = SystemHmTable::standard();
        // Sect. 5: "ARINC 653 classifies process deadline violation as a
        // process level error".
        assert_eq!(t.level_of(ErrorId::DeadlineMissed), ErrorLevel::Process);
        assert_eq!(t.level_of(ErrorId::MemoryViolation), ErrorLevel::Partition);
        assert_eq!(t.level_of(ErrorId::HardwareFault), ErrorLevel::Module);
    }

    #[test]
    fn level_override() {
        let t = SystemHmTable::standard()
            .with_level(ErrorId::DeadlineMissed, ErrorLevel::Partition);
        assert_eq!(t.level_of(ErrorId::DeadlineMissed), ErrorLevel::Partition);
    }

    #[test]
    fn partition_table_defaults_and_overrides() {
        let t = PartitionHmTable::standard()
            .with_action(ErrorId::MemoryViolation, PartitionRecoveryAction::Stop);
        assert_eq!(
            t.action_for(ErrorId::MemoryViolation),
            PartitionRecoveryAction::Stop
        );
        assert_eq!(
            t.action_for(ErrorId::NumericError),
            PartitionRecoveryAction::WarmRestart
        );
    }

    #[test]
    fn hm_tables_fall_back_to_standard_per_partition() {
        let tables = HmTables::standard().with_partition_table(
            PartitionId(1),
            PartitionHmTable::standard()
                .with_default_partition_action(PartitionRecoveryAction::ColdRestart),
        );
        assert_eq!(
            tables
                .partition_table(PartitionId(1))
                .action_for(ErrorId::MemoryViolation),
            PartitionRecoveryAction::ColdRestart
        );
        assert_eq!(
            tables
                .partition_table(PartitionId(0))
                .action_for(ErrorId::MemoryViolation),
            PartitionRecoveryAction::WarmRestart
        );
    }
}
