//! Bounded, timestamped health-monitoring event log.

use std::collections::VecDeque;
use std::fmt;


use air_model::Ticks;

use crate::error_id::{ErrorId, ErrorLevel, ErrorSource};

/// One logged health-monitoring event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HmLogEntry {
    /// When the error was reported.
    pub time: Ticks,
    /// What happened.
    pub error: ErrorId,
    /// Where it was detected.
    pub source: ErrorSource,
    /// The level the system table classified it at.
    pub level: ErrorLevel,
    /// Free-form diagnostic detail (e.g. the missed absolute deadline).
    pub detail: String,
}

impl fmt::Display for HmLogEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} at {} ({} level): {}",
            self.time, self.error, self.source, self.level, self.detail
        )
    }
}

/// A bounded ring of [`HmLogEntry`] values; the oldest entries are evicted
/// once `capacity` is reached — an HM log on a spacecraft must never grow
/// without bound.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HmLog {
    capacity: usize,
    entries: VecDeque<HmLogEntry>,
    total_recorded: u64,
}

impl HmLog {
    /// Default log capacity.
    pub const DEFAULT_CAPACITY: usize = 1024;

    /// Creates a log holding at most `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "log capacity must be positive");
        Self {
            capacity,
            entries: VecDeque::new(),
            total_recorded: 0,
        }
    }

    /// Creates a log with the default capacity.
    pub fn new() -> Self {
        Self::with_capacity(Self::DEFAULT_CAPACITY)
    }

    /// Appends `entry`, evicting the oldest if full.
    pub fn record(&mut self, entry: HmLogEntry) {
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
        }
        self.entries.push_back(entry);
        self.total_recorded += 1;
    }

    /// The retained entries, oldest first.
    pub fn entries(&self) -> std::collections::vec_deque::Iter<'_, HmLogEntry> {
        self.entries.iter()
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total events ever recorded (including evicted ones).
    pub fn total_recorded(&self) -> u64 {
        self.total_recorded
    }

    /// Retained entries matching `error`, oldest first.
    pub fn entries_for(&self, error: ErrorId) -> impl Iterator<Item = &HmLogEntry> {
        self.entries.iter().filter(move |e| e.error == error)
    }
}

impl Default for HmLog {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use air_model::PartitionId;

    fn entry(t: u64) -> HmLogEntry {
        HmLogEntry {
            time: Ticks(t),
            error: ErrorId::DeadlineMissed,
            source: ErrorSource::Partition(PartitionId(0)),
            level: ErrorLevel::Process,
            detail: String::from("test"),
        }
    }

    #[test]
    fn record_and_iterate() {
        let mut log = HmLog::new();
        assert!(log.is_empty());
        log.record(entry(1));
        log.record(entry(2));
        let times: Vec<u64> = log.entries().map(|e| e.time.as_u64()).collect();
        assert_eq!(times, vec![1, 2]);
        assert_eq!(log.len(), 2);
    }

    #[test]
    fn eviction_keeps_newest() {
        let mut log = HmLog::with_capacity(2);
        log.record(entry(1));
        log.record(entry(2));
        log.record(entry(3));
        let times: Vec<u64> = log.entries().map(|e| e.time.as_u64()).collect();
        assert_eq!(times, vec![2, 3]);
        assert_eq!(log.total_recorded(), 3);
    }

    #[test]
    fn filtered_iteration() {
        let mut log = HmLog::new();
        log.record(entry(1));
        let mut other = entry(2);
        other.error = ErrorId::MemoryViolation;
        log.record(other);
        assert_eq!(log.entries_for(ErrorId::DeadlineMissed).count(), 1);
        assert_eq!(log.entries_for(ErrorId::MemoryViolation).count(), 1);
        assert_eq!(log.entries_for(ErrorId::PowerFail).count(), 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let _ = HmLog::with_capacity(0);
    }

    #[test]
    fn entry_display_is_informative() {
        let e = entry(42);
        let s = e.to_string();
        assert!(s.contains("42t"));
        assert!(s.contains("deadline missed"));
    }
}
