//! The AIR Health Monitor: the event sink of the whole architecture.
//!
//! The PMK (memory violations, hardware faults), the PAL (deadline
//! violations, Algorithm 3 line 6 `HM_DEADLINEVIOLATED`) and the APEX
//! (`RAISE_APPLICATION_ERROR`) all report errors here. The monitor
//! classifies each report through the [`crate::table::HmTables`], tracks
//! per-(source, error) occurrence counts to implement the log-N-then-act
//! policy, records a log entry, and returns the [`HmDecision`] its caller
//! must enforce.

use std::collections::HashMap;

use air_model::ids::GlobalProcessId;
use air_model::{PartitionId, Ticks};

use crate::action::{
    ModuleRecoveryAction, PartitionRecoveryAction, ProcessRecoveryAction,
};
use crate::error_id::{ErrorId, ErrorLevel, ErrorSource};
use crate::log::{HmLog, HmLogEntry};
use crate::table::HmTables;

/// The decision returned for a reported error: what the caller (PMK, POS or
/// APEX glue) must now do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HmDecision {
    /// Invoke the partition's application error handler; if it does not
    /// exist, apply the given default process-level action. `occurrences`
    /// counts how many times this (source, error) pair has been reported,
    /// for resolving log-N-times-then-act policies.
    InvokeErrorHandler {
        /// The faulty process.
        process: GlobalProcessId,
        /// Fallback when no handler is installed.
        fallback: ProcessRecoveryAction,
        /// Occurrences of this (source, error) so far, this one included.
        occurrences: u64,
    },
    /// Apply a partition-level recovery action.
    PartitionAction {
        /// The affected partition.
        partition: PartitionId,
        /// The action to apply.
        action: PartitionRecoveryAction,
    },
    /// Apply a module-level recovery action.
    ModuleAction {
        /// The action to apply.
        action: ModuleRecoveryAction,
    },
}

/// The health monitor state: tables, log, occurrence counters.
///
/// # Examples
///
/// ```
/// use air_hm::{HealthMonitor, HmDecision, HmTables, ErrorId, ErrorSource};
/// use air_model::ids::{GlobalProcessId, PartitionId, ProcessId};
/// use air_model::Ticks;
///
/// let mut hm = HealthMonitor::new(HmTables::standard());
/// let faulty = GlobalProcessId::new(PartitionId(0), ProcessId(1));
/// let decision = hm.report(
///     Ticks(1300),
///     ErrorId::DeadlineMissed,
///     ErrorSource::Process(faulty),
///     "deadline 1300 missed",
/// );
/// assert!(matches!(decision, HmDecision::InvokeErrorHandler { .. }));
/// assert_eq!(hm.log().len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct HealthMonitor {
    tables: HmTables,
    log: HmLog,
    occurrences: HashMap<(ErrorSourceKey, ErrorId), u64>,
}

/// Hashable key form of [`ErrorSource`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum ErrorSourceKey {
    Process(GlobalProcessId),
    Partition(PartitionId),
    Module,
}

impl From<ErrorSource> for ErrorSourceKey {
    fn from(value: ErrorSource) -> Self {
        match value {
            ErrorSource::Process(gp) => ErrorSourceKey::Process(gp),
            ErrorSource::Partition(p) => ErrorSourceKey::Partition(p),
            ErrorSource::Module => ErrorSourceKey::Module,
        }
    }
}

impl HealthMonitor {
    /// Creates a monitor over the given tables with a default-capacity log.
    pub fn new(tables: HmTables) -> Self {
        Self {
            tables,
            log: HmLog::new(),
            occurrences: HashMap::new(),
        }
    }

    /// Read access to the event log.
    pub fn log(&self) -> &HmLog {
        &self.log
    }

    /// The configured tables.
    pub fn tables(&self) -> &HmTables {
        &self.tables
    }

    /// Occurrences recorded so far for `(source, error)`.
    pub fn occurrences(&self, source: ErrorSource, error: ErrorId) -> u64 {
        self.occurrences
            .get(&(source.into(), error))
            .copied()
            .unwrap_or(0)
    }

    /// Reports an error: classifies it, logs it, bumps the occurrence
    /// counter, and returns the decision to enforce.
    ///
    /// An error classified at process level but reported with a partition
    /// or module source is escalated to partition level — there is no
    /// process to hand it to (e.g. a deadline miss detected after its
    /// partition was stopped).
    pub fn report(
        &mut self,
        time: Ticks,
        error: ErrorId,
        source: ErrorSource,
        detail: impl Into<String>,
    ) -> HmDecision {
        let classified = self.tables.system.level_of(error);
        let level = match (classified, &source) {
            (ErrorLevel::Process, ErrorSource::Process(_)) => ErrorLevel::Process,
            (ErrorLevel::Process, ErrorSource::Partition(_)) => ErrorLevel::Partition,
            (ErrorLevel::Process, ErrorSource::Module) => ErrorLevel::Module,
            (other, _) => other,
        };

        self.log.record(HmLogEntry {
            time,
            error,
            source,
            level,
            detail: detail.into(),
        });
        let count = self
            .occurrences
            .entry((source.into(), error))
            .and_modify(|c| *c += 1)
            .or_insert(1);
        let count = *count;

        match level {
            ErrorLevel::Process => {
                let ErrorSource::Process(process) = source else {
                    unreachable!("process level implies process source by the match above");
                };
                let table = self.tables.partition_table(process.partition);
                HmDecision::InvokeErrorHandler {
                    process,
                    fallback: table.default_process_action(),
                    occurrences: count,
                }
            }
            ErrorLevel::Partition => {
                let partition = source
                    .partition()
                    .expect("partition level requires a partition-scoped source");
                let action = self.tables.partition_table(partition).action_for(error);
                HmDecision::PartitionAction { partition, action }
            }
            ErrorLevel::Module => HmDecision::ModuleAction {
                action: self.tables.system.module_action(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::EscalatedProcessAction;
    use crate::table::{PartitionHmTable, SystemHmTable};
    use air_model::ids::ProcessId;

    fn proc(m: u32, q: u32) -> GlobalProcessId {
        GlobalProcessId::new(PartitionId(m), ProcessId(q))
    }

    #[test]
    fn deadline_miss_from_process_invokes_handler() {
        let mut hm = HealthMonitor::new(HmTables::standard());
        let d = hm.report(
            Ticks(10),
            ErrorId::DeadlineMissed,
            ErrorSource::Process(proc(0, 1)),
            "miss",
        );
        assert_eq!(
            d,
            HmDecision::InvokeErrorHandler {
                process: proc(0, 1),
                fallback: ProcessRecoveryAction::Ignore,
                occurrences: 1,
            }
        );
    }

    #[test]
    fn memory_violation_applies_partition_action() {
        let tables = HmTables::standard().with_partition_table(
            PartitionId(2),
            PartitionHmTable::standard()
                .with_action(ErrorId::MemoryViolation, PartitionRecoveryAction::Stop),
        );
        let mut hm = HealthMonitor::new(tables);
        let d = hm.report(
            Ticks(5),
            ErrorId::MemoryViolation,
            ErrorSource::Process(proc(2, 0)),
            "cross-partition store",
        );
        assert_eq!(
            d,
            HmDecision::PartitionAction {
                partition: PartitionId(2),
                action: PartitionRecoveryAction::Stop,
            }
        );
    }

    #[test]
    fn module_errors_use_module_action() {
        let mut tables = HmTables::standard();
        tables.system =
            SystemHmTable::standard().with_module_action(ModuleRecoveryAction::Shutdown);
        let mut hm = HealthMonitor::new(tables);
        let d = hm.report(Ticks(1), ErrorId::PowerFail, ErrorSource::Module, "brownout");
        assert_eq!(
            d,
            HmDecision::ModuleAction {
                action: ModuleRecoveryAction::Shutdown
            }
        );
    }

    #[test]
    fn process_error_with_partition_source_escalates() {
        let mut hm = HealthMonitor::new(HmTables::standard());
        let d = hm.report(
            Ticks(9),
            ErrorId::DeadlineMissed,
            ErrorSource::Partition(PartitionId(1)),
            "miss in stopped partition",
        );
        assert!(matches!(
            d,
            HmDecision::PartitionAction {
                partition: PartitionId(1),
                ..
            }
        ));
    }

    #[test]
    fn occurrence_counts_accompany_the_decision() {
        let policy = ProcessRecoveryAction::LogThenAct {
            threshold: 2,
            then: EscalatedProcessAction::StopProcess,
        };
        let tables = HmTables::standard().with_partition_table(
            PartitionId(0),
            PartitionHmTable::standard().with_default_process_action(policy),
        );
        let mut hm = HealthMonitor::new(tables);
        for t in 1..=3u64 {
            let d = hm.report(
                Ticks(t),
                ErrorId::DeadlineMissed,
                ErrorSource::Process(proc(0, 0)),
                "miss",
            );
            let HmDecision::InvokeErrorHandler {
                fallback,
                occurrences,
                ..
            } = d
            else {
                panic!("expected handler invocation");
            };
            // The raw policy passes through; APEX resolves it against the
            // occurrence count (below threshold: log + replenish; above:
            // the escalation).
            assert_eq!(fallback, policy);
            assert_eq!(occurrences, t);
        }
        assert_eq!(
            hm.occurrences(ErrorSource::Process(proc(0, 0)), ErrorId::DeadlineMissed),
            3
        );
    }

    #[test]
    fn occurrence_counters_are_per_source_and_error() {
        let mut hm = HealthMonitor::new(HmTables::standard());
        hm.report(
            Ticks(1),
            ErrorId::DeadlineMissed,
            ErrorSource::Process(proc(0, 0)),
            "",
        );
        hm.report(
            Ticks(2),
            ErrorId::DeadlineMissed,
            ErrorSource::Process(proc(0, 1)),
            "",
        );
        hm.report(
            Ticks(3),
            ErrorId::NumericError,
            ErrorSource::Process(proc(0, 0)),
            "",
        );
        assert_eq!(
            hm.occurrences(ErrorSource::Process(proc(0, 0)), ErrorId::DeadlineMissed),
            1
        );
        assert_eq!(
            hm.occurrences(ErrorSource::Process(proc(0, 1)), ErrorId::DeadlineMissed),
            1
        );
        assert_eq!(
            hm.occurrences(ErrorSource::Process(proc(0, 0)), ErrorId::NumericError),
            1
        );
        assert_eq!(hm.log().len(), 3);
    }
}
