//! # air-hm — AIR Health Monitoring
//!
//! "The AIR Health Monitor is responsible for handling hardware and
//! software errors (like deadlines missed, memory protection violations, or
//! hardware failures). The aim is to isolate errors within its domain of
//! occurrence: process level errors will cause an application error handler
//! to be invoked, while partition level errors trigger a response action
//! defined at system integration time. Errors detected at system level may
//! lead the entire system to be stopped or reinitialized." (Sect. 2.4.)
//!
//! The crate provides:
//!
//! * the **error identifiers** ARINC 653 defines, including the deadline
//!   miss this paper's Sect. 5 centres on ([`error_id`]);
//! * the **error level** classification (process / partition / module) and
//!   the integration-time **HM tables** that perform it ([`table`]);
//! * the **recovery actions** available at each level, including the
//!   paper's full menu for deadline violations — ignore, log-N-times-then-
//!   act, stop/restart the process, stop the process for partition-level
//!   detection, restart or stop the partition ([`action`]);
//! * the **health monitor** itself: the event sink the PMK, PAL and APEX
//!   report into, which consults the tables, tracks per-error occurrence
//!   counts, records everything in a bounded log, and hands back the
//!   decision its caller must enforce ([`monitor`]);
//! * a bounded, timestamped **error log** ([`log`]).
//!
//! The monitor *decides*; the PMK and POS *enforce*. Keeping enforcement
//! out of this crate mirrors the AIR layering (Fig. 1) and keeps the crate
//! free of any runtime dependency.

#![warn(missing_docs)]

pub mod action;
pub mod error_id;
pub mod log;
pub mod monitor;
pub mod table;

pub use action::{
    EscalatedProcessAction, ModuleRecoveryAction, PartitionRecoveryAction, ProcessRecoveryAction,
};
pub use error_id::{ErrorId, ErrorLevel, ErrorSource};
pub use log::{HmLog, HmLogEntry};
pub use monitor::{HealthMonitor, HmDecision};
pub use table::{HmTables, PartitionHmTable, SystemHmTable};
