//! Recovery actions per error level.
//!
//! For a process-level error such as a deadline violation, the paper
//! (Sect. 5) lists the possible recovery actions verbatim; they are the
//! variants of [`ProcessRecoveryAction`]. "The actual action to be
//! performed is defined by the application programmer, through an
//! appropriate error handler" — the APEX error-handler machinery selects
//! among these.

use std::fmt;


/// Recovery actions for **process-level** errors (Sect. 5's list).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, Default,
)]
pub enum ProcessRecoveryAction {
    /// "Ignoring the error (logging it, but taking no action)."
    #[default]
    Ignore,
    /// "Logging the error a certain number of times before acting upon
    /// it" — after `threshold` occurrences, `then` is applied.
    LogThenAct {
        /// Occurrences to merely log before escalating.
        threshold: u32,
        /// The escalation applied from occurrence `threshold + 1` on.
        then: EscalatedProcessAction,
    },
    /// "Stopping the faulty process, and reinitializing it from the entry
    /// address."
    RestartProcess,
    /// Stopping the faulty process and starting another (recovery) process.
    StartOtherProcess,
    /// "Stopping the faulty process, assuming that the partition will
    /// detect this and recover."
    StopProcess,
    /// "Restarting … the partition."
    RestartPartition,
    /// "… or stopping the partition."
    StopPartition,
}

/// The subset of process recovery actions that make sense as an escalation
/// target of [`ProcessRecoveryAction::LogThenAct`] (everything but another
/// log-then-act, which would never terminate).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash,
)]
pub enum EscalatedProcessAction {
    /// Stop the process and reinitialise it from its entry address.
    RestartProcess,
    /// Stop the faulty process and start another process.
    StartOtherProcess,
    /// Stop the process.
    StopProcess,
    /// Restart the whole partition.
    RestartPartition,
    /// Stop the whole partition.
    StopPartition,
}

impl From<EscalatedProcessAction> for ProcessRecoveryAction {
    fn from(value: EscalatedProcessAction) -> Self {
        match value {
            EscalatedProcessAction::RestartProcess => ProcessRecoveryAction::RestartProcess,
            EscalatedProcessAction::StartOtherProcess => ProcessRecoveryAction::StartOtherProcess,
            EscalatedProcessAction::StopProcess => ProcessRecoveryAction::StopProcess,
            EscalatedProcessAction::RestartPartition => ProcessRecoveryAction::RestartPartition,
            EscalatedProcessAction::StopPartition => ProcessRecoveryAction::StopPartition,
        }
    }
}

impl fmt::Display for ProcessRecoveryAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProcessRecoveryAction::Ignore => f.write_str("ignore (log only)"),
            ProcessRecoveryAction::LogThenAct { threshold, then } => {
                write!(f, "log {threshold} times then {then:?}")
            }
            ProcessRecoveryAction::RestartProcess => f.write_str("restart process"),
            ProcessRecoveryAction::StartOtherProcess => f.write_str("start other process"),
            ProcessRecoveryAction::StopProcess => f.write_str("stop process"),
            ProcessRecoveryAction::RestartPartition => f.write_str("restart partition"),
            ProcessRecoveryAction::StopPartition => f.write_str("stop partition"),
        }
    }
}

/// Recovery actions for **partition-level** errors, "defined at system
/// integration time" (Sect. 2.4).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, Default,
)]
pub enum PartitionRecoveryAction {
    /// Log only.
    Ignore,
    /// Restart the partition in warm-start mode.
    #[default]
    WarmRestart,
    /// Restart the partition in cold-start mode.
    ColdRestart,
    /// Set the partition idle (shut it down).
    Stop,
}

impl fmt::Display for PartitionRecoveryAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PartitionRecoveryAction::Ignore => "ignore",
            PartitionRecoveryAction::WarmRestart => "warm restart",
            PartitionRecoveryAction::ColdRestart => "cold restart",
            PartitionRecoveryAction::Stop => "stop",
        };
        f.write_str(s)
    }
}

/// Recovery actions for **module-level** errors: "errors detected at
/// system level may lead the entire system to be stopped or reinitialized"
/// (Sect. 2.4).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, Default,
)]
pub enum ModuleRecoveryAction {
    /// Log only.
    Ignore,
    /// Shut the module down.
    Shutdown,
    /// Reinitialise (reset) the module.
    #[default]
    Reset,
}

impl fmt::Display for ModuleRecoveryAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ModuleRecoveryAction::Ignore => "ignore",
            ModuleRecoveryAction::Shutdown => "shutdown",
            ModuleRecoveryAction::Reset => "reset",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escalation_converts_into_plain_action() {
        let esc = EscalatedProcessAction::RestartPartition;
        assert_eq!(
            ProcessRecoveryAction::from(esc),
            ProcessRecoveryAction::RestartPartition
        );
    }

    #[test]
    fn defaults_are_conservative() {
        assert_eq!(
            ProcessRecoveryAction::default(),
            ProcessRecoveryAction::Ignore
        );
        assert_eq!(
            PartitionRecoveryAction::default(),
            PartitionRecoveryAction::WarmRestart
        );
        assert_eq!(ModuleRecoveryAction::default(), ModuleRecoveryAction::Reset);
    }

    #[test]
    fn display_mentions_threshold() {
        let a = ProcessRecoveryAction::LogThenAct {
            threshold: 3,
            then: EscalatedProcessAction::StopProcess,
        };
        assert!(a.to_string().contains('3'));
    }
}
