//! Error identifiers, sources and levels (ARINC 653 health monitoring
//! vocabulary, Sect. 2.4 and 5 of the paper).

use std::fmt;


use air_model::ids::GlobalProcessId;
use air_model::PartitionId;

/// The errors health monitoring classifies and handles.
///
/// ARINC 653 "classifies process deadline violation as a process level
/// error (an error that impacts one or more processes in the partition, or
/// the entire partition)" (Sect. 5) — [`ErrorId::DeadlineMissed`] is the
/// one this paper's mechanisms revolve around.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash,
)]
#[non_exhaustive]
pub enum ErrorId {
    /// A process exceeded its deadline (detected by the PAL deadline
    /// violation monitor, Sect. 5).
    DeadlineMissed,
    /// An application raised an error explicitly
    /// (`RAISE_APPLICATION_ERROR`).
    ApplicationError,
    /// Arithmetic error (overflow, divide by zero) in application code.
    NumericError,
    /// An APEX service was invoked with an illegal request in the current
    /// state.
    IllegalRequest,
    /// A process overflowed its stack.
    StackOverflow,
    /// A memory protection violation — an MMU fault against the spatial
    /// partitioning mappings (Sect. 2.1).
    MemoryViolation,
    /// A hardware device fault.
    HardwareFault,
    /// Imminent power failure.
    PowerFail,
    /// A configuration error detected during initialisation.
    ConfigError,
    /// The inter-node link degraded past its failover threshold (the
    /// reliable transport failed over to the redundant link, or delivery
    /// retries are exhausted) — the trigger for the Sect. 4 mode-based
    /// switch to a degraded schedule.
    LinkDegraded,
}

impl ErrorId {
    /// All identifiers, for table construction and exhaustive testing.
    pub const ALL: [ErrorId; 10] = [
        ErrorId::DeadlineMissed,
        ErrorId::ApplicationError,
        ErrorId::NumericError,
        ErrorId::IllegalRequest,
        ErrorId::StackOverflow,
        ErrorId::MemoryViolation,
        ErrorId::HardwareFault,
        ErrorId::PowerFail,
        ErrorId::ConfigError,
        ErrorId::LinkDegraded,
    ];
}

impl fmt::Display for ErrorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ErrorId::DeadlineMissed => "deadline missed",
            ErrorId::ApplicationError => "application error",
            ErrorId::NumericError => "numeric error",
            ErrorId::IllegalRequest => "illegal request",
            ErrorId::StackOverflow => "stack overflow",
            ErrorId::MemoryViolation => "memory violation",
            ErrorId::HardwareFault => "hardware fault",
            ErrorId::PowerFail => "power fail",
            ErrorId::ConfigError => "configuration error",
            ErrorId::LinkDegraded => "link degraded",
        };
        f.write_str(s)
    }
}

/// Where an error was detected: determines which HM table applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorSource {
    /// Raised by / attributed to a specific process.
    Process(GlobalProcessId),
    /// Attributed to a whole partition (e.g. a memory violation during the
    /// partition's window, or an error in partition initialisation).
    Partition(PartitionId),
    /// Attributed to the module (whole computing platform).
    Module,
}

impl ErrorSource {
    /// The partition the error is contained in, if any.
    pub fn partition(&self) -> Option<PartitionId> {
        match self {
            ErrorSource::Process(gp) => Some(gp.partition),
            ErrorSource::Partition(p) => Some(*p),
            ErrorSource::Module => None,
        }
    }
}

impl fmt::Display for ErrorSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ErrorSource::Process(gp) => write!(f, "process {gp}"),
            ErrorSource::Partition(p) => write!(f, "partition {p}"),
            ErrorSource::Module => f.write_str("module"),
        }
    }
}

/// The level at which an error is handled (Sect. 2.4): process-level errors
/// invoke the application error handler; partition-level errors trigger the
/// integration-time response action; module-level errors may stop or
/// reinitialise the whole system.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash,
)]
pub enum ErrorLevel {
    /// Handled inside the partition by the application error handler.
    Process,
    /// Handled by the partition-level response action.
    Partition,
    /// Handled at whole-module scope.
    Module,
}

impl fmt::Display for ErrorLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ErrorLevel::Process => "process",
            ErrorLevel::Partition => "partition",
            ErrorLevel::Module => "module",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use air_model::ids::ProcessId;

    #[test]
    fn all_covers_every_variant_once() {
        let mut sorted = ErrorId::ALL.to_vec();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), ErrorId::ALL.len());
    }

    #[test]
    fn source_partition_extraction() {
        let gp = GlobalProcessId::new(PartitionId(2), ProcessId(0));
        assert_eq!(
            ErrorSource::Process(gp).partition(),
            Some(PartitionId(2))
        );
        assert_eq!(
            ErrorSource::Partition(PartitionId(1)).partition(),
            Some(PartitionId(1))
        );
        assert_eq!(ErrorSource::Module.partition(), None);
    }

    #[test]
    fn levels_order_by_severity_scope() {
        assert!(ErrorLevel::Process < ErrorLevel::Partition);
        assert!(ErrorLevel::Partition < ErrorLevel::Module);
    }

    #[test]
    fn display_strings() {
        assert_eq!(ErrorId::DeadlineMissed.to_string(), "deadline missed");
        assert_eq!(ErrorLevel::Module.to_string(), "module");
        assert_eq!(
            ErrorSource::Partition(PartitionId(0)).to_string(),
            "partition P0"
        );
    }
}
