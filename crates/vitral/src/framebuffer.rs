//! The character framebuffer: VITRAL's VGA-text-mode analogue.

/// A fixed-size grid of characters.
///
/// # Examples
///
/// ```
/// use air_vitral::CharBuffer;
///
/// let mut fb = CharBuffer::new(10, 2);
/// fb.put_str(0, 0, "hello");
/// let text = fb.render();
/// assert!(text.starts_with("hello"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CharBuffer {
    width: usize,
    height: usize,
    cells: Vec<char>,
}

impl CharBuffer {
    /// Creates a buffer of `width × height` filled with spaces.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "framebuffer must be non-empty");
        Self {
            width,
            height,
            cells: vec![' '; width * height],
        }
    }

    /// Buffer width in columns.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Buffer height in rows.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Clears the buffer to spaces.
    pub fn clear(&mut self) {
        self.cells.fill(' ');
    }

    /// Writes one character at `(col, row)`; writes outside the buffer are
    /// clipped (windows near edges simply truncate).
    pub fn put(&mut self, col: usize, row: usize, ch: char) {
        if col < self.width && row < self.height {
            self.cells[row * self.width + col] = ch;
        }
    }

    /// The character at `(col, row)`, or `None` outside the buffer.
    pub fn get(&self, col: usize, row: usize) -> Option<char> {
        (col < self.width && row < self.height).then(|| self.cells[row * self.width + col])
    }

    /// Writes a string starting at `(col, row)`, clipping at the right
    /// edge.
    pub fn put_str(&mut self, col: usize, row: usize, text: &str) {
        for (i, ch) in text.chars().enumerate() {
            self.put(col + i, row, ch);
        }
    }

    /// Draws a single-line box border on the rectangle
    /// `[col, col+width) × [row, row+height)`.
    pub fn draw_box(&mut self, col: usize, row: usize, width: usize, height: usize) {
        if width < 2 || height < 2 {
            return;
        }
        let (right, bottom) = (col + width - 1, row + height - 1);
        self.put(col, row, '+');
        self.put(right, row, '+');
        self.put(col, bottom, '+');
        self.put(right, bottom, '+');
        for c in col + 1..right {
            self.put(c, row, '-');
            self.put(c, bottom, '-');
        }
        for r in row + 1..bottom {
            self.put(col, r, '|');
            self.put(right, r, '|');
        }
    }

    /// Renders the buffer to a newline-separated string with trailing
    /// spaces trimmed per row.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity((self.width + 1) * self.height);
        for row in 0..self.height {
            let line: String = self.cells[row * self.width..(row + 1) * self.width]
                .iter()
                .collect();
            out.push_str(line.trim_end());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_and_get() {
        let mut fb = CharBuffer::new(4, 2);
        fb.put(3, 1, 'x');
        assert_eq!(fb.get(3, 1), Some('x'));
        assert_eq!(fb.get(0, 0), Some(' '));
        assert_eq!(fb.get(4, 0), None);
    }

    #[test]
    fn writes_clip_at_edges() {
        let mut fb = CharBuffer::new(4, 1);
        fb.put_str(2, 0, "abcdef");
        assert_eq!(fb.render(), "  ab\n");
        fb.put(9, 9, 'z'); // no panic
    }

    #[test]
    fn box_drawing() {
        let mut fb = CharBuffer::new(5, 3);
        fb.draw_box(0, 0, 5, 3);
        assert_eq!(fb.render(), "+---+\n|   |\n+---+\n");
    }

    #[test]
    fn degenerate_box_is_noop() {
        let mut fb = CharBuffer::new(5, 3);
        fb.draw_box(0, 0, 1, 1);
        assert_eq!(fb.render(), "\n\n\n");
    }

    #[test]
    fn clear_resets() {
        let mut fb = CharBuffer::new(3, 1);
        fb.put_str(0, 0, "abc");
        fb.clear();
        assert_eq!(fb.render(), "\n");
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_size_rejected() {
        let _ = CharBuffer::new(0, 5);
    }
}
