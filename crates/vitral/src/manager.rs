//! The window manager: composites partition and AIR status windows into
//! one screen, as in Fig. 9.

use crate::framebuffer::CharBuffer;
use crate::window::Window;

/// Default screen size (a roomy VGA text mode).
pub const DEFAULT_COLS: usize = 100;
/// Default screen rows.
pub const DEFAULT_ROWS: usize = 30;

/// The VITRAL window manager.
///
/// Fig. 9's layout: one window per partition in a top grid, plus AIR
/// status windows (partition scheduler/dispatcher activity, health
/// monitoring events) along the bottom.
///
/// # Examples
///
/// ```
/// use air_vitral::Vitral;
///
/// let mut v = Vitral::fig9_layout(&["P1 AOCS", "P2 OBDH", "P3 TTC", "P4 PAYLOAD"]);
/// v.partition_window_mut(0).write_line("AOCS alive");
/// v.air_window_mut().write_line("[t=200] dispatch P2");
/// let frame = v.render();
/// assert!(frame.contains("AOCS alive"));
/// assert!(frame.contains("dispatch P2"));
/// ```
#[derive(Debug, Clone)]
pub struct Vitral {
    cols: usize,
    rows: usize,
    partition_windows: Vec<Window>,
    air_window: Window,
    hm_window: Window,
}

impl Vitral {
    /// Builds the Fig. 9 layout for the given partition window titles:
    /// partition windows in a top row, the AIR activity window and health
    /// monitor window across the bottom.
    ///
    /// # Panics
    ///
    /// Panics if `titles` is empty or has more than 8 entries (the layout
    /// is a demo fixture, not a general tiling engine).
    pub fn fig9_layout(titles: &[&str]) -> Self {
        assert!(
            !titles.is_empty() && titles.len() <= 8,
            "1..=8 partition windows supported"
        );
        let cols = DEFAULT_COLS;
        let rows = DEFAULT_ROWS;
        let pw = cols / titles.len();
        let ph = rows - 10;
        let partition_windows = titles
            .iter()
            .enumerate()
            .map(|(i, t)| Window::new(*t, i * pw, 0, pw, ph))
            .collect();
        let air_window = Window::new("AIR PMK", 0, ph, cols * 3 / 5, 10);
        let hm_window = Window::new("Health Monitor", cols * 3 / 5, ph, cols - cols * 3 / 5, 10);
        Self {
            cols,
            rows,
            partition_windows,
            air_window,
            hm_window,
        }
    }

    /// Number of partition windows.
    pub fn partition_count(&self) -> usize {
        self.partition_windows.len()
    }

    /// The window of partition index `m`.
    ///
    /// # Panics
    ///
    /// Panics if `m` is out of range.
    pub fn partition_window_mut(&mut self, m: usize) -> &mut Window {
        &mut self.partition_windows[m]
    }

    /// The AIR component activity window.
    pub fn air_window_mut(&mut self) -> &mut Window {
        &mut self.air_window
    }

    /// The health-monitoring events window.
    pub fn hm_window_mut(&mut self) -> &mut Window {
        &mut self.hm_window
    }

    /// Renders the whole screen to a string.
    pub fn render(&self) -> String {
        let mut fb = CharBuffer::new(self.cols, self.rows);
        for w in &self.partition_windows {
            w.draw(&mut fb);
        }
        self.air_window.draw(&mut fb);
        self.hm_window.draw(&mut fb);
        fb.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_partition_layout_renders_all_titles() {
        let v = Vitral::fig9_layout(&["P1", "P2", "P3", "P4"]);
        let out = v.render();
        for t in ["P1", "P2", "P3", "P4", "AIR PMK", "Health Monitor"] {
            assert!(out.contains(t), "missing {t} in\n{out}");
        }
        assert_eq!(v.partition_count(), 4);
    }

    #[test]
    fn windows_receive_output_independently() {
        let mut v = Vitral::fig9_layout(&["A", "B"]);
        v.partition_window_mut(0).write_line("only-in-a");
        v.hm_window_mut().write_line("deadline missed");
        let out = v.render();
        assert!(out.contains("only-in-a"));
        assert!(out.contains("deadline missed"));
        // Render is stable: drawing twice gives the same frame.
        assert_eq!(out, v.render());
    }

    #[test]
    #[should_panic(expected = "partition windows supported")]
    fn too_many_windows_rejected() {
        let titles = ["a"; 9];
        let _ = Vitral::fig9_layout(&titles);
    }
}
