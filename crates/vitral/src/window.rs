//! Bordered, scrolling text windows.

use std::collections::VecDeque;

use crate::framebuffer::CharBuffer;

/// A titled window with scrolling line content.
///
/// Content beyond the visible height scrolls up (the newest lines are
/// always visible), exactly like a console window in the Fig. 9 prototype.
#[derive(Debug, Clone)]
pub struct Window {
    title: String,
    col: usize,
    row: usize,
    width: usize,
    height: usize,
    lines: VecDeque<String>,
    partial: String,
    /// Retained scrollback bound (visible plus history).
    scrollback: usize,
}

impl Window {
    /// Creates a window at `(col, row)` of `width × height` (including the
    /// border).
    ///
    /// # Panics
    ///
    /// Panics if the window is too small to hold any content
    /// (minimum 3×3).
    pub fn new(
        title: impl Into<String>,
        col: usize,
        row: usize,
        width: usize,
        height: usize,
    ) -> Self {
        assert!(width >= 3 && height >= 3, "window must be at least 3x3");
        Self {
            title: title.into(),
            col,
            row,
            width,
            height,
            lines: VecDeque::new(),
            partial: String::new(),
            scrollback: 200,
        }
    }

    /// The window title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Visible content columns (width minus borders).
    pub fn inner_width(&self) -> usize {
        self.width - 2
    }

    /// Visible content rows (height minus borders).
    pub fn inner_height(&self) -> usize {
        self.height - 2
    }

    /// Appends text; newlines split lines, and lines longer than the inner
    /// width wrap.
    pub fn write(&mut self, text: &str) {
        for ch in text.chars() {
            if ch == '\n' {
                let line = std::mem::take(&mut self.partial);
                self.push_line(line);
            } else {
                self.partial.push(ch);
                if self.partial.chars().count() == self.inner_width() {
                    let line = std::mem::take(&mut self.partial);
                    self.push_line(line);
                }
            }
        }
    }

    /// Appends one complete line.
    pub fn write_line(&mut self, line: &str) {
        self.write(line);
        self.write("\n");
    }

    fn push_line(&mut self, line: String) {
        if self.lines.len() == self.scrollback {
            self.lines.pop_front();
        }
        self.lines.push_back(line);
    }

    /// Discards all content.
    pub fn clear(&mut self) {
        self.lines.clear();
        self.partial.clear();
    }

    /// The currently visible lines (newest at the bottom), including the
    /// in-progress partial line.
    pub fn visible_lines(&self) -> Vec<&str> {
        let mut all: Vec<&str> = self.lines.iter().map(String::as_str).collect();
        if !self.partial.is_empty() {
            all.push(&self.partial);
        }
        let h = self.inner_height();
        if all.len() > h {
            all.split_off(all.len() - h)
        } else {
            all
        }
    }

    /// Composites the window (border, title, visible content) onto `fb`.
    pub fn draw(&self, fb: &mut CharBuffer) {
        fb.draw_box(self.col, self.row, self.width, self.height);
        // Title centred-ish in the top border.
        let title = format!(" {} ", self.title);
        let avail = self.width.saturating_sub(2);
        let title: String = title.chars().take(avail).collect();
        fb.put_str(self.col + 1, self.row, &title);
        for (i, line) in self.visible_lines().iter().enumerate() {
            let truncated: String = line.chars().take(self.inner_width()).collect();
            fb.put_str(self.col + 1, self.row + 1 + i, &truncated);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_splits_on_newline() {
        let mut w = Window::new("t", 0, 0, 10, 4);
        w.write("ab\ncd\n");
        assert_eq!(w.visible_lines(), vec!["ab", "cd"]);
    }

    #[test]
    fn long_lines_wrap_at_inner_width() {
        let mut w = Window::new("t", 0, 0, 6, 4); // inner width 4
        w.write("abcdefgh");
        assert_eq!(w.visible_lines(), vec!["abcd", "efgh"]);
    }

    #[test]
    fn scrolls_to_show_newest() {
        let mut w = Window::new("t", 0, 0, 10, 4); // inner height 2
        for i in 0..5 {
            w.write_line(&format!("line{i}"));
        }
        assert_eq!(w.visible_lines(), vec!["line3", "line4"]);
    }

    #[test]
    fn partial_line_is_visible() {
        let mut w = Window::new("t", 0, 0, 10, 4);
        w.write("in progress"); // wraps once at 8 chars
        let lines = w.visible_lines();
        assert_eq!(lines.last().copied(), Some("ess"));
    }

    #[test]
    fn draw_renders_border_title_content() {
        let mut w = Window::new("P1", 0, 0, 10, 4);
        w.write_line("hello");
        let mut fb = CharBuffer::new(12, 5);
        w.draw(&mut fb);
        let out = fb.render();
        assert!(out.contains("+ P1 "), "{out}");
        assert!(out.contains("|hello"), "{out}");
    }

    #[test]
    fn clear_empties_content() {
        let mut w = Window::new("t", 0, 0, 10, 4);
        w.write_line("x");
        w.clear();
        assert!(w.visible_lines().is_empty());
    }

    #[test]
    fn scrollback_is_bounded() {
        let mut w = Window::new("t", 0, 0, 10, 4);
        for i in 0..1000 {
            w.write_line(&format!("{i}"));
        }
        assert!(w.visible_lines().ends_with(&["999"]));
    }

    #[test]
    #[should_panic(expected = "3x3")]
    fn tiny_window_rejected() {
        let _ = Window::new("t", 0, 0, 2, 2);
    }
}
