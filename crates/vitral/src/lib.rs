//! # air-vitral — text-mode window manager for AIR demos
//!
//! The paper's prototype includes VITRAL, "a text-mode windows manager for
//! RTEMS, whose graphical aspect can be seen in Fig. 9. There is one window
//! for each partition, where its output can be seen, and also two more
//! windows which allow observation of the behaviour of AIR components.
//! VITRAL also supports keyboard interaction" (Sect. 6). This crate is the
//! hosted analogue: bordered, scrolling character windows composited onto a
//! character framebuffer, rendered to a `String` (the faithful equivalent
//! of a VGA text mode), with demo binaries wiring the keyboard events of
//! `air_hw::console` to schedule switches and fault activation.

#![warn(missing_docs)]

pub mod framebuffer;
pub mod manager;
pub mod window;

pub use framebuffer::CharBuffer;
pub use manager::Vitral;
pub use window::Window;
