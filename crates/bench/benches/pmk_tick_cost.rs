//! **B1 (Sect. 4.3)** — the per-tick cost of the AIR Partition Scheduler.
//!
//! The paper's engineering claim: "in the best and most frequent case,
//! only two computations are performed" — checking for a preemption point
//! is a single comparison off-point, so the mode-based extension costs
//! nothing on ordinary ticks, and the table-iterator form beats a naive
//! per-tick window scan.
//!
//! Series reported:
//! * `off_preemption_point` vs `on_preemption_point` (best vs worst case);
//! * `static` (n(χ)=1) vs `mode_based` (n(χ)=2) — same code path;
//! * `naive_window_scan` — the rejected design, for contrast;
//! * a sweep over windows-per-MTF showing the scheduler's tick cost is
//!   independent of table size (the scan's is not).

use bench::experiment_header;
use bench::criterion::{BenchmarkId, Criterion};
use bench::{criterion_group, criterion_main};
use std::hint::black_box;

use air_model::prototype::{fig8_chi1, fig8_system};
use air_model::schedule::{PartitionRequirement, Schedule, TimeWindow};
use air_model::{PartitionId, ScheduleId, ScheduleSet, Ticks};
use air_pmk::scheduler::NaiveWindowScanScheduler;
use air_pmk::PartitionScheduler;

/// Builds a single-schedule system with `n` equal windows over one MTF.
fn schedule_with_windows(n: u64) -> Schedule {
    let width = 10u64;
    let mtf = n * width;
    let partitions = 4.min(n);
    Schedule::new(
        ScheduleId(0),
        "sweep",
        Ticks(mtf),
        (0..partitions)
            .map(|m| {
                PartitionRequirement::new(PartitionId(m as u32), Ticks(mtf), Ticks(width))
            })
            .collect(),
        (0..n)
            .map(|w| {
                TimeWindow::new(
                    PartitionId((w % partitions) as u32),
                    Ticks(w * width),
                    Ticks(width),
                )
            })
            .collect(),
    )
}

fn bench_tick(c: &mut Criterion) {
    experiment_header(
        "B1 (Sect. 4.3)",
        "partition scheduler per-tick cost: table iterator vs naive scan, static vs mode-based",
    );

    let mut group = c.benchmark_group("pmk_tick");

    // Best/most-frequent case: tick 1 is never a preemption point of χ1
    // (first point after 0 is 200).
    // The off-point tick is ~1 ns (the paper's "two computations"), below
    // reliable timer calibration on a shared VM: each measured iteration
    // batches 1024 off-point ticks (none within [1, 200) is a χ1
    // preemption point) — read as "per 1024 scheduler ticks".
    let sys = fig8_system();
    group.bench_function("mode_based_off_preemption_point_x1024", |b| {
        let mut sched = PartitionScheduler::new(&sys.schedules);
        b.iter(|| {
            let mut hits = 0u32;
            for t in 0..1024u64 {
                hits += u32::from(sched.tick(black_box(t % 199 + 1)).is_some());
            }
            hits
        })
    });

    let single = ScheduleSet::new(vec![fig8_chi1()]);
    group.bench_function("static_off_preemption_point_x1024", |b| {
        let mut sched = PartitionScheduler::new(&single);
        b.iter(|| {
            let mut hits = 0u32;
            for t in 0..1024u64 {
                hits += u32::from(sched.tick(black_box(t % 199 + 1)).is_some());
            }
            hits
        })
    });

    // Worst case: drive the scheduler through whole MTFs so every
    // preemption point (7 per 1300 ticks) is exercised in sequence.
    group.bench_function("mode_based_full_mtf_1300_ticks", |b| {
        let mut sched = PartitionScheduler::new(&sys.schedules);
        let mut t = 0u64;
        b.iter(|| {
            for _ in 0..1300 {
                t += 1;
                black_box(sched.tick(t));
            }
        })
    });

    group.bench_function("naive_scan_full_mtf_1300_ticks", |b| {
        let mut naive = NaiveWindowScanScheduler::new(fig8_chi1());
        let mut t = 0u64;
        b.iter(|| {
            for _ in 0..1300 {
                t += 1;
                black_box(naive.tick(t));
            }
        })
    });

    group.finish();

    // Table-size independence sweep.
    let mut sweep = c.benchmark_group("pmk_tick_vs_table_size");
    for n in [4u64, 16, 64, 256] {
        let schedule = schedule_with_windows(n);
        let set = ScheduleSet::new(vec![schedule.clone()]);
        sweep.bench_with_input(BenchmarkId::new("algorithm1_x1024", n), &n, |b, _| {
            let mut sched = PartitionScheduler::new(&set);
            // Off-point ticks 1..9 (every window is 10 wide).
            b.iter(|| {
                let mut hits = 0u32;
                for t in 0..1024u64 {
                    hits += u32::from(sched.tick(black_box(t % 9 + 1)).is_some());
                }
                hits
            })
        });
        sweep.bench_with_input(BenchmarkId::new("naive_scan_x1024", n), &n, |b, _| {
            let mut naive = NaiveWindowScanScheduler::new(schedule.clone());
            // Ticks inside the *last* window: the scan walks the table.
            let base = (n - 1) * 10;
            b.iter(|| {
                let mut hits = 0u32;
                for t in 0..1024u64 {
                    hits += u32::from(naive.tick(black_box(base + t % 9 + 1)).is_some());
                }
                hits
            })
        });
    }
    sweep.finish();
}

criterion_group! {
    name = benches;
    // Bounded timing budget: the shapes matter, not the fifth
    // significant digit; keeps `cargo bench --workspace` quick.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_millis(1500))
        .sample_size(30);
    targets = bench_tick
}
criterion_main!(benches);
