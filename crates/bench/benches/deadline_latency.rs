//! **B4 (Sect. 5)** — deadline-violation **detection latency** as a
//! function of where in the MTF the violation occurs.
//!
//! This is a *simulated-time* experiment: the series printed below (not
//! the wall-clock timings) is the artefact — "this methodology is optimal
//! with respect to deadline violation detection latency": 1 tick while the
//! partition is active, exactly the distance to the next dispatch while it
//! is inactive. The Criterion part measures the cost of a whole simulated
//! MTF of the prototype, i.e. how cheap the always-on monitoring is.

use bench::experiment_header;
use bench::criterion::Criterion;
use bench::{criterion_group, criterion_main};
use std::hint::black_box;

use air_core::prototype::PrototypeHarness;
use air_core::workload::{FaultSwitch, FaultyPeriodic};
use air_core::{PartitionConfig, ProcessConfig, SystemBuilder};
use air_model::process::{Deadline, Priority, ProcessAttributes, Recurrence};
use air_model::schedule::{PartitionRequirement, Schedule, TimeWindow};
use air_model::{Partition, PartitionId, ScheduleId, ScheduleSet, Ticks};

/// Detection instant of a deadline-`d` overrunner in a [0,50)+[50,100)
/// two-partition table (see tests/detection_latency.rs for the assertions).
fn first_detection(d: u64) -> u64 {
    let p0 = PartitionId(0);
    let p1 = PartitionId(1);
    let schedule = Schedule::new(
        ScheduleId(0),
        "lat",
        Ticks(100),
        vec![
            PartitionRequirement::new(p0, Ticks(100), Ticks(50)),
            PartitionRequirement::new(p1, Ticks(100), Ticks(50)),
        ],
        vec![
            TimeWindow::new(p0, Ticks(0), Ticks(50)),
            TimeWindow::new(p1, Ticks(50), Ticks(50)),
        ],
    );
    let fault = FaultSwitch::new();
    fault.activate();
    let mut system = SystemBuilder::new(ScheduleSet::new(vec![schedule]))
        .with_partition(
            PartitionConfig::new(Partition::new(p0, "victim")).with_process(
                ProcessConfig::new(
                    ProcessAttributes::new("overrunner")
                        .with_recurrence(Recurrence::Periodic(Ticks(100)))
                        .with_deadline(Deadline::relative(Ticks(d)))
                        .with_base_priority(Priority(1)),
                    FaultyPeriodic::new(1, fault),
                ),
            ),
        )
        .with_partition(PartitionConfig::new(Partition::new(p1, "bystander")))
        .build()
        .unwrap();
    system.run_for(250);
    system
        .trace()
        .deadline_misses()
        .first()
        .map(|e| e.at().as_u64())
        .expect("overrunner must miss")
}

fn print_latency_series() {
    experiment_header(
        "B4 (Sect. 5)",
        "detection latency vs violation offset (partition window = [0,50) of a 100-tick MTF)",
    );
    println!("{:>10} {:>12} {:>10}  partition state at violation", "deadline", "detected at", "latency");
    for d in (5..100).step_by(5) {
        let at = first_detection(d);
        let state = if d < 49 { "active" } else { "inactive" };
        println!("{:>10} {:>12} {:>10}  {}", d, at, at - d, state);
    }
    println!(
        "\nshape: latency = 1 while active (next-tick detection); \
         latency = next-dispatch - deadline while inactive (optimal)."
    );
}

fn bench_monitoring_cost(c: &mut Criterion) {
    print_latency_series();

    // How much does always-on deadline monitoring cost per simulated MTF
    // of the full prototype? (The paper's design keeps this inside the
    // ISR budget; we measure the whole step loop with it.)
    let mut group = c.benchmark_group("simulated_mtf_cost");
    group.bench_function("prototype_one_mtf_healthy", |b| {
        let mut proto = PrototypeHarness::build();
        b.iter(|| {
            proto.system.run_for(black_box(1300));
        })
    });
    group.bench_function("prototype_one_mtf_faulty", |b| {
        let mut proto = PrototypeHarness::build();
        proto.fault.activate();
        b.iter(|| {
            proto.system.run_for(black_box(1300));
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    // Bounded timing budget: the shapes matter, not the fifth
    // significant digit; keeps `cargo bench --workspace` quick.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_millis(1500))
        .sample_size(30);
    targets = bench_monitoring_cost
}
criterion_main!(benches);
