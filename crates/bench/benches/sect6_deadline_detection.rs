//! **E3 + E4 (Sect. 6)** — the prototype's behavioural experiments:
//!
//! * E3: with the fault injected on P1, the violation is "detected and
//!   reported every time (except the first) that P1 is scheduled and
//!   dispatched" — the per-MTF detection series is printed;
//! * E4: schedule-switch requests at assorted offsets take effect exactly
//!   at the next MTF boundary (latency series printed) and introduce no
//!   deadline violations beyond the injected one.
//!
//! The Criterion part times the full-system step loop under both regimes.

use bench::experiment_header;
use bench::criterion::Criterion;
use bench::{criterion_group, criterion_main};
use std::hint::black_box;

use air_core::prototype::ids::{CHI_1, CHI_2};
use air_core::prototype::PrototypeHarness;
use air_model::prototype::MTF;
use air_model::Ticks;

const M: u64 = MTF.as_u64();

fn print_e3_series() {
    experiment_header(
        "E3 (Sect. 6)",
        "deadline violations detected per P1 dispatch, fault injected after 2 clean MTFs",
    );
    let mut proto = PrototypeHarness::build();
    proto.system.run_for(2 * M);
    proto.fault.activate();
    proto.system.run_for(8 * M);
    let misses: Vec<u64> = proto
        .system
        .trace()
        .deadline_misses()
        .iter()
        .map(|e| e.at().as_u64())
        .collect();
    println!("{:>6} {:>14} {:>12}", "MTF#", "P1 dispatch t", "detections");
    for k in 0..10u64 {
        let dispatch = (k + 1) * M;
        let n = misses.iter().filter(|&&t| t == dispatch).count();
        println!("{:>6} {:>14} {:>12}", k + 1, dispatch, n);
    }
    println!(
        "\nshape: 0 before injection and at the first dispatch after it; \
         exactly 1 per dispatch thereafter (paper: 'every time (except the \
         first) that P1 is scheduled and dispatched')."
    );
}

fn print_e4_series() {
    experiment_header(
        "E4 (Sect. 4/6)",
        "schedule-switch latency vs request offset; extra misses introduced",
    );
    println!(
        "{:>16} {:>14} {:>14} {:>12}",
        "request offset", "effective at", "latency", "extra misses"
    );
    for offset in [1u64, 100, 300, 650, 900, 1299] {
        let mut proto = PrototypeHarness::build();
        proto.system.run_for(offset);
        proto.system.request_schedule(CHI_2).unwrap();
        proto.system.run_until(Ticks(3 * M));
        let st = proto.system.schedule_status();
        println!(
            "{:>16} {:>14} {:>14} {:>12}",
            offset,
            st.last_switch.as_u64(),
            st.last_switch.as_u64() - offset,
            proto.system.trace().deadline_miss_count()
        );
        assert_eq!(st.current, CHI_2);
    }
    println!("\nshape: latency = (MTF - offset); extra misses = 0 at every offset.");
    let _ = CHI_1;
}

fn bench_full_system(c: &mut Criterion) {
    print_e3_series();
    print_e4_series();

    let mut group = c.benchmark_group("sect6_full_system_step");
    group.bench_function("healthy_mtf", |b| {
        let mut proto = PrototypeHarness::build();
        b.iter(|| proto.system.run_for(black_box(M)))
    });
    group.bench_function("faulty_mtf_with_detection_and_restart", |b| {
        let mut proto = PrototypeHarness::build();
        proto.fault.activate();
        b.iter(|| proto.system.run_for(black_box(M)))
    });
    group.bench_function("switching_every_mtf", |b| {
        let mut proto = PrototypeHarness::build();
        let mut flip = false;
        b.iter(|| {
            flip = !flip;
            let target = if flip { CHI_2 } else { CHI_1 };
            proto.system.request_schedule(target).unwrap();
            proto.system.run_for(black_box(M));
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    // Bounded timing budget: the shapes matter, not the fifth
    // significant digit; keeps `cargo bench --workspace` quick.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_millis(1500))
        .sample_size(30);
    targets = bench_full_system
}
criterion_main!(benches);
