//! **B2 (Sect. 5.3)** — the deadline-registry structure ablation: sorted
//! linked list (the paper's choice) vs self-balancing tree.
//!
//! The paper's argument: the list gives O(1) earliest-peek and removal —
//! the operations running **inside the clock ISR** — while its O(n)
//! insertion only ever runs in the partition's own window; the tree's
//! O(log n) insertions "will not correlate to effective and/or significant
//! profit … and certainly not compensate for the more critical downside to
//! operations running during an ISR". The series below make that
//! trade-off measurable: ISR-side ops at every n, APEX-side ops at every
//! n, and the crossover (if any) in the insert series.

use bench::experiment_header;
use bench::criterion::{BenchmarkId, Criterion};
use bench::{criterion_group, criterion_main};
use std::hint::black_box;

use air_model::ids::ProcessId;
use air_model::Ticks;
use air_pal::{
    check_deadlines, BTreeRegistry, DeadlineRegistry, LinkedListRegistry, TimingWheelRegistry,
};

const SIZES: [u32; 5] = [1, 4, 16, 64, 256];

fn filled<R: DeadlineRegistry + Default>(n: u32) -> R {
    let mut reg = R::default();
    for q in 0..n {
        // Scattered deadlines; insertion order is shuffled by the stride.
        let d = u64::from((q * 37) % n.max(1)) * 100 + 50;
        reg.register(ProcessId(q), Ticks(d));
    }
    reg
}

fn bench_isr_side(c: &mut Criterion) {
    experiment_header(
        "B2 (Sect. 5.3)",
        "deadline registry ablation: linked list (paper) vs self-balancing tree",
    );
    // The per-check cost is sub-nanosecond for the list; each measured
    // iteration batches 1024 checks (with a varying `now`, always below
    // every armed deadline) so timer calibration stays sane — read the
    // series as "per 1024 ISR checks".
    let mut group = c.benchmark_group("isr_side_no_violation_check_x1024");
    for n in SIZES {
        // `black_box(&mut reg)` keeps the registry opaque: without it,
        // LLVM const-folds the whole no-violation check to a constant and
        // Criterion's warm-up calibration diverges on the zero-cost body.
        group.bench_with_input(BenchmarkId::new("linked_list", n), &n, |b, &n| {
            let mut reg: LinkedListRegistry = filled(n);
            b.iter(|| {
                let mut acc = 0usize;
                for t in 0..1024u64 {
                    let reg = black_box(&mut reg);
                    acc += check_deadlines(reg, black_box(Ticks(t % 50)), |_, _| unreachable!());
                }
                acc
            })
        });
        group.bench_with_input(BenchmarkId::new("btree", n), &n, |b, &n| {
            let mut reg: BTreeRegistry = filled(n);
            b.iter(|| {
                let mut acc = 0usize;
                for t in 0..1024u64 {
                    let reg = black_box(&mut reg);
                    acc += check_deadlines(reg, black_box(Ticks(t % 50)), |_, _| unreachable!());
                }
                acc
            })
        });
        group.bench_with_input(BenchmarkId::new("timing_wheel", n), &n, |b, &n| {
            let mut reg: TimingWheelRegistry = filled(n);
            b.iter(|| {
                let mut acc = 0usize;
                for t in 0..1024u64 {
                    let reg = black_box(&mut reg);
                    acc += check_deadlines(reg, black_box(Ticks(t % 50)), |_, _| unreachable!());
                }
                acc
            })
        });
    }
    group.finish();

    // Pop/refill pairs: each iteration consumes the earliest entry and
    // re-registers it far in the future — the violation-consumption path
    // of Algorithm 3 line 7, kept steady-state.
    let mut group = c.benchmark_group("isr_side_pop_then_rearm");
    for n in SIZES {
        group.bench_with_input(BenchmarkId::new("linked_list", n), &n, |b, &n| {
            let mut reg: LinkedListRegistry = filled(n);
            let mut far = 1_000_000u64;
            b.iter(|| {
                let (_, pid) = reg.pop_earliest().expect("non-empty");
                far += 1;
                reg.register(pid, black_box(Ticks(far)));
            })
        });
        group.bench_with_input(BenchmarkId::new("btree", n), &n, |b, &n| {
            let mut reg: BTreeRegistry = filled(n);
            let mut far = 1_000_000u64;
            b.iter(|| {
                let (_, pid) = reg.pop_earliest().expect("non-empty");
                far += 1;
                reg.register(pid, black_box(Ticks(far)));
            })
        });
        group.bench_with_input(BenchmarkId::new("timing_wheel", n), &n, |b, &n| {
            let mut reg: TimingWheelRegistry = filled(n);
            let mut far = 1_000_000u64;
            b.iter(|| {
                let (_, pid) = reg.pop_earliest().expect("non-empty");
                far += 1;
                reg.register(pid, black_box(Ticks(far)));
            })
        });
    }
    group.finish();
}

fn bench_apex_side(c: &mut Criterion) {
    // APEX-side: register (START) and update (REPLENISH) — the operations
    // where the tree's O(log n) should eventually win for large n.
    let mut group = c.benchmark_group("apex_side_register");
    for n in SIZES {
        group.bench_with_input(BenchmarkId::new("linked_list", n), &n, |b, &n| {
            let mut reg: LinkedListRegistry = filled(n);
            b.iter(|| {
                // Worst-ish case: a far deadline walks the whole list.
                reg.register(ProcessId(n), black_box(Ticks(1_000_000)));
                reg.unregister(ProcessId(n));
            })
        });
        group.bench_with_input(BenchmarkId::new("btree", n), &n, |b, &n| {
            let mut reg: BTreeRegistry = filled(n);
            b.iter(|| {
                reg.register(ProcessId(n), black_box(Ticks(1_000_000)));
                reg.unregister(ProcessId(n));
            })
        });
        group.bench_with_input(BenchmarkId::new("timing_wheel", n), &n, |b, &n| {
            let mut reg: TimingWheelRegistry = filled(n);
            b.iter(|| {
                reg.register(ProcessId(n), black_box(Ticks(1_000_000)));
                reg.unregister(ProcessId(n));
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("apex_side_replenish");
    for n in SIZES {
        group.bench_with_input(BenchmarkId::new("linked_list", n), &n, |b, &n| {
            let mut reg: LinkedListRegistry = filled(n);
            let mut flip = false;
            b.iter(|| {
                // Alternate the head entry between earliest and latest:
                // the move the paper describes for REPLENISH (Fig. 6).
                flip = !flip;
                let d = if flip { 1_000_000 } else { 1 };
                reg.register(ProcessId(0), black_box(Ticks(d)));
            })
        });
        group.bench_with_input(BenchmarkId::new("btree", n), &n, |b, &n| {
            let mut reg: BTreeRegistry = filled(n);
            let mut flip = false;
            b.iter(|| {
                flip = !flip;
                let d = if flip { 1_000_000 } else { 1 };
                reg.register(ProcessId(0), black_box(Ticks(d)));
            })
        });
        group.bench_with_input(BenchmarkId::new("timing_wheel", n), &n, |b, &n| {
            let mut reg: TimingWheelRegistry = filled(n);
            let mut flip = false;
            b.iter(|| {
                flip = !flip;
                let d = if flip { 1_000_000 } else { 1 };
                reg.register(ProcessId(0), black_box(Ticks(d)));
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    // Bounded timing budget: the shapes matter, not the fifth
    // significant digit; keeps `cargo bench --workspace` quick.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_millis(1500))
        .sample_size(30);
    targets = bench_isr_side, bench_apex_side
}
criterion_main!(benches);
