//! **B5 (Sect. 2.1)** — interpartition communication cost: local
//! memory-to-memory delivery vs the remote link path (encode → link →
//! decode → deliver), for sampling and queuing ports across message sizes.

use bench::experiment_header;
use bench::criterion::{BenchmarkId, Criterion, Throughput};
use bench::{criterion_group, criterion_main};
use std::hint::black_box;

use air_hw::link::{InterNodeLink, LinkEndpoint};
use air_model::{PartitionId, Ticks};
use air_ports::wire::Frame;
use air_ports::{
    ChannelConfig, Destination, PortAddr, PortRegistry, QueuingPortConfig, SamplingPortConfig,
};

const SIZES: [usize; 5] = [16, 64, 256, 1024, 4096];

fn local_sampling_registry(size: usize) -> PortRegistry {
    let mut reg = PortRegistry::new();
    reg.create_sampling_port(PartitionId(0), SamplingPortConfig::source("out", size))
        .unwrap();
    reg.create_sampling_port(
        PartitionId(1),
        SamplingPortConfig::destination("in", size, Ticks::MAX),
    )
    .unwrap();
    reg.add_channel(ChannelConfig {
        id: 1,
        source: PortAddr::new(PartitionId(0), "out"),
        destinations: vec![Destination::Local(PortAddr::new(PartitionId(1), "in"))],
    })
    .unwrap();
    reg
}

fn local_queuing_registry(size: usize) -> PortRegistry {
    let mut reg = PortRegistry::new();
    reg.create_queuing_port(PartitionId(0), QueuingPortConfig::source("out", size, 16))
        .unwrap();
    reg.create_queuing_port(
        PartitionId(1),
        QueuingPortConfig::destination("in", size, 16),
    )
    .unwrap();
    reg.add_channel(ChannelConfig {
        id: 1,
        source: PortAddr::new(PartitionId(0), "out"),
        destinations: vec![Destination::Local(PortAddr::new(PartitionId(1), "in"))],
    })
    .unwrap();
    reg
}

fn bench_local(c: &mut Criterion) {
    experiment_header(
        "B5 (Sect. 2.1)",
        "interpartition message cost: local copy vs remote link frames",
    );
    let mut group = c.benchmark_group("local_sampling_write_route_read");
    for size in SIZES {
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &size| {
            let mut reg = local_sampling_registry(size);
            let payload = vec![0xabu8; size];
            let mut t = 0u64;
            b.iter(|| {
                t += 1;
                reg.sampling_port_mut(PartitionId(0), "out")
                    .unwrap()
                    .write(payload.clone(), Ticks(t))
                    .unwrap();
                reg.route(Ticks(t));
                black_box(
                    reg.sampling_port_mut(PartitionId(1), "in")
                        .unwrap()
                        .read(Ticks(t))
                        .unwrap(),
                );
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("local_queuing_send_route_receive");
    for size in SIZES {
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &size| {
            let mut reg = local_queuing_registry(size);
            let payload = vec![0xabu8; size];
            let mut t = 0u64;
            b.iter(|| {
                t += 1;
                reg.queuing_port_mut(PartitionId(0), "out")
                    .unwrap()
                    .send(payload.clone(), Ticks(t))
                    .unwrap();
                reg.route(Ticks(t));
                black_box(
                    reg.queuing_port_mut(PartitionId(1), "in")
                        .unwrap()
                        .receive()
                        .unwrap(),
                );
            })
        });
    }
    group.finish();
}

fn bench_remote(c: &mut Criterion) {
    let mut group = c.benchmark_group("remote_frame_encode_link_decode");
    for size in SIZES {
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &size| {
            let payload = vec![0xcdu8; size];
            let mut link = InterNodeLink::new(0);
            let mut t = 0u64;
            b.iter(|| {
                t += 1;
                let frame = Frame::new(7, Ticks(t), payload.clone());
                link.send(LinkEndpoint::A, t, frame.encode());
                let bytes = link.receive(LinkEndpoint::B, t).unwrap();
                black_box(Frame::decode(&bytes).unwrap());
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    // Bounded timing budget: the shapes matter, not the fifth
    // significant digit; keeps `cargo bench --workspace` quick.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_millis(1500))
        .sample_size(30);
    targets = bench_local, bench_remote
}
criterion_main!(benches);
