//! **E1 / Fig. 8** — regenerates the prototype's two partition scheduling
//! tables (window tables and timelines) and the **E2 / Eq. 25**
//! verification report, then benches the verifier itself (the offline
//! tool's cost over realistic tables).

use bench::experiment_header;
use bench::criterion::Criterion;
use bench::{criterion_group, criterion_main};
use std::hint::black_box;

use air_model::prototype::fig8_system;
use air_model::verify::{verify_schedule_set, verify_schedule_brute_force};
use air_tools::{render_timeline, render_window_table, verification_report};

fn print_artifacts() {
    experiment_header("E1 (Fig. 8)", "prototype partition scheduling tables");
    let sys = fig8_system();
    for schedule in &sys.schedules {
        print!("{}", render_window_table(schedule));
        println!("{}", render_timeline(schedule, 50));
    }
    experiment_header("E2 (Eq. 25)", "verification of the integrator-defined tables");
    println!("{}", verification_report(&sys.schedules, &sys.partitions));
}

fn bench_verifier(c: &mut Criterion) {
    print_artifacts();
    let sys = fig8_system();
    let mut group = c.benchmark_group("fig8_verification");
    group.bench_function("analytic_eq21_23", |b| {
        b.iter(|| {
            let report = verify_schedule_set(black_box(&sys.schedules), &sys.partitions);
            assert!(report.is_ok());
        })
    });
    group.bench_function("brute_force_oracle", |b| {
        b.iter(|| {
            assert!(verify_schedule_brute_force(black_box(
                sys.schedules.initial()
            )))
        })
    });
    group.bench_function("render_timeline_res100", |b| {
        b.iter(|| render_timeline(black_box(sys.schedules.initial()), 100))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    // Bounded timing budget: the shapes matter, not the fifth
    // significant digit; keeps `cargo bench --workspace` quick.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_millis(1500))
        .sample_size(30);
    targets = bench_verifier
}
criterion_main!(benches);
