//! **B3 (Sect. 2.1 / Algorithm 2)** — the Partition Dispatcher's cost:
//! the no-switch fast path (heir == active, `elapsedTicks ← 1`) versus a
//! full context switch (save, lastTick bookkeeping, restore, pending
//! actions).

use bench::experiment_header;
use bench::criterion::Criterion;
use bench::{criterion_group, criterion_main};
use std::hint::black_box;

use air_hw::mmu::MmuContextId;
use air_hw::{Cpu, CpuContext};
use air_model::PartitionId;
use air_pmk::PartitionDispatcher;

fn dispatcher_with(n: u32) -> (PartitionDispatcher, Cpu) {
    let mut d = PartitionDispatcher::new();
    for m in 0..n {
        d.register_partition(
            PartitionId(m),
            CpuContext::new(0x1000 * u64::from(m + 1), 0x8000, MmuContextId(m)),
        );
    }
    (d, Cpu::new())
}

fn bench_dispatch(c: &mut Criterion) {
    experiment_header(
        "B3 (Algorithm 2)",
        "partition dispatcher: no-switch fast path vs full context switch",
    );

    let mut group = c.benchmark_group("pmk_dispatch");

    // The fast path is ~1 ns, below reliable timer calibration on a shared
    // VM: each measured iteration batches 256 dispatches (read the series
    // as "per 256 dispatches").
    group.bench_function("same_heir_no_switch_x256", |b| {
        let (mut d, mut cpu) = dispatcher_with(2);
        d.dispatch(Some(PartitionId(0)), 0, &mut cpu);
        let mut t = 1u64;
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..256 {
                t += 1;
                acc += d.dispatch(Some(PartitionId(0)), t, &mut cpu).elapsed_ticks;
            }
            black_box(acc)
        })
    });

    group.bench_function("alternating_context_switch_x256", |b| {
        let (mut d, mut cpu) = dispatcher_with(2);
        let mut t = 0u64;
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..256 {
                t += 1;
                let heir = PartitionId((t % 2) as u32);
                acc += d.dispatch(Some(heir), t, &mut cpu).elapsed_ticks;
            }
            black_box(acc)
        })
    });

    group.bench_function("switch_through_idle_gap_x256", |b| {
        let (mut d, mut cpu) = dispatcher_with(1);
        let mut t = 0u64;
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..256 {
                t += 1;
                let heir = if t.is_multiple_of(2) {
                    Some(PartitionId(0))
                } else {
                    None
                };
                acc += d.dispatch(heir, t, &mut cpu).elapsed_ticks;
            }
            black_box(acc)
        })
    });

    group.bench_function("switch_with_pending_action_x256", |b| {
        let (mut d, mut cpu) = dispatcher_with(2);
        let mut t = 0u64;
        b.iter(|| {
            let mut acc = 0usize;
            for _ in 0..256 {
                t += 1;
                d.queue_schedule_change_actions([(
                    PartitionId((t % 2) as u32),
                    air_model::ScheduleChangeAction::WarmRestart,
                )]);
                acc += d
                    .dispatch(Some(PartitionId((t % 2) as u32)), t, &mut cpu)
                    .actions
                    .len();
            }
            black_box(acc)
        })
    });

    group.finish();
}

criterion_group! {
    name = benches;
    // Bounded timing budget: the shapes matter, not the fifth
    // significant digit; keeps `cargo bench --workspace` quick.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_millis(1500))
        .sample_size(30);
    targets = bench_dispatch
}
criterion_main!(benches);
