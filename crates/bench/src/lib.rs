//! Shared helpers for the AIR experiment benches.
//!
//! Each bench regenerates one artefact of the paper's evaluation (see
//! DESIGN.md's per-experiment index): it first prints the experiment's
//! data series — the part to compare against the paper — and then runs
//! Criterion timings for the implementation-cost claims.

#![warn(missing_docs)]

pub mod criterion;
pub mod legacy;

/// Prints a named experiment header so bench output is self-describing.
pub fn experiment_header(id: &str, title: &str) {
    println!("\n==================================================================");
    println!("{id}: {title}");
    println!("==================================================================");
}
