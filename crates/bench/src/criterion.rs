//! Dependency-free, criterion-compatible bench harness.
//!
//! The workspace builds offline with the standard library alone, so the
//! external `criterion` crate is out; the benches keep its API surface —
//! `criterion_group!`/`criterion_main!`, [`Criterion`], benchmark groups,
//! [`BenchmarkId`], [`Throughput`], `Bencher::iter` — through this
//! module, so a bench file ports with a one-line import change.
//!
//! Methodology: each benchmark calibrates a batch size so one sample
//! takes ≳ `measurement_time / sample_size`, runs `sample_size` timed
//! batches after a warm-up period, and reports the min/median/mean
//! per-iteration times. No outlier rejection, no regression against
//! saved baselines — the medians are for same-run comparisons, which is
//! exactly what the experiment series need.

use std::time::{Duration, Instant};

/// Top-level bench configuration and entry point, mirroring
/// `criterion::Criterion`.
#[derive(Debug, Clone)]
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            warm_up: Duration::from_millis(500),
            measurement: Duration::from_secs(2),
            sample_size: 50,
        }
    }
}

impl Criterion {
    /// Sets the warm-up duration run before sampling starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Sets the total measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let stats = run_bench(self, f);
        report(id, &stats, None);
        self
    }
}

/// A benchmark identifier: a function name, optionally parameterized.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter`, like criterion's.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Only the parameter, for single-function sweeps.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Per-iteration throughput annotation; reported as a derived rate.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// A named collection of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotates subsequent benchmarks with a throughput so the report
    /// includes a rate.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(2);
        self
    }

    /// Runs `f` as a benchmark named `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        let stats = run_bench(self.criterion, f);
        report(&label, &stats, self.throughput);
        self
    }

    /// Runs `f` with `input`, criterion's parameterized form.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        let stats = run_bench(self.criterion, |b| f(b, input));
        report(&label, &stats, self.throughput);
        self
    }

    /// Ends the group (retained for API compatibility; reports are
    /// emitted as each benchmark completes).
    pub fn finish(self) {}
}

/// Handed to each benchmark closure; [`iter`](Bencher::iter) times the
/// routine.
#[derive(Debug)]
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    /// Measured per-iteration nanoseconds, one entry per sample.
    samples: Vec<f64>,
}

impl Bencher {
    /// Times `routine`, storing per-iteration samples for the report.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run the routine untimed until the budget elapses, and
        // count how many iterations fit — that calibrates the batch size.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up {
            std::hint::black_box(routine());
            warm_iters += 1;
        }
        let per_iter = self.warm_up.as_nanos() as f64 / warm_iters.max(1) as f64;
        let budget = self.measurement.as_nanos() as f64 / self.sample_size as f64;
        let batch = ((budget / per_iter.max(1.0)) as u64).max(1);

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed().as_nanos() as f64;
            self.samples.push(elapsed / batch as f64);
        }
    }
}

/// Summary statistics of one benchmark, in nanoseconds per iteration.
#[derive(Debug, Clone, Copy)]
pub struct Stats {
    /// Fastest sample.
    pub min: f64,
    /// Median sample.
    pub median: f64,
    /// Mean of all samples.
    pub mean: f64,
}

fn run_bench<F: FnMut(&mut Bencher)>(criterion: &Criterion, mut f: F) -> Stats {
    let mut bencher = Bencher {
        warm_up: criterion.warm_up,
        measurement: criterion.measurement,
        sample_size: criterion.sample_size,
        samples: Vec::new(),
    };
    f(&mut bencher);
    stats_of(&bencher.samples)
}

/// Collapses raw per-iteration samples into [`Stats`].
pub fn stats_of(samples: &[f64]) -> Stats {
    if samples.is_empty() {
        // The closure never called `iter`: report zeros rather than panic.
        return Stats {
            min: 0.0,
            median: 0.0,
            mean: 0.0,
        };
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    Stats {
        min: sorted[0],
        median: sorted[sorted.len() / 2],
        mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
    }
}

/// Human formatting of a nanosecond quantity, criterion-style.
pub fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn report(label: &str, stats: &Stats, throughput: Option<Throughput>) {
    let mut line = format!(
        "{label:<55} time: [{} {} {}]",
        fmt_ns(stats.min),
        fmt_ns(stats.median),
        fmt_ns(stats.mean),
    );
    if let Some(t) = throughput {
        let per_sec = |count: u64| count as f64 / (stats.median / 1_000_000_000.0);
        match t {
            Throughput::Bytes(n) => {
                line.push_str(&format!(
                    "  thrpt: {:.1} MiB/s",
                    per_sec(n) / (1024.0 * 1024.0)
                ));
            }
            Throughput::Elements(n) => {
                line.push_str(&format!("  thrpt: {:.0} elem/s", per_sec(n)));
            }
        }
    }
    println!("{line}");
}

/// Builds the bench entry function from a config and target list,
/// mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::criterion::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Expands to `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_are_order_insensitive() {
        let s = stats_of(&[3.0, 1.0, 2.0]);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.median, 2.0);
        assert!((s.mean - 2.0).abs() < 1e-9);
    }

    #[test]
    fn formatting_scales_units() {
        assert_eq!(fmt_ns(12.5), "12.50 ns");
        assert_eq!(fmt_ns(12_500.0), "12.500 µs");
        assert_eq!(fmt_ns(12_500_000.0), "12.500 ms");
    }

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(20))
            .sample_size(5);
        let mut ran = false;
        c.bench_function("noop", |b| {
            b.iter(|| std::hint::black_box(1 + 1));
            ran = true;
        });
        assert!(ran);
    }
}
