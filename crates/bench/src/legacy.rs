//! The pre-optimization port router, preserved as a same-run baseline.
//!
//! This is the shape the routing hot path had before the dense-table
//! rework: ports keyed by `PortAddr` (partition id + port-name `String`)
//! in a `HashMap`, channel configs walked directly, the source address
//! cloned per channel per tick, the destination vector cloned per fan-out,
//! and per-channel freshness state living in its own id-keyed map. Every
//! `route` call therefore hashes strings and allocates even when nothing
//! moves. Payloads are refcounted exactly as in the current router, so the
//! `hotpath` comparison isolates the routing-table change itself.
//!
//! Semantics match `PortRegistry::route_into` — `hotpath` cross-checks
//! delivery counts between the two before timing them.

use std::collections::HashMap;

use air_model::Ticks;
use air_ports::wire::Frame;
use air_ports::{
    ChannelConfig, Destination, Payload, PortAddr, QueuingPort, QueuingPortConfig, SamplingPort,
    SamplingPortConfig,
};

#[derive(Debug)]
enum PortInstance {
    Sampling(SamplingPort),
    Queuing(QueuingPort),
}

#[derive(Debug, Default)]
struct ChannelState {
    last_routed: Option<Ticks>,
}

/// String-keyed router with the seed's per-tick allocation profile.
#[derive(Debug, Default)]
pub struct LegacyRouter {
    ports: HashMap<PortAddr, PortInstance>,
    channels: Vec<ChannelConfig>,
    channel_state: HashMap<u32, ChannelState>,
    dropped_deliveries: u64,
}

impl LegacyRouter {
    /// Creates an empty router.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a sampling port at `addr`.
    pub fn create_sampling_port(&mut self, addr: PortAddr, config: SamplingPortConfig) {
        self.ports
            .insert(addr, PortInstance::Sampling(SamplingPort::new(config)));
    }

    /// Adds a queuing port at `addr`.
    pub fn create_queuing_port(&mut self, addr: PortAddr, config: QueuingPortConfig) {
        self.ports
            .insert(addr, PortInstance::Queuing(QueuingPort::new(config)));
    }

    /// Registers a channel (assumed well-formed; the benches build the
    /// same graphs they hand the real registry, which validates).
    pub fn add_channel(&mut self, config: ChannelConfig) {
        self.channel_state
            .insert(config.id, ChannelState::default());
        self.channels.push(config);
    }

    /// Writes into a sampling source port.
    pub fn write_sampling(&mut self, addr: &PortAddr, payload: Payload, now: Ticks) {
        if let Some(PortInstance::Sampling(p)) = self.ports.get_mut(addr) {
            p.write(payload, now).expect("bench port accepts writes");
        }
    }

    /// Sends into a queuing source port.
    pub fn send_queuing(&mut self, addr: &PortAddr, payload: Payload, now: Ticks) {
        if let Some(PortInstance::Queuing(p)) = self.ports.get_mut(addr) {
            p.send(payload, now).expect("bench queue has room");
        }
    }

    /// Reads a sampling destination port (drains freshness state).
    pub fn read_sampling(&mut self, addr: &PortAddr, now: Ticks) -> bool {
        match self.ports.get_mut(addr) {
            Some(PortInstance::Sampling(p)) => p.read(now).is_ok(),
            _ => false,
        }
    }

    /// Receives from a queuing destination port.
    pub fn receive_queuing(&mut self, addr: &PortAddr) -> bool {
        match self.ports.get_mut(addr) {
            Some(PortInstance::Queuing(p)) => p.receive().is_ok(),
            _ => false,
        }
    }

    /// Local deliveries dropped on full destination queues.
    pub fn dropped_deliveries(&self) -> u64 {
        self.dropped_deliveries
    }

    /// The seed's routing walk, allocation profile intact: source-address
    /// clone and map lookup per channel, destination-vector clone per
    /// fan-out, id-keyed state map probe per sampling channel.
    pub fn route(&mut self, _now: Ticks) -> Vec<Frame> {
        let mut frames = Vec::new();
        for ci in 0..self.channels.len() {
            let (id, source, sampling) = {
                let c = &self.channels[ci];
                let sampling = matches!(
                    self.ports.get(&c.source),
                    Some(PortInstance::Sampling(_))
                );
                (c.id, c.source.clone(), sampling)
            };
            if sampling {
                let Some(PortInstance::Sampling(port)) = self.ports.get(&source) else {
                    continue;
                };
                let Some(msg) = port.last_written().cloned() else {
                    continue;
                };
                let state = self.channel_state.entry(id).or_default();
                if state.last_routed == Some(msg.written_at) {
                    continue;
                }
                state.last_routed = Some(msg.written_at);
                self.fan_out(ci, id, msg.payload.clone(), msg.written_at, &mut frames);
            } else {
                while let Some(PortInstance::Queuing(port)) = self.ports.get_mut(&source) {
                    let Some(msg) = port.take_outgoing() else {
                        break;
                    };
                    self.fan_out(ci, id, msg.payload.clone(), msg.written_at, &mut frames);
                }
            }
        }
        frames
    }

    fn fan_out(
        &mut self,
        channel_index: usize,
        channel_id: u32,
        payload: Payload,
        written_at: Ticks,
        frames: &mut Vec<Frame>,
    ) {
        let destinations = self.channels[channel_index].destinations.clone();
        for dest in destinations {
            match dest {
                Destination::Local(addr) => {
                    let delivered = match self.ports.get_mut(&addr) {
                        Some(PortInstance::Sampling(p)) => {
                            p.deliver(payload.clone(), written_at).is_ok()
                        }
                        Some(PortInstance::Queuing(p)) => {
                            p.deliver(payload.clone(), written_at).is_ok()
                        }
                        None => false,
                    };
                    if !delivered {
                        self.dropped_deliveries += 1;
                    }
                }
                Destination::Remote { .. } => {
                    frames.push(Frame::new(channel_id, written_at, payload.clone()));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use air_model::PartitionId;

    #[test]
    fn legacy_router_delivers_like_the_seed() {
        let mut r = LegacyRouter::new();
        let src = PortAddr::new(PartitionId(0), "out");
        let dst = PortAddr::new(PartitionId(1), "in");
        r.create_sampling_port(src.clone(), SamplingPortConfig::source("out", 32));
        r.create_sampling_port(
            dst.clone(),
            SamplingPortConfig::destination("in", 32, Ticks(100)),
        );
        r.add_channel(ChannelConfig {
            id: 1,
            source: src.clone(),
            destinations: vec![Destination::Local(dst.clone())],
        });
        r.write_sampling(&src, Payload::from_static(b"q"), Ticks(5));
        let frames = r.route(Ticks(5));
        assert!(frames.is_empty());
        assert!(r.read_sampling(&dst, Ticks(6)));
        assert_eq!(r.dropped_deliveries(), 0);
    }
}
