//! Timing of the static-analysis stages, emitting `BENCH_lint.json`.
//!
//! Three measurements:
//!
//! * `corpus_lint` — one full pass of the per-schedule analyses over
//!   every `.air` case in `tests/lint_corpus/` (the cost of the gate a
//!   [`air_core::SystemBuilder::build`] caller pays, times the corpus);
//! * `explore_<example>_depth_{4..8}` — bounded state-space exploration
//!   of `examples/full_system.air` (three schedules plus a degraded
//!   link) and `examples/constellation_hub.air` (the ten-spoke mesh hub
//!   whose space clears 10^4 states by depth 8) at increasing depths,
//!   with the number of abstract states each depth visits and the
//!   resulting states/sec throughput;
//! * `explore_constellation_hub_depth_8_workers_{1,2,4,8}` — the same
//!   deepest exploration under the sharded parallel engine, so the
//!   worker scaling curve is recorded next to the sequential baseline.
//!
//! Deep explorations cost seconds per call, so the sample count adapts:
//! cheap points keep the batched 20-sample scheme, expensive ones drop
//! to as few as 3 un-batched samples. `tests/explore_bench_guard.rs`
//! pins the benched examples non-degenerate (an earlier revision timed a
//! one-state graph here). The JSON records the profile so debug numbers
//! are never mistaken for release ones.

use std::path::{Path, PathBuf};
use std::time::Instant;

use bench::criterion::{fmt_ns, stats_of};

use air_lint::{explore_with, lint, ExploreConfig, SystemModel};

const SAMPLES: usize = 20;
const SAMPLE_NS: f64 = 10_000_000.0; // ~10 ms per sample
/// Per-point budget: expensive explorations get fewer samples.
const POINT_BUDGET_NS: f64 = 3_000_000_000.0;

/// Median nanoseconds per call of `f`, batch-calibrated (same scheme as
/// the hotpath bench), with the sample count scaled down so one point
/// never exceeds its time budget.
fn measure<F: FnMut()>(mut f: F) -> f64 {
    let start = Instant::now();
    let mut calls = 0u64;
    while start.elapsed().as_millis() < 20 {
        f();
        calls += 1;
    }
    let per_call = start.elapsed().as_nanos() as f64 / calls.max(1) as f64;
    let batch = ((SAMPLE_NS / per_call.max(1.0)) as u64).max(1);
    let affordable = (POINT_BUDGET_NS / (per_call * batch as f64).max(1.0)) as usize;
    let samples = affordable.clamp(3, SAMPLES);
    let mut medians = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t = Instant::now();
        for _ in 0..batch {
            f();
        }
        medians.push(t.elapsed().as_nanos() as f64 / batch as f64);
    }
    stats_of(&medians).median
}

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn model_of(file: &str) -> SystemModel {
    let text = std::fs::read_to_string(repo_root().join(file))
        .unwrap_or_else(|e| panic!("{file}: {e}"));
    let doc = air_tools::config::parse(&text).unwrap_or_else(|e| panic!("{file}: {e}"));
    SystemModel::from_config(&doc)
}

/// Every corpus case parsed into its lint model (parse cost excluded from
/// the measurement — the gate's recurring cost is the analyses).
fn corpus_models() -> Vec<SystemModel> {
    let dir = repo_root().join("tests/lint_corpus");
    let mut cases: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("tests/lint_corpus exists")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "air"))
        .collect();
    cases.sort();
    cases
        .iter()
        .filter_map(|case| {
            let text = std::fs::read_to_string(case).expect("readable corpus case");
            air_tools::config::parse(&text)
                .ok()
                .map(|doc| SystemModel::from_config(&doc))
        })
        .collect()
}

/// One exploration row: prints the human line and returns the JSON row.
fn explore_row(name: &str, model: &SystemModel, config: &ExploreConfig) -> String {
    let states = explore_with(model, config).states_explored;
    let ns = measure(|| {
        std::hint::black_box(explore_with(model, config));
    });
    let states_per_sec = states as f64 / (ns / 1e9);
    println!(
        "{name:<44} {:>12}   ({states} abstract states, {:.0} states/s)",
        fmt_ns(ns),
        states_per_sec
    );
    format!(
        ",\n    {{\"name\": \"{name}\", \"median_ns\": {ns:.2}, \
         \"states_explored\": {states}, \"states_per_sec\": {states_per_sec:.0}, \
         \"workers\": {}}}",
        config.workers
    )
}

fn main() {
    println!("lint: static-analysis stage timings (adaptive sample counts)\n");

    let models = corpus_models();
    let corpus_ns = measure(|| {
        for model in &models {
            std::hint::black_box(lint(model));
        }
    });
    println!(
        "{:<44} {:>12}   ({} parsed cases per pass)",
        "corpus_lint",
        fmt_ns(corpus_ns),
        models.len()
    );
    let mut rows = format!(
        "    {{\"name\": \"corpus_lint\", \"median_ns\": {corpus_ns:.2}, \"cases\": {}}}",
        models.len()
    );

    for (label, file) in [
        ("full_system", "examples/full_system.air"),
        ("constellation_hub", "examples/constellation_hub.air"),
    ] {
        let model = model_of(file);
        for depth in 4..=8usize {
            let config = ExploreConfig { depth, ..ExploreConfig::default() };
            rows.push_str(&explore_row(
                &format!("explore_{label}_depth_{depth}"),
                &model,
                &config,
            ));
        }
    }

    // Worker scaling curve at the deepest, largest exploration.
    let hub = model_of("examples/constellation_hub.air");
    for workers in [1usize, 2, 4, 8] {
        let config = ExploreConfig { depth: 8, workers, ..ExploreConfig::default() };
        rows.push_str(&explore_row(
            &format!("explore_constellation_hub_depth_8_workers_{workers}"),
            &hub,
            &config,
        ));
    }

    let json = format!(
        "{{\n  \"experiment\": \"air-lint stage timings: corpus pass, bounded exploration \
         depth curve, and parallel-engine worker scaling\",\n  \
           \"profile\": \"{}\",\n  \"benches\": [\n{rows}\n  ]\n}}\n",
        if cfg!(debug_assertions) { "debug" } else { "release" }
    );
    std::fs::write("BENCH_lint.json", &json).expect("write BENCH_lint.json");
    println!("\nBENCH_lint.json written");
}
