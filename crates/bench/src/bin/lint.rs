//! Timing of the static-analysis stages, emitting `BENCH_lint.json`.
//!
//! Two measurements:
//!
//! * `corpus_lint` — one full pass of the per-schedule analyses over
//!   every `.air` case in `tests/lint_corpus/` (the cost of the gate a
//!   [`air_core::SystemBuilder::build`] caller pays, times the corpus);
//! * `explore_<example>_depth_{1,2,3}` — bounded mode/HM state-space
//!   exploration of `examples/full_system.air` (single schedule: the
//!   degenerate one-state graph) and `examples/cluster_degraded_a.air`
//!   (two schedules plus a degraded-mode link: a real graph) at
//!   increasing depths, with the number of abstract states each depth
//!   visits, so the growth of the search is visible next to its cost.
//!
//! The exploration must stay cheap enough to run in CI on every build
//! (`scripts/ci.sh` runs depth 3 on the full system); the JSON records
//! the profile so debug numbers are never mistaken for release ones.

use std::path::{Path, PathBuf};
use std::time::Instant;

use bench::criterion::{fmt_ns, stats_of};

use air_lint::{explore, lint, SystemModel};

const SAMPLES: usize = 20;
const SAMPLE_NS: f64 = 10_000_000.0; // ~10 ms per sample

/// Median nanoseconds per call of `f`, batch-calibrated (same scheme as
/// the hotpath bench).
fn measure<F: FnMut()>(mut f: F) -> f64 {
    let start = Instant::now();
    let mut calls = 0u64;
    while start.elapsed().as_millis() < 20 {
        f();
        calls += 1;
    }
    let per_call = start.elapsed().as_nanos() as f64 / calls.max(1) as f64;
    let batch = ((SAMPLE_NS / per_call.max(1.0)) as u64).max(1);
    let mut samples = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        let t = Instant::now();
        for _ in 0..batch {
            f();
        }
        samples.push(t.elapsed().as_nanos() as f64 / batch as f64);
    }
    stats_of(&samples).median
}

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// Every corpus case parsed into its lint model (parse cost excluded from
/// the measurement — the gate's recurring cost is the analyses).
fn corpus_models() -> Vec<SystemModel> {
    let dir = repo_root().join("tests/lint_corpus");
    let mut cases: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("tests/lint_corpus exists")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "air"))
        .collect();
    cases.sort();
    cases
        .iter()
        .filter_map(|case| {
            let text = std::fs::read_to_string(case).expect("readable corpus case");
            air_tools::config::parse(&text)
                .ok()
                .map(|doc| SystemModel::from_config(&doc))
        })
        .collect()
}

fn main() {
    println!("lint: static-analysis stage timings (medians of {SAMPLES} samples)\n");

    let models = corpus_models();
    let corpus_ns = measure(|| {
        for model in &models {
            std::hint::black_box(lint(model));
        }
    });
    println!(
        "{:<18} {:>12}   ({} parsed cases per pass)",
        "corpus_lint",
        fmt_ns(corpus_ns),
        models.len()
    );
    let mut rows = format!(
        "    {{\"name\": \"corpus_lint\", \"median_ns\": {corpus_ns:.2}, \"cases\": {}}}",
        models.len()
    );

    for (label, file) in [
        ("full_system", "examples/full_system.air"),
        ("cluster_degraded_a", "examples/cluster_degraded_a.air"),
    ] {
        let text = std::fs::read_to_string(repo_root().join(file))
            .unwrap_or_else(|e| panic!("{file}: {e}"));
        let doc = air_tools::config::parse(&text).unwrap_or_else(|e| panic!("{file}: {e}"));
        let model = SystemModel::from_config(&doc);
        for depth in 1..=3usize {
            let states = explore(&model, depth).states_explored;
            let ns = measure(|| {
                std::hint::black_box(explore(&model, depth));
            });
            println!(
                "{:<34} {:>12}   ({states} abstract states)",
                format!("explore_{label}_depth_{depth}"),
                fmt_ns(ns)
            );
            rows.push_str(&format!(
                ",\n    {{\"name\": \"explore_{label}_depth_{depth}\", \"median_ns\": {ns:.2}, \
                 \"states_explored\": {states}}}"
            ));
        }
    }

    let json = format!(
        "{{\n  \"experiment\": \"air-lint stage timings: corpus pass and bounded exploration\",\n  \
           \"profile\": \"{}\",\n  \"benches\": [\n{rows}\n  ]\n}}\n",
        if cfg!(debug_assertions) { "debug" } else { "release" }
    );
    std::fs::write("BENCH_lint.json", &json).expect("write BENCH_lint.json");
    println!("\nBENCH_lint.json written");
}
