//! Routed-mesh throughput and latency: N-node TM/TC campaigns over the
//! go-back-N fabric, emitting `BENCH_mesh.json`.
//!
//! For every topology (line, star, ring) at 3, 5 and 9 nodes the full
//! mesh campaign runs under one seeded fault of every link class per
//! machine, reporting:
//!
//! * **packets/sec** — per-hop packet relays executed per wall-clock
//!   second (the runner executes every plan twice for its determinism
//!   probe; both executions count);
//! * **hop latency** — one-way command latency in ticks divided by hop
//!   count, measured on a fault-free plan of the same shape (first
//!   telecommand origination to its acceptance at the executor);
//! * the invariant verdict — a throughput number from a mesh that lost
//!   or duplicated a command would be meaningless.
//!
//! `--smoke-mesh` runs a reduced gate: a 5-node line mesh fleet on
//! `AIR_FLEET_WORKERS` (default 4) workers, fleet digest checked against
//! the sequential run, non-zero exit on divergence or invariant failure
//! — the CI hook.

use std::time::Instant;

use air_core::mesh::{mesh_plan, MeshCampaignRunner, CMD_START};
use air_fleet::workloads::MeshFleet;
use air_fleet::{run_fleet, run_sequential, Capture, FleetConfig};
use air_ports::routing::MeshTopology;

const BASE_SEED: u64 = 42;
const SIZES: [usize; 3] = [3, 5, 9];
const TOPOLOGIES: [MeshTopology; 3] =
    [MeshTopology::Line, MeshTopology::Star, MeshTopology::Ring];
const SMOKE_MACHINES: usize = 24;
const SMOKE_WORKERS_DEFAULT: usize = 4;

/// One-way first-command latency in ticks on a fault-free plan: the
/// executor's first `CommandAccepted` trace tick minus the origination
/// tick.
fn first_delivery_ticks(topology: MeshTopology, nodes: usize) -> Option<u64> {
    let outcome = MeshCampaignRunner::new(mesh_plan(topology, nodes, BASE_SEED, 0)).run();
    let line = outcome
        .trace_log
        .lines()
        .find(|l| l.contains("CommandAccepted"))?;
    let t = line.split("t=").nth(1)?.split_whitespace().next()?;
    t.parse::<u64>().ok().map(|t| t.saturating_sub(CMD_START))
}

fn run_smoke() -> i32 {
    let workers = air_fleet::workers_from_env(SMOKE_WORKERS_DEFAULT);
    let fleet = MeshFleet::new(BASE_SEED, 1, MeshTopology::Line, 5);
    let sharded = run_fleet(&fleet, &FleetConfig::new(SMOKE_MACHINES, workers));
    let sequential = run_sequential(&fleet, SMOKE_MACHINES, Capture::Digest);
    let agree = sharded.fleet_digest() == sequential.fleet_digest();
    let outcome = MeshCampaignRunner::new(fleet.plan_for(0)).run();
    println!(
        "smoke mesh: {SMOKE_MACHINES} five-node line meshes on {workers} workers \
         ({} rounds): {:.0} systems×ticks/sec, digests {}, machine 0 {}",
        sharded.rounds,
        sharded.systems_ticks_per_sec(),
        if agree { "agree with sequential" } else { "DIVERGED from sequential" },
        if outcome.is_ok() { "holds all invariants" } else { "VIOLATES invariants" }
    );
    if !agree {
        eprintln!("smoke mesh: sharded execution diverged from the sequential reference");
        return 1;
    }
    if !outcome.is_ok() {
        eprintln!("smoke mesh: {}", outcome.report);
        return 1;
    }
    0
}

#[allow(clippy::cast_precision_loss)] // reporting only
fn main() {
    if std::env::args().any(|a| a == "--smoke-mesh") {
        std::process::exit(run_smoke());
    }

    println!("mesh: topologies {{line, star, ring}} × {SIZES:?} nodes, seed {BASE_SEED}\n");
    let mut rows = String::new();
    let mut all_ok = true;
    for topology in TOPOLOGIES {
        for nodes in SIZES {
            let plan = mesh_plan(topology, nodes, BASE_SEED, 1);
            let started = Instant::now();
            let outcome = MeshCampaignRunner::new(plan).run();
            let elapsed = started.elapsed().as_secs_f64();
            all_ok &= outcome.is_ok();
            // The runner executes the plan twice (determinism probe).
            let packets = 2 * outcome.forwarded;
            let packets_per_sec = if elapsed > 0.0 { packets as f64 / elapsed } else { 0.0 };
            let delivery = first_delivery_ticks(topology, nodes).unwrap_or(0);
            let hop_latency = if outcome.command_hops > 0 {
                delivery as f64 / outcome.command_hops as f64
            } else {
                0.0
            };
            println!(
                "{:>4}[{nodes}]: {:>9.0} packets/sec  {} hops, first delivery {delivery} ticks \
                 ({hop_latency:.1}/hop)  {} cmds, {} retransmits, invariants {}",
                topology.label(),
                packets_per_sec,
                outcome.command_hops,
                outcome.expected,
                outcome.retransmissions,
                if outcome.is_ok() { "hold" } else { "VIOLATED" }
            );
            if !rows.is_empty() {
                rows.push_str(",\n");
            }
            rows.push_str(&format!(
                "    {{\"topology\": \"{}\", \"nodes\": {nodes}, \
                 \"packets_per_sec\": {packets_per_sec:.0}, \
                 \"command_hops\": {}, \"first_delivery_ticks\": {delivery}, \
                 \"hop_latency_ticks\": {hop_latency:.2}, \
                 \"commands\": {}, \"retransmissions\": {}, \
                 \"invariants_hold\": {}}}",
                topology.label(),
                outcome.command_hops,
                outcome.expected,
                outcome.retransmissions,
                outcome.is_ok()
            ));
        }
    }

    let json = format!(
        "{{\n  \"experiment\": \"N-node routed mesh TM/TC campaigns\",\n  \
           \"profile\": \"{}\",\n  \"base_seed\": {BASE_SEED},\n  \
           \"per_class_faults\": 1,\n  \"meshes\": [\n{rows}\n  ],\n  \
           \"all_invariants_hold\": {all_ok}\n}}\n",
        if cfg!(debug_assertions) { "debug" } else { "release" },
    );
    std::fs::write("BENCH_mesh.json", &json).expect("write BENCH_mesh.json");
    println!("\nall_invariants_hold={all_ok} → BENCH_mesh.json written");
    if !all_ok {
        std::process::exit(1);
    }
}
