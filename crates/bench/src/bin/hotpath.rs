//! Same-run before/after measurement of the hot-path overhaul, emitting
//! `BENCH_hotpath.json`.
//!
//! Four micro-benches, each comparing the pre-change implementation
//! (rebuilt in this run, same compiler, same machine) against the current
//! one:
//!
//! * `ipc_local_roundtrip` — sampling fan-out + queuing point-to-point
//!   write→route→read cycle: legacy string-keyed router vs compiled
//!   routing tables;
//! * `tick_idle_route` — the per-tick route walk when nothing is pending
//!   (the most frequent case on the clock path): legacy vs compiled;
//! * `mmu_translate_hot` — repeated translations of a small working set:
//!   raw three-level walk vs TLB front-end;
//! * `deadline_register_n256` — APEX-side register/unregister against 256
//!   armed deadlines: sorted linked list vs timing wheel.
//!
//! Before timing, the IPC pair is cross-checked for identical delivery
//! behaviour so the baseline is a *correct* baseline.

use std::time::Instant;

use bench::criterion::{fmt_ns, stats_of};
use bench::legacy::LegacyRouter;

use air_hw::mmu::{AccessKind, Mmu, PageFlags, Privilege, PAGE_SIZE};
use air_model::ids::ProcessId;
use air_model::{PartitionId, Ticks};
use air_pal::{DeadlineRegistry, LinkedListRegistry, TimingWheelRegistry};
use air_ports::{
    ChannelConfig, Destination, Payload, PortAddr, PortRegistry, QueuingPortConfig,
    SamplingPortConfig,
};

const SAMPLES: usize = 20;
const SAMPLE_NS: f64 = 10_000_000.0; // ~10 ms per sample

/// Median nanoseconds per call of `f`, batch-calibrated.
fn measure<F: FnMut()>(mut f: F) -> f64 {
    // Calibrate: run for ~20 ms to estimate the per-call cost.
    let start = Instant::now();
    let mut calls = 0u64;
    while start.elapsed().as_millis() < 20 {
        f();
        calls += 1;
    }
    let per_call = start.elapsed().as_nanos() as f64 / calls.max(1) as f64;
    let batch = ((SAMPLE_NS / per_call.max(1.0)) as u64).max(1);
    let mut samples = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        let t = Instant::now();
        for _ in 0..batch {
            f();
        }
        samples.push(t.elapsed().as_nanos() as f64 / batch as f64);
    }
    stats_of(&samples).median
}

fn p(m: u32) -> PartitionId {
    PartitionId(m)
}

/// The bench channel graph: one sampling fan-out (1→2) and one queuing
/// point-to-point channel, plus `idle` extra sampling channels that never
/// carry fresh data (the steady-state tick case).
struct Graph {
    idle: u32,
}

impl Graph {
    fn build_current(&self) -> PortRegistry {
        let mut reg = PortRegistry::new();
        reg.create_sampling_port(p(0), SamplingPortConfig::source("s.tx", 64))
            .unwrap();
        reg.create_sampling_port(p(1), SamplingPortConfig::destination("s.rx", 64, Ticks(100)))
            .unwrap();
        reg.create_sampling_port(p(2), SamplingPortConfig::destination("s.rx2", 64, Ticks(100)))
            .unwrap();
        reg.create_queuing_port(p(0), QueuingPortConfig::source("q.tx", 64, 8))
            .unwrap();
        reg.create_queuing_port(p(1), QueuingPortConfig::destination("q.rx", 64, 8))
            .unwrap();
        reg.add_channel(ChannelConfig {
            id: 1,
            source: PortAddr::new(p(0), "s.tx"),
            destinations: vec![
                Destination::Local(PortAddr::new(p(1), "s.rx")),
                Destination::Local(PortAddr::new(p(2), "s.rx2")),
            ],
        })
        .unwrap();
        reg.add_channel(ChannelConfig {
            id: 2,
            source: PortAddr::new(p(0), "q.tx"),
            destinations: vec![Destination::Local(PortAddr::new(p(1), "q.rx"))],
        })
        .unwrap();
        for i in 0..self.idle {
            let name_tx = format!("idle{i}.tx");
            let name_rx = format!("idle{i}.rx");
            reg.create_sampling_port(p(0), SamplingPortConfig::source(&name_tx, 64))
                .unwrap();
            reg.create_sampling_port(
                p(1),
                SamplingPortConfig::destination(&name_rx, 64, Ticks(100)),
            )
            .unwrap();
            reg.add_channel(ChannelConfig {
                id: 100 + i,
                source: PortAddr::new(p(0), name_tx),
                destinations: vec![Destination::Local(PortAddr::new(p(1), name_rx))],
            })
            .unwrap();
        }
        reg
    }

    fn build_legacy(&self) -> LegacyRouter {
        let mut reg = LegacyRouter::new();
        reg.create_sampling_port(
            PortAddr::new(p(0), "s.tx"),
            SamplingPortConfig::source("s.tx", 64),
        );
        reg.create_sampling_port(
            PortAddr::new(p(1), "s.rx"),
            SamplingPortConfig::destination("s.rx", 64, Ticks(100)),
        );
        reg.create_sampling_port(
            PortAddr::new(p(2), "s.rx2"),
            SamplingPortConfig::destination("s.rx2", 64, Ticks(100)),
        );
        reg.create_queuing_port(
            PortAddr::new(p(0), "q.tx"),
            QueuingPortConfig::source("q.tx", 64, 8),
        );
        reg.create_queuing_port(
            PortAddr::new(p(1), "q.rx"),
            QueuingPortConfig::destination("q.rx", 64, 8),
        );
        reg.add_channel(ChannelConfig {
            id: 1,
            source: PortAddr::new(p(0), "s.tx"),
            destinations: vec![
                Destination::Local(PortAddr::new(p(1), "s.rx")),
                Destination::Local(PortAddr::new(p(2), "s.rx2")),
            ],
        });
        reg.add_channel(ChannelConfig {
            id: 2,
            source: PortAddr::new(p(0), "q.tx"),
            destinations: vec![Destination::Local(PortAddr::new(p(1), "q.rx"))],
        });
        for i in 0..self.idle {
            let name_tx = format!("idle{i}.tx");
            let name_rx = format!("idle{i}.rx");
            reg.create_sampling_port(
                PortAddr::new(p(0), name_tx.clone()),
                SamplingPortConfig::source(&name_tx, 64),
            );
            reg.create_sampling_port(
                PortAddr::new(p(1), name_rx.clone()),
                SamplingPortConfig::destination(&name_rx, 64, Ticks(100)),
            );
            reg.add_channel(ChannelConfig {
                id: 100 + i,
                source: PortAddr::new(p(0), name_tx),
                destinations: vec![Destination::Local(PortAddr::new(p(1), name_rx))],
            });
        }
        reg
    }
}

const PAYLOAD: Payload = Payload::from_static(b"attitude quaternion x");

/// One full IPC round on the current registry. Returns deliveries seen.
fn current_round(reg: &mut PortRegistry, frames: &mut Vec<air_ports::wire::Frame>, now: u64) -> u32 {
    let now = Ticks(now);
    reg.sampling_port_mut(p(0), "s.tx")
        .unwrap()
        .write(PAYLOAD, now)
        .unwrap();
    reg.queuing_port_mut(p(0), "q.tx")
        .unwrap()
        .send(PAYLOAD, now)
        .unwrap();
    reg.route_into(now, frames);
    let mut seen = 0;
    seen += u32::from(reg.sampling_port_mut(p(1), "s.rx").unwrap().read(now).is_ok());
    seen += u32::from(reg.sampling_port_mut(p(2), "s.rx2").unwrap().read(now).is_ok());
    seen += u32::from(reg.queuing_port_mut(p(1), "q.rx").unwrap().receive().is_ok());
    seen
}

/// One full IPC round on the legacy router. Returns deliveries seen.
fn legacy_round(reg: &mut LegacyRouter, now: u64) -> u32 {
    let now = Ticks(now);
    let s_tx = PortAddr::new(p(0), "s.tx");
    let q_tx = PortAddr::new(p(0), "q.tx");
    let s_rx = PortAddr::new(p(1), "s.rx");
    let s_rx2 = PortAddr::new(p(2), "s.rx2");
    let q_rx = PortAddr::new(p(1), "q.rx");
    reg.write_sampling(&s_tx, PAYLOAD, now);
    reg.send_queuing(&q_tx, PAYLOAD, now);
    let frames = reg.route(now);
    assert!(frames.is_empty());
    let mut seen = 0;
    seen += u32::from(reg.read_sampling(&s_rx, now));
    seen += u32::from(reg.read_sampling(&s_rx2, now));
    seen += u32::from(reg.receive_queuing(&q_rx));
    seen
}

struct Comparison {
    name: &'static str,
    baseline_ns: f64,
    optimized_ns: f64,
}

impl Comparison {
    fn speedup(&self) -> f64 {
        self.baseline_ns / self.optimized_ns
    }
}

fn bench_ipc() -> Comparison {
    let graph = Graph { idle: 0 };
    // Cross-check: both routers must deliver identically before we trust
    // the legacy one as a baseline.
    let mut cur = graph.build_current();
    let mut leg = graph.build_legacy();
    let mut frames = Vec::new();
    for now in 1..=64u64 {
        assert_eq!(
            current_round(&mut cur, &mut frames, now),
            legacy_round(&mut leg, now),
            "legacy router diverged from the registry at tick {now}"
        );
    }
    assert_eq!(cur.dropped_deliveries(), leg.dropped_deliveries());

    let mut now = 1_000u64;
    let baseline_ns = measure(|| {
        now += 1;
        legacy_round(&mut leg, now);
    });
    let mut now = 1_000u64;
    let optimized_ns = measure(|| {
        now += 1;
        current_round(&mut cur, &mut frames, now);
    });
    Comparison {
        name: "ipc_local_roundtrip",
        baseline_ns,
        optimized_ns,
    }
}

fn bench_tick_idle() -> Comparison {
    // 16 idle channels plus the active pair, but nothing written: the
    // route walk runs at every tick, so its no-traffic cost IS the tick
    // cost contribution of IPC.
    let graph = Graph { idle: 16 };
    let mut cur = graph.build_current();
    let mut leg = graph.build_legacy();
    let mut frames = Vec::new();
    // Prime freshness state so the steady state is "seen it already".
    current_round(&mut cur, &mut frames, 1);
    legacy_round(&mut leg, 1);

    let baseline_ns = measure(|| {
        let fr = leg.route(Ticks(2));
        assert!(fr.is_empty());
    });
    let optimized_ns = measure(|| {
        cur.route_into(Ticks(2), &mut frames);
        assert!(frames.is_empty());
    });
    Comparison {
        name: "tick_idle_route",
        baseline_ns,
        optimized_ns,
    }
}

fn bench_mmu() -> Comparison {
    let mut mmu = Mmu::new();
    let ctx = mmu.create_context();
    mmu.map(ctx, 0x4000_0000, 0x10_0000, 16 * PAGE_SIZE, PageFlags::from_sparc_acc(3))
        .unwrap();
    // A small hot working set, revisited constantly — the access pattern
    // partition code produces inside its window.
    let vas: Vec<u64> = (0..8u64).map(|i| 0x4000_0000 + i * PAGE_SIZE + 0x40).collect();

    let mut i = 0;
    let baseline_ns = measure(|| {
        let va = vas[i % vas.len()];
        i += 1;
        mmu.translate_uncached(ctx, va, AccessKind::Read, Privilege::User)
            .unwrap();
    });
    let mut i = 0;
    let optimized_ns = measure(|| {
        let va = vas[i % vas.len()];
        i += 1;
        mmu.translate(ctx, va, AccessKind::Read, Privilege::User)
            .unwrap();
    });
    assert!(mmu.tlb_hits() > 0, "the TLB path was actually exercised");
    Comparison {
        name: "mmu_translate_hot",
        baseline_ns,
        optimized_ns,
    }
}

fn bench_deadline() -> Comparison {
    const N: u32 = 256;
    fn filled<R: DeadlineRegistry + Default>() -> R {
        let mut reg = R::default();
        for q in 0..N {
            let d = u64::from((q * 37) % N) * 100 + 50;
            reg.register(ProcessId(q), Ticks(d));
        }
        reg
    }
    // APEX-side worst case: a far deadline. The list walks all 256 nodes;
    // the wheel computes one digit pair.
    let mut list: LinkedListRegistry = filled();
    let baseline_ns = measure(|| {
        list.register(ProcessId(N), Ticks(1_000_000));
        list.unregister(ProcessId(N));
    });
    let mut wheel: TimingWheelRegistry = filled();
    let optimized_ns = measure(|| {
        wheel.register(ProcessId(N), Ticks(1_000_000));
        wheel.unregister(ProcessId(N));
    });
    Comparison {
        name: "deadline_register_n256",
        baseline_ns,
        optimized_ns,
    }
}

fn main() {
    println!("hotpath: same-run before/after comparison (medians of {SAMPLES} samples)\n");
    let comparisons = [bench_ipc(), bench_tick_idle(), bench_mmu(), bench_deadline()];

    let mut rows = String::new();
    for (i, c) in comparisons.iter().enumerate() {
        println!(
            "{:<24} baseline {:>12}   optimized {:>12}   speedup {:>6.2}x",
            c.name,
            fmt_ns(c.baseline_ns),
            fmt_ns(c.optimized_ns),
            c.speedup()
        );
        if i > 0 {
            rows.push_str(",\n");
        }
        rows.push_str(&format!(
            "    {{\"name\": \"{}\", \"baseline_ns\": {:.2}, \"optimized_ns\": {:.2}, \"speedup\": {:.3}}}",
            c.name,
            c.baseline_ns,
            c.optimized_ns,
            c.speedup()
        ));
    }
    let min_speedup = comparisons
        .iter()
        .map(Comparison::speedup)
        .fold(f64::INFINITY, f64::min);
    let json = format!(
        "{{\n  \"experiment\": \"hotpath overhaul: dense routing tables, MMU TLB, timing wheel\",\n  \
           \"profile\": \"{}\",\n  \"benches\": [\n{rows}\n  ],\n  \
           \"min_speedup\": {min_speedup:.3},\n  \"meets_2x_target\": {}\n}}\n",
        if cfg!(debug_assertions) { "debug" } else { "release" },
        min_speedup >= 2.0
    );
    std::fs::write("BENCH_hotpath.json", &json).expect("write BENCH_hotpath.json");
    println!("\nmin speedup: {min_speedup:.2}x  →  BENCH_hotpath.json written");
}
