//! Fault-injection campaign matrix over seeds × fault classes, emitting
//! `BENCH_campaign.json`.
//!
//! Two sweeps per seed:
//!
//! * **single-class** — three faults of one class at a time, isolating the
//!   detection latency of that class's path (MMU trap, spurious device
//!   trap, link checksum/sequence checks, paravirtualised clock guard,
//!   PAL deadline verification);
//! * **full-matrix** — all classes interleaved in one run, checking that
//!   the robustness invariants survive fault interactions.
//!
//! Every run re-executes its plan and demands a byte-identical trace log,
//! so the whole matrix doubles as a determinism regression.
//!
//! A third sweep drives the *cluster*: link-fault campaigns (drops,
//! bit-flips, outages, acknowledgement destruction against the reliable
//! transport of a two-node system) emitting `BENCH_link.json` — delivery
//! ratio, retransmissions, failover count and degraded-mode recovery
//! latency per seed.
//!
//! `--smoke` runs a reduced matrix (3 seeds × all classes) without writing
//! the JSON and exits non-zero on any invariant violation — the CI hook.
//! `--smoke-link` does the same for the link-fault campaigns.

use air_core::campaign::{standard_plan, CampaignOutcome, CampaignRunner};
use air_core::link_campaign::{link_plan, LinkCampaignOutcome, LinkCampaignRunner};
use air_hw::inject::{FaultClass, FaultPlan};

const SEEDS: [u64; 5] = [1, 3, 7, 11, 42];
const SMOKE_SEEDS: [u64; 3] = [1, 7, 42];
const PER_CLASS: usize = 3;
/// Same-class inter-arrival in single-class sweeps. Must exceed the worst
/// detection + recovery latency (a process overrun takes ~110 ticks to
/// reach its PAL deadline check): a fault striking a component that is
/// already faulty merges into the ongoing episode and cannot be told
/// apart, which is a property of fault campaigns, not of the monitor.
const CLASS_SPACING: u64 = 200;

struct ClassStats {
    class: FaultClass,
    injected: usize,
    detected: usize,
    latencies: Vec<u64>,
    violations: usize,
    deterministic: bool,
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

/// Runs `seeds` single-class campaigns of `class` and folds the results.
fn sweep_class(class: FaultClass, seeds: &[u64]) -> ClassStats {
    let mut stats = ClassStats {
        class,
        injected: 0,
        detected: 0,
        latencies: Vec::new(),
        violations: 0,
        deterministic: true,
    };
    for &seed in seeds {
        let plan = FaultPlan::generate(seed, &[class], PER_CLASS, 70, CLASS_SPACING, 11);
        let outcome = CampaignRunner::new(plan).run();
        stats.injected += outcome.injected();
        stats.detected += outcome.detected();
        stats.latencies.extend(outcome.latencies());
        stats.violations += outcome.report.violations().len();
        stats.deterministic &= outcome.deterministic;
    }
    stats.latencies.sort_unstable();
    stats
}

fn full_matrix(seeds: &[u64]) -> Vec<(u64, CampaignOutcome)> {
    seeds
        .iter()
        .map(|&seed| (seed, CampaignRunner::new(standard_plan(seed, 2)).run()))
        .collect()
}

fn run_smoke() -> i32 {
    let mut failures = 0;
    for (seed, outcome) in full_matrix(&SMOKE_SEEDS) {
        let ok = outcome.is_ok() && outcome.detected() == outcome.injected();
        println!(
            "seed {seed:>3}: {}/{} detected, {} violations, deterministic={} → {}",
            outcome.detected(),
            outcome.injected(),
            outcome.report.violations().len(),
            outcome.deterministic,
            if ok { "ok" } else { "FAIL" }
        );
        if !ok {
            failures += 1;
            print!("{}", outcome.report);
        }
    }
    if failures > 0 {
        eprintln!("smoke campaign: {failures} seed(s) violated robustness invariants");
        return 1;
    }
    println!("smoke campaign: all invariants hold");
    0
}

/// One row of the link matrix: a seeded campaign plus its JSON rendering.
fn link_row(seed: u64, outcome: &LinkCampaignOutcome) -> String {
    let recovery = match outcome.recovery_latency {
        Some(t) => t.to_string(),
        None => "null".into(),
    };
    format!(
        "    {{\"seed\": {seed}, \"expected\": {}, \"delivered\": {}, \
         \"delivery_ratio\": {:.3}, \"retransmissions\": {}, \
         \"duplicates_suppressed\": {}, \"failovers\": {}, \"reverts\": {}, \
         \"degraded_entries\": {}, \"degraded_exits\": {}, \
         \"recovery_latency_ticks\": {recovery}, \"violations\": {}, \
         \"deterministic\": {}}}",
        outcome.expected,
        outcome.delivered,
        outcome.delivery_ratio(),
        outcome.retransmissions,
        outcome.duplicates_suppressed,
        outcome.failovers,
        outcome.reverts,
        outcome.degraded_entries,
        outcome.degraded_exits,
        outcome.report.violations().len(),
        outcome.deterministic
    )
}

fn print_link_outcome(label: &str, seed: u64, outcome: &LinkCampaignOutcome) {
    println!(
        "{label} seed {seed:>3}: {}/{} delivered, {} retransmissions, \
         {} failovers, degraded {}↓/{}↑, {} violations, deterministic={}",
        outcome.delivered,
        outcome.expected,
        outcome.retransmissions,
        outcome.failovers,
        outcome.degraded_entries,
        outcome.degraded_exits,
        outcome.report.violations().len(),
        outcome.deterministic
    );
}

fn run_smoke_link() -> i32 {
    let mut failures = 0;
    for &seed in &SMOKE_SEEDS {
        let outcome = LinkCampaignRunner::new(link_plan(seed, 1)).run();
        let ok = outcome.is_ok() && outcome.delivered == outcome.expected;
        print_link_outcome("link", seed, &outcome);
        if !ok {
            failures += 1;
            print!("{}", outcome.report);
        }
    }
    if failures > 0 {
        eprintln!("link smoke campaign: {failures} seed(s) lost messages or broke invariants");
        return 1;
    }
    println!("link smoke campaign: exactly-once delivery held on every seed");
    0
}

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        std::process::exit(run_smoke());
    }
    if std::env::args().any(|a| a == "--smoke-link") {
        std::process::exit(run_smoke_link());
    }

    println!(
        "campaign: {} fault classes × {} seeds ({PER_CLASS} faults each) + full matrix\n",
        FaultClass::ALL.len(),
        SEEDS.len()
    );

    let mut class_rows = String::new();
    let mut all_detected = true;
    let mut total_violations = 0usize;
    let mut all_deterministic = true;
    for (i, &class) in FaultClass::ALL.iter().enumerate() {
        let s = sweep_class(class, &SEEDS);
        let (min, p50, max) = (
            s.latencies.first().copied().unwrap_or(0),
            percentile(&s.latencies, 0.5),
            s.latencies.last().copied().unwrap_or(0),
        );
        println!(
            "{:<20} {:>2}/{:<2} detected   latency ticks min/median/max {:>3}/{:>3}/{:>3}   violations {}",
            s.class.label(),
            s.detected,
            s.injected,
            min,
            p50,
            max,
            s.violations
        );
        all_detected &= s.detected == s.injected;
        total_violations += s.violations;
        all_deterministic &= s.deterministic;
        if i > 0 {
            class_rows.push_str(",\n");
        }
        class_rows.push_str(&format!(
            "    {{\"class\": \"{}\", \"injected\": {}, \"detected\": {}, \
             \"latency_ticks\": {{\"min\": {min}, \"median\": {p50}, \"max\": {max}}}, \
             \"violations\": {}, \"deterministic\": {}}}",
            s.class.label(),
            s.injected,
            s.detected,
            s.violations,
            s.deterministic
        ));
    }

    let mut matrix_rows = String::new();
    println!();
    for (i, (seed, outcome)) in full_matrix(&SEEDS).iter().enumerate() {
        let e = &outcome.escalations;
        println!(
            "matrix seed {seed:>3}: {}/{} detected, {} HM entries, \
             {} contained / {} logged / {} warm restarts, {} violations",
            outcome.detected(),
            outcome.injected(),
            outcome.hm_entries,
            e.handler_contained,
            e.logged,
            e.warm_restarts,
            outcome.report.violations().len()
        );
        all_detected &= outcome.detected() == outcome.injected();
        total_violations += outcome.report.violations().len();
        all_deterministic &= outcome.deterministic;
        if i > 0 {
            matrix_rows.push_str(",\n");
        }
        matrix_rows.push_str(&format!(
            "    {{\"seed\": {seed}, \"injected\": {}, \"detected\": {}, \"hm_entries\": {}, \
             \"escalations\": {{\"handler_contained\": {}, \"logged\": {}, \
             \"warm_restarts\": {}, \"cold_restarts\": {}, \"partition_stops\": {}, \
             \"module_resets\": {}, \"module_shutdowns\": {}}}, \
             \"violations\": {}, \"deterministic\": {}}}",
            outcome.injected(),
            outcome.detected(),
            outcome.hm_entries,
            e.handler_contained,
            e.logged,
            e.warm_restarts,
            e.cold_restarts,
            e.partition_stops,
            e.module_resets,
            e.module_shutdowns,
            outcome.report.violations().len(),
            outcome.deterministic
        ));
    }

    let json = format!(
        "{{\n  \"experiment\": \"deterministic fault-injection campaigns driving health monitoring\",\n  \
           \"profile\": \"{}\",\n  \"seeds\": {:?},\n  \"faults_per_class\": {PER_CLASS},\n  \
           \"classes\": [\n{class_rows}\n  ],\n  \"full_matrix\": [\n{matrix_rows}\n  ],\n  \
           \"all_faults_detected\": {all_detected},\n  \"invariant_violations\": {total_violations},\n  \
           \"deterministic\": {all_deterministic}\n}}\n",
        if cfg!(debug_assertions) { "debug" } else { "release" },
        SEEDS
    );
    std::fs::write("BENCH_campaign.json", &json).expect("write BENCH_campaign.json");
    println!(
        "\ndetection {} · {} violations · deterministic={} → BENCH_campaign.json written",
        if all_detected { "100%" } else { "INCOMPLETE" },
        total_violations,
        all_deterministic
    );

    // Link-fault campaigns over the two-node cluster: per-class sweeps
    // isolating each loss mechanism, then mixed plans interleaving them.
    println!(
        "\nlink campaign: {} fault classes × {} seeds + mixed plans\n",
        FaultClass::LINK.len(),
        SEEDS.len()
    );
    let mut all_delivered = true;
    let mut link_violations = 0usize;
    let mut link_deterministic = true;
    let mut class_sections = String::new();
    for (i, &class) in FaultClass::LINK.iter().enumerate() {
        let mut rows = String::new();
        for (j, &seed) in SEEDS.iter().enumerate() {
            let plan = FaultPlan::generate(seed, &[class], 2, 150, 400, 37);
            let outcome = LinkCampaignRunner::new(plan).run();
            print_link_outcome(class.label(), seed, &outcome);
            all_delivered &= outcome.delivered == outcome.expected && outcome.is_ok();
            link_violations += outcome.report.violations().len();
            link_deterministic &= outcome.deterministic;
            if j > 0 {
                rows.push_str(",\n");
            }
            rows.push_str(&link_row(seed, &outcome));
        }
        if i > 0 {
            class_sections.push_str(",\n");
        }
        class_sections.push_str(&format!(
            "    {{\"class\": \"{}\", \"runs\": [\n{rows}\n    ]}}",
            class.label()
        ));
    }
    println!();
    let mut mixed_rows = String::new();
    for (i, &seed) in SEEDS.iter().enumerate() {
        let outcome = LinkCampaignRunner::new(link_plan(seed, 1)).run();
        print_link_outcome("mixed", seed, &outcome);
        all_delivered &= outcome.delivered == outcome.expected && outcome.is_ok();
        link_violations += outcome.report.violations().len();
        link_deterministic &= outcome.deterministic;
        if i > 0 {
            mixed_rows.push_str(",\n");
        }
        mixed_rows.push_str(&link_row(seed, &outcome));
    }
    let link_json = format!(
        "{{\n  \"experiment\": \"link-fault campaigns over the reliable transport\",\n  \
           \"profile\": \"{}\",\n  \"seeds\": {:?},\n  \"classes\": [\n{class_sections}\n  ],\n  \
           \"mixed\": [\n{mixed_rows}\n  ],\n  \"exactly_once_delivery\": {all_delivered},\n  \
           \"invariant_violations\": {link_violations},\n  \
           \"deterministic\": {link_deterministic}\n}}\n",
        if cfg!(debug_assertions) { "debug" } else { "release" },
        SEEDS
    );
    std::fs::write("BENCH_link.json", &link_json).expect("write BENCH_link.json");
    println!(
        "\ndelivery {} · {} violations · deterministic={} → BENCH_link.json written",
        if all_delivered { "100%" } else { "INCOMPLETE" },
        link_violations,
        link_deterministic
    );
    if !all_detected
        || total_violations > 0
        || !all_deterministic
        || !all_delivered
        || link_violations > 0
        || !link_deterministic
    {
        std::process::exit(1);
    }
}
