//! Fleet-scale throughput: thousands of emulated AIR systems sharded
//! across worker threads, emitting `BENCH_fleet.json`.
//!
//! Three sections:
//!
//! * **sequential baseline** — the 1k-machine campaign fleet run one
//!   machine at a time (no threads, no barriers): the scaling curve's
//!   denominator;
//! * **scaling curve** — the same fleet on 1/2/4/8/16 workers, reporting
//!   aggregate systems×ticks/sec and speedup vs both the 1-worker fleet
//!   and the sequential baseline, with every configuration's fleet
//!   digest checked against the baseline (a throughput number from a
//!   diverged simulation would be meaningless);
//! * **link fleet** — a smaller fleet of two-node link campaigns (each
//!   machine is a full cluster), same metrics.
//!
//! `host_parallelism` records what the hardware can actually run
//! concurrently: on a 1-core host the curve measures scheduling overhead,
//! not speedup, and the JSON says so rather than hiding it.
//!
//! `--smoke-fleet` runs a reduced fleet (256 machines × 3 MTFs) on
//! `AIR_FLEET_WORKERS` (default 4) workers, checks the fleet digest
//! against the sequential run, and exits non-zero on divergence — the CI
//! hook.

use air_core::campaign::CAMPAIGN_MTF;
use air_fleet::workloads::{CampaignFleet, LinkFleet};
use air_fleet::{run_fleet, run_sequential, Capture, FleetConfig, FleetOutcome, FleetWorkload};

const BASE_SEED: u64 = 42;
const FLEET_MACHINES: usize = 1000;
const LINK_MACHINES: usize = 64;
const WORKER_CURVE: [usize; 5] = [1, 2, 4, 8, 16];
const SMOKE_MACHINES: usize = 256;
const SMOKE_WORKERS_DEFAULT: usize = 4;

fn host_parallelism() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

#[allow(clippy::cast_precision_loss)] // reporting only
fn speedup(curve_point: &FleetOutcome, baseline: &FleetOutcome) -> f64 {
    let base = baseline.tick_elapsed.as_secs_f64();
    let point = curve_point.tick_elapsed.as_secs_f64();
    if point <= 0.0 {
        return 0.0;
    }
    base / point
}

/// One scaling-curve sweep: sequential baseline plus the worker curve,
/// digests cross-checked. Returns the JSON rows and whether all
/// configurations agreed.
fn sweep<W: FleetWorkload>(
    label: &str,
    workload: &W,
    machines: usize,
) -> (String, String, bool) {
    let sequential = run_sequential(workload, machines, Capture::Digest);
    println!(
        "{label}: {machines} machines, {} total ticks, sequential {:.0} systems×ticks/sec \
         (build {:.2}s, tick {:.2}s)",
        sequential.total_ticks(),
        sequential.systems_ticks_per_sec(),
        sequential.build_elapsed.as_secs_f64(),
        sequential.tick_elapsed.as_secs_f64()
    );

    let mut rows = String::new();
    let mut all_agree = true;
    let mut one_worker: Option<FleetOutcome> = None;
    for (i, &workers) in WORKER_CURVE.iter().enumerate() {
        let outcome = run_fleet(workload, &FleetConfig::new(machines, workers));
        let agree = outcome.fleet_digest() == sequential.fleet_digest();
        all_agree &= agree;
        let vs_seq = speedup(&outcome, &sequential);
        let vs_one = one_worker.as_ref().map_or(1.0, |one| speedup(&outcome, one));
        println!(
            "  {workers:>2} workers: {:>12.0} systems×ticks/sec  speedup vs 1-worker {vs_one:>5.2}×  \
             vs sequential {vs_seq:>5.2}×  digests {}",
            outcome.systems_ticks_per_sec(),
            if agree { "agree" } else { "DIVERGED" }
        );
        if i > 0 {
            rows.push_str(",\n");
        }
        rows.push_str(&format!(
            "      {{\"workers\": {workers}, \"rounds\": {}, \
             \"systems_ticks_per_sec\": {:.0}, \"tick_seconds\": {:.4}, \
             \"build_seconds\": {:.4}, \"speedup_vs_1_worker\": {vs_one:.3}, \
             \"speedup_vs_sequential\": {vs_seq:.3}, \"digest_matches_sequential\": {agree}}}",
            outcome.rounds,
            outcome.systems_ticks_per_sec(),
            outcome.tick_elapsed.as_secs_f64(),
            outcome.build_elapsed.as_secs_f64()
        ));
        if workers == 1 {
            one_worker = Some(outcome);
        }
    }
    let baseline_row = format!(
        "      {{\"systems_ticks_per_sec\": {:.0}, \"tick_seconds\": {:.4}, \
         \"build_seconds\": {:.4}, \"total_ticks\": {}}}",
        sequential.systems_ticks_per_sec(),
        sequential.tick_elapsed.as_secs_f64(),
        sequential.build_elapsed.as_secs_f64(),
        sequential.total_ticks()
    );
    (baseline_row, rows, all_agree)
}

fn run_smoke() -> i32 {
    let workers = air_fleet::workers_from_env(SMOKE_WORKERS_DEFAULT);
    let fleet = CampaignFleet::new(BASE_SEED, 1).with_horizon(3 * CAMPAIGN_MTF);
    let sharded = run_fleet(&fleet, &FleetConfig::new(SMOKE_MACHINES, workers));
    let sequential = run_sequential(&fleet, SMOKE_MACHINES, Capture::Digest);
    let agree = sharded.fleet_digest() == sequential.fleet_digest();
    println!(
        "smoke fleet: {SMOKE_MACHINES} machines × {} ticks on {workers} workers \
         ({} rounds): {:.0} systems×ticks/sec, digests {}",
        3 * CAMPAIGN_MTF,
        sharded.rounds,
        sharded.systems_ticks_per_sec(),
        if agree { "agree with sequential" } else { "DIVERGED from sequential" }
    );
    if !agree {
        eprintln!("smoke fleet: sharded execution diverged from the sequential reference");
        return 1;
    }
    0
}

fn main() {
    if std::env::args().any(|a| a == "--smoke-fleet") {
        std::process::exit(run_smoke());
    }

    let parallelism = host_parallelism();
    println!(
        "fleet: campaign fleet of {FLEET_MACHINES} + link fleet of {LINK_MACHINES}, \
         workers {WORKER_CURVE:?}, host parallelism {parallelism}\n"
    );
    if parallelism < *WORKER_CURVE.last().unwrap_or(&1) {
        println!(
            "note: host exposes {parallelism} hardware thread(s); worker counts beyond that \
             measure scheduling overhead, not speedup\n"
        );
    }

    let campaign = CampaignFleet::new(BASE_SEED, 1);
    let (campaign_baseline, campaign_rows, campaign_agree) =
        sweep("campaign", &campaign, FLEET_MACHINES);

    println!();
    let link = LinkFleet::new(BASE_SEED, 1);
    let (link_baseline, link_rows, link_agree) = sweep("link", &link, LINK_MACHINES);

    let json = format!(
        "{{\n  \"experiment\": \"sharded fleet execution of emulated AIR systems\",\n  \
           \"profile\": \"{}\",\n  \"host_parallelism\": {parallelism},\n  \
           \"base_seed\": {BASE_SEED},\n  \"batch_ticks\": 64,\n  \
           \"campaign_fleet\": {{\n    \"machines\": {FLEET_MACHINES},\n    \
           \"sequential\":\n{campaign_baseline},\n    \"scaling\": [\n{campaign_rows}\n    ]\n  }},\n  \
           \"link_fleet\": {{\n    \"machines\": {LINK_MACHINES},\n    \
           \"sequential\":\n{link_baseline},\n    \"scaling\": [\n{link_rows}\n    ]\n  }},\n  \
           \"deterministic\": {}\n}}\n",
        if cfg!(debug_assertions) { "debug" } else { "release" },
        campaign_agree && link_agree
    );
    std::fs::write("BENCH_fleet.json", &json).expect("write BENCH_fleet.json");
    println!(
        "\ndeterministic={} → BENCH_fleet.json written",
        campaign_agree && link_agree
    );
    if !campaign_agree || !link_agree {
        std::process::exit(1);
    }
}
