//! Fuzz-farm driver: seeded configuration generation through lint →
//! bounded exploration → witness minimization → concrete replay, hunting
//! for abstraction divergences (the `AIR099` defect class).
//!
//! Two modes:
//!
//! * `fuzz --smoke-fuzz` — the CI gate: 64 configurations from a fixed
//!   seed base at depth 3, exit 1 on any divergence. Deterministic, so a
//!   red gate is reproducible by seed number alone.
//! * `fuzz [count [depth]]` — a wider sweep (default 256 cases at depth
//!   4) for local soak runs; prints the farm statistics and every
//!   divergence, exit 1 if any.
//!
//! Divergence-free runs still print how many findings were produced,
//! minimized and concretely replayed, so a silently vacuous farm (a
//! generator too tame to produce findings) is visible at a glance.

use air_core::fuzz::run_fuzz;

/// Fixed seed base for the CI smoke gate; the wider sweep offsets past
/// it so local soaks explore fresh configurations.
const SMOKE_SEED: u64 = 0x5eed_0a1b;
const SMOKE_CASES: usize = 64;
const SMOKE_DEPTH: usize = 3;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke-fuzz");
    let positional: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    let (first_seed, cases, depth) = if smoke {
        (SMOKE_SEED, SMOKE_CASES, SMOKE_DEPTH)
    } else {
        let cases = positional
            .first()
            .map(|s| s.parse().expect("count must be a number"))
            .unwrap_or(256);
        let depth = positional
            .get(1)
            .map(|s| s.parse().expect("depth must be a number"))
            .unwrap_or(4);
        (SMOKE_SEED + SMOKE_CASES as u64, cases, depth)
    };

    let label = if smoke { "smoke gate" } else { "soak sweep" };
    println!(
        "fuzz: {label} — {cases} generated configurations, depth {depth}, \
         seeds {first_seed}..{}",
        first_seed + cases as u64
    );
    let report = run_fuzz(first_seed, cases, depth);
    println!(
        "  {} findings, {} witnesses minimized, {} concretely replayed",
        report.findings, report.minimized, report.replayed
    );
    if report.divergences.is_empty() {
        println!("  no divergences: abstraction and concrete replay agree");
        return;
    }
    eprintln!(
        "  {} DIVERGENCE(S) — the abstraction is unsound for these seeds:",
        report.divergences.len()
    );
    for divergence in &report.divergences {
        eprintln!("    {divergence}");
    }
    std::process::exit(1);
}
