//! PMK-side interpartition transport.
//!
//! "Applications access the interpartition communication services through
//! the APEX interface… The AIR PMK deals with these specifics, being
//! obliged to message delivery guarantees" (Sect. 2.1). The transport
//! drives the [`PortRegistry`] router at partition boundaries, carries
//! remote frames over the machine's [`InterNodeLink`], validates incoming
//! frames, and reports corrupt ones to health monitoring instead of
//! delivering them.

use air_hw::link::{InterNodeLink, LinkEndpoint};
use air_hw::Machine;
use air_model::Ticks;
use air_ports::wire::{Frame, FrameError};
use air_ports::{PortError, PortRegistry};

/// The PMK interpartition-communication component.
#[derive(Debug, Default)]
pub struct PmkIpc {
    registry: PortRegistry,
    /// Reused frame scratch for the tick-path route: reaches its
    /// steady-state capacity once, then routing allocates nothing.
    frames: Vec<Frame>,
    frames_sent: u64,
    frames_received: u64,
    frames_rejected: u64,
    /// When set, outgoing frames carry link sequence numbers 1, 2, 3, …
    /// so the peer can detect silent loss. Off by default: unsequenced
    /// frames (`link_seq` 0) are wire-compatible with legacy senders.
    link_sequencing: bool,
    /// Last sequence number stamped on an outgoing frame.
    last_seq_sent: u64,
    /// Highest sequence number seen on an incoming sequenced frame.
    last_seq_seen: u64,
    sequence_gaps: u64,
}

impl PmkIpc {
    /// Creates a transport over an empty port registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a transport over a pre-wired registry.
    pub fn with_registry(registry: PortRegistry) -> Self {
        Self {
            registry,
            ..Self::default()
        }
    }

    /// The port registry (APEX port services go through here).
    pub fn registry(&self) -> &PortRegistry {
        &self.registry
    }

    /// Mutable port-registry access for the APEX services.
    pub fn registry_mut(&mut self) -> &mut PortRegistry {
        &mut self.registry
    }

    /// Link frames transmitted.
    pub fn frames_sent(&self) -> u64 {
        self.frames_sent
    }

    /// Link frames received and delivered.
    pub fn frames_received(&self) -> u64 {
        self.frames_received
    }

    /// Link frames rejected (corruption / unknown channel).
    pub fn frames_rejected(&self) -> u64 {
        self.frames_rejected
    }

    /// Enables/disables outgoing link-frame sequencing. Incoming gap
    /// detection is always on for sequenced frames, so this only governs
    /// what this node transmits.
    pub fn set_link_sequencing(&mut self, on: bool) {
        self.link_sequencing = on;
    }

    /// Sequence gaps observed on incoming sequenced frames — each one is
    /// evidence of frames lost in transit.
    pub fn sequence_gaps(&self) -> u64 {
        self.sequence_gaps
    }

    /// Routes pending messages: local deliveries happen inside the
    /// registry; remote frames are encoded and transmitted on `link`.
    /// Called by the PMK at partition preemption points — transfers happen
    /// at partition boundaries, outside any partition's window.
    pub fn route(&mut self, link: &mut InterNodeLink, now: Ticks) {
        self.registry.route_into(now, &mut self.frames);
        for mut frame in self.frames.drain(..) {
            if self.link_sequencing {
                self.last_seq_sent += 1;
                frame.link_seq = self.last_seq_sent;
            }
            link.send(LinkEndpoint::A, now.as_u64(), frame.encode());
            self.frames_sent += 1;
        }
    }

    /// Drains deliverable frames from `link`, decoding and delivering each
    /// to its local destination ports. Corrupt or unroutable frames are
    /// counted and returned for health-monitoring reporting.
    pub fn receive(
        &mut self,
        link: &mut InterNodeLink,
        now: Ticks,
    ) -> Vec<IncomingFrameError> {
        let mut errors = Vec::new();
        while let Some(bytes) = link.receive(LinkEndpoint::A, now.as_u64()) {
            match Frame::decode(&bytes) {
                Ok(frame) => {
                    // Loss detection: a jump in the sequence stream means
                    // frames vanished in transit. The carrying frame is
                    // still good and is delivered; the gap itself goes to
                    // health monitoring. Unsequenced frames (seq 0) and
                    // stale reorders are exempt.
                    if frame.link_seq != 0 {
                        let expected = self.last_seq_seen + 1;
                        if frame.link_seq > expected {
                            self.sequence_gaps += 1;
                            errors.push(IncomingFrameError::SequenceGap {
                                expected,
                                got: frame.link_seq,
                            });
                        }
                        if frame.link_seq >= expected {
                            self.last_seq_seen = frame.link_seq;
                        }
                    }
                    match self.registry.deliver_frame(&frame, now) {
                        Ok(()) => self.frames_received += 1,
                        Err(e) => {
                            self.frames_rejected += 1;
                            errors.push(IncomingFrameError::Unroutable(e));
                        }
                    }
                }
                Err(e) => {
                    self.frames_rejected += 1;
                    errors.push(IncomingFrameError::Corrupt(e));
                }
            }
        }
        errors
    }

    /// Convenience: one full transport round against a machine — route
    /// outgoing, then receive incoming.
    pub fn service(&mut self, machine: &mut Machine) -> Vec<IncomingFrameError> {
        let now = Ticks(machine.clock.now());
        self.route(&mut machine.link, now);
        self.receive(&mut machine.link, now)
    }
}

/// A problem with an incoming link frame, reported to health monitoring
/// as a (module-level) hardware/communication fault.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum IncomingFrameError {
    /// The frame failed integrity checks.
    Corrupt(FrameError),
    /// The frame decoded but no local channel/destination accepts it.
    Unroutable(PortError),
    /// The sequence stream jumped: frames between `expected` and `got`
    /// were lost in transit. The frame carrying `got` was delivered.
    SequenceGap {
        /// The sequence number the receiver was waiting for.
        expected: u64,
        /// The sequence number that actually arrived.
        got: u64,
    },
}

impl std::fmt::Display for IncomingFrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IncomingFrameError::Corrupt(e) => write!(f, "corrupt link frame: {e}"),
            IncomingFrameError::Unroutable(e) => write!(f, "unroutable link frame: {e}"),
            IncomingFrameError::SequenceGap { expected, got } => write!(
                f,
                "link frame loss: sequence gap (expected {expected}, got {got})"
            ),
        }
    }
}

impl std::error::Error for IncomingFrameError {}

#[cfg(test)]
mod tests {
    use super::*;
    use air_model::PartitionId;
    use air_ports::{ChannelConfig, Destination, PortAddr, QueuingPortConfig};

    fn p(m: u32) -> PartitionId {
        PartitionId(m)
    }

    /// Builds sender-side IPC with a remote queuing channel (id 5).
    fn sender() -> PmkIpc {
        let mut reg = PortRegistry::new();
        reg.create_queuing_port(p(0), QueuingPortConfig::source("tx", 64, 8))
            .unwrap();
        reg.add_channel(ChannelConfig {
            id: 5,
            source: PortAddr::new(p(0), "tx"),
            destinations: vec![Destination::Remote {
                addr: PortAddr::new(p(0), "rx"),
            }],
        })
        .unwrap();
        PmkIpc::with_registry(reg)
    }

    /// Builds receiver-side IPC where channel 5 delivers to P2's "rx".
    fn receiver() -> PmkIpc {
        let mut reg = PortRegistry::new();
        reg.create_queuing_port(p(9), QueuingPortConfig::source("unused", 64, 8))
            .unwrap();
        reg.create_queuing_port(p(2), QueuingPortConfig::destination("rx", 64, 8))
            .unwrap();
        reg.add_channel(ChannelConfig {
            id: 5,
            source: PortAddr::new(p(9), "unused"),
            destinations: vec![Destination::Local(PortAddr::new(p(2), "rx"))],
        })
        .unwrap();
        PmkIpc::with_registry(reg)
    }

    #[test]
    fn end_to_end_over_the_link() {
        let mut link = InterNodeLink::new(3);
        let mut tx = sender();
        let mut rx = receiver();

        tx.registry_mut()
            .queuing_port_mut(p(0), "tx")
            .unwrap()
            .send(&b"telemetry"[..], Ticks(10))
            .unwrap();
        tx.route(&mut link, Ticks(10));
        assert_eq!(tx.frames_sent(), 1);

        // The frame is addressed A→B; the receiving node polls endpoint B.
        // For the test we model the peer by receiving at B through a
        // directional shim: re-send what B would see back to A.
        let bytes = link.receive(LinkEndpoint::B, 13).expect("latency 3");
        let mut back = InterNodeLink::new(0);
        back.send(LinkEndpoint::B, 13, bytes);
        let errors = rx.receive(&mut back, Ticks(13));
        assert!(errors.is_empty(), "{errors:?}");
        assert_eq!(rx.frames_received(), 1);
        let msg = rx
            .registry_mut()
            .queuing_port_mut(p(2), "rx")
            .unwrap()
            .receive()
            .unwrap();
        assert_eq!(&msg.payload[..], b"telemetry");
        assert_eq!(msg.written_at, Ticks(10), "source timestamp preserved");
    }

    #[test]
    fn corrupt_frames_rejected_not_delivered() {
        let mut rx = receiver();
        let mut link = InterNodeLink::new(0);
        let mut bytes = Frame::new(5, Ticks(0), &b"data"[..]).encode();
        *bytes.last_mut().unwrap() ^= 0xff;
        link.send(LinkEndpoint::B, 0, bytes);
        let errors = rx.receive(&mut link, Ticks(0));
        assert_eq!(errors.len(), 1);
        assert!(matches!(errors[0], IncomingFrameError::Corrupt(_)));
        assert_eq!(rx.frames_rejected(), 1);
        assert_eq!(
            rx.registry_mut()
                .queuing_port_mut(p(2), "rx")
                .unwrap()
                .len(),
            0
        );
    }

    #[test]
    fn sequencing_stamps_outgoing_frames() {
        let mut link = InterNodeLink::new(0);
        let mut tx = sender();
        tx.set_link_sequencing(true);
        for _ in 0..2 {
            tx.registry_mut()
                .queuing_port_mut(p(0), "tx")
                .unwrap()
                .send(&b"x"[..], Ticks(0))
                .unwrap();
            tx.route(&mut link, Ticks(0));
        }
        let first = Frame::decode(&link.receive(LinkEndpoint::B, 0).unwrap()).unwrap();
        let second = Frame::decode(&link.receive(LinkEndpoint::B, 0).unwrap()).unwrap();
        assert_eq!(first.link_seq, 1);
        assert_eq!(second.link_seq, 2);
    }

    #[test]
    fn sequence_gap_detected_and_frame_still_delivered() {
        let mut rx = receiver();
        let mut link = InterNodeLink::new(0);
        // Frames 1 and 3 arrive; 2 was lost in transit.
        for seq in [1u64, 3] {
            link.send(
                LinkEndpoint::B,
                0,
                Frame::new(5, Ticks(0), &b"data"[..])
                    .with_link_seq(seq)
                    .encode(),
            );
        }
        let errors = rx.receive(&mut link, Ticks(0));
        assert_eq!(errors.len(), 1);
        assert_eq!(
            errors[0],
            IncomingFrameError::SequenceGap {
                expected: 2,
                got: 3
            }
        );
        assert_eq!(rx.sequence_gaps(), 1);
        // Gap frames are delivered, not rejected: both made it to the port.
        assert_eq!(rx.frames_received(), 2);
        assert_eq!(rx.frames_rejected(), 0);
        assert_eq!(
            rx.registry_mut().queuing_port_mut(p(2), "rx").unwrap().len(),
            2
        );
        // The stream resynchronises: 4 follows 3 without complaint.
        link.send(
            LinkEndpoint::B,
            0,
            Frame::new(5, Ticks(0), &b"data"[..])
                .with_link_seq(4)
                .encode(),
        );
        assert!(rx.receive(&mut link, Ticks(0)).is_empty());
    }

    #[test]
    fn unsequenced_frames_exempt_from_gap_tracking() {
        let mut rx = receiver();
        let mut link = InterNodeLink::new(0);
        for _ in 0..3 {
            link.send(
                LinkEndpoint::B,
                0,
                Frame::new(5, Ticks(0), &b"data"[..]).encode(),
            );
        }
        assert!(rx.receive(&mut link, Ticks(0)).is_empty());
        assert_eq!(rx.sequence_gaps(), 0);
        assert_eq!(rx.frames_received(), 3);
    }

    #[test]
    fn unknown_channel_rejected() {
        let mut rx = receiver();
        let mut link = InterNodeLink::new(0);
        link.send(
            LinkEndpoint::B,
            0,
            Frame::new(99, Ticks(0), &b"data"[..]).encode(),
        );
        let errors = rx.receive(&mut link, Ticks(0));
        assert!(matches!(errors[0], IncomingFrameError::Unroutable(_)));
    }
}
