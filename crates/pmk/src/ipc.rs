//! PMK-side interpartition transport.
//!
//! "Applications access the interpartition communication services through
//! the APEX interface… The AIR PMK deals with these specifics, being
//! obliged to message delivery guarantees" (Sect. 2.1). The transport
//! drives the [`PortRegistry`] router at partition boundaries, carries
//! remote frames over the machine's [`RedundantLink`], validates incoming
//! frames, and reports corrupt ones to health monitoring instead of
//! delivering them.
//!
//! With the reliable transport enabled
//! ([`PmkIpc::enable_reliable_transport`]), every outbound frame goes
//! through a go-back-N [`ArqEndpoint`]: sequenced, acknowledged
//! cumulatively, retransmitted on deterministic timeouts — and each
//! timeout round feeds the redundant link's consecutive-loss counter, so
//! sustained loss fails traffic over to the standby link and surfaces as
//! [`LinkTransportEvent`]s for the trace and health monitoring.

use air_hw::link::LinkEndpoint;
use air_hw::redundant::{LinkRole, RedundantLink};
use air_hw::Machine;
use air_model::Ticks;
use air_ports::transport::{ArqConfig, ArqEndpoint, ArqEvent, DataDisposition};
use air_ports::wire::{Frame, FrameError};
use air_ports::{PortError, PortRegistry};

/// The PMK interpartition-communication component.
#[derive(Debug, Default)]
pub struct PmkIpc {
    registry: PortRegistry,
    /// Reused frame scratch for the tick-path route: reaches its
    /// steady-state capacity once, then routing allocates nothing.
    frames: Vec<Frame>,
    frames_sent: u64,
    frames_received: u64,
    frames_rejected: u64,
    /// When set, outgoing frames carry link sequence numbers 1, 2, 3, …
    /// so the peer can detect silent loss. Off by default: unsequenced
    /// frames (`link_seq` 0) are wire-compatible with legacy senders.
    link_sequencing: bool,
    /// Last sequence number stamped on an outgoing frame.
    last_seq_sent: u64,
    /// Highest sequence number seen on an incoming sequenced frame.
    last_seq_seen: u64,
    sequence_gaps: u64,
    /// The reliable-transport endpoint; `None` keeps the legacy
    /// best-effort behaviour (detection without recovery).
    arq: Option<ArqEndpoint>,
    /// Transport events pending collection by the simulation loop.
    transport_events: Vec<LinkTransportEvent>,
}

impl PmkIpc {
    /// Creates a transport over an empty port registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a transport over a pre-wired registry.
    pub fn with_registry(registry: PortRegistry) -> Self {
        Self {
            registry,
            ..Self::default()
        }
    }

    /// The port registry (APEX port services go through here).
    pub fn registry(&self) -> &PortRegistry {
        &self.registry
    }

    /// Mutable port-registry access for the APEX services.
    pub fn registry_mut(&mut self) -> &mut PortRegistry {
        &mut self.registry
    }

    /// Link frames transmitted (first transmissions; retransmissions are
    /// counted separately by [`PmkIpc::retransmissions`]).
    pub fn frames_sent(&self) -> u64 {
        self.frames_sent
    }

    /// Link frames received and delivered.
    pub fn frames_received(&self) -> u64 {
        self.frames_received
    }

    /// Link frames rejected (corruption / unknown channel).
    pub fn frames_rejected(&self) -> u64 {
        self.frames_rejected
    }

    /// Enables/disables outgoing link-frame sequencing. Incoming gap
    /// detection is always on for sequenced frames, so this only governs
    /// what this node transmits. Superseded by
    /// [`PmkIpc::enable_reliable_transport`], which sequences through the
    /// ARQ window instead.
    pub fn set_link_sequencing(&mut self, on: bool) {
        self.link_sequencing = on;
    }

    /// Switches the transport to reliable delivery: go-back-N ARQ with
    /// the given tuning. Outbound frames are sequenced and retransmitted
    /// until acknowledged; inbound frames are filtered to an exactly-once
    /// in-order stream; timeout rounds feed the redundant link's failover
    /// counter.
    pub fn enable_reliable_transport(&mut self, config: ArqConfig) {
        self.arq = Some(ArqEndpoint::new(config));
    }

    /// Whether the reliable transport is active.
    pub fn reliable_transport_enabled(&self) -> bool {
        self.arq.is_some()
    }

    /// The ARQ tuning, when the reliable transport is active.
    pub fn arq_config(&self) -> Option<&ArqConfig> {
        self.arq.as_ref().map(ArqEndpoint::config)
    }

    /// Sequence gaps observed on incoming sequenced frames — each one is
    /// evidence of frames lost in transit (legacy detection-only path).
    pub fn sequence_gaps(&self) -> u64 {
        self.sequence_gaps
    }

    /// Frames retransmitted by the reliable transport.
    pub fn retransmissions(&self) -> u64 {
        self.arq.as_ref().map_or(0, ArqEndpoint::retransmissions)
    }

    /// Inbound duplicate frames suppressed by the reliable transport.
    pub fn duplicates_suppressed(&self) -> u64 {
        self.arq.as_ref().map_or(0, ArqEndpoint::duplicates)
    }

    /// Inbound out-of-order frames discarded by the reliable transport
    /// (go-back-N redelivers them in order).
    pub fn out_of_order_discarded(&self) -> u64 {
        self.arq.as_ref().map_or(0, ArqEndpoint::out_of_order)
    }

    /// Acknowledgement frames sent by the reliable transport.
    pub fn acks_sent(&self) -> u64 {
        self.arq.as_ref().map_or(0, ArqEndpoint::acks_sent)
    }

    /// Whether every frame offered to the reliable transport has been
    /// acknowledged (vacuously true without ARQ).
    pub fn transport_drained(&self) -> bool {
        self.arq.as_ref().is_none_or(ArqEndpoint::is_drained)
    }

    /// Drains the transport events (retransmissions, failovers, recovery)
    /// recorded since the last call, in occurrence order.
    pub fn take_transport_events(&mut self) -> Vec<LinkTransportEvent> {
        std::mem::take(&mut self.transport_events)
    }

    /// Routes pending messages: local deliveries happen inside the
    /// registry; remote frames are encoded and transmitted on `link`.
    /// Called by the PMK at partition preemption points — transfers happen
    /// at partition boundaries, outside any partition's window.
    pub fn route(&mut self, link: &mut RedundantLink, now: Ticks) {
        if self.arq.is_some() && link.poll_revert(now.as_u64()) {
            self.transport_events.push(LinkTransportEvent::Failover {
                to: LinkRole::Primary,
            });
        }
        self.registry.route_into(now, &mut self.frames);
        for mut frame in self.frames.drain(..) {
            if let Some(arq) = &mut self.arq {
                arq.offer(frame);
                self.frames_sent += 1;
                continue;
            }
            if self.link_sequencing {
                self.last_seq_sent += 1;
                frame.link_seq = self.last_seq_sent;
            }
            link.send(LinkEndpoint::A, now.as_u64(), frame.encode());
            self.frames_sent += 1;
        }
        let Some(arq) = &mut self.arq else {
            return;
        };
        let batch = arq.poll_transmit(now.as_u64());
        if batch.timeout_round {
            // One timeout round = one unit of loss evidence. Failover
            // happens *before* the retransmissions leave, so the round
            // that trips the threshold already travels the standby link.
            if let Some(active) = link.record_loss(now.as_u64()) {
                arq.mark_degraded();
                self.transport_events
                    .push(LinkTransportEvent::Failover { to: active });
            }
        }
        for bytes in batch.frames {
            link.send(LinkEndpoint::A, now.as_u64(), bytes);
        }
        self.collect_arq_events();
    }

    /// Drains deliverable frames from `link`, decoding and delivering each
    /// to its local destination ports. Corrupt or unroutable frames are
    /// counted and returned for health-monitoring reporting.
    pub fn receive(
        &mut self,
        link: &mut RedundantLink,
        now: Ticks,
    ) -> Vec<IncomingFrameError> {
        let mut errors = Vec::new();
        while let Some(bytes) = link.receive(LinkEndpoint::A, now.as_u64()) {
            match Frame::decode(&bytes) {
                Ok(frame) => self.accept_frame(frame, link, now, &mut errors),
                Err(e) => {
                    // Corruption burns the frame; with ARQ the receiver
                    // never advances, so the sender's timeout redelivers.
                    self.frames_rejected += 1;
                    errors.push(IncomingFrameError::Corrupt(e));
                }
            }
        }
        if let Some(arq) = &mut self.arq {
            if let Some(ack) = arq.take_ack(now) {
                link.send(LinkEndpoint::A, now.as_u64(), ack.encode());
            }
        }
        self.collect_arq_events();
        errors
    }

    fn accept_frame(
        &mut self,
        frame: Frame,
        link: &mut RedundantLink,
        now: Ticks,
        errors: &mut Vec<IncomingFrameError>,
    ) {
        if let Some(arq) = &mut self.arq {
            if frame.is_ack() {
                if arq.on_ack(frame.link_seq) > 0 {
                    link.record_delivery();
                }
                return;
            }
            if frame.link_seq != 0 {
                match arq.on_data(&frame) {
                    DataDisposition::Deliver => {}
                    DataDisposition::Duplicate | DataDisposition::OutOfOrder => return,
                }
                self.deliver(&frame, now, errors);
                return;
            }
            // Unsequenced sender against a reliable receiver: deliver
            // best-effort (and let the lint warn about the sender).
            self.deliver(&frame, now, errors);
            return;
        }
        // Legacy path: gap detection without recovery. A jump in the
        // sequence stream means frames vanished in transit; the carrying
        // frame is still good and is delivered, the gap itself goes to
        // health monitoring. Unsequenced frames (seq 0) are exempt.
        if frame.link_seq != 0 {
            let expected = self.last_seq_seen + 1;
            if frame.link_seq > expected {
                self.sequence_gaps += 1;
                errors.push(IncomingFrameError::SequenceGap {
                    expected,
                    got: frame.link_seq,
                });
            }
            if frame.link_seq >= expected {
                self.last_seq_seen = frame.link_seq;
            }
        }
        self.deliver(&frame, now, errors);
    }

    fn deliver(&mut self, frame: &Frame, now: Ticks, errors: &mut Vec<IncomingFrameError>) {
        match self.registry.deliver_frame(frame, now) {
            Ok(()) => self.frames_received += 1,
            Err(e) => {
                self.frames_rejected += 1;
                errors.push(IncomingFrameError::Unroutable(e));
            }
        }
    }

    fn collect_arq_events(&mut self) {
        let Some(arq) = &mut self.arq else {
            return;
        };
        for event in arq.take_events() {
            self.transport_events.push(match event {
                ArqEvent::Retransmitted { seq, retries } => {
                    LinkTransportEvent::Retransmitted { seq, retries }
                }
                ArqEvent::Exhausted { seq } => LinkTransportEvent::DeliveryExhausted { seq },
                ArqEvent::Recovered => LinkTransportEvent::Recovered,
                // `ArqEvent` is non-exhaustive; unknown future events are
                // not the PMK's to interpret.
                _ => continue,
            });
        }
    }

    /// Convenience: one full transport round against a machine — route
    /// outgoing, then receive incoming.
    pub fn service(&mut self, machine: &mut Machine) -> Vec<IncomingFrameError> {
        let now = Ticks(machine.clock.now());
        self.route(&mut machine.link, now);
        self.receive(&mut machine.link, now)
    }
}

/// A reliable-transport occurrence the simulation loop turns into trace
/// events and health-monitoring reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum LinkTransportEvent {
    /// A timeout round retransmitted the in-flight window.
    Retransmitted {
        /// Sequence of the window head.
        seq: u64,
        /// Its retry count after this round.
        retries: u32,
    },
    /// The redundant link switched its active side (threshold failover,
    /// or revertive switching back to the primary).
    Failover {
        /// The newly active role.
        to: LinkRole,
    },
    /// A degraded transport saw a clean acknowledgement streak and is
    /// healthy again.
    Recovered,
    /// A frame exhausted its retry budget without acknowledgement — the
    /// link is effectively down (retries continue at the capped
    /// interval).
    DeliveryExhausted {
        /// Sequence of the starved frame.
        seq: u64,
    },
}

/// A problem with an incoming link frame, reported to health monitoring
/// as a (module-level) hardware/communication fault.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum IncomingFrameError {
    /// The frame failed integrity checks.
    Corrupt(FrameError),
    /// The frame decoded but no local channel/destination accepts it.
    Unroutable(PortError),
    /// The sequence stream jumped: frames between `expected` and `got`
    /// were lost in transit. The frame carrying `got` was delivered.
    SequenceGap {
        /// The sequence number the receiver was waiting for.
        expected: u64,
        /// The sequence number that actually arrived.
        got: u64,
    },
}

impl std::fmt::Display for IncomingFrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IncomingFrameError::Corrupt(e) => write!(f, "corrupt link frame: {e}"),
            IncomingFrameError::Unroutable(e) => write!(f, "unroutable link frame: {e}"),
            IncomingFrameError::SequenceGap { expected, got } => write!(
                f,
                "link frame loss: sequence gap (expected {expected}, got {got})"
            ),
        }
    }
}

impl std::error::Error for IncomingFrameError {}

#[cfg(test)]
mod tests {
    use super::*;
    use air_model::PartitionId;
    use air_ports::{ChannelConfig, Destination, PortAddr, QueuingPortConfig};

    fn p(m: u32) -> PartitionId {
        PartitionId(m)
    }

    /// A redundant pair behaving like the old single link (no failover).
    fn raw_link(latency: u64) -> RedundantLink {
        RedundantLink::new(latency, latency, 0, 1000)
    }

    /// Builds sender-side IPC with a remote queuing channel (id 5).
    fn sender() -> PmkIpc {
        let mut reg = PortRegistry::new();
        reg.create_queuing_port(p(0), QueuingPortConfig::source("tx", 64, 8))
            .unwrap();
        reg.add_channel(ChannelConfig {
            id: 5,
            source: PortAddr::new(p(0), "tx"),
            destinations: vec![Destination::Remote {
                addr: PortAddr::new(p(0), "rx"),
            }],
        })
        .unwrap();
        PmkIpc::with_registry(reg)
    }

    /// Builds receiver-side IPC where channel 5 delivers to P2's "rx".
    fn receiver() -> PmkIpc {
        let mut reg = PortRegistry::new();
        reg.create_queuing_port(p(9), QueuingPortConfig::source("unused", 64, 8))
            .unwrap();
        reg.create_queuing_port(p(2), QueuingPortConfig::destination("rx", 64, 8))
            .unwrap();
        reg.add_channel(ChannelConfig {
            id: 5,
            source: PortAddr::new(p(9), "unused"),
            destinations: vec![Destination::Local(PortAddr::new(p(2), "rx"))],
        })
        .unwrap();
        PmkIpc::with_registry(reg)
    }

    #[test]
    fn end_to_end_over_the_link() {
        let mut link = raw_link(3);
        let mut tx = sender();
        let mut rx = receiver();

        tx.registry_mut()
            .queuing_port_mut(p(0), "tx")
            .unwrap()
            .send(&b"telemetry"[..], Ticks(10))
            .unwrap();
        tx.route(&mut link, Ticks(10));
        assert_eq!(tx.frames_sent(), 1);

        // The frame is addressed A→B; the receiving node polls endpoint B.
        // For the test we model the peer by receiving at B through a
        // directional shim: re-send what B would see back to A.
        let bytes = link.receive(LinkEndpoint::B, 13).expect("latency 3");
        let mut back = raw_link(0);
        back.send(LinkEndpoint::B, 13, bytes);
        let errors = rx.receive(&mut back, Ticks(13));
        assert!(errors.is_empty(), "{errors:?}");
        assert_eq!(rx.frames_received(), 1);
        let msg = rx
            .registry_mut()
            .queuing_port_mut(p(2), "rx")
            .unwrap()
            .receive()
            .unwrap();
        assert_eq!(&msg.payload[..], b"telemetry");
        assert_eq!(msg.written_at, Ticks(10), "source timestamp preserved");
    }

    #[test]
    fn corrupt_frames_rejected_not_delivered() {
        let mut rx = receiver();
        let mut link = raw_link(0);
        let mut bytes = Frame::new(5, Ticks(0), &b"data"[..]).encode();
        *bytes.last_mut().unwrap() ^= 0xff;
        link.send(LinkEndpoint::B, 0, bytes);
        let errors = rx.receive(&mut link, Ticks(0));
        assert_eq!(errors.len(), 1);
        assert!(matches!(errors[0], IncomingFrameError::Corrupt(_)));
        assert_eq!(rx.frames_rejected(), 1);
        assert_eq!(
            rx.registry_mut()
                .queuing_port_mut(p(2), "rx")
                .unwrap()
                .len(),
            0
        );
    }

    #[test]
    fn sequencing_stamps_outgoing_frames() {
        let mut link = raw_link(0);
        let mut tx = sender();
        tx.set_link_sequencing(true);
        for _ in 0..2 {
            tx.registry_mut()
                .queuing_port_mut(p(0), "tx")
                .unwrap()
                .send(&b"x"[..], Ticks(0))
                .unwrap();
            tx.route(&mut link, Ticks(0));
        }
        let first = Frame::decode(&link.receive(LinkEndpoint::B, 0).unwrap()).unwrap();
        let second = Frame::decode(&link.receive(LinkEndpoint::B, 0).unwrap()).unwrap();
        assert_eq!(first.link_seq, 1);
        assert_eq!(second.link_seq, 2);
    }

    #[test]
    fn sequence_gap_detected_and_frame_still_delivered() {
        let mut rx = receiver();
        let mut link = raw_link(0);
        // Frames 1 and 3 arrive; 2 was lost in transit.
        for seq in [1u64, 3] {
            link.send(
                LinkEndpoint::B,
                0,
                Frame::new(5, Ticks(0), &b"data"[..])
                    .with_link_seq(seq)
                    .encode(),
            );
        }
        let errors = rx.receive(&mut link, Ticks(0));
        assert_eq!(errors.len(), 1);
        assert_eq!(
            errors[0],
            IncomingFrameError::SequenceGap {
                expected: 2,
                got: 3
            }
        );
        assert_eq!(rx.sequence_gaps(), 1);
        // Gap frames are delivered, not rejected: both made it to the port.
        assert_eq!(rx.frames_received(), 2);
        assert_eq!(rx.frames_rejected(), 0);
        assert_eq!(
            rx.registry_mut().queuing_port_mut(p(2), "rx").unwrap().len(),
            2
        );
        // The stream resynchronises: 4 follows 3 without complaint.
        link.send(
            LinkEndpoint::B,
            0,
            Frame::new(5, Ticks(0), &b"data"[..])
                .with_link_seq(4)
                .encode(),
        );
        assert!(rx.receive(&mut link, Ticks(0)).is_empty());
    }

    #[test]
    fn unsequenced_frames_exempt_from_gap_tracking() {
        let mut rx = receiver();
        let mut link = raw_link(0);
        for _ in 0..3 {
            link.send(
                LinkEndpoint::B,
                0,
                Frame::new(5, Ticks(0), &b"data"[..]).encode(),
            );
        }
        assert!(rx.receive(&mut link, Ticks(0)).is_empty());
        assert_eq!(rx.sequence_gaps(), 0);
        assert_eq!(rx.frames_received(), 3);
    }

    #[test]
    fn unknown_channel_rejected() {
        let mut rx = receiver();
        let mut link = raw_link(0);
        link.send(
            LinkEndpoint::B,
            0,
            Frame::new(99, Ticks(0), &b"data"[..]).encode(),
        );
        let errors = rx.receive(&mut link, Ticks(0));
        assert!(matches!(errors[0], IncomingFrameError::Unroutable(_)));
    }

    /// Shuttles every B-side frame of `from` into `to`'s A-side inbox.
    fn shuttle(from: &mut RedundantLink, to: &mut RedundantLink, now: u64) {
        while let Some(bytes) = from.receive(LinkEndpoint::B, now) {
            to.send(LinkEndpoint::B, now, bytes);
        }
    }

    #[test]
    fn arq_recovers_a_dropped_frame() {
        let mut tx = sender();
        let mut rx = receiver();
        tx.enable_reliable_transport(ArqConfig {
            timeout_ticks: 5,
            ..ArqConfig::default()
        });
        rx.enable_reliable_transport(ArqConfig::default());
        let mut tx_link = raw_link(0);
        let mut rx_link = raw_link(0);

        tx.registry_mut()
            .queuing_port_mut(p(0), "tx")
            .unwrap()
            .send(&b"telemetry"[..], Ticks(0))
            .unwrap();
        tx.route(&mut tx_link, Ticks(0));
        // The first transmission is lost in transit.
        assert!(tx_link.drop_in_flight(LinkEndpoint::B));

        for t in 1..20u64 {
            tx.route(&mut tx_link, Ticks(t));
            shuttle(&mut tx_link, &mut rx_link, t);
            rx.receive(&mut rx_link, Ticks(t));
            shuttle(&mut rx_link, &mut tx_link, t);
            tx.receive(&mut tx_link, Ticks(t));
        }
        assert_eq!(rx.frames_received(), 1, "retransmission delivered");
        assert!(tx.transport_drained(), "ack made it back");
        assert!(tx.retransmissions() >= 1);
        assert!(tx
            .take_transport_events()
            .iter()
            .any(|e| matches!(e, LinkTransportEvent::Retransmitted { seq: 1, .. })));
    }

    #[test]
    fn arq_suppresses_duplicates_from_ack_loss() {
        let mut tx = sender();
        let mut rx = receiver();
        tx.enable_reliable_transport(ArqConfig {
            timeout_ticks: 5,
            ..ArqConfig::default()
        });
        rx.enable_reliable_transport(ArqConfig::default());
        let mut tx_link = raw_link(0);
        let mut rx_link = raw_link(0);

        tx.registry_mut()
            .queuing_port_mut(p(0), "tx")
            .unwrap()
            .send(&b"once"[..], Ticks(0))
            .unwrap();
        tx.route(&mut tx_link, Ticks(0));
        shuttle(&mut tx_link, &mut rx_link, 0);
        rx.receive(&mut rx_link, Ticks(0));
        // The ACK is destroyed → the sender times out and retransmits.
        assert!(rx_link.drop_in_flight_where(LinkEndpoint::B, air_ports::wire::bytes_look_like_ack));
        for t in 1..20u64 {
            tx.route(&mut tx_link, Ticks(t));
            shuttle(&mut tx_link, &mut rx_link, t);
            rx.receive(&mut rx_link, Ticks(t));
            shuttle(&mut rx_link, &mut tx_link, t);
            tx.receive(&mut tx_link, Ticks(t));
        }
        assert_eq!(rx.frames_received(), 1, "exactly once");
        assert!(rx.duplicates_suppressed() >= 1);
        assert!(tx.transport_drained(), "re-ack releases the window");
    }

    #[test]
    fn sustained_loss_fails_over_and_reverts() {
        let mut tx = sender();
        tx.enable_reliable_transport(ArqConfig {
            timeout_ticks: 4,
            backoff_cap: 0,
            ..ArqConfig::default()
        });
        // Threshold 2 loss rounds; revert after 30 ticks on the secondary.
        let mut link = RedundantLink::new(0, 0, 2, 30);
        link.link_mut(LinkRole::Primary).begin_outage(1_000);

        tx.registry_mut()
            .queuing_port_mut(p(0), "tx")
            .unwrap()
            .send(&b"x"[..], Ticks(0))
            .unwrap();
        let mut failed_over_at = None;
        for t in 0..60u64 {
            tx.route(&mut link, Ticks(t));
            for e in tx.take_transport_events() {
                if let LinkTransportEvent::Failover { to } = e {
                    if to == LinkRole::Secondary && failed_over_at.is_none() {
                        failed_over_at = Some(t);
                    }
                    if to == LinkRole::Primary {
                        assert!(failed_over_at.is_some());
                        return; // revert observed — done
                    }
                }
            }
        }
        panic!("expected failover then revert within 60 ticks");
    }
}
