//! The AIR Partition Dispatcher featuring mode-based schedules —
//! **Algorithm 2** of the paper.
//!
//! ```text
//! 1:  if heirPartition = activePartition then
//! 2:      elapsedTicks ← 1
//! 3:  else
//! 4:      SAVECONTEXT(activePartition.context)
//! 5:      activePartition.lastTick ← ticks − 1
//! 6:      elapsedTicks ← ticks − heirPartition.lastTick
//! 7:      activePartition ← heirPartition
//! 8:      RESTORECONTEXT(heirPartition.context)
//! 9:      PENDINGSCHEDULECHANGEACTION(heirPartition)
//! 10: end if
//! ```
//!
//! The dispatcher "is executed after the Partition Scheduler. Its only
//! modification regarding mode-based schedules is the invocation of
//! pending schedule change actions" — performed "for each partition as it
//! is dispatched for the first time after the schedule switch", which the
//! paper argues "is more compliant with the fulfilment of temporal
//! separation requirements, since these will only affect its own execution
//! time window" (Sect. 4.3). The immediate-at-switch alternative is kept
//! behind [`ActionTiming`] for the ablation test.

use std::collections::HashMap;

use air_hw::{Cpu, CpuContext};
use air_model::{PartitionId, ScheduleChangeAction};

/// When pending schedule-change actions are applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ActionTiming {
    /// At each partition's first dispatch after the switch — the paper's
    /// choice: the action's cost lands in the affected partition's own
    /// window.
    #[default]
    FirstDispatch,
    /// All at once when the switch becomes effective — ARINC 653 Part 2
    /// leaves this open; this variant charges every action to whichever
    /// window follows the boundary.
    AtSwitch,
}

/// The result of one dispatcher invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DispatchOutcome {
    /// Whether a context switch occurred (heir differed from active).
    pub switched: bool,
    /// `elapsedTicks` for the dispatched partition: how many ticks passed
    /// since it last held the CPU — the count the PAL announces to the POS
    /// (Fig. 7).
    pub elapsed_ticks: u64,
    /// Schedule-change actions to apply now, in `(partition, action)`
    /// pairs: at most one under [`ActionTiming::FirstDispatch`] (the heir's),
    /// possibly several under [`ActionTiming::AtSwitch`].
    pub actions: Vec<(PartitionId, ScheduleChangeAction)>,
}

/// The AIR Partition Dispatcher.
///
/// Owns each partition's saved [`CpuContext`] and `lastTick`, performs the
/// save/restore pair through the machine's [`Cpu`], and hands out pending
/// schedule-change actions at the configured [`ActionTiming`].
#[derive(Debug)]
pub struct PartitionDispatcher {
    active: Option<PartitionId>,
    contexts: HashMap<PartitionId, CpuContext>,
    /// The context the CPU idles in when no partition is scheduled.
    idle_context: CpuContext,
    last_tick: HashMap<PartitionId, u64>,
    pending_actions: HashMap<PartitionId, ScheduleChangeAction>,
    timing: ActionTiming,
    context_switches: u64,
}

impl PartitionDispatcher {
    /// Creates a dispatcher with the paper's first-dispatch action timing.
    pub fn new() -> Self {
        Self::with_action_timing(ActionTiming::FirstDispatch)
    }

    /// Creates a dispatcher with an explicit action timing policy.
    pub fn with_action_timing(timing: ActionTiming) -> Self {
        Self {
            active: None,
            contexts: HashMap::new(),
            idle_context: CpuContext::default(),
            last_tick: HashMap::new(),
            pending_actions: HashMap::new(),
            timing,
            context_switches: 0,
        }
    }

    /// Registers `partition`'s execution context (spatial-partitioning
    /// setup provides the entry point, stack and MMU context).
    pub fn register_partition(&mut self, partition: PartitionId, context: CpuContext) {
        self.contexts.insert(partition, context);
        self.last_tick.insert(partition, 0);
    }

    /// The currently active partition (`None`: idle).
    pub fn active_partition(&self) -> Option<PartitionId> {
        self.active
    }

    /// Context switches performed so far.
    pub fn context_switches(&self) -> u64 {
        self.context_switches
    }

    /// Read access to a partition's saved context.
    pub fn context_of(&self, partition: PartitionId) -> Option<&CpuContext> {
        self.contexts.get(&partition)
    }

    /// Queues schedule-change actions for the partitions of a newly
    /// effective schedule. Called by the PMK when the Partition Scheduler
    /// reports a switch; `actions` carries each partition's
    /// `ScheduleChangeAction` under the new schedule (entries with
    /// [`ScheduleChangeAction::None`] may be included — they are dropped).
    pub fn queue_schedule_change_actions<I>(&mut self, actions: I)
    where
        I: IntoIterator<Item = (PartitionId, ScheduleChangeAction)>,
    {
        for (partition, action) in actions {
            if action != ScheduleChangeAction::None {
                self.pending_actions.insert(partition, action);
            }
        }
    }

    /// Whether an action is still pending for `partition`.
    pub fn has_pending_action(&self, partition: PartitionId) -> bool {
        self.pending_actions.contains_key(&partition)
    }

    /// Algorithm 2: dispatches `heir` at global tick `ticks`, switching
    /// CPU contexts when the heir differs from the active partition.
    ///
    /// Under [`ActionTiming::AtSwitch`], call this with
    /// `drain_all_actions = true` for the dispatch immediately following a
    /// schedule switch; the PMK composition layer does this automatically.
    ///
    /// # Panics
    ///
    /// Panics if `heir` names a partition that was never registered — a
    /// configuration-loading bug, not a runtime condition.
    pub fn dispatch(
        &mut self,
        heir: Option<PartitionId>,
        ticks: u64,
        cpu: &mut Cpu,
    ) -> DispatchOutcome {
        if heir == self.active {
            // Line 2: same partition keeps running; one tick elapsed.
            return DispatchOutcome {
                switched: false,
                elapsed_ticks: 1,
                actions: Vec::new(),
            };
        }

        // Line 4: save the outgoing context.
        match self.active {
            Some(active) => {
                let slot = self
                    .contexts
                    .get_mut(&active)
                    .expect("active partition was registered"); // lint: allow(panic) -- register_partition precedes activation; unreachable
                cpu.save_context(slot);
                // Line 5: the partition last saw the tick before this one.
                self.last_tick.insert(active, ticks - 1);
            }
            None => cpu.save_context(&mut self.idle_context),
        }

        // Line 6: elapsed ticks for the heir.
        let elapsed_ticks = match heir {
            Some(h) => {
                let last = self
                    .last_tick
                    .get(&h)
                    .copied()
                    .expect("heir partition was registered"); // lint: allow(panic) -- scheduler only elects registered partitions
                ticks - last
            }
            None => 1,
        };

        // Line 7–8: the heir becomes active; restore its context.
        self.active = heir;
        match heir {
            Some(h) => {
                let ctx = self
                    .contexts
                    .get(&h)
                    .expect("heir partition was registered"); // lint: allow(panic) -- scheduler only elects registered partitions
                cpu.restore_context(ctx);
            }
            None => cpu.restore_context(&self.idle_context.clone()),
        }
        self.context_switches += 1;

        // Line 9: pending schedule-change action(s).
        let actions = match self.timing {
            ActionTiming::FirstDispatch => heir
                .and_then(|h| self.pending_actions.remove(&h).map(|a| (h, a)))
                .into_iter()
                .collect(),
            ActionTiming::AtSwitch => {
                let mut all: Vec<_> = self.pending_actions.drain().collect();
                all.sort_by_key(|(p, _)| *p);
                all
            }
        };

        DispatchOutcome {
            switched: true,
            elapsed_ticks,
            actions,
        }
    }
}

impl Default for PartitionDispatcher {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use air_hw::mmu::MmuContextId;

    fn p(m: u32) -> PartitionId {
        PartitionId(m)
    }

    fn dispatcher_with(n: u32) -> (PartitionDispatcher, Cpu) {
        let mut d = PartitionDispatcher::new();
        for m in 0..n {
            d.register_partition(
                p(m),
                CpuContext::new(0x1000 * u64::from(m + 1), 0x8000, MmuContextId(m)),
            );
        }
        (d, Cpu::new())
    }

    #[test]
    fn same_heir_is_one_elapsed_tick_no_switch() {
        let (mut d, mut cpu) = dispatcher_with(1);
        d.dispatch(Some(p(0)), 1, &mut cpu);
        let out = d.dispatch(Some(p(0)), 2, &mut cpu);
        assert!(!out.switched);
        assert_eq!(out.elapsed_ticks, 1);
        assert_eq!(d.context_switches(), 1);
    }

    #[test]
    fn elapsed_ticks_span_the_inactive_interval() {
        // Algorithm 2 line 6: elapsed = ticks − heir.lastTick. P0 runs
        // [0, 200), P1 runs [200, 400), P0 resumes at 400:
        // P0.lastTick = 199, so elapsed for P0 at 400 is 201 — it
        // announces every tick it missed plus the current one (Fig. 7:
        // "#Elapsed Clock Ticks times").
        let (mut d, mut cpu) = dispatcher_with(2);
        d.dispatch(Some(p(0)), 0, &mut cpu);
        let out = d.dispatch(Some(p(1)), 200, &mut cpu);
        assert!(out.switched);
        assert_eq!(out.elapsed_ticks, 200, "P1 was never run: 200 - 0");
        let out = d.dispatch(Some(p(0)), 400, &mut cpu);
        assert_eq!(out.elapsed_ticks, 400 - 199);
    }

    #[test]
    fn contexts_are_saved_and_restored() {
        let (mut d, mut cpu) = dispatcher_with(2);
        d.dispatch(Some(p(0)), 0, &mut cpu);
        assert_eq!(cpu.active_context().pc, 0x1000);
        cpu.retire_work(4); // pc += 16
        d.dispatch(Some(p(1)), 10, &mut cpu);
        assert_eq!(cpu.active_context().pc, 0x2000);
        assert_eq!(cpu.current_mmu_context(), MmuContextId(1));
        d.dispatch(Some(p(0)), 20, &mut cpu);
        assert_eq!(cpu.active_context().pc, 0x1010, "P0 resumed where saved");
        assert_eq!(cpu.current_mmu_context(), MmuContextId(0));
    }

    #[test]
    fn idle_gaps_are_dispatchable() {
        let (mut d, mut cpu) = dispatcher_with(1);
        d.dispatch(Some(p(0)), 0, &mut cpu);
        let out = d.dispatch(None, 10, &mut cpu);
        assert!(out.switched);
        assert_eq!(d.active_partition(), None);
        let out = d.dispatch(None, 11, &mut cpu);
        assert!(!out.switched, "idle continues");
        let out = d.dispatch(Some(p(0)), 20, &mut cpu);
        assert_eq!(out.elapsed_ticks, 20 - 9);
    }

    #[test]
    fn first_dispatch_action_timing() {
        let (mut d, mut cpu) = dispatcher_with(3);
        d.dispatch(Some(p(0)), 0, &mut cpu);
        d.queue_schedule_change_actions([
            (p(0), ScheduleChangeAction::WarmRestart),
            (p(1), ScheduleChangeAction::ColdRestart),
            (p(2), ScheduleChangeAction::None),
        ]);
        // P1's first dispatch after the switch carries only P1's action.
        let out = d.dispatch(Some(p(1)), 100, &mut cpu);
        assert_eq!(out.actions, vec![(p(1), ScheduleChangeAction::ColdRestart)]);
        assert!(d.has_pending_action(p(0)));
        assert!(!d.has_pending_action(p(2)), "None actions are dropped");
        // P1's second dispatch carries nothing.
        d.dispatch(Some(p(2)), 200, &mut cpu);
        let out = d.dispatch(Some(p(1)), 300, &mut cpu);
        assert!(out.actions.is_empty());
        // P0's first dispatch carries its warm restart.
        let out = d.dispatch(Some(p(0)), 400, &mut cpu);
        assert_eq!(out.actions, vec![(p(0), ScheduleChangeAction::WarmRestart)]);
    }

    #[test]
    fn at_switch_action_timing_drains_everything() {
        let mut d = PartitionDispatcher::with_action_timing(ActionTiming::AtSwitch);
        let mut cpu = Cpu::new();
        for m in 0..2 {
            d.register_partition(p(m), CpuContext::default());
        }
        d.dispatch(Some(p(0)), 0, &mut cpu);
        d.queue_schedule_change_actions([
            (p(0), ScheduleChangeAction::WarmRestart),
            (p(1), ScheduleChangeAction::Stop),
        ]);
        let out = d.dispatch(Some(p(1)), 100, &mut cpu);
        assert_eq!(
            out.actions,
            vec![
                (p(0), ScheduleChangeAction::WarmRestart),
                (p(1), ScheduleChangeAction::Stop),
            ]
        );
        assert!(!d.has_pending_action(p(0)));
    }

    #[test]
    #[should_panic(expected = "registered")]
    fn unregistered_heir_is_a_wiring_bug() {
        let (mut d, mut cpu) = dispatcher_with(1);
        d.dispatch(Some(p(9)), 0, &mut cpu);
    }
}
