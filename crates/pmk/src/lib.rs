//! # air-pmk — the AIR Partition Management Kernel
//!
//! "The AIR Partition Management Kernel component, transversal to the whole
//! system, could be seen as a hypervisor, playing nevertheless a major role
//! in achieving dependability, by ensuring robust TSP" (Sect. 2.1). The
//! crate implements the PMK's four responsibilities:
//!
//! * **Temporal partitioning** — the two-level scheduling scheme's first
//!   level: the [`scheduler::PartitionScheduler`] runs at every clock tick
//!   and implements **Algorithm 1** verbatim, including mode-based schedule
//!   switches taking effect only at major-time-frame boundaries (Sect. 4);
//!   a [`scheduler::NaiveWindowScanScheduler`] preserves the
//!   window-scanning alternative for the B1 ablation bench.
//! * **Partition dispatching** — the [`dispatcher::PartitionDispatcher`]
//!   implements **Algorithm 2**: context save/restore through the
//!   [`air_hw::Cpu`], elapsed-tick computation for the PAL announcement,
//!   and pending schedule-change actions applied at a partition's first
//!   dispatch after a switch (Sect. 4.3).
//! * **Spatial partitioning** — [`spatial`]: the processor-independent
//!   descriptor abstraction of Fig. 3, mapped at integration time onto the
//!   LEON3-style MMU of [`air_hw::mmu`], one context per partition.
//! * **Interpartition transport** — [`ipc`]: drives the
//!   [`air_ports::PortRegistry`] router, carrying remote frames over the
//!   [`air_hw::link::InterNodeLink`] with integrity checking.

#![warn(missing_docs)]

pub mod dispatcher;
pub mod ipc;
pub mod scheduler;
pub mod spatial;

pub use dispatcher::{ActionTiming, DispatchOutcome, PartitionDispatcher};
pub use ipc::{LinkTransportEvent, PmkIpc};
pub use scheduler::{PartitionScheduler, ScheduleStatus, SchedulerError};
pub use spatial::{ExecLevel, MemoryDescriptor, MemorySection, SpatialManager};
