//! Spatial partitioning: the processor-independent descriptor abstraction
//! of Fig. 3, mapped onto the MMU.
//!
//! "Spatial partitioning requirements are described in runtime through a
//! high-level processor-independent abstraction layer. A set of
//! descriptors is provided per partition, primarily corresponding to the
//! several levels of execution (e.g. application, operating system and AIR
//! PMK) and to its different memory sections (e.g. code, data and stack)"
//! (Sect. 2.1). The [`SpatialManager`] plays the role of the integration
//! loader: it allocates physical memory, creates one MMU context per
//! partition, and installs page mappings whose SPARC ACC codes realise
//! each descriptor's intended protection.

use std::collections::HashMap;
use std::fmt;

use air_hw::mmu::{
    AccessKind, MapError, Mmu, MmuContextId, MmuFault, PageFlags, Privilege, PAGE_SIZE,
};
use air_model::PartitionId;

/// Level of execution a memory region belongs to (Fig. 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecLevel {
    /// Application code/data: user-level accesses.
    Application,
    /// The partition operating system kernel: supervisor-only.
    PosKernel,
}

/// Memory section kind (Fig. 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemorySection {
    /// Executable code.
    Code,
    /// Read/write data.
    Data,
    /// Stack space.
    Stack,
}

/// A high-level, processor-independent spatial-partitioning descriptor:
/// one per (execution level, section) region of a partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryDescriptor {
    /// The level of execution the region serves.
    pub level: ExecLevel,
    /// The section kind.
    pub section: MemorySection,
    /// Partition-virtual base address (4 KiB-aligned).
    pub virtual_base: u64,
    /// Region size in bytes (4 KiB-aligned).
    pub size: u64,
}

impl MemoryDescriptor {
    /// Creates a descriptor.
    pub const fn new(
        level: ExecLevel,
        section: MemorySection,
        virtual_base: u64,
        size: u64,
    ) -> Self {
        Self {
            level,
            section,
            virtual_base,
            size,
        }
    }

    /// The SPARC V8 `ACC` protection code realising this descriptor:
    ///
    /// * application code — ACC 2 (user RX);
    /// * application data/stack — ACC 1 (user RW);
    /// * POS kernel code — ACC 6 (supervisor RX, no user access);
    /// * POS kernel data/stack — ACC 7 (supervisor RWX, no user access).
    pub fn acc_code(&self) -> u8 {
        match (self.level, self.section) {
            (ExecLevel::Application, MemorySection::Code) => 2,
            (ExecLevel::Application, _) => 1,
            (ExecLevel::PosKernel, MemorySection::Code) => 6,
            (ExecLevel::PosKernel, _) => 7,
        }
    }
}

impl fmt::Display for MemoryDescriptor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:?}/{:?} [{:#x}, {:#x})",
            self.level,
            self.section,
            self.virtual_base,
            self.virtual_base + self.size
        )
    }
}

/// Errors from loading spatial configurations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SpatialError {
    /// Installed physical memory is exhausted.
    OutOfPhysicalMemory {
        /// Bytes requested.
        requested: u64,
        /// Bytes remaining.
        remaining: u64,
    },
    /// The underlying MMU rejected a mapping.
    Map(MapError),
    /// The partition was already configured.
    AlreadyConfigured(PartitionId),
    /// The partition has no spatial configuration.
    NotConfigured(PartitionId),
}

impl fmt::Display for SpatialError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpatialError::OutOfPhysicalMemory {
                requested,
                remaining,
            } => write!(
                f,
                "out of physical memory: {requested} bytes requested, {remaining} remaining"
            ),
            SpatialError::Map(e) => write!(f, "mapping rejected: {e}"),
            SpatialError::AlreadyConfigured(p) => {
                write!(f, "partition {p} is already spatially configured")
            }
            SpatialError::NotConfigured(p) => {
                write!(f, "partition {p} has no spatial configuration")
            }
        }
    }
}

impl std::error::Error for SpatialError {}

impl From<MapError> for SpatialError {
    fn from(value: MapError) -> Self {
        SpatialError::Map(value)
    }
}

/// A loaded partition's spatial state.
#[derive(Debug, Clone)]
struct PartitionSpace {
    context: MmuContextId,
    /// `(descriptor, physical_base)` pairs, for reporting.
    regions: Vec<(MemoryDescriptor, u64)>,
}

/// The spatial-partitioning manager: owns the MMU and the physical-memory
/// allocation map.
///
/// Physical regions are allocated by a bump allocator, so **no two
/// partitions ever share a physical frame** — cross-partition access is
/// impossible by construction on the physical side, and impossible on the
/// virtual side because each partition translates through its own MMU
/// context.
///
/// # Examples
///
/// ```
/// use air_pmk::spatial::{ExecLevel, MemoryDescriptor, MemorySection, SpatialManager};
/// use air_hw::mmu::{AccessKind, Privilege};
/// use air_model::PartitionId;
///
/// let mut spatial = SpatialManager::new(1 << 20); // 1 MiB of RAM
/// let p0 = PartitionId(0);
/// spatial.configure_partition(p0, &[
///     MemoryDescriptor::new(ExecLevel::Application, MemorySection::Code, 0x40000000, 0x2000),
///     MemoryDescriptor::new(ExecLevel::Application, MemorySection::Data, 0x40100000, 0x1000),
/// ])?;
/// let pa = spatial.translate(p0, 0x40000010, AccessKind::Execute, Privilege::User)?;
/// assert!(pa < (1 << 20));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct SpatialManager {
    mmu: Mmu,
    partitions: HashMap<PartitionId, PartitionSpace>,
    physical_size: u64,
    next_free: u64,
}

impl SpatialManager {
    /// Creates a manager over `physical_size` bytes of RAM.
    pub fn new(physical_size: u64) -> Self {
        Self {
            mmu: Mmu::new(),
            partitions: HashMap::new(),
            physical_size,
            // Frame 0 is reserved for the PMK itself.
            next_free: PAGE_SIZE,
        }
    }

    /// Bytes of physical memory not yet allocated.
    pub fn remaining_physical(&self) -> u64 {
        self.physical_size - self.next_free
    }

    /// Loads `descriptors` for `partition`: creates its MMU context,
    /// allocates physical backing, installs the mappings.
    ///
    /// # Errors
    ///
    /// [`SpatialError`] on double configuration, physical exhaustion, or
    /// invalid descriptors (misaligned/overlapping virtual ranges).
    pub fn configure_partition(
        &mut self,
        partition: PartitionId,
        descriptors: &[MemoryDescriptor],
    ) -> Result<MmuContextId, SpatialError> {
        if self.partitions.contains_key(&partition) {
            return Err(SpatialError::AlreadyConfigured(partition));
        }
        let context = self.mmu.create_context();
        let mut regions = Vec::with_capacity(descriptors.len());
        for desc in descriptors {
            let size = desc.size.max(PAGE_SIZE).next_multiple_of(PAGE_SIZE);
            if self.next_free + size > self.physical_size {
                return Err(SpatialError::OutOfPhysicalMemory {
                    requested: size,
                    remaining: self.remaining_physical(),
                });
            }
            let pa = self.next_free;
            self.mmu.map(
                context,
                desc.virtual_base,
                pa,
                size,
                PageFlags::from_sparc_acc(desc.acc_code()),
            )?;
            self.next_free += size;
            regions.push((*desc, pa));
        }
        self.partitions
            .insert(partition, PartitionSpace { context, regions });
        Ok(context)
    }

    /// The MMU context of a configured partition.
    ///
    /// # Errors
    ///
    /// [`SpatialError::NotConfigured`] when the partition was never loaded.
    pub fn context_of(&self, partition: PartitionId) -> Result<MmuContextId, SpatialError> {
        self.partitions
            .get(&partition)
            .map(|s| s.context)
            .ok_or(SpatialError::NotConfigured(partition))
    }

    /// Translates an access by `partition` — the runtime spatial check.
    /// A fault is the "memory protection violation" event AIR health
    /// monitoring handles (Sect. 2.4).
    ///
    /// # Errors
    ///
    /// [`MmuFault`] exactly as the hardware would raise it.
    pub fn translate(
        &mut self,
        partition: PartitionId,
        va: u64,
        kind: AccessKind,
        privilege: Privilege,
    ) -> Result<u64, MmuFault> {
        let context = match self.partitions.get(&partition) {
            Some(s) => s.context,
            // An unconfigured partition has no valid context: fault.
            None => MmuContextId(u32::MAX),
        };
        self.mmu.translate(context, va, kind, privilege)
    }

    /// The `(descriptor, physical_base)` regions loaded for `partition`.
    pub fn regions_of(&self, partition: PartitionId) -> Option<&[(MemoryDescriptor, u64)]> {
        self.partitions.get(&partition).map(|s| s.regions.as_slice())
    }

    /// Makes `partition`'s MMU context the active one — the PMK calls this
    /// on every partition switch. The MMU flushes its TLB iff the context
    /// actually changes, so no translation cached for the outgoing
    /// partition can ever be served to the incoming one.
    ///
    /// # Errors
    ///
    /// [`SpatialError::NotConfigured`] when the partition was never loaded
    /// (such a partition has no context to activate).
    pub fn activate_partition(&mut self, partition: PartitionId) -> Result<(), SpatialError> {
        let context = self.context_of(partition)?;
        self.mmu.activate_context(context);
        Ok(())
    }

    /// Fault injection: revokes the mapping of the single page containing
    /// `va` in `partition`'s context, as if the page table had been
    /// corrupted. The next access through [`translate`](Self::translate)
    /// faults exactly as real hardware would. The descriptor bookkeeping
    /// is untouched, so [`reload_partition`](Self::reload_partition)
    /// restores the mapping.
    ///
    /// # Errors
    ///
    /// [`SpatialError::NotConfigured`] for an unknown partition;
    /// [`SpatialError::Map`] if the MMU rejects the unmap.
    pub fn revoke_page(&mut self, partition: PartitionId, va: u64) -> Result<(), SpatialError> {
        let context = self
            .partitions
            .get(&partition)
            .map(|s| s.context)
            .ok_or(SpatialError::NotConfigured(partition))?;
        let page = va & !(PAGE_SIZE - 1);
        self.mmu.unmap(context, page, PAGE_SIZE)?;
        Ok(())
    }

    /// Reinstalls every configured mapping of `partition` from its
    /// descriptors — the spatial half of a partition restart: the
    /// integration loader reloads the partition image, undoing any
    /// revoked/corrupted page mappings. Physical frame assignments are
    /// preserved.
    ///
    /// # Errors
    ///
    /// [`SpatialError::NotConfigured`] for an unknown partition;
    /// [`SpatialError::Map`] if the MMU rejects a mapping.
    pub fn reload_partition(&mut self, partition: PartitionId) -> Result<(), SpatialError> {
        let space = self
            .partitions
            .get(&partition)
            .cloned()
            .ok_or(SpatialError::NotConfigured(partition))?;
        for (desc, pa) in &space.regions {
            let size = desc.size.max(PAGE_SIZE).next_multiple_of(PAGE_SIZE);
            // Unmap tolerates holes, so partially revoked regions reload
            // cleanly; map is atomic over the then-empty range.
            self.mmu.unmap(space.context, desc.virtual_base, size)?;
            self.mmu.map(
                space.context,
                desc.virtual_base,
                *pa,
                size,
                PageFlags::from_sparc_acc(desc.acc_code()),
            )?;
        }
        Ok(())
    }

    /// Translation/fault statistics from the underlying MMU.
    pub fn mmu_stats(&self) -> (u64, u64) {
        (self.mmu.translations(), self.mmu.faults())
    }

    /// TLB statistics `(hits, misses, flushes)` from the underlying MMU.
    pub fn tlb_stats(&self) -> (u64, u64, u64) {
        (
            self.mmu.tlb_hits(),
            self.mmu.tlb_misses(),
            self.mmu.tlb_flushes(),
        )
    }
}

/// A conventional descriptor set for an application partition: code, data
/// and stack at the canonical AIR virtual layout.
pub fn standard_application_layout(code: u64, data: u64, stack: u64) -> Vec<MemoryDescriptor> {
    vec![
        MemoryDescriptor::new(ExecLevel::PosKernel, MemorySection::Code, 0x1000_0000, 0x8000),
        MemoryDescriptor::new(ExecLevel::PosKernel, MemorySection::Data, 0x1010_0000, 0x4000),
        MemoryDescriptor::new(ExecLevel::Application, MemorySection::Code, 0x4000_0000, code),
        MemoryDescriptor::new(ExecLevel::Application, MemorySection::Data, 0x5000_0000, data),
        MemoryDescriptor::new(ExecLevel::Application, MemorySection::Stack, 0x6000_0000, stack),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(m: u32) -> PartitionId {
        PartitionId(m)
    }

    fn two_partitions() -> SpatialManager {
        let mut s = SpatialManager::new(4 << 20);
        for m in 0..2 {
            s.configure_partition(p(m), &standard_application_layout(0x4000, 0x4000, 0x2000))
                .unwrap();
        }
        s
    }

    #[test]
    fn partitions_get_disjoint_physical_memory() {
        let s = two_partitions();
        let mut ranges: Vec<(u64, u64)> = Vec::new();
        for m in 0..2 {
            for &(desc, pa) in s.regions_of(p(m)).unwrap() {
                ranges.push((pa, pa + desc.size.max(PAGE_SIZE)));
            }
        }
        ranges.sort();
        for w in ranges.windows(2) {
            assert!(w[0].1 <= w[1].0, "physical ranges overlap: {w:?}");
        }
    }

    #[test]
    fn cross_partition_virtual_access_faults() {
        // Both partitions use the same virtual layout; each translates to
        // its own physical frames, and neither can see the other's.
        let mut s = two_partitions();
        let a = s
            .translate(p(0), 0x4000_0000, AccessKind::Execute, Privilege::User)
            .unwrap();
        let b = s
            .translate(p(1), 0x4000_0000, AccessKind::Execute, Privilege::User)
            .unwrap();
        assert_ne!(a, b, "same VA, different physical frames");
        // An address only partition 0 maps… is mapped for partition 1 at
        // its own frames too (same layout) — so instead probe an address
        // neither maps, and a kernel address from user level.
        assert!(matches!(
            s.translate(p(0), 0x7000_0000, AccessKind::Read, Privilege::User),
            Err(MmuFault::Unmapped { .. })
        ));
        assert!(matches!(
            s.translate(p(0), 0x1000_0000, AccessKind::Read, Privilege::User),
            Err(MmuFault::Protection { .. })
        ));
    }

    #[test]
    fn section_permissions_follow_descriptors() {
        let mut s = two_partitions();
        // Application code: user may execute, not write.
        assert!(s
            .translate(p(0), 0x4000_0000, AccessKind::Execute, Privilege::User)
            .is_ok());
        assert!(matches!(
            s.translate(p(0), 0x4000_0000, AccessKind::Write, Privilege::User),
            Err(MmuFault::Protection { .. })
        ));
        // Application data: user may write, not execute.
        assert!(s
            .translate(p(0), 0x5000_0000, AccessKind::Write, Privilege::User)
            .is_ok());
        assert!(matches!(
            s.translate(p(0), 0x5000_0000, AccessKind::Execute, Privilege::User),
            Err(MmuFault::Protection { .. })
        ));
        // POS kernel code: supervisor-only execute.
        assert!(s
            .translate(p(0), 0x1000_0000, AccessKind::Execute, Privilege::Supervisor)
            .is_ok());
    }

    #[test]
    fn unconfigured_partition_faults() {
        let mut s = two_partitions();
        assert!(matches!(
            s.translate(p(7), 0x4000_0000, AccessKind::Read, Privilege::User),
            Err(MmuFault::InvalidContext { .. })
        ));
        assert!(matches!(
            s.context_of(p(7)),
            Err(SpatialError::NotConfigured(_))
        ));
    }

    #[test]
    fn double_configuration_rejected() {
        let mut s = two_partitions();
        let err = s
            .configure_partition(p(0), &standard_application_layout(0x1000, 0x1000, 0x1000))
            .unwrap_err();
        assert_eq!(err, SpatialError::AlreadyConfigured(p(0)));
    }

    #[test]
    fn physical_exhaustion_reported() {
        let mut s = SpatialManager::new(64 * 1024);
        let err = s
            .configure_partition(
                p(0),
                &[MemoryDescriptor::new(
                    ExecLevel::Application,
                    MemorySection::Data,
                    0x4000_0000,
                    1 << 20,
                )],
            )
            .unwrap_err();
        assert!(matches!(err, SpatialError::OutOfPhysicalMemory { .. }));
    }

    #[test]
    fn revoked_page_faults_until_reload() {
        let mut s = two_partitions();
        let va = 0x5000_0000u64; // application data base
        assert!(s.translate(p(0), va + 0x10, AccessKind::Read, Privilege::User).is_ok());
        s.revoke_page(p(0), va + 0x10).unwrap();
        assert!(matches!(
            s.translate(p(0), va + 0x10, AccessKind::Read, Privilege::User),
            Err(MmuFault::Unmapped { .. })
        ));
        // Other pages of the same region are untouched.
        assert!(s
            .translate(p(0), va + PAGE_SIZE, AccessKind::Read, Privilege::User)
            .is_ok());
        // Reload restores the mapping with the original physical frame.
        let before = s.regions_of(p(0)).unwrap().to_vec();
        s.reload_partition(p(0)).unwrap();
        assert_eq!(s.regions_of(p(0)).unwrap(), &before[..]);
        assert!(s.translate(p(0), va + 0x10, AccessKind::Read, Privilege::User).is_ok());
    }

    #[test]
    fn revoke_and_reload_require_configuration() {
        let mut s = two_partitions();
        assert!(matches!(
            s.revoke_page(p(7), 0x5000_0000),
            Err(SpatialError::NotConfigured(_))
        ));
        assert!(matches!(
            s.reload_partition(p(7)),
            Err(SpatialError::NotConfigured(_))
        ));
    }

    #[test]
    fn acc_codes() {
        use ExecLevel::*;
        use MemorySection::*;
        assert_eq!(MemoryDescriptor::new(Application, Code, 0, 0).acc_code(), 2);
        assert_eq!(MemoryDescriptor::new(Application, Data, 0, 0).acc_code(), 1);
        assert_eq!(MemoryDescriptor::new(Application, Stack, 0, 0).acc_code(), 1);
        assert_eq!(MemoryDescriptor::new(PosKernel, Code, 0, 0).acc_code(), 6);
        assert_eq!(MemoryDescriptor::new(PosKernel, Data, 0, 0).acc_code(), 7);
    }

    #[test]
    fn frame_zero_reserved_for_pmk() {
        let mut s = SpatialManager::new(1 << 20);
        s.configure_partition(
            p(0),
            &[MemoryDescriptor::new(
                ExecLevel::Application,
                MemorySection::Data,
                0x4000_0000,
                PAGE_SIZE,
            )],
        )
        .unwrap();
        let (_, pa) = s.regions_of(p(0)).unwrap()[0];
        assert!(pa >= PAGE_SIZE, "first frame belongs to the PMK");
    }
}
