//! The AIR Partition Scheduler featuring mode-based schedules —
//! **Algorithm 1** of the paper.
//!
//! ```text
//! 1:  ticks ← ticks + 1
//! 2:  if schedules[cur].table[it].tick = (ticks − lastSwitch) mod schedules[cur].mtf then
//! 3:      if cur ≠ next ∧ (ticks − lastSwitch) mod schedules[cur].mtf = 0 then
//! 4:          cur ← next
//! 5:          lastSwitch ← ticks
//! 6:          it ← 0
//! 7:      end if
//! 8:      heirPartition ← schedules[cur].table[it].partition
//! 9:      it ← (it + 1) mod schedules[cur].numberPartitionPreemptionPoints
//! 10: end if
//! ```
//!
//! "Since the AIR Partition Scheduler code is invoked at every system clock
//! tick, its code needs to be as efficient as possible… in the best and
//! most frequent case, only two computations are performed" (Sect. 4.3):
//! incrementing the tick count and the line-2 comparison. This module keeps
//! that property: off preemption points, [`PartitionScheduler::tick`] does
//! one subtraction, one modulo and one comparison against a precompiled
//! table entry.

use std::fmt;

use air_model::schedule::PreemptionPoint;
use air_model::{PartitionId, Schedule, ScheduleSet, Ticks};

/// Errors from schedule-switch requests (`SET_MODULE_SCHEDULE` backend).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum SchedulerError {
    /// The requested schedule id does not exist in the schedule set.
    UnknownSchedule(air_model::ScheduleId),
}

impl fmt::Display for SchedulerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedulerError::UnknownSchedule(id) => {
                write!(f, "unknown schedule {id}")
            }
        }
    }
}

impl std::error::Error for SchedulerError {}

/// The schedule status reported by `GET_MODULE_SCHEDULE_STATUS`
/// (Sect. 4.2): "the time of the last schedule switch (0 if none ever
/// occurred); the identifier of the current schedule; the identifier of
/// the next schedule, which will be the same as the current schedule if no
/// schedule change is pending".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduleStatus {
    /// Instant of the last effective switch; `Ticks::ZERO` if none ever
    /// occurred.
    pub last_switch: Ticks,
    /// The schedule currently in force.
    pub current: air_model::ScheduleId,
    /// The schedule that takes effect at the next MTF boundary.
    pub next: air_model::ScheduleId,
}

/// One compiled schedule: the preemption-point table Algorithm 1 iterates.
#[derive(Debug, Clone)]
struct CompiledSchedule {
    id: air_model::ScheduleId,
    mtf: Ticks,
    /// Preemption points sorted by MTF-relative tick; always contains a
    /// point at tick 0 so the MTF boundary is a table entry (required for
    /// line 3's switch check to be reachable).
    table: Vec<PreemptionPoint>,
}

impl CompiledSchedule {
    fn compile(schedule: &Schedule) -> Self {
        let mut table = schedule.preemption_points();
        if table.first().map(|p| p.tick) != Some(Ticks::ZERO) {
            // Insert an explicit MTF-boundary entry; the heir is whatever
            // the model says is active at instant 0 (None = idle gap).
            let heir = schedule.partition_active_at(Ticks::ZERO);
            table.insert(
                0,
                PreemptionPoint {
                    tick: Ticks::ZERO,
                    heir,
                },
            );
        }
        Self {
            id: schedule.id(),
            mtf: schedule.mtf(),
            table,
        }
    }
}

/// The outcome of a clock tick on which a partition preemption point was
/// reached.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PreemptionEvent {
    /// The partition now holding the processing resources (`None`: idle
    /// gap until the next point).
    pub heir: Option<PartitionId>,
    /// Whether this tick made a pending schedule switch effective
    /// (always at an MTF boundary).
    pub switched_to: Option<air_model::ScheduleId>,
}

/// The AIR Partition Scheduler with mode-based schedules.
///
/// # Examples
///
/// ```
/// use air_pmk::PartitionScheduler;
/// use air_model::prototype;
///
/// let sys = prototype::fig8_system();
/// let mut sched = PartitionScheduler::new(&sys.schedules);
/// // P1 is dispatched at system start (the tick-0 point of χ1)…
/// assert_eq!(sched.initial_heir(), Some(prototype::P1));
/// // …and the best/most-frequent case does no scheduling work at all:
/// assert!(sched.tick(1).is_none());
/// // The next preemption point of χ1 is <P2, 200, 100>:
/// for t in 2..200 { assert!(sched.tick(t).is_none()); }
/// let event = sched.tick(200).expect("preemption point");
/// assert_eq!(event.heir, Some(prototype::P2));
/// ```
#[derive(Debug, Clone)]
pub struct PartitionScheduler {
    schedules: Vec<CompiledSchedule>,
    current: usize,
    next: usize,
    last_schedule_switch: u64,
    table_iterator: usize,
    /// Count of preemption points served (diagnostics).
    points_served: u64,
}

impl PartitionScheduler {
    /// Compiles `set` and starts under its initial schedule.
    ///
    /// The tick-0 preemption point is considered served at initialisation
    /// (the PMK dispatches [`initial_heir`](Self::initial_heir) before the
    /// first clock tick), so the table iterator starts at the next entry —
    /// matching the paper's prototype, where partition `P1` is already
    /// executing when the clock starts.
    pub fn new(set: &ScheduleSet) -> Self {
        let schedules: Vec<CompiledSchedule> =
            set.iter().map(CompiledSchedule::compile).collect();
        let table_iterator = 1 % schedules[0].table.len();
        Self {
            schedules,
            current: 0,
            next: 0,
            last_schedule_switch: 0,
            table_iterator,
            points_served: 0,
        }
    }

    /// The heir of the tick-0 preemption point of the initial schedule:
    /// the partition the PMK dispatches at system start.
    pub fn initial_heir(&self) -> Option<PartitionId> {
        self.schedules[0].table[0].heir
    }

    /// Requests a switch to `schedule` effective at the end of the current
    /// MTF (the `SET_MODULE_SCHEDULE` semantics of Sect. 4.2: "the
    /// immediate result is only that of storing the identifier").
    ///
    /// # Errors
    ///
    /// [`SchedulerError::UnknownSchedule`] when the id is not configured.
    pub fn request_schedule(
        &mut self,
        schedule: air_model::ScheduleId,
    ) -> Result<(), SchedulerError> {
        let idx = self
            .schedules
            .iter()
            .position(|s| s.id == schedule)
            .ok_or(SchedulerError::UnknownSchedule(schedule))?;
        self.next = idx;
        Ok(())
    }

    /// The `GET_MODULE_SCHEDULE_STATUS` data (Sect. 4.2).
    pub fn status(&self) -> ScheduleStatus {
        ScheduleStatus {
            last_switch: Ticks(self.last_schedule_switch),
            current: self.schedules[self.current].id,
            next: self.schedules[self.next].id,
        }
    }

    /// The MTF of the schedule currently in force.
    pub fn current_mtf(&self) -> Ticks {
        self.schedules[self.current].mtf
    }

    /// Preemption points served since construction.
    pub fn points_served(&self) -> u64 {
        self.points_served
    }

    /// Algorithm 1, lines 2–10, for the (already incremented) global tick
    /// count `ticks` — line 1 lives with the system clock
    /// ([`air_hw::SystemClock::advance`]).
    ///
    /// Returns `Some` exactly when a partition preemption point is reached;
    /// the caller (the tick ISR) then invokes the Partition Dispatcher.
    /// The scheduler expects to see every tick exactly once, in order,
    /// starting from tick 1.
    #[inline]
    pub fn tick(&mut self, ticks: u64) -> Option<PreemptionEvent> {
        let cur = &self.schedules[self.current];
        let phase = (ticks - self.last_schedule_switch) % cur.mtf.as_u64();
        // Line 2: the single comparison of the best/most-frequent case.
        if cur.table[self.table_iterator].tick.as_u64() != phase {
            return None;
        }
        // Line 3: a pending switch becomes effective at the MTF boundary.
        let mut switched_to = None;
        if self.current != self.next && phase == 0 {
            self.current = self.next; // line 4
            self.last_schedule_switch = ticks; // line 5
            self.table_iterator = 0; // line 6
            switched_to = Some(self.schedules[self.current].id);
        }
        let cur = &self.schedules[self.current];
        // Line 8: the heir partition.
        let heir = cur.table[self.table_iterator].heir;
        // Line 9: advance the table iterator.
        self.table_iterator = (self.table_iterator + 1) % cur.table.len();
        self.points_served += 1;
        Some(PreemptionEvent { heir, switched_to })
    }
}

/// The window-scanning alternative scheduler: at every tick it searches
/// the window list for the window containing the current MTF phase.
///
/// Functionally equivalent to [`PartitionScheduler`] for static (single-
/// schedule) systems; kept purely as the baseline for the B1 bench, which
/// quantifies why Algorithm 1's table-iterator form is the right one for
/// code "invoked at every system clock tick" (Sect. 4.3).
#[derive(Debug, Clone)]
pub struct NaiveWindowScanScheduler {
    schedule: Schedule,
    last_heir: Option<PartitionId>,
}

impl NaiveWindowScanScheduler {
    /// Creates the scanner over one static schedule.
    pub fn new(schedule: Schedule) -> Self {
        Self {
            schedule,
            last_heir: None,
        }
    }

    /// Scans the window list for the current phase; returns `Some` when the
    /// heir changed relative to the previous tick.
    pub fn tick(&mut self, ticks: u64) -> Option<Option<PartitionId>> {
        let phase = Ticks(ticks % self.schedule.mtf().as_u64());
        let heir = self.schedule.partition_active_at(phase);
        if heir != self.last_heir {
            self.last_heir = heir;
            Some(heir)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use air_model::prototype::{self, CHI_1, CHI_2, P1, P2, P3, P4};

    /// Drives the scheduler across `n` ticks starting at 1, collecting
    /// (tick, heir) pairs for every preemption point.
    fn run(
        sched: &mut PartitionScheduler,
        from: u64,
        to: u64,
    ) -> Vec<(u64, Option<PartitionId>, Option<air_model::ScheduleId>)> {
        let mut events = Vec::new();
        for t in from..=to {
            if let Some(ev) = sched.tick(t) {
                events.push((t, ev.heir, ev.switched_to));
            }
        }
        events
    }

    #[test]
    fn fig8_chi1_sequence_over_one_mtf() {
        let sys = prototype::fig8_system();
        let mut sched = PartitionScheduler::new(&sys.schedules);
        // Tick counts are absolute; the MTF phase at tick t is t mod 1300.
        // Points of χ1: 0→P1, 200→P2, 300→P3, 400→P4, 1000→P2, 1100→P3,
        // 1200→P4.
        let events = run(&mut sched, 1, 1300);
        assert_eq!(
            events,
            vec![
                (200, Some(P2), None),
                (300, Some(P3), None),
                (400, Some(P4), None),
                (1000, Some(P2), None),
                (1100, Some(P3), None),
                (1200, Some(P4), None),
                (1300, Some(P1), None), // phase 0 of the second MTF
            ]
        );
    }

    #[test]
    fn tick_zero_equivalent_served_every_mtf() {
        let sys = prototype::fig8_system();
        let mut sched = PartitionScheduler::new(&sys.schedules);
        let events = run(&mut sched, 1, 3 * 1300);
        let boundary_heirs: Vec<_> = events
            .iter()
            .filter(|(t, _, _)| t % 1300 == 0)
            .map(|&(_, h, _)| h)
            .collect();
        assert_eq!(boundary_heirs, vec![Some(P1), Some(P1), Some(P1)]);
        assert_eq!(sched.points_served(), events.len() as u64);
    }

    #[test]
    fn switch_takes_effect_only_at_mtf_boundary() {
        let sys = prototype::fig8_system();
        let mut sched = PartitionScheduler::new(&sys.schedules);
        // Run into the middle of the first MTF, then request χ2.
        run(&mut sched, 1, 500);
        sched.request_schedule(CHI_2).unwrap();
        let st = sched.status();
        assert_eq!(st.current, CHI_1);
        assert_eq!(st.next, CHI_2);
        assert_eq!(st.last_switch, Ticks(0));

        // The remainder of the MTF still follows χ1 (1000→P2).
        let events = run(&mut sched, 501, 1299);
        assert_eq!(events[0], (1000, Some(P2), None));

        // At tick 1300 (phase 0) the switch becomes effective and χ2's
        // first window (P1) is dispatched.
        let ev = sched.tick(1300).expect("boundary is a preemption point");
        assert_eq!(ev.switched_to, Some(CHI_2));
        assert_eq!(ev.heir, Some(P1));
        let st = sched.status();
        assert_eq!(st.current, CHI_2);
        assert_eq!(st.next, CHI_2);
        assert_eq!(st.last_switch, Ticks(1300));

        // And the following points follow χ2: 200→P4, 300→P3, 400→P2…
        let events = run(&mut sched, 1301, 1300 + 1300);
        assert_eq!(
            events,
            vec![
                (1500, Some(P4), None),
                (1600, Some(P3), None),
                (1700, Some(P2), None),
                (2300, Some(P4), None),
                (2400, Some(P3), None),
                (2500, Some(P2), None),
                (2600, Some(P1), None),
            ]
        );
    }

    #[test]
    fn successive_requests_last_one_wins() {
        // Sect. 6: "successive requests to change schedule are correctly
        // handled at the end of the current MTF".
        let sys = prototype::fig8_system();
        let mut sched = PartitionScheduler::new(&sys.schedules);
        run(&mut sched, 1, 100);
        sched.request_schedule(CHI_2).unwrap();
        sched.request_schedule(CHI_1).unwrap(); // cancels: next == current
        let ev = {
            run(&mut sched, 101, 1299);
            sched.tick(1300).unwrap()
        };
        assert_eq!(ev.switched_to, None, "request back to χ1 cancels");
        assert_eq!(sched.status().current, CHI_1);

        sched.request_schedule(CHI_2).unwrap();
        run(&mut sched, 1301, 2599);
        let ev = sched.tick(2600).unwrap();
        assert_eq!(ev.switched_to, Some(CHI_2));
    }

    #[test]
    fn unknown_schedule_rejected() {
        let sys = prototype::fig8_system();
        let mut sched = PartitionScheduler::new(&sys.schedules);
        let ghost = air_model::ScheduleId(9);
        assert_eq!(
            sched.request_schedule(ghost),
            Err(SchedulerError::UnknownSchedule(ghost))
        );
    }

    #[test]
    fn switch_preserves_phase_origin() {
        // After a switch at tick 1300, phase is measured from the switch:
        // χ2's 200-point fires at absolute tick 1500, not 1400-something.
        let sys = prototype::fig8_system();
        let mut sched = PartitionScheduler::new(&sys.schedules);
        sched.request_schedule(CHI_2).unwrap();
        run(&mut sched, 1, 1300);
        assert_eq!(sched.status().last_switch, Ticks(1300));
        let events = run(&mut sched, 1301, 1599);
        assert_eq!(events, vec![(1500, Some(P4), None)]);
    }

    #[test]
    fn naive_scanner_agrees_with_algorithm1_on_heirs() {
        // Conformance between the table-iterator scheduler and the naive
        // window scan on the static χ1 system.
        let chi1 = prototype::fig8_chi1();
        let set = air_model::ScheduleSet::new(vec![chi1.clone()]);
        let mut fast = PartitionScheduler::new(&set);
        let mut naive = NaiveWindowScanScheduler::new(chi1);
        let mut fast_heir = fast.initial_heir();
        for t in 1..=5 * 1300u64 {
            if let Some(ev) = fast.tick(t) {
                fast_heir = ev.heir;
            }
            if let Some(h) = naive.tick(t) {
                assert_eq!(h, fast_heir, "divergence at tick {t}");
            }
            // Every tick the heirs agree, whether or not a point fired.
            let phase = Ticks(t % 1300);
            let expected = prototype::fig8_chi1().partition_active_at(phase);
            assert_eq!(fast_heir, expected, "model divergence at tick {t}");
        }
    }

    #[test]
    fn schedule_with_idle_gap_compiles_boundary_point() {
        use air_model::schedule::{PartitionRequirement, TimeWindow};
        // One window [10, 20) in an MTF of 100: no window at 0 and none
        // ending at the MTF — the compiler must still synthesise a
        // boundary point so switches stay reachable.
        let s = Schedule::new(
            air_model::ScheduleId(0),
            "gap",
            Ticks(100),
            vec![PartitionRequirement::new(P1, Ticks(100), Ticks(10))],
            vec![TimeWindow::new(P1, Ticks(10), Ticks(10))],
        );
        let set = air_model::ScheduleSet::new(vec![s]);
        let mut sched = PartitionScheduler::new(&set);
        let events = run(&mut sched, 1, 200);
        assert_eq!(
            events,
            vec![
                (10, Some(P1), None),
                (20, None, None),
                (100, None, None), // synthesised boundary point, idle
                (110, Some(P1), None),
                (120, None, None),
                (200, None, None),
            ]
        );
    }
}
