//! The per-partition PAL instance: deadline bookkeeping plus the surrogate
//! clock-tick announcement (Fig. 6 and Fig. 7 of the paper).

use air_model::ids::ProcessId;
use air_model::{PartitionId, Ticks};

use crate::announce::check_deadlines;
use crate::deadline::{BTreeRegistry, DeadlineRegistry, LinkedListRegistry};
use crate::wheel::TimingWheelRegistry;

/// Which deadline-registry structure a PAL instance uses (Sect. 5.3's
/// design choice; the paper picks the linked list, this implementation
/// defaults to the timing wheel, which keeps the list's O(1) ISR-side
/// bounds and gains O(1) insertion).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RegistryKind {
    /// Hierarchical timing wheel: O(1) everywhere (amortized for pops).
    #[default]
    TimingWheel,
    /// Sorted linked list: O(1) ISR-side, O(n) insert (the paper's choice,
    /// kept as the baseline).
    LinkedList,
    /// Self-balancing tree: O(log n) everywhere (the benched alternative).
    BTree,
}

/// Counters exposed by a PAL instance for diagnostics and experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PalStats {
    /// Surrogate announcements performed (one per dispatch of the owning
    /// partition).
    pub announcements: u64,
    /// Total elapsed ticks announced to the POS.
    pub ticks_announced: u64,
    /// Deadline violations detected and reported to health monitoring.
    pub violations_detected: u64,
    /// Deadline register/update operations (START, DELAYED_START,
    /// PERIODIC_WAIT, REPLENISH…).
    pub registrations: u64,
    /// Deadline unregister operations (STOP paths).
    pub unregistrations: u64,
}

/// One partition's AIR POS Adaptation Layer.
///
/// The PAL "keeps the appropriate data structures containing \[deadline\]
/// information" and "provides private interfaces for these APEX services
/// to register/update and unregister deadlines" (Sect. 5.2); on each
/// dispatch of the partition, the PMK calls
/// [`announce_clock_ticks`](Pal::announce_clock_ticks) with the ticks that
/// elapsed since the partition last ran.
///
/// # Examples
///
/// ```
/// use air_pal::Pal;
/// use air_model::{ids::ProcessId, PartitionId, Ticks};
///
/// let mut pal = Pal::new(PartitionId(0));
/// pal.register_deadline(ProcessId(0), Ticks(50));
///
/// let mut announced = 0;
/// let mut missed = Vec::new();
/// pal.announce_clock_ticks(
///     60,                         // elapsed ticks to announce
///     Ticks(60),                  // current time
///     |elapsed| announced = elapsed,
///     |pid, d| missed.push((pid, d)),
/// );
/// assert_eq!(announced, 60);
/// assert_eq!(missed, vec![(ProcessId(0), Ticks(50))]);
/// ```
pub struct Pal {
    partition: PartitionId,
    registry: Box<dyn DeadlineRegistry + Send>,
    stats: PalStats,
}

impl std::fmt::Debug for Pal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pal")
            .field("partition", &self.partition)
            .field("armed_deadlines", &self.registry.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl Pal {
    /// Creates a PAL for `partition` with the default timing-wheel
    /// registry.
    pub fn new(partition: PartitionId) -> Self {
        Self::with_registry_kind(partition, RegistryKind::default())
    }

    /// Creates a PAL selecting the registry structure explicitly.
    pub fn with_registry_kind(partition: PartitionId, kind: RegistryKind) -> Self {
        let registry: Box<dyn DeadlineRegistry + Send> = match kind {
            RegistryKind::TimingWheel => Box::new(TimingWheelRegistry::new()),
            RegistryKind::LinkedList => Box::new(LinkedListRegistry::new()),
            RegistryKind::BTree => Box::new(BTreeRegistry::new()),
        };
        Self {
            partition,
            registry,
            stats: PalStats::default(),
        }
    }

    /// The partition this PAL belongs to.
    pub fn partition(&self) -> PartitionId {
        self.partition
    }

    /// Current statistics.
    pub fn stats(&self) -> PalStats {
        self.stats
    }

    /// Number of currently armed deadlines.
    pub fn armed_deadlines(&self) -> usize {
        self.registry.len()
    }

    /// The deadline currently armed for `process`, if any.
    pub fn deadline_of(&self, process: ProcessId) -> Option<Ticks> {
        self.registry.deadline_of(process)
    }

    /// The earliest armed deadline (the ISR-side O(1) query).
    pub fn earliest_deadline(&self) -> Option<(Ticks, ProcessId)> {
        self.registry.peek_earliest()
    }

    /// Registers or updates (`REPLENISH`, Fig. 6) the absolute deadline of
    /// `process` — the PAL-provided private interface of Sect. 5.2.
    pub fn register_deadline(&mut self, process: ProcessId, deadline: Ticks) {
        self.stats.registrations += 1;
        self.registry.register(process, deadline);
    }

    /// Unregisters the deadline of `process` (STOP / partition shutdown
    /// paths); returns the deadline it held.
    pub fn unregister_deadline(&mut self, process: ProcessId) -> Option<Ticks> {
        self.stats.unregistrations += 1;
        self.registry.unregister(process)
    }

    /// Removes every armed deadline (partition restart).
    pub fn clear_deadlines(&mut self) {
        while self.registry.pop_earliest().is_some() {}
    }

    /// The surrogate clock tick announcement routine (Fig. 7b /
    /// Algorithm 3): announces `elapsed_ticks` to the native POS routine
    /// (`announce_to_pos`), then verifies deadlines against `now`,
    /// reporting each violation through `report_violation`
    /// (`HM_DEADLINEVIOLATED`). Returns the number of violations.
    pub fn announce_clock_ticks<P, V>(
        &mut self,
        elapsed_ticks: u64,
        now: Ticks,
        announce_to_pos: P,
        mut report_violation: V,
    ) -> usize
    where
        P: FnOnce(u64),
        V: FnMut(ProcessId, Ticks),
    {
        // Algorithm 3 line 1: *POS_CLOCKTICKANNOUNCE(elapsedTicks).
        announce_to_pos(elapsed_ticks);
        self.stats.announcements += 1;
        self.stats.ticks_announced += elapsed_ticks;

        // Lines 2–8: the deadline-verification loop.
        let violations = check_deadlines(self.registry.as_mut(), now, |pid, deadline| {
            report_violation(pid, deadline);
        });
        self.stats.violations_detected += violations as u64;
        violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(q: u32) -> ProcessId {
        ProcessId(q)
    }

    #[test]
    fn announce_reports_and_counts() {
        let mut pal = Pal::new(PartitionId(1));
        pal.register_deadline(pid(0), Ticks(10));
        pal.register_deadline(pid(1), Ticks(20));
        pal.register_deadline(pid(2), Ticks(1000));

        let mut pos_calls = Vec::new();
        let mut misses = Vec::new();
        let n = pal.announce_clock_ticks(
            30,
            Ticks(30),
            |e| pos_calls.push(e),
            |p, d| misses.push((p, d)),
        );
        assert_eq!(n, 2);
        assert_eq!(pos_calls, vec![30]);
        assert_eq!(misses, vec![(pid(0), Ticks(10)), (pid(1), Ticks(20))]);

        let stats = pal.stats();
        assert_eq!(stats.announcements, 1);
        assert_eq!(stats.ticks_announced, 30);
        assert_eq!(stats.violations_detected, 2);
        assert_eq!(stats.registrations, 3);
        assert_eq!(pal.armed_deadlines(), 1);
    }

    #[test]
    fn pos_is_announced_even_without_deadlines() {
        // Fig. 7: the announcement wraps the POS routine; deadline checking
        // is an addition, not a replacement.
        let mut pal = Pal::new(PartitionId(0));
        let mut announced = 0;
        pal.announce_clock_ticks(5, Ticks(5), |e| announced = e, |_, _| {});
        assert_eq!(announced, 5);
        assert_eq!(pal.stats().announcements, 1);
    }

    #[test]
    fn btree_variant_behaves_identically() {
        let mut pal = Pal::with_registry_kind(PartitionId(0), RegistryKind::BTree);
        pal.register_deadline(pid(0), Ticks(10));
        pal.register_deadline(pid(0), Ticks(99)); // replenish
        assert_eq!(pal.armed_deadlines(), 1);
        assert_eq!(pal.deadline_of(pid(0)), Some(Ticks(99)));
        let mut misses = 0;
        pal.announce_clock_ticks(100, Ticks(100), |_| {}, |_, _| misses += 1);
        assert_eq!(misses, 1);
    }

    #[test]
    fn unregister_and_clear() {
        let mut pal = Pal::new(PartitionId(0));
        pal.register_deadline(pid(0), Ticks(10));
        pal.register_deadline(pid(1), Ticks(20));
        assert_eq!(pal.unregister_deadline(pid(0)), Some(Ticks(10)));
        assert_eq!(pal.unregister_deadline(pid(0)), None);
        pal.clear_deadlines();
        assert_eq!(pal.armed_deadlines(), 0);
        assert_eq!(pal.earliest_deadline(), None);
        assert_eq!(pal.stats().unregistrations, 2);
    }
}
