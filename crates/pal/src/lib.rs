//! # air-pal — AIR POS Adaptation Layer
//!
//! "The AIR PAL plays an important role in the AIR architecture, in the
//! sense it wraps each partition's operating system, hiding its
//! particularities from the AIR architecture components" (Sect. 2.2). Its
//! starring role in this paper is **process deadline violation monitoring**
//! (Sect. 5):
//!
//! * the PAL keeps, per partition, the process-deadline information
//!   "ordered by deadline", with O(1) retrieval of the earliest — the
//!   [`deadline::DeadlineRegistry`] trait with the paper's sorted
//!   **linked-list** implementation ([`deadline::LinkedListRegistry`]),
//!   the **self-balancing tree** alternative the paper argues against for
//!   ISR-side work ([`deadline::BTreeRegistry`], kept for the B2 ablation
//!   bench), and a **hierarchical timing wheel**
//!   ([`wheel::TimingWheelRegistry`], the default) that keeps the list's
//!   O(1) ISR-side bounds while making insertion O(1) too;
//! * APEX primitives register/update/unregister deadlines through the
//!   private interfaces the PAL provides ([`Pal::register_deadline`],
//!   [`Pal::unregister_deadline`]) — Sect. 5.2 and Fig. 6;
//! * the **surrogate clock tick announcement** routine (Fig. 7,
//!   Algorithm 3) announces the elapsed ticks to the POS and then verifies
//!   the earliest deadline(s), reporting violations to health monitoring
//!   ([`Pal::announce_clock_ticks`]).

#![warn(missing_docs)]

pub mod announce;
pub mod deadline;
pub mod pal;
pub mod wheel;

pub use announce::check_deadlines;
pub use deadline::{BTreeRegistry, DeadlineRegistry, LinkedListRegistry};
pub use pal::{Pal, PalStats, RegistryKind};
pub use wheel::TimingWheelRegistry;
