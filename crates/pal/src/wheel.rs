//! Hierarchical timing-wheel deadline registry.
//!
//! The paper's Sect. 5.3 analysis picks a sorted linked list because the
//! ISR-side operations (earliest-peek, earliest-pop, pointer-removal) must
//! be O(1) and process counts are small. The timing wheel keeps those O(1)
//! bounds **and** removes the list's O(n) insertion: `register` computes a
//! (level, slot) pair from the deadline's 6-bit digits and links the entry
//! into that slot — constant work, no walk.
//!
//! # Structure
//!
//! Four wheel levels of 64 slots each, covering one *revolution* of
//! [`WHEEL_SPAN`] = 64⁴ ticks past the wheel's `base`. An armed deadline
//! `d ≥ base` lives at the level of the highest 6-bit digit in which `d`
//! differs from `base` (a 64-ary radix layout); its slot is `d`'s digit at
//! that level. Deadlines at or beyond `base + WHEEL_SPAN`'s digit range go
//! to an *overflow* bucket; deadlines registered already in the past
//! (`d < base`) go to an *overdue* bucket so non-monotone registration
//! stays correct.
//!
//! `base` only ever advances, and only to the minimum armed deadline, so
//! the radix invariant is maintained without touching unrelated slots:
//! when the minimum is popped, the lowest occupied slot of the lowest
//! occupied level *cascades* — its entries are re-placed against the new
//! `base`, falling at least one level. Every entry cascades at most once
//! per level, so the amortized cost per operation is O(1) with a constant
//! bound of [`LEVELS`] relocations.
//!
//! The minimum itself is cached as an arena index, making
//! [`peek_earliest`](crate::DeadlineRegistry::peek_earliest) a true O(1)
//! `&self` read — the property the clock ISR depends on.

use std::collections::HashMap;

use air_model::ids::ProcessId;
use air_model::Ticks;

use crate::deadline::DeadlineRegistry;

/// Slots per wheel level (one 6-bit digit).
pub const SLOTS: usize = 64;
/// Wheel levels; digits above them overflow.
pub const LEVELS: usize = 4;
/// Bits per digit.
const DIGIT_BITS: u32 = 6;
/// Ticks covered by one full revolution of the top level: 64⁴.
pub const WHEEL_SPAN: u64 = 1 << (DIGIT_BITS * LEVELS as u32);

/// Arena index used as the list terminator.
const NIL: usize = usize::MAX;

/// Where a node currently lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Bucket {
    /// Wheel proper: `(level, slot)`.
    Slot(u8, u8),
    /// Deadline was below `base` when placed.
    Overdue,
    /// Deadline's digits reach past the top level.
    Overflow,
}

#[derive(Debug, Clone, Copy)]
struct WheelNode {
    deadline: Ticks,
    process: ProcessId,
    bucket: Bucket,
    prev: usize,
    next: usize,
}

/// A doubly-linked FIFO list threaded through the arena.
#[derive(Debug, Clone, Copy)]
struct Ends {
    head: usize,
    tail: usize,
}

impl Ends {
    const EMPTY: Ends = Ends {
        head: NIL,
        tail: NIL,
    };
}

/// Hierarchical timing-wheel implementation of [`DeadlineRegistry`].
///
/// Complexities: `register`, `unregister`, `peek_earliest` O(1);
/// `pop_earliest` amortized O(1) (each entry cascades at most
/// [`LEVELS`] times over its lifetime). See the module docs for the
/// layout and invariants.
///
/// # Examples
///
/// ```
/// use air_pal::{DeadlineRegistry, TimingWheelRegistry};
/// use air_model::{ids::ProcessId, Ticks};
///
/// let mut reg = TimingWheelRegistry::new();
/// reg.register(ProcessId(0), Ticks(500));
/// reg.register(ProcessId(1), Ticks(200));
/// assert_eq!(reg.peek_earliest(), Some((Ticks(200), ProcessId(1))));
/// reg.register(ProcessId(1), Ticks(900)); // replenish: relocates in O(1)
/// assert_eq!(reg.pop_earliest(), Some((Ticks(500), ProcessId(0))));
/// ```
#[derive(Debug, Clone)]
pub struct TimingWheelRegistry {
    arena: Vec<WheelNode>,
    free: Vec<usize>,
    /// Per-slot FIFO lists, `slots[level][slot]`.
    slots: [[Ends; SLOTS]; LEVELS],
    /// Occupancy bitmap per level — bit `s` set iff `slots[level][s]`
    /// is non-empty, so the lowest occupied slot is one `trailing_zeros`.
    occupancy: [u64; LEVELS],
    overdue: Ends,
    overflow: Ends,
    /// Reference instant the digit layout is relative to. Monotone
    /// non-decreasing; never exceeds the minimum armed wheel deadline.
    base: u64,
    /// Arena index of the minimum armed entry, kept current by every
    /// mutation — the O(1) `&self` peek.
    min: usize,
    index: HashMap<ProcessId, usize>,
    /// Slot relocations performed by cascades (diagnostics / benches).
    cascades: u64,
}

impl Default for TimingWheelRegistry {
    /// Equivalent to [`TimingWheelRegistry::new`]: a derived `Default`
    /// would zero the `NIL` sentinels and corrupt the slot lists.
    fn default() -> Self {
        Self::new()
    }
}

/// Level and slot of `deadline` relative to `base`, or `None` for
/// overflow. Requires `deadline >= base`.
fn place_of(base: u64, deadline: u64) -> Option<(usize, usize)> {
    debug_assert!(deadline >= base);
    let diff = base ^ deadline;
    if diff == 0 {
        // Equal to base: digit 0 of the deadline, by convention.
        return Some((0, (deadline & 63) as usize));
    }
    let level = ((63 - diff.leading_zeros()) / DIGIT_BITS) as usize;
    if level < LEVELS {
        Some((level, ((deadline >> (DIGIT_BITS * level as u32)) & 63) as usize))
    } else {
        None
    }
}

impl TimingWheelRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self {
            arena: Vec::new(),
            free: Vec::new(),
            slots: [[Ends::EMPTY; SLOTS]; LEVELS],
            occupancy: [0; LEVELS],
            overdue: Ends::EMPTY,
            overflow: Ends::EMPTY,
            base: 0,
            min: NIL,
            index: HashMap::new(),
            cascades: 0,
        }
    }

    /// The wheel's current reference instant (diagnostics / testing).
    pub fn base(&self) -> Ticks {
        Ticks(self.base)
    }

    /// Total slot relocations performed by cascades so far.
    pub fn cascades(&self) -> u64 {
        self.cascades
    }

    fn ends_mut(&mut self, bucket: Bucket) -> &mut Ends {
        match bucket {
            Bucket::Slot(l, s) => &mut self.slots[l as usize][s as usize],
            Bucket::Overdue => &mut self.overdue,
            Bucket::Overflow => &mut self.overflow,
        }
    }

    /// Appends `idx` to the FIFO list of `bucket` (ties pop in
    /// registration order, like the sorted list).
    fn link(&mut self, idx: usize, bucket: Bucket) {
        self.arena[idx].bucket = bucket;
        self.arena[idx].next = NIL;
        let tail = self.ends_mut(bucket).tail;
        self.arena[idx].prev = tail;
        if tail == NIL {
            self.ends_mut(bucket).head = idx;
        } else {
            self.arena[tail].next = idx;
        }
        self.ends_mut(bucket).tail = idx;
        if let Bucket::Slot(l, s) = bucket {
            self.occupancy[l as usize] |= 1u64 << s;
        }
    }

    /// Unlinks `idx` from its bucket's list (does not free it).
    fn unlink(&mut self, idx: usize) {
        let WheelNode {
            bucket, prev, next, ..
        } = self.arena[idx];
        if prev == NIL {
            self.ends_mut(bucket).head = next;
        } else {
            self.arena[prev].next = next;
        }
        if next == NIL {
            self.ends_mut(bucket).tail = prev;
        } else {
            self.arena[next].prev = prev;
        }
        if let Bucket::Slot(l, s) = bucket {
            if self.slots[l as usize][s as usize].head == NIL {
                self.occupancy[l as usize] &= !(1u64 << s);
            }
        }
    }

    /// Links `idx` into the bucket its deadline demands under the current
    /// `base`.
    fn place(&mut self, idx: usize) {
        let d = self.arena[idx].deadline.as_u64();
        let bucket = if d < self.base {
            Bucket::Overdue
        } else {
            match place_of(self.base, d) {
                Some((l, s)) => Bucket::Slot(l as u8, s as u8),
                None => Bucket::Overflow,
            }
        };
        self.link(idx, bucket);
    }

    /// Detaches every node of `bucket`'s list, returning the head of the
    /// (still prev/next-threaded) chain.
    fn take_list(&mut self, bucket: Bucket) -> usize {
        let head = self.ends_mut(bucket).head;
        *self.ends_mut(bucket) = Ends::EMPTY;
        if let Bucket::Slot(l, s) = bucket {
            self.occupancy[l as usize] &= !(1u64 << s);
        }
        head
    }

    /// Minimum deadline along the chain starting at `head` (first
    /// occurrence wins ties).
    fn chain_min(&self, head: usize) -> u64 {
        let mut best = u64::MAX;
        let mut cur = head;
        while cur != NIL {
            let d = self.arena[cur].deadline.as_u64();
            if d < best {
                best = d;
            }
            cur = self.arena[cur].next;
        }
        best
    }

    /// Re-places every node of the chain at `head`, preserving order.
    fn replace_chain(&mut self, head: usize) {
        let mut cur = head;
        while cur != NIL {
            let next = self.arena[cur].next;
            self.place(cur);
            self.cascades += 1;
            cur = next;
        }
    }

    /// Recomputes the cached minimum after it was removed, cascading
    /// higher-level slots down as `base` advances.
    fn refresh_min(&mut self) {
        // Overdue entries sit below `base`, hence below every wheel entry.
        if self.overdue.head != NIL {
            let mut best = self.overdue.head;
            let mut cur = self.arena[best].next;
            while cur != NIL {
                if self.arena[cur].deadline < self.arena[best].deadline {
                    best = cur;
                }
                cur = self.arena[cur].next;
            }
            self.min = best;
            return;
        }
        loop {
            let Some(level) = (0..LEVELS).find(|&l| self.occupancy[l] != 0) else {
                // Wheel empty: pull the overflow bucket in, if any.
                if self.overflow.head == NIL {
                    self.min = NIL;
                    return;
                }
                self.base = self.chain_min(self.overflow.head);
                let chain = self.take_list(Bucket::Overflow);
                self.replace_chain(chain);
                continue; // the minimum is now at level 0
            };
            let slot = self.occupancy[level].trailing_zeros() as usize;
            if level == 0 {
                // All entries of a level-0 slot share one exact deadline;
                // the FIFO head is the earliest-registered of them.
                let head = self.slots[0][slot].head;
                self.base = self.arena[head].deadline.as_u64();
                self.min = head;
                return;
            }
            // Cascade: advance `base` to this slot's minimum and re-place
            // its entries — each falls at least one level, because they all
            // share the digit the new base was taken from.
            let bucket = Bucket::Slot(level as u8, slot as u8);
            self.base = self.chain_min(self.slots[level][slot].head);
            let chain = self.take_list(bucket);
            self.replace_chain(chain);
        }
    }

    /// Removes `idx` entirely (list, index, arena) and refreshes the
    /// cached minimum if `idx` was it.
    fn remove(&mut self, idx: usize) -> (Ticks, ProcessId) {
        let WheelNode {
            deadline, process, ..
        } = self.arena[idx];
        self.unlink(idx);
        self.index.remove(&process);
        self.free.push(idx);
        if self.min == idx {
            self.refresh_min();
        }
        (deadline, process)
    }
}

impl DeadlineRegistry for TimingWheelRegistry {
    fn register(&mut self, process: ProcessId, deadline: Ticks) {
        if let Some(&idx) = self.index.get(&process) {
            // Replenish: tear the old entry down and insert fresh.
            self.remove(idx);
        }
        let node = WheelNode {
            deadline,
            process,
            bucket: Bucket::Overdue, // placeholder; `place` assigns it
            prev: NIL,
            next: NIL,
        };
        let idx = if let Some(idx) = self.free.pop() {
            self.arena[idx] = node;
            idx
        } else {
            self.arena.push(node);
            self.arena.len() - 1
        };
        self.place(idx);
        self.index.insert(process, idx);
        // Strictly-less keeps ties FIFO: the first registration stays
        // the minimum.
        if self.min == NIL || deadline < self.arena[self.min].deadline {
            self.min = idx;
        }
    }

    fn unregister(&mut self, process: ProcessId) -> Option<Ticks> {
        let idx = *self.index.get(&process)?;
        Some(self.remove(idx).0)
    }

    fn peek_earliest(&self) -> Option<(Ticks, ProcessId)> {
        if self.min == NIL {
            return None;
        }
        let n = &self.arena[self.min];
        Some((n.deadline, n.process))
    }

    fn pop_earliest(&mut self) -> Option<(Ticks, ProcessId)> {
        if self.min == NIL {
            return None;
        }
        Some(self.remove(self.min))
    }

    fn deadline_of(&self, process: ProcessId) -> Option<Ticks> {
        self.index.get(&process).map(|&idx| self.arena[idx].deadline)
    }

    fn len(&self) -> usize {
        self.index.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(q: u32) -> ProcessId {
        ProcessId(q)
    }

    /// Drains the registry, returning `(deadline, process)` in pop order.
    fn drain(reg: &mut TimingWheelRegistry) -> Vec<(u64, u32)> {
        let mut out = Vec::new();
        while let Some((d, p)) = reg.pop_earliest() {
            out.push((d.as_u64(), p.as_u32()));
        }
        out
    }

    #[test]
    fn pops_in_deadline_order_across_levels() {
        let mut reg = TimingWheelRegistry::new();
        // One entry per level, plus overflow, registered shuffled.
        let deadlines = [
            (0u32, 3u64),                // level 0
            (1, 100),                    // level 1
            (2, 5_000),                  // level 2
            (3, 300_000),                // level 3
            (4, WHEEL_SPAN + 7),         // overflow
            (5, 40),                     // level 1
            (6, WHEEL_SPAN * 3 + 1),     // deep overflow
        ];
        for &(q, d) in deadlines.iter().rev() {
            reg.register(pid(q), Ticks(d));
        }
        let sorted: Vec<(u64, u32)> = {
            let mut v: Vec<_> = deadlines.iter().map(|&(q, d)| (d, q)).collect();
            v.sort_unstable();
            v
        };
        assert_eq!(drain(&mut reg), sorted);
        assert!(reg.is_empty());
    }

    #[test]
    fn deadline_exactly_at_wheel_rollover() {
        // The cascade-boundary case: `base = 0`, one deadline at
        // WHEEL_SPAN - 1 (top slot of the top level) and one at exactly
        // WHEEL_SPAN (first tick the wheel can NOT represent — its digit 4
        // differs from base, so it must overflow, not alias slot 0).
        let mut reg = TimingWheelRegistry::new();
        reg.register(pid(0), Ticks(WHEEL_SPAN));
        reg.register(pid(1), Ticks(WHEEL_SPAN - 1));
        reg.register(pid(2), Ticks(0));
        assert_eq!(reg.peek_earliest(), Some((Ticks(0), pid(2))));
        assert_eq!(
            drain(&mut reg),
            vec![(0, 2), (WHEEL_SPAN - 1, 1), (WHEEL_SPAN, 0)]
        );

        // And the same boundary relative to an advanced base: once base
        // has reached WHEEL_SPAN, a deadline at 2·WHEEL_SPAN - 1 fits the
        // wheel again while it overflowed under base = 0.
        reg.register(pid(0), Ticks(WHEEL_SPAN));
        reg.register(pid(1), Ticks(2 * WHEEL_SPAN - 1));
        assert_eq!(reg.pop_earliest(), Some((Ticks(WHEEL_SPAN), pid(0))));
        // Popping advanced base to the next armed minimum.
        assert_eq!(reg.base(), Ticks(2 * WHEEL_SPAN - 1));
        assert_eq!(
            reg.pop_earliest(),
            Some((Ticks(2 * WHEEL_SPAN - 1), pid(1)))
        );
    }

    #[test]
    fn registering_behind_base_is_overdue_not_lost() {
        let mut reg = TimingWheelRegistry::new();
        reg.register(pid(0), Ticks(1_000));
        reg.register(pid(2), Ticks(2_000));
        assert_eq!(reg.pop_earliest(), Some((Ticks(1_000), pid(0))));
        // Popping moved base up to the remaining minimum…
        assert_eq!(reg.base(), Ticks(2_000));
        // …so a deadline in the past (non-monotone registration) takes the
        // overdue path — and must still come out first.
        reg.register(pid(1), Ticks(50));
        reg.register(pid(3), Ticks(10));
        assert_eq!(drain(&mut reg), vec![(10, 3), (50, 1), (2_000, 2)]);
    }

    #[test]
    fn replenish_relocates_without_duplicating() {
        let mut reg = TimingWheelRegistry::new();
        reg.register(pid(0), Ticks(10));
        reg.register(pid(1), Ticks(20));
        reg.register(pid(0), Ticks(5_000)); // across levels
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.deadline_of(pid(0)), Some(Ticks(5_000)));
        assert_eq!(drain(&mut reg), vec![(20, 1), (5_000, 0)]);
    }

    #[test]
    fn equal_deadlines_pop_fifo() {
        let mut reg = TimingWheelRegistry::new();
        reg.register(pid(5), Ticks(100));
        reg.register(pid(3), Ticks(100));
        reg.register(pid(9), Ticks(100));
        assert_eq!(
            drain(&mut reg),
            vec![(100, 5), (100, 3), (100, 9)]
        );
    }

    #[test]
    fn base_is_monotone_and_bounded_by_the_minimum() {
        let mut reg = TimingWheelRegistry::new();
        let mut last_base = 0;
        let mut x = 0x9E37u64;
        for q in 0..64u32 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            reg.register(pid(q), Ticks(x % 1_000_000));
        }
        while let Some((d, _)) = reg.pop_earliest() {
            let base = reg.base().as_u64();
            assert!(base >= last_base, "base went backwards");
            if let Some((next, _)) = reg.peek_earliest() {
                assert!(d <= next, "pop order violated");
                assert!(base <= next.as_u64(), "base above the armed minimum");
            }
            last_base = base;
        }
    }

    #[test]
    fn arena_reuse_after_heavy_churn() {
        let mut reg = TimingWheelRegistry::new();
        for round in 0..100u64 {
            for q in 0..10u32 {
                reg.register(pid(q), Ticks(round * 1_000 + u64::from(q) * 7));
            }
            for q in 0..10u32 {
                assert!(reg.unregister(pid(q)).is_some());
            }
        }
        assert!(reg.is_empty());
        assert!(reg.arena.len() <= 10, "arena grew to {}", reg.arena.len());
    }

    #[test]
    fn cascades_are_bounded_per_entry() {
        // Each entry relocates at most once per level it can fall
        // through, so total cascade work is linear in the entry count.
        let mut reg = TimingWheelRegistry::new();
        const N: u64 = 1_000;
        for q in 0..N {
            reg.register(pid(q as u32), Ticks(q * 17_000)); // spans levels
        }
        while reg.pop_earliest().is_some() {}
        assert!(
            reg.cascades() <= N * LEVELS as u64,
            "{} cascade moves for {N} entries",
            reg.cascades()
        );
    }
}
