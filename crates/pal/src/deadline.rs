//! Per-partition deadline registries (Sect. 5.3).
//!
//! "To keep the computational complexity of the process deadline violation
//! monitoring to a minimum, the information concerning process deadlines is
//! kept at each partition's AIR PAL component, ordered by deadline, and
//! only the earliest deadline is verified by default… The information on
//! the earliest deadline is retrieved in constant time (O(1))."
//!
//! The paper uses a **linked list**: earliest-peek and removal-with-pointer
//! are O(1) — crucial inside the clock ISR — at the cost of O(n) insertion,
//! which only ever happens in a partition's own window. "A self-balancing
//! binary search tree would theoretically outperform a linked list
//! [on insertion, O(log n) vs O(n)] … nevertheless … such asymptotic
//! advantage will not correlate to effective and/or significant profit"
//! for the typically small process counts. Both structures are implemented
//! behind one trait so the claim is directly benchmarkable (experiment B2)
//! and property-testable for observational equivalence.

use std::collections::{BTreeSet, HashMap};

use air_model::ids::ProcessId;
use air_model::Ticks;

/// A registry of armed absolute process deadlines, ordered by deadline
/// time.
///
/// At most one deadline is armed per process: registering a process that
/// already has one **updates** it (the `REPLENISH` path of Fig. 6, where
/// "if necessary, this information will be moved to keep the deadlines
/// sorted").
pub trait DeadlineRegistry {
    /// Arms (or re-arms) the deadline of `process` at absolute `deadline`.
    fn register(&mut self, process: ProcessId, deadline: Ticks);

    /// Disarms the deadline of `process` (the STOP path of Sect. 5.2);
    /// returns the deadline it held, if any.
    fn unregister(&mut self, process: ProcessId) -> Option<Ticks>;

    /// The earliest armed deadline — the O(1) ISR-side query.
    fn peek_earliest(&self) -> Option<(Ticks, ProcessId)>;

    /// Removes and returns the earliest armed deadline (Algorithm 3
    /// line 7, where "we already have a pointer to the node to be removed,
    /// \[so\] the complexity … will effectively be O(1)").
    fn pop_earliest(&mut self) -> Option<(Ticks, ProcessId)>;

    /// The deadline currently armed for `process`, if any.
    fn deadline_of(&self, process: ProcessId) -> Option<Ticks>;

    /// Number of armed deadlines.
    fn len(&self) -> usize;

    /// Whether no deadline is armed.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

// ---------------------------------------------------------------------------
// Linked-list registry (the paper's implementation choice)
// ---------------------------------------------------------------------------

/// Arena index of a node; `usize::MAX` plays NULL.
const NIL: usize = usize::MAX;

#[derive(Debug, Clone, Copy)]
struct Node {
    deadline: Ticks,
    process: ProcessId,
    prev: usize,
    next: usize,
}

/// The paper's sorted doubly-linked list, arena-backed (a pointer-chasing
/// `unsafe` list would buy nothing here), ascending by deadline time.
///
/// Complexities, as analysed in Sect. 5.3:
///
/// * [`peek_earliest`](DeadlineRegistry::peek_earliest) — O(1) (head);
/// * [`pop_earliest`](DeadlineRegistry::pop_earliest) — O(1) (unlink head);
/// * [`unregister`](DeadlineRegistry::unregister) — O(1) (direct node
///   handle via the process index map);
/// * [`register`](DeadlineRegistry::register) — O(n) (walk to the
///   insertion point), performed in the partition's own window, never in
///   the ISR.
///
/// # Examples
///
/// ```
/// use air_pal::{DeadlineRegistry, LinkedListRegistry};
/// use air_model::{ids::ProcessId, Ticks};
///
/// let mut reg = LinkedListRegistry::new();
/// reg.register(ProcessId(0), Ticks(500));
/// reg.register(ProcessId(1), Ticks(200));
/// assert_eq!(reg.peek_earliest(), Some((Ticks(200), ProcessId(1))));
/// reg.register(ProcessId(1), Ticks(900)); // replenish: moves the node
/// assert_eq!(reg.peek_earliest(), Some((Ticks(500), ProcessId(0))));
/// ```
#[derive(Debug, Clone)]
pub struct LinkedListRegistry {
    arena: Vec<Node>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    index: HashMap<ProcessId, usize>,
}

impl Default for LinkedListRegistry {
    /// Equivalent to [`LinkedListRegistry::new`].
    ///
    /// A derived `Default` would zero `head`/`tail` instead of setting the
    /// `NIL` sentinel, corrupting the empty list into a self-cycle on the
    /// first insertion — this impl exists so that can never happen.
    fn default() -> Self {
        Self::new()
    }
}

impl LinkedListRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self {
            arena: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            index: HashMap::new(),
        }
    }

    fn alloc(&mut self, node: Node) -> usize {
        if let Some(idx) = self.free.pop() {
            self.arena[idx] = node;
            idx
        } else {
            self.arena.push(node);
            self.arena.len() - 1
        }
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.arena[idx].prev, self.arena[idx].next);
        if prev == NIL {
            self.head = next;
        } else {
            self.arena[prev].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.arena[next].prev = prev;
        }
        self.free.push(idx);
    }

    /// Inserts `idx` keeping ascending deadline order; FIFO among equal
    /// deadlines (insert after the last equal one), so reporting order for
    /// simultaneous misses follows registration order.
    fn insert_sorted(&mut self, idx: usize) {
        let deadline = self.arena[idx].deadline;
        let mut cur = self.head;
        let mut prev = NIL;
        while cur != NIL && self.arena[cur].deadline <= deadline {
            prev = cur;
            cur = self.arena[cur].next;
        }
        self.arena[idx].prev = prev;
        self.arena[idx].next = cur;
        if prev == NIL {
            self.head = idx;
        } else {
            self.arena[prev].next = idx;
        }
        if cur == NIL {
            self.tail = idx;
        } else {
            self.arena[cur].prev = idx;
        }
    }

    /// The armed deadlines in ascending order (diagnostics / testing).
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            registry: self,
            cursor: self.head,
        }
    }
}

/// Ascending-order iterator over a [`LinkedListRegistry`].
#[derive(Debug)]
pub struct Iter<'a> {
    registry: &'a LinkedListRegistry,
    cursor: usize,
}

impl Iterator for Iter<'_> {
    type Item = (Ticks, ProcessId);

    fn next(&mut self) -> Option<Self::Item> {
        if self.cursor == NIL {
            return None;
        }
        let node = self.registry.arena[self.cursor];
        self.cursor = node.next;
        Some((node.deadline, node.process))
    }
}

impl DeadlineRegistry for LinkedListRegistry {
    fn register(&mut self, process: ProcessId, deadline: Ticks) {
        if let Some(&idx) = self.index.get(&process) {
            // Replenish: unlink and reinsert at the new position.
            self.unlink(idx);
            self.free.pop(); // reuse the very node we just freed
            self.arena[idx].deadline = deadline;
            self.insert_sorted(idx);
            return;
        }
        let idx = self.alloc(Node {
            deadline,
            process,
            prev: NIL,
            next: NIL,
        });
        self.insert_sorted(idx);
        self.index.insert(process, idx);
    }

    fn unregister(&mut self, process: ProcessId) -> Option<Ticks> {
        let idx = self.index.remove(&process)?;
        let deadline = self.arena[idx].deadline;
        self.unlink(idx);
        Some(deadline)
    }

    fn peek_earliest(&self) -> Option<(Ticks, ProcessId)> {
        if self.head == NIL {
            return None;
        }
        let n = self.arena[self.head];
        Some((n.deadline, n.process))
    }

    fn pop_earliest(&mut self) -> Option<(Ticks, ProcessId)> {
        if self.head == NIL {
            return None;
        }
        let idx = self.head;
        let n = self.arena[idx];
        self.index.remove(&n.process);
        self.unlink(idx);
        Some((n.deadline, n.process))
    }

    fn deadline_of(&self, process: ProcessId) -> Option<Ticks> {
        self.index.get(&process).map(|&idx| self.arena[idx].deadline)
    }

    fn len(&self) -> usize {
        self.index.len()
    }
}

// ---------------------------------------------------------------------------
// BTree registry (the alternative of Sect. 5.3, for the ablation bench)
// ---------------------------------------------------------------------------

/// Self-balancing-tree registry: O(log n) for every operation.
///
/// The paper's argued trade-off (Sect. 5.3): faster inserts for large `n`,
/// but the ISR-side earliest-peek/removal loses its O(1) bound — "certainly
/// not compensat\[ing\] for the more critical downside to operations running
/// during an ISR". Bench `pal_deadline_registry` quantifies this.
#[derive(Debug, Clone, Default)]
pub struct BTreeRegistry {
    ordered: BTreeSet<(Ticks, ProcessId)>,
    index: HashMap<ProcessId, Ticks>,
}

impl BTreeRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }
}

impl DeadlineRegistry for BTreeRegistry {
    fn register(&mut self, process: ProcessId, deadline: Ticks) {
        if let Some(old) = self.index.insert(process, deadline) {
            self.ordered.remove(&(old, process));
        }
        self.ordered.insert((deadline, process));
    }

    fn unregister(&mut self, process: ProcessId) -> Option<Ticks> {
        let old = self.index.remove(&process)?;
        self.ordered.remove(&(old, process));
        Some(old)
    }

    fn peek_earliest(&self) -> Option<(Ticks, ProcessId)> {
        self.ordered.iter().next().copied()
    }

    fn pop_earliest(&mut self) -> Option<(Ticks, ProcessId)> {
        let first = self.ordered.iter().next().copied()?;
        self.ordered.remove(&first);
        self.index.remove(&first.1);
        Some(first)
    }

    fn deadline_of(&self, process: ProcessId) -> Option<Ticks> {
        self.index.get(&process).copied()
    }

    fn len(&self) -> usize {
        self.index.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(q: u32) -> ProcessId {
        ProcessId(q)
    }

    /// Runs the same scenario against any registry implementation.
    fn exercise<R: DeadlineRegistry>(mut reg: R) {
        assert!(reg.is_empty());
        assert_eq!(reg.peek_earliest(), None);
        assert_eq!(reg.pop_earliest(), None);

        reg.register(pid(0), Ticks(300));
        reg.register(pid(1), Ticks(100));
        reg.register(pid(2), Ticks(200));
        assert_eq!(reg.len(), 3);
        assert_eq!(reg.peek_earliest(), Some((Ticks(100), pid(1))));
        assert_eq!(reg.deadline_of(pid(2)), Some(Ticks(200)));

        // Replenish moves pid(1) to the back.
        reg.register(pid(1), Ticks(400));
        assert_eq!(reg.peek_earliest(), Some((Ticks(200), pid(2))));
        assert_eq!(reg.len(), 3, "replenish must not duplicate");

        // Unregister the middle element.
        assert_eq!(reg.unregister(pid(0)), Some(Ticks(300)));
        assert_eq!(reg.unregister(pid(0)), None);

        // Drain in order.
        assert_eq!(reg.pop_earliest(), Some((Ticks(200), pid(2))));
        assert_eq!(reg.pop_earliest(), Some((Ticks(400), pid(1))));
        assert_eq!(reg.pop_earliest(), None);
        assert!(reg.is_empty());
    }

    #[test]
    fn linked_list_semantics() {
        exercise(LinkedListRegistry::new());
    }

    #[test]
    fn linked_list_default_equals_new() {
        // Regression: a derived Default once zeroed head/tail instead of
        // NIL, turning the first inserted node into a self-cycle and the
        // second insertion into an infinite loop.
        exercise(LinkedListRegistry::default());
        let mut reg = LinkedListRegistry::default();
        for q in 0..8u32 {
            reg.register(pid(q), Ticks(u64::from(q) * 10 + 5));
        }
        let order: Vec<u32> = reg.iter().map(|(_, p)| p.as_u32()).collect();
        assert_eq!(order, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn btree_semantics() {
        exercise(BTreeRegistry::new());
    }

    #[test]
    fn timing_wheel_semantics() {
        exercise(crate::wheel::TimingWheelRegistry::new());
    }

    #[test]
    fn linked_list_iter_is_sorted() {
        let mut reg = LinkedListRegistry::new();
        for (q, d) in [(0, 500), (1, 100), (2, 300), (3, 200), (4, 400)] {
            reg.register(pid(q), Ticks(d));
        }
        let order: Vec<u64> = reg.iter().map(|(d, _)| d.as_u64()).collect();
        assert_eq!(order, vec![100, 200, 300, 400, 500]);
    }

    #[test]
    fn equal_deadlines_fifo_in_linked_list() {
        let mut reg = LinkedListRegistry::new();
        reg.register(pid(5), Ticks(100));
        reg.register(pid(3), Ticks(100));
        reg.register(pid(9), Ticks(100));
        assert_eq!(reg.pop_earliest(), Some((Ticks(100), pid(5))));
        assert_eq!(reg.pop_earliest(), Some((Ticks(100), pid(3))));
        assert_eq!(reg.pop_earliest(), Some((Ticks(100), pid(9))));
    }

    #[test]
    fn arena_reuse_after_heavy_churn() {
        let mut reg = LinkedListRegistry::new();
        for round in 0..100u64 {
            for q in 0..10u32 {
                reg.register(pid(q), Ticks(round * 10 + u64::from(q)));
            }
            for q in 0..10u32 {
                assert!(reg.unregister(pid(q)).is_some());
            }
        }
        assert!(reg.is_empty());
        // Arena should have stabilised at the working-set size, not grown
        // by 1000 nodes.
        assert!(reg.arena.len() <= 10, "arena grew to {}", reg.arena.len());
    }

    mod equivalence {
        use super::*;
        use air_model::testkit::TestRng;

        #[derive(Debug, Clone)]
        enum Op {
            Register(u32, u64),
            Unregister(u32),
            Pop,
        }

        fn random_op(rng: &mut TestRng) -> Op {
            match rng.below(3) {
                0 => Op::Register(rng.below(16) as u32, rng.below(1000)),
                1 => Op::Unregister(rng.below(16) as u32),
                _ => Op::Pop,
            }
        }

        /// Observational equivalence of two registries under one random
        /// operation trace. Equal deadlines may tie-break differently
        /// between implementations, so pops compare deadlines and then
        /// resolve the same victim on both sides.
        pub(super) fn agree_on_random_traces<A, B>(seed: u64)
        where
            A: DeadlineRegistry + Default,
            B: DeadlineRegistry + Default,
        {
            let mut rng = TestRng::new(seed);
            for case in 0..64 {
                let mut a = A::default();
                let mut b = B::default();
                for step in 0..rng.below_usize(200) {
                    let op = random_op(&mut rng);
                    match op {
                        Op::Register(q, d) => {
                            a.register(pid(q), Ticks(d));
                            b.register(pid(q), Ticks(d));
                        }
                        Op::Unregister(q) => {
                            assert_eq!(
                                a.unregister(pid(q)),
                                b.unregister(pid(q)),
                                "case {case} step {step} (seed {seed:#x})"
                            );
                        }
                        Op::Pop => {
                            let x = a.peek_earliest();
                            let y = b.peek_earliest();
                            assert_eq!(
                                x.map(|v| v.0),
                                y.map(|v| v.0),
                                "case {case} step {step} (seed {seed:#x})"
                            );
                            if let Some((_, victim)) = x {
                                a.unregister(victim);
                                b.unregister(victim);
                            }
                        }
                    }
                    assert_eq!(a.len(), b.len(), "case {case} step {step}");
                    assert_eq!(
                        a.peek_earliest().map(|v| v.0),
                        b.peek_earliest().map(|v| v.0),
                        "case {case} step {step} (seed {seed:#x})"
                    );
                }
            }
        }

        /// The linked list and the BTree are observationally equivalent
        /// under any operation sequence — the Sect. 5.3 choice is purely
        /// about constants, never about behaviour.
        #[test]
        fn list_and_btree_agree() {
            agree_on_random_traces::<LinkedListRegistry, BTreeRegistry>(0xD15C);
        }

        /// The timing wheel is observationally equivalent to the paper's
        /// sorted list: the wheel changes constants (O(1) insertion), not
        /// behaviour.
        #[test]
        fn wheel_and_list_agree() {
            agree_on_random_traces::<crate::wheel::TimingWheelRegistry, LinkedListRegistry>(
                0x7EE1,
            );
        }

        /// Same, with deadlines spread far enough apart to cross wheel
        /// levels and spill into the overflow bucket (the short-range
        /// trace above never leaves level 0–1).
        #[test]
        fn wheel_and_list_agree_across_levels() {
            use crate::wheel::{TimingWheelRegistry, WHEEL_SPAN};
            let mut rng = TestRng::new(0xCA5C);
            for case in 0..32 {
                let mut wheel = TimingWheelRegistry::new();
                let mut list = LinkedListRegistry::new();
                for step in 0..200 {
                    match rng.below(3) {
                        0 => {
                            let q = rng.below(16) as u32;
                            // Bias across all levels and past the span.
                            let d = rng.below(2 * WHEEL_SPAN);
                            wheel.register(pid(q), Ticks(d));
                            list.register(pid(q), Ticks(d));
                        }
                        1 => {
                            let q = rng.below(16) as u32;
                            assert_eq!(
                                wheel.unregister(pid(q)),
                                list.unregister(pid(q)),
                                "case {case} step {step} (seed 0xCA5C)"
                            );
                        }
                        _ => {
                            assert_eq!(
                                wheel.pop_earliest().map(|v| v.0),
                                list.pop_earliest().map(|v| v.0),
                                "case {case} step {step} (seed 0xCA5C)"
                            );
                        }
                    }
                    assert_eq!(wheel.len(), list.len(), "case {case} step {step}");
                }
            }
        }
    }
}
