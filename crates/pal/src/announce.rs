//! Deadline verification at the AIR PAL level: Algorithm 3 of the paper.
//!
//! ```text
//! 1: *POS_CLOCKTICKANNOUNCE(elapsedTicks)
//! 2: for all d ∈ PAL_deadlines do
//! 3:     if d.deadlineTime ≥ PAL_GETCURRENTTIME() then
//! 4:         break
//! 5:     end if
//! 6:     HM_DEADLINEVIOLATED(d.pid)
//! 7:     PAL_REMOVEPROCESSDEADLINE(d)
//! 8: end for
//! ```
//!
//! "Only the earliest deadline is verified by default; … only in the
//! presence of deadline violations will more deadlines be checked, in
//! ascending order until reaching one that has not been violated."

use air_model::ids::ProcessId;
use air_model::Ticks;

use crate::deadline::DeadlineRegistry;

/// Runs the deadline-verification loop of Algorithm 3 (lines 2–8) against
/// `registry` at current time `now`, invoking `on_violation` for every
/// violated deadline (line 6) and removing it (line 7).
///
/// Returns the number of violations reported. A deadline `d` is violated
/// when `d < now` — the loop breaks at the first `d ≥ now` (line 3), so
/// the common no-violation case costs exactly one O(1) peek.
///
/// # Examples
///
/// ```
/// use air_pal::{check_deadlines, DeadlineRegistry, LinkedListRegistry};
/// use air_model::{ids::ProcessId, Ticks};
///
/// let mut reg = LinkedListRegistry::new();
/// reg.register(ProcessId(0), Ticks(100));
/// reg.register(ProcessId(1), Ticks(150));
///
/// let mut missed = Vec::new();
/// let n = check_deadlines(&mut reg, Ticks(120), |pid, d| missed.push((pid, d)));
/// assert_eq!(n, 1);
/// assert_eq!(missed, vec![(ProcessId(0), Ticks(100))]);
/// assert_eq!(reg.len(), 1); // the violated entry was removed
/// ```
pub fn check_deadlines<R, F>(registry: &mut R, now: Ticks, mut on_violation: F) -> usize
where
    R: DeadlineRegistry + ?Sized,
    F: FnMut(ProcessId, Ticks),
{
    let mut reported = 0;
    while let Some((deadline, _)) = registry.peek_earliest() {
        if deadline >= now {
            break; // Algorithm 3 line 3–4
        }
        let (deadline, pid) = registry
            .pop_earliest()
            .expect("peek returned Some, pop must too");
        on_violation(pid, deadline); // line 6: HM_DEADLINEVIOLATED
        reported += 1; // line 7 happened via pop (O(1) removal)
    }
    reported
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deadline::{BTreeRegistry, LinkedListRegistry};

    fn pid(q: u32) -> ProcessId {
        ProcessId(q)
    }

    #[test]
    fn no_violation_costs_one_peek_and_reports_nothing() {
        let mut reg = LinkedListRegistry::new();
        reg.register(pid(0), Ticks(100));
        let n = check_deadlines(&mut reg, Ticks(100), |_, _| panic!("no violation at d == now"));
        assert_eq!(n, 0);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn empty_registry_is_a_noop() {
        let mut reg = LinkedListRegistry::new();
        assert_eq!(check_deadlines(&mut reg, Ticks(1_000_000), |_, _| {}), 0);
    }

    #[test]
    fn cascading_violations_reported_in_ascending_order() {
        // Several deadlines missed while the partition was inactive: all
        // are detected at the next announcement, earliest first (Sect. 5:
        // "following deadlines may subsequently be verified until one has
        // not been missed").
        let mut reg = LinkedListRegistry::new();
        reg.register(pid(0), Ticks(300));
        reg.register(pid(1), Ticks(100));
        reg.register(pid(2), Ticks(200));
        reg.register(pid(3), Ticks(900));

        let mut order = Vec::new();
        let n = check_deadlines(&mut reg, Ticks(500), |p, d| order.push((p, d)));
        assert_eq!(n, 3);
        assert_eq!(
            order,
            vec![
                (pid(1), Ticks(100)),
                (pid(2), Ticks(200)),
                (pid(0), Ticks(300)),
            ]
        );
        assert_eq!(reg.peek_earliest(), Some((Ticks(900), pid(3))));
    }

    #[test]
    fn strictness_matches_eq24() {
        // d < now violates; d == now does not (Eq. 24 uses strict <).
        let mut reg = BTreeRegistry::new();
        reg.register(pid(0), Ticks(99));
        reg.register(pid(1), Ticks(100));
        let mut missed = Vec::new();
        check_deadlines(&mut reg, Ticks(100), |p, _| missed.push(p));
        assert_eq!(missed, vec![pid(0)]);
    }

    #[test]
    fn works_through_trait_object() {
        // `R: ?Sized` allows dynamic dispatch, which the Pal uses when the
        // registry kind is chosen at integration time.
        let mut reg: Box<dyn DeadlineRegistry> = Box::new(LinkedListRegistry::new());
        reg.register(pid(0), Ticks(5));
        let n = check_deadlines(reg.as_mut(), Ticks(10), |_, _| {});
        assert_eq!(n, 1);
    }
}
