//! Differential test: the TLB'd MMU and the raw three-level walk agree on
//! arbitrary map/unmap/translate sequences — including context switches
//! and remaps — so the TLB can never change what translates to what, only
//! how fast. A stale-entry bug (missing flush) shows up here as a
//! divergence after an unmap or a context switch.

use air_hw::mmu::{AccessKind, Mmu, PageFlags, Privilege, L1_REGION, L2_REGION, PAGE_SIZE};
use air_model::testkit::TestRng;

const CONTEXTS: u32 = 4;
const SEED: u64 = 0x71B0;

fn random_kind(rng: &mut TestRng) -> AccessKind {
    match rng.below(3) {
        0 => AccessKind::Read,
        1 => AccessKind::Write,
        _ => AccessKind::Execute,
    }
}

fn random_privilege(rng: &mut TestRng) -> Privilege {
    if rng.chance(1, 2) {
        Privilege::User
    } else {
        Privilege::Supervisor
    }
}

/// A page-aligned value biased toward interesting alignments (large-leaf
/// boundaries included, so 16 MiB / 256 KiB entries actually occur).
fn random_aligned(rng: &mut TestRng) -> u64 {
    match rng.below(4) {
        0 => rng.below(16) * L1_REGION,
        1 => rng.below(256) * L2_REGION,
        _ => rng.below(1 << 20) * PAGE_SIZE,
    }
}

fn random_size(rng: &mut TestRng) -> u64 {
    match rng.below(4) {
        0 => rng.range(1, 3) * L1_REGION,
        1 => rng.range(1, 5) * L2_REGION,
        _ => rng.range(1, 65) * PAGE_SIZE,
    }
}

#[test]
fn tlb_translate_agrees_with_raw_walk() {
    let mut rng = TestRng::new(SEED);
    // Two MMUs driven through identical op sequences: `fast` has the TLB,
    // `slow` never caches.
    let mut fast = Mmu::new();
    let mut slow = Mmu::new();
    slow.set_tlb_enabled(false);
    let ctxs: Vec<_> = (0..CONTEXTS).map(|_| fast.create_context()).collect();
    for _ in 0..CONTEXTS {
        slow.create_context();
    }
    // Remember established mappings so translates mostly hit mapped space
    // (pure random 32-bit addresses would be ~all unmapped).
    let mut mapped: Vec<(u32, u64, u64)> = Vec::new();
    // Last translated (context, va): revisited often, because real access
    // streams have locality — that's what makes TLB hits happen at all.
    let mut last: Option<(u32, u64)> = None;

    for step in 0..5_000 {
        match rng.below(10) {
            // Map a random range in a random context.
            0 | 1 => {
                let c = rng.below(u64::from(CONTEXTS)) as u32;
                let va = random_aligned(&mut rng);
                let pa = random_aligned(&mut rng);
                let size = random_size(&mut rng);
                let acc = rng.below(8) as u8;
                let flags = PageFlags::from_sparc_acc(acc);
                let a = fast.map(ctxs[c as usize], va, pa, size, flags);
                let b = slow.map(ctxs[c as usize], va, pa, size, flags);
                assert_eq!(a, b, "step {step}: map diverged (seed {SEED:#x})");
                if a.is_ok() {
                    mapped.push((c, va, size));
                }
            }
            // Unmap a previously mapped range (flush-on-remap path).
            2 => {
                if mapped.is_empty() {
                    continue;
                }
                let i = rng.below_usize(mapped.len());
                let (c, va, size) = mapped.swap_remove(i);
                assert_eq!(
                    fast.unmap(ctxs[c as usize], va, size),
                    slow.unmap(ctxs[c as usize], va, size),
                    "step {step}: unmap diverged (seed {SEED:#x})"
                );
            }
            // Explicit context activation (flush-on-switch path).
            3 => {
                let c = rng.below_usize(CONTEXTS as usize);
                fast.activate_context(ctxs[c]);
            }
            // Translate — mostly into mapped ranges, sometimes anywhere,
            // and half the time a repeat of the previous access (locality),
            // which is what drives traffic through the TLB hit path.
            _ => {
                let (c, va) = match last {
                    Some(pair) if rng.chance(1, 2) => pair,
                    _ if !mapped.is_empty() && rng.chance(4, 5) => {
                        let &(c, base, size) = &mapped[rng.below_usize(mapped.len())];
                        (c, base + rng.below(size))
                    }
                    _ => (
                        rng.below(u64::from(CONTEXTS)) as u32,
                        rng.below(1 << 32),
                    ),
                };
                last = Some((c, va));
                let kind = random_kind(&mut rng);
                let privilege = random_privilege(&mut rng);
                let a = fast.translate(ctxs[c as usize], va, kind, privilege);
                let b = slow.translate(ctxs[c as usize], va, kind, privilege);
                assert_eq!(
                    a, b,
                    "step {step}: translate({c}, {va:#x}, {kind}, {privilege:?}) \
                     diverged (seed {SEED:#x})"
                );
                // Self-consistency: the TLB'd result equals this MMU's own
                // raw walk — no stale entry can survive unnoticed.
                assert_eq!(
                    a,
                    fast.translate_uncached(ctxs[c as usize], va, kind, privilege),
                    "step {step}: TLB result differs from own table walk (seed {SEED:#x})"
                );
            }
        }
    }
    assert!(fast.tlb_hits() > 0, "the trace actually exercised the TLB");
}
