//! CPU execution contexts and the save/restore primitives used by the AIR
//! Partition Dispatcher (Algorithm 2, lines 4 and 8).
//!
//! The dispatcher's `SAVECONTEXT`/`RESTORECONTEXT` operate on a
//! [`CpuContext`]: the architectural state that must survive a partition
//! preemption. On the LEON3 this would be the integer register file,
//! `%psr`, trap registers and the MMU context register; here it is a
//! compact simulated equivalent that still makes context switches
//! observable (and benchmarkable, experiment B3).

use std::fmt;

use crate::mmu::MmuContextId;

/// The architectural state saved and restored across partition switches.
///
/// Each partition owns one `CpuContext`; the Partition Dispatcher swaps the
/// active one at partition preemption points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CpuContext {
    /// Simulated program counter.
    pub pc: u64,
    /// Simulated stack pointer.
    pub sp: u64,
    /// Simulated processor status word (interrupt level, supervisor bit…).
    pub psr: u64,
    /// Simulated general-purpose register file (SPARC V8 has 8 globals +
    /// register windows; a fixed window's worth is enough to give the
    /// save/restore a realistic footprint).
    pub gpr: [u64; 32],
    /// The MMU context this execution runs under — switching it is what
    /// enforces spatial partitioning across the context switch.
    pub mmu_context: MmuContextId,
}

impl CpuContext {
    /// A fresh context starting at `entry` with the given stack and MMU
    /// context.
    pub fn new(entry: u64, stack_top: u64, mmu_context: MmuContextId) -> Self {
        Self {
            pc: entry,
            sp: stack_top,
            psr: 0,
            gpr: [0; 32],
            mmu_context,
        }
    }
}

impl Default for CpuContext {
    fn default() -> Self {
        Self::new(0, 0, MmuContextId(0))
    }
}

impl fmt::Display for CpuContext {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "pc={:#x} sp={:#x} psr={:#x} ctx={}",
            self.pc, self.sp, self.psr, self.mmu_context.0
        )
    }
}

/// The (single) processor of the emulated machine.
///
/// AIR's first generation targets a single core — "parallelism between
/// partition time windows on a multicore platform" is listed as future work
/// (Sect. 8) — so one `Cpu` executes one context at a time.
///
/// # Examples
///
/// ```
/// use air_hw::{Cpu, CpuContext};
/// use air_hw::mmu::MmuContextId;
///
/// let mut cpu = Cpu::new();
/// let mut ctx_a = CpuContext::new(0x1000, 0x8000, MmuContextId(1));
/// cpu.restore_context(&ctx_a);
/// cpu.retire_work(5); // partition A computes
/// cpu.save_context(&mut ctx_a);
/// assert_eq!(cpu.context_switches(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Cpu {
    active: CpuContext,
    /// Cycles retired in the currently-active context since restore.
    cycles_in_context: u64,
    /// Total cycles retired since power-on.
    cycles_total: u64,
    context_switches: u64,
}

impl Cpu {
    /// Creates a CPU running an all-zero boot context.
    pub fn new() -> Self {
        Self {
            active: CpuContext::default(),
            cycles_in_context: 0,
            cycles_total: 0,
            context_switches: 0,
        }
    }

    /// Read-only view of the active context.
    pub fn active_context(&self) -> &CpuContext {
        &self.active
    }

    /// The MMU context the CPU currently executes under.
    pub fn current_mmu_context(&self) -> MmuContextId {
        self.active.mmu_context
    }

    /// `SAVECONTEXT` (Algorithm 2 line 4): copies the live architectural
    /// state into `slot`.
    pub fn save_context(&self, slot: &mut CpuContext) {
        *slot = self.active.clone();
    }

    /// `RESTORECONTEXT` (Algorithm 2 line 8): loads `slot` into the CPU.
    /// Counts one context switch and resets the per-context cycle counter.
    pub fn restore_context(&mut self, slot: &CpuContext) {
        self.active = slot.clone();
        self.cycles_in_context = 0;
        self.context_switches += 1;
    }

    /// Models the partition doing `cycles` of useful work: advances the
    /// simulated PC and the cycle counters.
    pub fn retire_work(&mut self, cycles: u64) {
        self.active.pc = self.active.pc.wrapping_add(4 * cycles);
        self.cycles_in_context += cycles;
        self.cycles_total += cycles;
    }

    /// Cycles retired since the last context restore.
    pub fn cycles_in_context(&self) -> u64 {
        self.cycles_in_context
    }

    /// Total cycles retired since power-on.
    pub fn cycles_total(&self) -> u64 {
        self.cycles_total
    }

    /// Number of context restores performed (the dispatcher's switch count).
    pub fn context_switches(&self) -> u64 {
        self.context_switches
    }
}

impl Default for Cpu {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn save_restore_roundtrip_preserves_state() {
        let mut cpu = Cpu::new();
        let mut a = CpuContext::new(0x1000, 0x2000, MmuContextId(1));
        a.gpr[5] = 42;
        cpu.restore_context(&a);
        cpu.retire_work(3);

        let mut saved = CpuContext::default();
        cpu.save_context(&mut saved);
        assert_eq!(saved.pc, 0x1000 + 12);
        assert_eq!(saved.gpr[5], 42);
        assert_eq!(saved.mmu_context, MmuContextId(1));

        // Switch to B, then back to the saved A.
        let b = CpuContext::new(0x9000, 0xA000, MmuContextId(2));
        cpu.restore_context(&b);
        assert_eq!(cpu.current_mmu_context(), MmuContextId(2));
        cpu.restore_context(&saved);
        assert_eq!(cpu.active_context().pc, 0x100c);
        assert_eq!(cpu.current_mmu_context(), MmuContextId(1));
        assert_eq!(cpu.context_switches(), 3);
    }

    #[test]
    fn cycle_accounting() {
        let mut cpu = Cpu::new();
        cpu.retire_work(10);
        assert_eq!(cpu.cycles_in_context(), 10);
        let ctx = CpuContext::default();
        cpu.restore_context(&ctx);
        assert_eq!(cpu.cycles_in_context(), 0, "reset on restore");
        cpu.retire_work(5);
        assert_eq!(cpu.cycles_total(), 15);
    }
}
