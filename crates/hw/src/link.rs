//! Inter-node communication link: the transport for interpartition
//! communication between *physically separated* partitions.
//!
//! "For physically separated partitions, this implies data transmission
//! through a communication infrastructure" (Sect. 2.1). The link is a
//! deterministic point-to-point channel with a configurable propagation
//! latency (in clock ticks) and an optional periodic frame-loss pattern
//! for fault-injection experiments — deterministic on purpose, so the B5
//! experiment series is exactly reproducible.

use std::collections::VecDeque;

/// One end of the link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkEndpoint {
    /// The local onboard computer node.
    A,
    /// The remote node.
    B,
}

impl LinkEndpoint {
    /// The opposite endpoint.
    pub fn peer(self) -> LinkEndpoint {
        match self {
            LinkEndpoint::A => LinkEndpoint::B,
            LinkEndpoint::B => LinkEndpoint::A,
        }
    }
}

/// A frame in flight: payload plus its delivery deadline.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Frame {
    deliver_at: u64,
    payload: Vec<u8>,
}

/// A full-duplex point-to-point link with per-direction FIFO ordering.
///
/// # Examples
///
/// ```
/// use air_hw::link::{InterNodeLink, LinkEndpoint};
///
/// let mut link = InterNodeLink::new(3); // 3-tick propagation delay
/// link.send(LinkEndpoint::A, 0, b"ping".to_vec());
/// assert_eq!(link.receive(LinkEndpoint::B, 2), None); // still in flight
/// assert_eq!(link.receive(LinkEndpoint::B, 3), Some(b"ping".to_vec()));
/// ```
#[derive(Debug, Clone)]
pub struct InterNodeLink {
    latency_ticks: u64,
    a_to_b: VecDeque<Frame>,
    b_to_a: VecDeque<Frame>,
    /// Drop every `n`-th frame when `Some(n)`; deterministic loss injection.
    drop_every: Option<u64>,
    /// Frames sent strictly before this tick are lost (sustained outage).
    outage_until: u64,
    sent: u64,
    dropped: u64,
    delivered: u64,
    tampered: u64,
}

impl InterNodeLink {
    /// Creates a link with the given propagation latency in ticks.
    pub fn new(latency_ticks: u64) -> Self {
        Self {
            latency_ticks,
            a_to_b: VecDeque::new(),
            b_to_a: VecDeque::new(),
            drop_every: None,
            outage_until: 0,
            sent: 0,
            dropped: 0,
            delivered: 0,
            tampered: 0,
        }
    }

    /// Configures deterministic loss: every `n`-th sent frame (1-based) is
    /// silently dropped. `n = 0` disables loss again.
    pub fn set_drop_every(&mut self, n: u64) {
        self.drop_every = if n == 0 { None } else { Some(n) };
    }

    /// The configured propagation latency in ticks.
    pub fn latency_ticks(&self) -> u64 {
        self.latency_ticks
    }

    /// Starts a sustained outage: every frame sent at a tick strictly
    /// before `until` is lost (in both directions). Fault injection for
    /// the `LinkOutage` class; frames already in flight are unaffected.
    pub fn begin_outage(&mut self, until: u64) {
        self.outage_until = self.outage_until.max(until);
    }

    /// Whether the link is inside a sustained outage at `now`.
    pub fn in_outage(&self, now: u64) -> bool {
        now < self.outage_until
    }

    /// Sends `payload` from `from` at time `now`; it becomes receivable at
    /// the peer at `now + latency` (unless it falls on the loss pattern).
    pub fn send(&mut self, from: LinkEndpoint, now: u64, payload: Vec<u8>) {
        self.sent += 1;
        if self.in_outage(now) {
            self.dropped += 1;
            return;
        }
        if let Some(n) = self.drop_every {
            if self.sent.is_multiple_of(n) {
                self.dropped += 1;
                return;
            }
        }
        let frame = Frame {
            deliver_at: now + self.latency_ticks,
            payload,
        };
        match from {
            LinkEndpoint::A => self.a_to_b.push_back(frame),
            LinkEndpoint::B => self.b_to_a.push_back(frame),
        }
    }

    /// Receives the oldest frame addressed to `at` whose delivery time has
    /// arrived (`deliver_at <= now`), or `None`.
    pub fn receive(&mut self, at: LinkEndpoint, now: u64) -> Option<Vec<u8>> {
        let queue = match at {
            LinkEndpoint::A => &mut self.b_to_a,
            LinkEndpoint::B => &mut self.a_to_b,
        };
        if queue.front().is_some_and(|f| f.deliver_at <= now) {
            self.delivered += 1;
            return queue.pop_front().map(|f| f.payload);
        }
        None
    }

    /// Whether a frame is deliverable to `at` at time `now` without
    /// consuming it — wired to the [`crate::interrupt::InterruptLine::Link`]
    /// interrupt by the machine.
    pub fn has_deliverable(&self, at: LinkEndpoint, now: u64) -> bool {
        let queue = match at {
            LinkEndpoint::A => &self.b_to_a,
            LinkEndpoint::B => &self.a_to_b,
        };
        queue.front().is_some_and(|f| f.deliver_at <= now)
    }

    /// Destroys the newest frame still in flight towards `to`, as if it
    /// was lost in transit. Returns whether a frame was there to lose.
    /// Fault injection: the sender's counters already include the frame,
    /// the receiver simply never sees it.
    pub fn drop_in_flight(&mut self, to: LinkEndpoint) -> bool {
        let queue = match to {
            LinkEndpoint::A => &mut self.b_to_a,
            LinkEndpoint::B => &mut self.a_to_b,
        };
        if queue.pop_back().is_some() {
            self.dropped += 1;
            return true;
        }
        false
    }

    /// Destroys the newest frame in flight towards `to` whose bytes match
    /// `pred`, scanning from the newest frame backwards. Lets fault
    /// injection target a frame *kind* (e.g. acknowledgements) without the
    /// hardware layer knowing any wire format. Returns whether a matching
    /// frame was there to lose.
    pub fn drop_in_flight_where(
        &mut self,
        to: LinkEndpoint,
        pred: impl Fn(&[u8]) -> bool,
    ) -> bool {
        let queue = match to {
            LinkEndpoint::A => &mut self.b_to_a,
            LinkEndpoint::B => &mut self.a_to_b,
        };
        let Some(idx) = queue.iter().rposition(|f| pred(&f.payload)) else {
            return false;
        };
        queue.remove(idx);
        self.dropped += 1;
        true
    }

    /// Flips bits (per `mask`) in one byte of the newest frame in flight
    /// towards `to`, modelling transmission corruption. `byte_index` wraps
    /// modulo the frame length; a zero mask is promoted to `0x01` so the
    /// call always changes the frame. Returns whether a frame was there to
    /// corrupt.
    pub fn tamper_in_flight(&mut self, to: LinkEndpoint, byte_index: usize, mask: u8) -> bool {
        let queue = match to {
            LinkEndpoint::A => &mut self.b_to_a,
            LinkEndpoint::B => &mut self.a_to_b,
        };
        let Some(frame) = queue.back_mut() else {
            return false;
        };
        if frame.payload.is_empty() {
            return false;
        }
        let idx = byte_index % frame.payload.len();
        frame.payload[idx] ^= if mask == 0 { 0x01 } else { mask };
        self.tampered += 1;
        true
    }

    /// Frames sent (including dropped ones).
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// Frames dropped by the loss pattern.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Frames delivered to a receiver.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Frames corrupted in flight by fault injection.
    pub fn tampered(&self) -> u64 {
        self.tampered
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_is_respected_per_direction() {
        let mut link = InterNodeLink::new(5);
        link.send(LinkEndpoint::A, 10, vec![1]);
        link.send(LinkEndpoint::B, 10, vec![2]);
        assert!(link.receive(LinkEndpoint::B, 14).is_none());
        assert_eq!(link.receive(LinkEndpoint::B, 15), Some(vec![1]));
        assert_eq!(link.receive(LinkEndpoint::A, 15), Some(vec![2]));
    }

    #[test]
    fn fifo_order_within_direction() {
        let mut link = InterNodeLink::new(0);
        link.send(LinkEndpoint::A, 0, vec![1]);
        link.send(LinkEndpoint::A, 0, vec![2]);
        assert_eq!(link.receive(LinkEndpoint::B, 0), Some(vec![1]));
        assert_eq!(link.receive(LinkEndpoint::B, 0), Some(vec![2]));
        assert_eq!(link.receive(LinkEndpoint::B, 0), None);
    }

    #[test]
    fn head_of_line_blocking_is_temporal() {
        // A later frame never overtakes an earlier one, even if the
        // receiver polls late.
        let mut link = InterNodeLink::new(10);
        link.send(LinkEndpoint::A, 0, vec![1]);
        link.send(LinkEndpoint::A, 5, vec![2]);
        assert_eq!(link.receive(LinkEndpoint::B, 100), Some(vec![1]));
        assert_eq!(link.receive(LinkEndpoint::B, 100), Some(vec![2]));
    }

    #[test]
    fn deterministic_loss_pattern() {
        let mut link = InterNodeLink::new(0);
        link.set_drop_every(3);
        for i in 0..6u8 {
            link.send(LinkEndpoint::A, 0, vec![i]);
        }
        let mut got = Vec::new();
        while let Some(p) = link.receive(LinkEndpoint::B, 0) {
            got.push(p[0]);
        }
        // Frames 3 and 6 (1-based) dropped.
        assert_eq!(got, vec![0, 1, 3, 4]);
        assert_eq!(link.dropped(), 2);
        assert_eq!(link.sent(), 6);
        assert_eq!(link.delivered(), 4);
    }

    #[test]
    fn has_deliverable_does_not_consume() {
        let mut link = InterNodeLink::new(1);
        link.send(LinkEndpoint::A, 0, vec![9]);
        assert!(!link.has_deliverable(LinkEndpoint::B, 0));
        assert!(link.has_deliverable(LinkEndpoint::B, 1));
        assert!(link.has_deliverable(LinkEndpoint::B, 1));
        assert_eq!(link.receive(LinkEndpoint::B, 1), Some(vec![9]));
        assert!(!link.has_deliverable(LinkEndpoint::B, 1));
    }

    #[test]
    fn drop_in_flight_loses_newest_frame() {
        let mut link = InterNodeLink::new(0);
        link.send(LinkEndpoint::B, 0, vec![1]);
        link.send(LinkEndpoint::B, 0, vec![2]);
        assert!(link.drop_in_flight(LinkEndpoint::A));
        assert_eq!(link.receive(LinkEndpoint::A, 0), Some(vec![1]));
        assert_eq!(link.receive(LinkEndpoint::A, 0), None);
        assert_eq!(link.dropped(), 1);
        assert!(!link.drop_in_flight(LinkEndpoint::A), "queue now empty");
    }

    #[test]
    fn tamper_in_flight_corrupts_newest_frame() {
        let mut link = InterNodeLink::new(0);
        link.send(LinkEndpoint::B, 0, vec![0xAA, 0xBB]);
        assert!(link.tamper_in_flight(LinkEndpoint::A, 1, 0xFF));
        assert_eq!(link.receive(LinkEndpoint::A, 0), Some(vec![0xAA, 0x44]));
        assert_eq!(link.tampered(), 1);
        assert!(!link.tamper_in_flight(LinkEndpoint::A, 0, 0xFF));
    }

    #[test]
    fn tamper_zero_mask_still_corrupts() {
        let mut link = InterNodeLink::new(0);
        link.send(LinkEndpoint::B, 0, vec![0x10]);
        assert!(link.tamper_in_flight(LinkEndpoint::A, 5, 0x00));
        assert_eq!(link.receive(LinkEndpoint::A, 0), Some(vec![0x11]));
    }

    #[test]
    fn outage_loses_sends_until_the_deadline() {
        let mut link = InterNodeLink::new(0);
        link.begin_outage(10);
        assert!(link.in_outage(9));
        link.send(LinkEndpoint::A, 5, vec![1]);
        assert_eq!(link.receive(LinkEndpoint::B, 100), None);
        assert_eq!(link.dropped(), 1);
        assert!(!link.in_outage(10));
        link.send(LinkEndpoint::A, 10, vec![2]);
        assert_eq!(link.receive(LinkEndpoint::B, 100), Some(vec![2]));
    }

    #[test]
    fn outage_extensions_never_shrink() {
        let mut link = InterNodeLink::new(0);
        link.begin_outage(20);
        link.begin_outage(5);
        assert!(link.in_outage(19));
    }

    #[test]
    fn drop_in_flight_where_targets_matching_frames_only() {
        let mut link = InterNodeLink::new(0);
        link.send(LinkEndpoint::B, 0, vec![1, 1]);
        link.send(LinkEndpoint::B, 0, vec![2, 2]);
        link.send(LinkEndpoint::B, 0, vec![1, 3]);
        // Newest matching frame goes first.
        assert!(link.drop_in_flight_where(LinkEndpoint::A, |b| b[0] == 1));
        assert!(link.drop_in_flight_where(LinkEndpoint::A, |b| b[0] == 1));
        assert!(!link.drop_in_flight_where(LinkEndpoint::A, |b| b[0] == 1));
        assert_eq!(link.receive(LinkEndpoint::A, 0), Some(vec![2, 2]));
        assert_eq!(link.dropped(), 2);
    }

    #[test]
    fn peer_is_involutive() {
        assert_eq!(LinkEndpoint::A.peer(), LinkEndpoint::B);
        assert_eq!(LinkEndpoint::B.peer().peer(), LinkEndpoint::B);
    }
}
