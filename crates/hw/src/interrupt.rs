//! Interrupt controller with the paravirtualisation guard of Sect. 2.5.
//!
//! "To ensure that a non-real-time kernel as Linux cannot undermine the
//! overall time guarantees of the system by disabling or diverting system
//! clock interrupts, the instructions that could allow this must be wrapped
//! by low-level handlers (paravirtualized)." The controller therefore
//! distinguishes two privilege levels: the PMK (hypervisor) may mask any
//! line; a **guest** attempting to mask or divert the clock line does not
//! actually affect it — the attempt is recorded and reported instead.

use std::fmt;

/// An interrupt line of the emulated machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum InterruptLine {
    /// The periodic system clock tick (line 0). The AIR Partition Scheduler
    /// and, transitively, everything timely in the system hangs off it.
    ClockTick,
    /// The inter-node communication link signalling message arrival.
    Link,
    /// Console input (keyboard) — drives the VITRAL interaction of Fig. 9.
    ConsoleInput,
    /// A numbered device line.
    Device(u8),
}

impl InterruptLine {
    fn index(self) -> usize {
        match self {
            InterruptLine::ClockTick => 0,
            InterruptLine::Link => 1,
            InterruptLine::ConsoleInput => 2,
            InterruptLine::Device(n) => 3 + n as usize,
        }
    }

    /// Total number of representable lines.
    const COUNT: usize = 3 + 256;
}

impl fmt::Display for InterruptLine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterruptLine::ClockTick => f.write_str("clock-tick"),
            InterruptLine::Link => f.write_str("link"),
            InterruptLine::ConsoleInput => f.write_str("console-input"),
            InterruptLine::Device(n) => write!(f, "device{n}"),
        }
    }
}

/// Who is executing when a mask/divert request reaches the controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PrivilegeLevel {
    /// The AIR PMK (hypervisor level): full control.
    Pmk,
    /// A partition's POS or application: clock-line control is
    /// paravirtualised away.
    Guest,
}

/// Outcome of a guest's attempt to interfere with the clock interrupt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ParavirtOutcome {
    /// The request targeted a non-clock line and was applied.
    Applied,
    /// The request targeted the clock line from guest level and was
    /// **wrapped**: the line stays under PMK control, the attempt is
    /// counted (exposed via [`InterruptController::wrapped_clock_attempts`]).
    Wrapped,
}

/// A maskable interrupt controller with per-line pending flags.
///
/// # Examples
///
/// ```
/// use air_hw::interrupt::{InterruptController, InterruptLine, PrivilegeLevel};
///
/// let mut intc = InterruptController::new();
/// intc.raise(InterruptLine::ClockTick);
/// assert_eq!(intc.acknowledge(), Some(InterruptLine::ClockTick));
/// assert_eq!(intc.acknowledge(), None);
///
/// // A guest trying to mask the clock gets wrapped, not obeyed.
/// intc.mask(InterruptLine::ClockTick, PrivilegeLevel::Guest);
/// intc.raise(InterruptLine::ClockTick);
/// assert_eq!(intc.acknowledge(), Some(InterruptLine::ClockTick));
/// assert_eq!(intc.wrapped_clock_attempts(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct InterruptController {
    enabled: Vec<bool>,
    pending: Vec<bool>,
    wrapped_clock_attempts: u64,
    raised_total: u64,
    delivered_total: u64,
}

impl InterruptController {
    /// Creates a controller with every line enabled and none pending.
    pub fn new() -> Self {
        Self {
            enabled: vec![true; InterruptLine::COUNT],
            pending: vec![false; InterruptLine::COUNT],
            wrapped_clock_attempts: 0,
            raised_total: 0,
            delivered_total: 0,
        }
    }

    /// Raises `line`: it becomes pending until acknowledged (idempotent for
    /// an already-pending line, as on real edge-latched controllers).
    pub fn raise(&mut self, line: InterruptLine) {
        self.raised_total += 1;
        self.pending[line.index()] = true;
    }

    /// Whether `line` is currently pending.
    pub fn is_pending(&self, line: InterruptLine) -> bool {
        self.pending[line.index()]
    }

    /// Whether `line` is currently enabled.
    pub fn is_enabled(&self, line: InterruptLine) -> bool {
        self.enabled[line.index()]
    }

    /// Masks (disables) `line` on behalf of `level`.
    ///
    /// A [`PrivilegeLevel::Guest`] request against
    /// [`InterruptLine::ClockTick`] is *not* applied: per Sect. 2.5 the
    /// operation is paravirtualised and merely recorded.
    pub fn mask(&mut self, line: InterruptLine, level: PrivilegeLevel) -> ParavirtOutcome {
        if matches!(line, InterruptLine::ClockTick) && matches!(level, PrivilegeLevel::Guest) {
            self.wrapped_clock_attempts += 1;
            return ParavirtOutcome::Wrapped;
        }
        self.enabled[line.index()] = false;
        ParavirtOutcome::Applied
    }

    /// Unmasks (enables) `line` on behalf of `level`. Guest requests on the
    /// clock line are wrapped exactly like [`mask`](Self::mask) — the guest
    /// must not be able to *infer* control it does not have.
    pub fn unmask(&mut self, line: InterruptLine, level: PrivilegeLevel) -> ParavirtOutcome {
        if matches!(line, InterruptLine::ClockTick) && matches!(level, PrivilegeLevel::Guest) {
            self.wrapped_clock_attempts += 1;
            return ParavirtOutcome::Wrapped;
        }
        self.enabled[line.index()] = true;
        ParavirtOutcome::Applied
    }

    /// Acknowledges and returns the highest-priority pending, enabled line
    /// (lowest index first: the clock tick always preempts device lines),
    /// clearing its pending flag; `None` when nothing is deliverable.
    pub fn acknowledge(&mut self) -> Option<InterruptLine> {
        for idx in 0..InterruptLine::COUNT {
            if self.pending[idx] && self.enabled[idx] {
                self.pending[idx] = false;
                self.delivered_total += 1;
                return Some(Self::line_from_index(idx));
            }
        }
        None
    }

    /// Number of guest attempts to mask/unmask the clock line that were
    /// wrapped by the paravirtualisation layer.
    pub fn wrapped_clock_attempts(&self) -> u64 {
        self.wrapped_clock_attempts
    }

    /// Total interrupts raised since construction.
    pub fn raised_total(&self) -> u64 {
        self.raised_total
    }

    /// Total interrupts delivered (acknowledged) since construction.
    pub fn delivered_total(&self) -> u64 {
        self.delivered_total
    }

    fn line_from_index(idx: usize) -> InterruptLine {
        match idx {
            0 => InterruptLine::ClockTick,
            1 => InterruptLine::Link,
            2 => InterruptLine::ConsoleInput,
            n => InterruptLine::Device((n - 3) as u8),
        }
    }
}

impl Default for InterruptController {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raise_and_acknowledge() {
        let mut intc = InterruptController::new();
        assert_eq!(intc.acknowledge(), None);
        intc.raise(InterruptLine::Device(7));
        assert!(intc.is_pending(InterruptLine::Device(7)));
        assert_eq!(intc.acknowledge(), Some(InterruptLine::Device(7)));
        assert!(!intc.is_pending(InterruptLine::Device(7)));
    }

    #[test]
    fn clock_preempts_devices() {
        let mut intc = InterruptController::new();
        intc.raise(InterruptLine::Device(0));
        intc.raise(InterruptLine::ClockTick);
        assert_eq!(intc.acknowledge(), Some(InterruptLine::ClockTick));
        assert_eq!(intc.acknowledge(), Some(InterruptLine::Device(0)));
    }

    #[test]
    fn pmk_may_mask_any_line() {
        let mut intc = InterruptController::new();
        assert_eq!(
            intc.mask(InterruptLine::ClockTick, PrivilegeLevel::Pmk),
            ParavirtOutcome::Applied
        );
        intc.raise(InterruptLine::ClockTick);
        assert_eq!(intc.acknowledge(), None, "masked line must not deliver");
        intc.unmask(InterruptLine::ClockTick, PrivilegeLevel::Pmk);
        assert_eq!(intc.acknowledge(), Some(InterruptLine::ClockTick));
    }

    #[test]
    fn guest_clock_mask_is_wrapped() {
        let mut intc = InterruptController::new();
        assert_eq!(
            intc.mask(InterruptLine::ClockTick, PrivilegeLevel::Guest),
            ParavirtOutcome::Wrapped
        );
        assert!(intc.is_enabled(InterruptLine::ClockTick));
        assert_eq!(
            intc.unmask(InterruptLine::ClockTick, PrivilegeLevel::Guest),
            ParavirtOutcome::Wrapped
        );
        assert_eq!(intc.wrapped_clock_attempts(), 2);
    }

    #[test]
    fn guest_may_mask_its_device_lines() {
        let mut intc = InterruptController::new();
        assert_eq!(
            intc.mask(InterruptLine::Device(3), PrivilegeLevel::Guest),
            ParavirtOutcome::Applied
        );
        assert!(!intc.is_enabled(InterruptLine::Device(3)));
    }

    #[test]
    fn counters_track_traffic() {
        let mut intc = InterruptController::new();
        intc.raise(InterruptLine::Link);
        intc.raise(InterruptLine::Link); // re-raise while pending
        assert_eq!(intc.raised_total(), 2);
        assert_eq!(intc.acknowledge(), Some(InterruptLine::Link));
        assert_eq!(intc.acknowledge(), None, "edge-latched: one delivery");
        assert_eq!(intc.delivered_total(), 1);
    }
}
