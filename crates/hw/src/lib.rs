//! # air-hw — emulated machine substrate for the AIR reproduction
//!
//! The original AIR prototype ran on an Intel IA-32 target under QEMU, with
//! the SPARC V8 LEON3 as the flight target (Sect. 6 and Sect. 2.1 of the
//! paper). This crate is the hosted substitute for that hardware: a small,
//! fully deterministic machine model providing exactly the facilities the
//! AIR Partition Management Kernel consumes —
//!
//! * a **system clock** producing the periodic tick interrupt the AIR
//!   Partition Scheduler runs on ([`clock`]);
//! * an **interrupt controller** with maskable lines, plus the
//!   paravirtualisation trap of Sect. 2.5: guests cannot really disable the
//!   clock interrupt, attempts are wrapped and reported ([`interrupt`]);
//! * **CPU contexts** with save/restore, cycle accounting and an MMU
//!   context register, for the Partition Dispatcher's context switch
//!   ([`cpu`]);
//! * **physical memory** and a LEON3-style **three-level page-table MMU**
//!   with per-context translation and access-permission faults, the
//!   mechanism the spatial-partitioning descriptors of Fig. 3 are mapped
//!   onto ([`memory`], [`mmu`]);
//! * a **text console** device — the output target of the VITRAL window
//!   manager ([`console`]);
//! * an **inter-node link** carrying interpartition messages between
//!   physically separated platforms ([`link`]), duplicated into a
//!   **redundant pair** with deterministic failover and revertive
//!   switching ([`redundant`]);
//! * seeded **fault injection** — deterministic plans of hardware-level
//!   faults (spurious traps, link loss/corruption, clock interference)
//!   delivered through the same device surfaces the PMK already watches
//!   ([`inject`]).
//!
//! Everything is synchronous and driven by [`machine::Machine::advance_tick`];
//! determinism is what makes the paper's timing experiments (deadline
//! violation detection latency, schedule-switch latency) exactly
//! reproducible in CI.

#![warn(missing_docs)]

pub mod clock;
pub mod console;
pub mod cpu;
pub mod inject;
pub mod interrupt;
pub mod link;
pub mod machine;
pub mod memory;
pub mod mesh;
pub mod mmu;
pub mod redundant;

pub use clock::SystemClock;
pub use console::Console;
pub use cpu::{Cpu, CpuContext};
pub use inject::{FaultClass, FaultEvent, FaultPlan};
pub use interrupt::{InterruptController, InterruptLine};
pub use link::{InterNodeLink, LinkEndpoint};
pub use machine::Machine;
pub use memory::PhysicalMemory;
pub use mesh::{MeshFabric, MeshTopologyError};
pub use mmu::{AccessKind, AccessPermissions, Mmu, MmuContextId, MmuFault, PageFlags};
pub use redundant::{LinkRole, RedundantLink};
