//! The mesh fabric: one point-to-point inter-node link per topology
//! edge.
//!
//! A mesh of N emulated nodes is wired at integration time from
//! [`InterNodeLink`]s — the same latency-modelled, fault-injectable
//! pipes the two-node cluster uses — one per undirected edge. The
//! fabric owns the links and the adjacency; nodes address each other by
//! index and the fabric resolves which link and which endpoint carries
//! the hop. Edges are normalised `(low, high)` with the low-index node
//! on [`LinkEndpoint::A`], and adjacency lists are kept sorted, so every
//! iteration order a simulation can observe is deterministic.

use crate::link::{InterNodeLink, LinkEndpoint};

/// Why a fabric could not be built from an edge list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MeshTopologyError {
    /// An edge names a node index at or beyond the node count.
    EdgeOutOfRange {
        /// The offending edge.
        edge: (usize, usize),
        /// The declared node count.
        nodes: usize,
    },
    /// An edge connects a node to itself.
    SelfEdge {
        /// The node with the self-edge.
        node: usize,
    },
    /// The same undirected edge appears twice.
    DuplicateEdge {
        /// The duplicated edge, normalised `(low, high)`.
        edge: (usize, usize),
    },
}

impl std::fmt::Display for MeshTopologyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MeshTopologyError::EdgeOutOfRange { edge, nodes } => {
                write!(f, "edge ({}, {}) exceeds the {nodes}-node fabric", edge.0, edge.1)
            }
            MeshTopologyError::SelfEdge { node } => {
                write!(f, "node {node} cannot be linked to itself")
            }
            MeshTopologyError::DuplicateEdge { edge } => {
                write!(f, "edge ({}, {}) declared twice", edge.0, edge.1)
            }
        }
    }
}

/// The links and adjacency of an N-node mesh.
#[derive(Debug)]
pub struct MeshFabric {
    nodes: usize,
    /// Normalised `(low, high)` node pairs, sorted; `links[i]` carries
    /// `edges[i]`.
    edges: Vec<(usize, usize)>,
    links: Vec<InterNodeLink>,
    /// Per node: `(peer, edge index)` pairs sorted by peer.
    adjacency: Vec<Vec<(usize, usize)>>,
}

impl MeshFabric {
    /// Builds a fabric over `nodes` nodes from an undirected `edges`
    /// list, every link modelling `latency_ticks` of flight time.
    pub fn new(
        nodes: usize,
        edges: &[(usize, usize)],
        latency_ticks: u64,
    ) -> Result<Self, MeshTopologyError> {
        let mut normalised: Vec<(usize, usize)> = Vec::with_capacity(edges.len());
        for &(a, b) in edges {
            if a == b {
                return Err(MeshTopologyError::SelfEdge { node: a });
            }
            if a >= nodes || b >= nodes {
                return Err(MeshTopologyError::EdgeOutOfRange { edge: (a, b), nodes });
            }
            let edge = if a < b { (a, b) } else { (b, a) };
            normalised.push(edge);
        }
        normalised.sort_unstable();
        if let Some(window) = normalised.windows(2).find(|w| w[0] == w[1]) {
            return Err(MeshTopologyError::DuplicateEdge { edge: window[0] });
        }
        let links = normalised
            .iter()
            .map(|_| InterNodeLink::new(latency_ticks))
            .collect();
        let mut adjacency = vec![Vec::new(); nodes];
        for (idx, &(a, b)) in normalised.iter().enumerate() {
            adjacency[a].push((b, idx));
            adjacency[b].push((a, idx));
        }
        for list in &mut adjacency {
            list.sort_unstable();
        }
        Ok(Self {
            nodes,
            edges: normalised,
            links,
            adjacency,
        })
    }

    /// Number of nodes the fabric wires.
    pub fn node_count(&self) -> usize {
        self.nodes
    }

    /// Number of links (undirected edges).
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The normalised, sorted edge list; index positions match
    /// [`MeshFabric::link_mut`].
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// `node`'s neighbours as sorted `(peer, edge index)` pairs.
    pub fn neighbors(&self, node: usize) -> &[(usize, usize)] {
        static EMPTY: [(usize, usize); 0] = [];
        self.adjacency.get(node).map_or(&EMPTY[..], Vec::as_slice)
    }

    /// The edge index between `a` and `b`, if they are linked.
    pub fn edge_between(&self, a: usize, b: usize) -> Option<usize> {
        let edge = if a < b { (a, b) } else { (b, a) };
        self.edges.binary_search(&edge).ok()
    }

    /// The link carrying edge `index` — the hook fault campaigns use for
    /// in-flight drops, tampering and outages.
    pub fn link_mut(&mut self, index: usize) -> Option<&mut InterNodeLink> {
        self.links.get_mut(index)
    }

    /// The link carrying edge `index`, read-only.
    pub fn link(&self, index: usize) -> Option<&InterNodeLink> {
        self.links.get(index)
    }

    /// Which endpoint `node` occupies on edge `(a, b)`: the low index
    /// sits on [`LinkEndpoint::A`].
    fn endpoint_of(edge: (usize, usize), node: usize) -> LinkEndpoint {
        if node == edge.0 {
            LinkEndpoint::A
        } else {
            LinkEndpoint::B
        }
    }

    /// Sends `payload` from `from` to its direct neighbour `to`; returns
    /// `false` (payload discarded) when no edge links the pair.
    pub fn send(&mut self, from: usize, to: usize, now: u64, payload: Vec<u8>) -> bool {
        let Some(idx) = self.edge_between(from, to) else {
            return false;
        };
        let edge = self.edges[idx];
        let endpoint = Self::endpoint_of(edge, from);
        if let Some(link) = self.links.get_mut(idx) {
            link.send(endpoint, now, payload);
            true
        } else {
            false
        }
    }

    /// Receives the next deliverable payload at `node` from neighbour
    /// `peer`, if any has arrived by `now`.
    pub fn receive_from(&mut self, node: usize, peer: usize, now: u64) -> Option<Vec<u8>> {
        let idx = self.edge_between(node, peer)?;
        let edge = self.edges[idx];
        let endpoint = Self::endpoint_of(edge, node);
        self.links.get_mut(idx)?.receive(endpoint, now)
    }

    /// Total frames handed to all links.
    pub fn sent(&self) -> u64 {
        self.links.iter().map(InterNodeLink::sent).sum()
    }

    /// Total frames delivered by all links.
    pub fn delivered(&self) -> u64 {
        self.links.iter().map(InterNodeLink::delivered).sum()
    }

    /// Total frames destroyed in flight across all links.
    pub fn dropped(&self) -> u64 {
        self.links.iter().map(InterNodeLink::dropped).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_normalises_edges() {
        let fabric = MeshFabric::new(3, &[(1, 0), (2, 1)], 1).expect("valid");
        assert_eq!(fabric.edges(), &[(0, 1), (1, 2)]);
        assert_eq!(fabric.neighbors(1), &[(0, 0), (2, 1)]);
        assert_eq!(fabric.edge_between(2, 1), Some(1));
        assert_eq!(fabric.edge_between(0, 2), None);
        assert_eq!(fabric.node_count(), 3);
        assert_eq!(fabric.edge_count(), 2);
    }

    #[test]
    fn rejects_bad_topologies() {
        assert!(matches!(
            MeshFabric::new(2, &[(0, 0)], 1),
            Err(MeshTopologyError::SelfEdge { node: 0 })
        ));
        assert!(matches!(
            MeshFabric::new(2, &[(0, 3)], 1),
            Err(MeshTopologyError::EdgeOutOfRange { .. })
        ));
        assert!(matches!(
            MeshFabric::new(3, &[(0, 1), (1, 0)], 1),
            Err(MeshTopologyError::DuplicateEdge { edge: (0, 1) })
        ));
    }

    #[test]
    fn delivers_point_to_point_with_latency() {
        let mut fabric = MeshFabric::new(3, &[(0, 1), (1, 2)], 2).expect("valid");
        assert!(fabric.send(0, 1, 10, b"hop".to_vec()));
        assert!(!fabric.send(0, 2, 10, b"no edge".to_vec()));
        assert_eq!(fabric.receive_from(1, 0, 11), None);
        assert_eq!(fabric.receive_from(1, 0, 12), Some(b"hop".to_vec()));
        // The reverse direction of the same edge.
        assert!(fabric.send(1, 0, 12, b"back".to_vec()));
        assert_eq!(fabric.receive_from(0, 1, 14), Some(b"back".to_vec()));
        assert_eq!(fabric.sent(), 2);
        assert_eq!(fabric.delivered(), 2);
    }

    #[test]
    fn fault_hooks_reach_individual_links() {
        let mut fabric = MeshFabric::new(3, &[(0, 1), (1, 2)], 1).expect("valid");
        fabric.send(1, 2, 5, b"doomed".to_vec());
        let idx = fabric.edge_between(1, 2).expect("edge");
        assert!(fabric.link_mut(idx).expect("link").drop_in_flight(LinkEndpoint::B));
        assert_eq!(fabric.receive_from(2, 1, 20), None);
        assert_eq!(fabric.dropped(), 1);
    }
}
