//! Deterministic fault injection: seeded plans of hardware-level faults
//! and the [`Machine`] hooks that realise them.
//!
//! The paper's robustness claims (Sect. 2.4) are about *reactions*: a
//! spatial violation, a spurious trap or a lost link frame must surface
//! through the trap/interrupt path, reach AIR health monitoring, and be
//! answered by the configured recovery action. This module supplies the
//! adversary half of that experiment — a [`FaultPlan`] pins down *when*
//! and *what* to break, and the `Machine` injection hooks break it through
//! the same device surfaces real hardware would use (interrupt lines, the
//! in-flight link queues), never by calling into the PMK directly. The
//! plan is a pure function of its seed, so every campaign run is exactly
//! reproducible.
//!
//! The simulation layers above (`air-pmk`'s spatial manager for MMU
//! mapping denial, `air-core`'s campaign runner for process overruns)
//! contribute the fault classes that need software state the hardware
//! crate cannot see; the class taxonomy lives here so one plan can span
//! all of them.

use crate::interrupt::{InterruptLine, ParavirtOutcome, PrivilegeLevel};
use crate::link::LinkEndpoint;
use crate::machine::Machine;

/// The kinds of fault a plan can schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum FaultClass {
    /// Revoke an MMU mapping of the active partition (realised by the
    /// spatial manager; detected as a memory-protection violation).
    MmuTamper,
    /// Raise a spurious device trap no driver is registered for.
    SpuriousTrap,
    /// Destroy an in-flight inter-node link frame.
    LinkDrop,
    /// Flip bits in an in-flight inter-node link frame.
    LinkBitFlip,
    /// A guest attempt to mask the clock-tick source (paravirtualisation
    /// wraps and reports it — Sect. 2.5).
    ClockInterference,
    /// Stall a process so it overruns its deadline (realised by the
    /// campaign workload's fault switch).
    ProcessOverrun,
    /// Sustained outage of the active link: every send over a window of
    /// ticks is lost (realised by the link's outage clock; recovered from
    /// by retransmission and, past the threshold, failover).
    LinkOutage,
    /// Destroy an in-flight acknowledgement frame, forcing the sender
    /// into a spurious retransmission (realised by a frame-kind predicate
    /// drop; the wire format stays out of this crate).
    AckLoss,
}

impl FaultClass {
    /// The canonical single-node campaign classes, in canonical order.
    /// The link-transport classes ([`FaultClass::LINK`]) are separate:
    /// they need a two-node cluster to mean anything.
    pub const ALL: [FaultClass; 6] = [
        FaultClass::MmuTamper,
        FaultClass::SpuriousTrap,
        FaultClass::LinkDrop,
        FaultClass::LinkBitFlip,
        FaultClass::ClockInterference,
        FaultClass::ProcessOverrun,
    ];

    /// The link-transport fault classes exercised by cluster campaigns.
    pub const LINK: [FaultClass; 4] = [
        FaultClass::LinkDrop,
        FaultClass::LinkBitFlip,
        FaultClass::LinkOutage,
        FaultClass::AckLoss,
    ];

    /// A stable snake_case label (used in reports and JSON).
    pub fn label(self) -> &'static str {
        match self {
            FaultClass::MmuTamper => "mmu_tamper",
            FaultClass::SpuriousTrap => "spurious_trap",
            FaultClass::LinkDrop => "link_drop",
            FaultClass::LinkBitFlip => "link_bit_flip",
            FaultClass::ClockInterference => "clock_interference",
            FaultClass::ProcessOverrun => "process_overrun",
            FaultClass::LinkOutage => "link_outage",
            FaultClass::AckLoss => "ack_loss",
        }
    }
}

impl std::fmt::Display for FaultClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// The tick at which the fault strikes.
    pub at: u64,
    /// What kind of fault.
    pub class: FaultClass,
    /// Class-specific random payload (byte index, bit mask, trap line…);
    /// consumers take the bits they need.
    pub target: u64,
}

/// A deterministic schedule of faults, generated from a seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan (the clean-run baseline).
    pub fn empty() -> Self {
        Self {
            seed: 0,
            events: Vec::new(),
        }
    }

    /// A plan from explicit events (sorted by time, stable).
    pub fn from_events(seed: u64, mut events: Vec<FaultEvent>) -> Self {
        events.sort_by_key(|e| e.at);
        Self { seed, events }
    }

    /// Generates a plan: `per_class` faults of each class in `classes`,
    /// starting at tick `start`, spaced `spacing` ticks apart with up to
    /// `jitter` ticks of seeded forward jitter (`jitter < spacing` keeps
    /// the events ordered and non-colliding). Classes rotate round-robin
    /// over the slots, so bursts of one class never cluster.
    ///
    /// # Panics
    ///
    /// When `spacing` is zero or `jitter >= spacing`.
    pub fn generate(
        seed: u64,
        classes: &[FaultClass],
        per_class: usize,
        start: u64,
        spacing: u64,
        jitter: u64,
    ) -> Self {
        assert!(spacing > 0, "fault spacing must be positive");
        assert!(jitter < spacing, "jitter must stay below the slot spacing");
        let mut rng = InjectRng::new(seed);
        let mut events = Vec::with_capacity(classes.len() * per_class);
        for slot in 0..classes.len() * per_class {
            let class = classes[slot % classes.len()];
            let at = start + slot as u64 * spacing + rng.below(jitter + 1);
            let target = rng.next_u64();
            events.push(FaultEvent { at, class, target });
        }
        Self { seed, events }
    }

    /// The seed the plan was generated from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The scheduled events, ordered by injection tick.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The tick of the last scheduled fault (0 for an empty plan).
    pub fn horizon(&self) -> u64 {
        self.events.last().map_or(0, |e| e.at)
    }

    /// The same plan with every event of `class` removed — the
    /// "campaign minus one fault class" input of differential testing.
    #[must_use]
    pub fn without_class(&self, class: FaultClass) -> Self {
        Self {
            seed: self.seed,
            events: self
                .events
                .iter()
                .copied()
                .filter(|e| e.class != class)
                .collect(),
        }
    }
}

/// Injection hooks: the ways a [`FaultPlan`] reaches the hardware. Each
/// hook perturbs a device the PMK already watches, so detection exercises
/// the production trap/interrupt paths.
impl Machine {
    /// Raises a spurious device trap on line `Device(line)`.
    pub fn inject_spurious_trap(&mut self, line: u8) {
        self.intc.raise(InterruptLine::Device(line));
    }

    /// Simulates a guest trying to mask the clock-tick source. The
    /// paravirtualised controller wraps the attempt (Sect. 2.5); the
    /// returned outcome is `Wrapped` by construction.
    pub fn inject_clock_mask_attempt(&mut self) -> ParavirtOutcome {
        self.intc
            .mask(InterruptLine::ClockTick, PrivilegeLevel::Guest)
    }

    /// Destroys the newest link frame in flight towards this node
    /// (endpoint A). Returns whether a frame was there to lose.
    pub fn inject_link_drop(&mut self) -> bool {
        self.link.drop_in_flight(LinkEndpoint::A)
    }

    /// Corrupts the newest link frame in flight towards this node.
    /// Returns whether a frame was there to corrupt.
    pub fn inject_link_tamper(&mut self, byte_index: usize, mask: u8) -> bool {
        self.link.tamper_in_flight(LinkEndpoint::A, byte_index, mask)
    }

    /// Starts a sustained outage of `duration` ticks on the active link:
    /// every frame sent during the window is lost in both directions.
    pub fn inject_link_outage(&mut self, duration: u64) {
        let now = self.clock.now();
        self.link.begin_outage_active(now, duration);
    }
}

/// The xorshift64* generator used for plan generation — same constants as
/// `air_model::testkit::TestRng`, duplicated here because `air-hw` sits
/// below the model crate in the dependency order.
#[derive(Debug, Clone)]
pub struct InjectRng {
    state: u64,
}

impl InjectRng {
    /// Creates a generator; a zero seed is replaced by a fixed odd value.
    pub fn new(seed: u64) -> Self {
        Self {
            state: if seed == 0 { 0x9E37_79B9_7F4A_7C15 } else { seed },
        }
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// A value in `[0, bound)`; 0 when `bound` is 0.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        self.next_u64() % bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_in_the_seed() {
        let a = FaultPlan::generate(42, &FaultClass::ALL, 3, 100, 50, 10);
        let b = FaultPlan::generate(42, &FaultClass::ALL, 3, 100, 50, 10);
        let c = FaultPlan::generate(43, &FaultClass::ALL, 3, 100, 50, 10);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 18);
    }

    #[test]
    fn events_are_ordered_and_separated() {
        let plan = FaultPlan::generate(7, &FaultClass::ALL, 4, 10, 30, 29);
        for w in plan.events().windows(2) {
            assert!(w[0].at < w[1].at, "events must be strictly ordered: {w:?}");
        }
        assert!(plan.events().first().unwrap().at >= 10);
        assert_eq!(plan.horizon(), plan.events().last().unwrap().at);
    }

    #[test]
    fn classes_rotate_round_robin() {
        let classes = [FaultClass::LinkDrop, FaultClass::SpuriousTrap];
        let plan = FaultPlan::generate(1, &classes, 2, 0, 10, 0);
        let got: Vec<_> = plan.events().iter().map(|e| e.class).collect();
        assert_eq!(
            got,
            vec![
                FaultClass::LinkDrop,
                FaultClass::SpuriousTrap,
                FaultClass::LinkDrop,
                FaultClass::SpuriousTrap,
            ]
        );
    }

    #[test]
    fn without_class_removes_exactly_that_class() {
        let plan = FaultPlan::generate(9, &FaultClass::ALL, 2, 0, 20, 5);
        let reduced = plan.without_class(FaultClass::LinkDrop);
        assert_eq!(reduced.len(), plan.len() - 2);
        assert!(reduced
            .events()
            .iter()
            .all(|e| e.class != FaultClass::LinkDrop));
        // Remaining events keep their original ticks.
        for e in reduced.events() {
            assert!(plan.events().contains(e));
        }
    }

    #[test]
    fn spurious_trap_hook_raises_device_line() {
        let mut m = Machine::default();
        m.inject_spurious_trap(4);
        assert_eq!(m.intc.acknowledge(), Some(InterruptLine::Device(4)));
    }

    #[test]
    fn clock_mask_hook_is_wrapped_not_applied() {
        let mut m = Machine::default();
        assert_eq!(m.inject_clock_mask_attempt(), ParavirtOutcome::Wrapped);
        assert_eq!(m.intc.wrapped_clock_attempts(), 1);
        // The clock line still fires.
        m.advance_tick();
        assert_eq!(m.intc.acknowledge(), Some(InterruptLine::ClockTick));
    }

    #[test]
    fn link_hooks_reach_the_inbound_queue() {
        let mut m = Machine::default();
        assert!(!m.inject_link_drop(), "nothing in flight yet");
        m.link.send(LinkEndpoint::B, 0, vec![1, 2, 3]);
        assert!(m.inject_link_tamper(0, 0x80));
        assert!(m.inject_link_drop());
        assert!(!m.inject_link_drop());
    }

    #[test]
    fn inject_rng_pins_the_xorshift_star_sequence() {
        // xorshift64* with seed 1: x = 1 ^ (1>>12) = 1; x ^= x<<25 →
        // 0x2000001; x ^= x>>27 → 0x2000001; result = x * M.
        let mut rng = InjectRng::new(1);
        assert_eq!(
            rng.next_u64(),
            0x0200_0001_u64.wrapping_mul(0x2545_F491_4F6C_DD1D)
        );
        // Zero seed falls back to the fixed odd constant, never sticks at 0.
        let mut zero = InjectRng::new(0);
        assert_ne!(zero.next_u64(), 0);
    }
}
