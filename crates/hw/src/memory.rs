//! Physical memory of the emulated machine.

use std::fmt;

/// Byte-addressable physical memory with bounds-checked access.
///
/// Spatial partitioning ultimately protects ranges of this memory: the MMU
/// translates partition-virtual addresses into physical frames here, and
/// interpartition communication performs the "memory-to-memory copies not
/// violating spatial separation requirements" (Sect. 2.1) between regions
/// owned by different partitions.
///
/// # Examples
///
/// ```
/// use air_hw::PhysicalMemory;
///
/// let mut mem = PhysicalMemory::new(64 * 1024);
/// mem.write(0x100, b"hello")?;
/// let mut buf = [0u8; 5];
/// mem.read(0x100, &mut buf)?;
/// assert_eq!(&buf, b"hello");
/// # Ok::<(), air_hw::memory::OutOfRange>(())
/// ```
#[derive(Clone)]
pub struct PhysicalMemory {
    bytes: Vec<u8>,
}

/// Error returned when a physical access falls outside installed memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutOfRange {
    /// First byte of the offending access.
    pub addr: u64,
    /// Length of the offending access.
    pub len: usize,
    /// Installed memory size.
    pub size: usize,
}

impl fmt::Display for OutOfRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "physical access [{:#x}, {:#x}) outside installed memory of {} bytes",
            self.addr,
            self.addr + self.len as u64,
            self.size
        )
    }
}

impl std::error::Error for OutOfRange {}

impl PhysicalMemory {
    /// Installs `size` bytes of zeroed memory.
    pub fn new(size: usize) -> Self {
        Self {
            bytes: vec![0; size],
        }
    }

    /// Installed memory size in bytes.
    pub fn size(&self) -> usize {
        self.bytes.len()
    }

    fn check(&self, addr: u64, len: usize) -> Result<usize, OutOfRange> {
        let start = usize::try_from(addr).map_err(|_| OutOfRange {
            addr,
            len,
            size: self.bytes.len(),
        })?;
        let end = start.checked_add(len).ok_or(OutOfRange {
            addr,
            len,
            size: self.bytes.len(),
        })?;
        if end > self.bytes.len() {
            return Err(OutOfRange {
                addr,
                len,
                size: self.bytes.len(),
            });
        }
        Ok(start)
    }

    /// Reads `buf.len()` bytes starting at physical `addr`.
    ///
    /// # Errors
    ///
    /// [`OutOfRange`] if any byte of the access is beyond installed memory;
    /// no partial reads occur.
    pub fn read(&self, addr: u64, buf: &mut [u8]) -> Result<(), OutOfRange> {
        let start = self.check(addr, buf.len())?;
        buf.copy_from_slice(&self.bytes[start..start + buf.len()]);
        Ok(())
    }

    /// Writes `data` starting at physical `addr`.
    ///
    /// # Errors
    ///
    /// [`OutOfRange`] if any byte of the access is beyond installed memory;
    /// no partial writes occur.
    pub fn write(&mut self, addr: u64, data: &[u8]) -> Result<(), OutOfRange> {
        let start = self.check(addr, data.len())?;
        self.bytes[start..start + data.len()].copy_from_slice(data);
        Ok(())
    }

    /// Copies `len` bytes from `src` to `dst` within physical memory — the
    /// primitive behind local interpartition message transfer.
    ///
    /// # Errors
    ///
    /// [`OutOfRange`] if either range is beyond installed memory.
    pub fn copy_within(&mut self, src: u64, dst: u64, len: usize) -> Result<(), OutOfRange> {
        let s = self.check(src, len)?;
        let d = self.check(dst, len)?;
        self.bytes.copy_within(s..s + len, d);
        Ok(())
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`OutOfRange`] if `addr` is beyond installed memory.
    pub fn read_u8(&self, addr: u64) -> Result<u8, OutOfRange> {
        let mut b = [0u8; 1];
        self.read(addr, &mut b)?;
        Ok(b[0])
    }

    /// Writes one byte.
    ///
    /// # Errors
    ///
    /// [`OutOfRange`] if `addr` is beyond installed memory.
    pub fn write_u8(&mut self, addr: u64, value: u8) -> Result<(), OutOfRange> {
        self.write(addr, &[value])
    }
}

impl fmt::Debug for PhysicalMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PhysicalMemory")
            .field("size", &self.bytes.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_roundtrip() {
        let mut m = PhysicalMemory::new(1024);
        m.write(10, &[1, 2, 3]).unwrap();
        let mut buf = [0u8; 3];
        m.read(10, &mut buf).unwrap();
        assert_eq!(buf, [1, 2, 3]);
        assert_eq!(m.read_u8(11).unwrap(), 2);
    }

    #[test]
    fn bounds_are_enforced_exactly() {
        let mut m = PhysicalMemory::new(16);
        assert!(m.write(14, &[0, 0]).is_ok());
        let err = m.write(15, &[0, 0]).unwrap_err();
        assert_eq!(err.addr, 15);
        assert_eq!(err.len, 2);
        let mut buf = [0u8; 1];
        assert!(m.read(16, &mut buf).is_err());
    }

    #[test]
    fn copy_within_moves_payloads() {
        let mut m = PhysicalMemory::new(64);
        m.write(0, b"message").unwrap();
        m.copy_within(0, 32, 7).unwrap();
        let mut buf = [0u8; 7];
        m.read(32, &mut buf).unwrap();
        assert_eq!(&buf, b"message");
        assert!(m.copy_within(60, 0, 8).is_err());
    }

    #[test]
    fn huge_address_is_rejected_not_panicking() {
        let m = PhysicalMemory::new(16);
        let mut buf = [0u8; 1];
        assert!(m.read(u64::MAX, &mut buf).is_err());
    }
}
