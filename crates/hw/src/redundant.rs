//! Dual redundant inter-node links with deterministic failover.
//!
//! Aerospace data buses are duplicated: when the active channel degrades
//! past a confidence threshold, traffic fails over to the standby channel,
//! and reverts after a probation period (revertive switching). This module
//! models that policy over two [`InterNodeLink`]s. The loss evidence comes
//! from *above* — the reliable transport reports each retransmission
//! timeout round via [`RedundantLink::record_loss`] and each clean
//! acknowledgement via [`RedundantLink::record_delivery`] — because the
//! physical layer itself cannot distinguish a lost frame from a silent
//! peer. Everything is tick-driven and seeded-input-deterministic.

use crate::link::{InterNodeLink, LinkEndpoint};

/// Which physical link of the redundant pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkRole {
    /// The preferred link (active after reset and after revert).
    Primary,
    /// The standby link (active only while failed over).
    Secondary,
}

impl LinkRole {
    /// The other role of the pair.
    pub fn other(self) -> LinkRole {
        match self {
            LinkRole::Primary => LinkRole::Secondary,
            LinkRole::Secondary => LinkRole::Primary,
        }
    }

    /// A stable snake_case label (used in traces and JSON).
    pub fn label(self) -> &'static str {
        match self {
            LinkRole::Primary => "primary",
            LinkRole::Secondary => "secondary",
        }
    }

    fn index(self) -> usize {
        match self {
            LinkRole::Primary => 0,
            LinkRole::Secondary => 1,
        }
    }
}

impl std::fmt::Display for LinkRole {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A redundant pair of point-to-point links with one active side.
///
/// Sends go out on the active link; receives drain both (primary first,
/// deterministically), because frames launched before a failover are still
/// in flight on the old link. Failover trips when the consecutive-loss
/// counter reaches the threshold; a threshold of zero disables failover.
///
/// # Examples
///
/// ```
/// use air_hw::redundant::{LinkRole, RedundantLink};
///
/// let mut link = RedundantLink::new(2, 2, 2, 100);
/// assert_eq!(link.active(), LinkRole::Primary);
/// assert_eq!(link.record_loss(10), None);
/// assert_eq!(link.record_loss(11), Some(LinkRole::Secondary));
/// ```
#[derive(Debug, Clone)]
pub struct RedundantLink {
    links: [InterNodeLink; 2],
    active: LinkRole,
    consecutive_losses: u32,
    failover_threshold: u32,
    revert_after_ticks: u64,
    failed_over_at: Option<u64>,
    failovers: u64,
    reverts: u64,
}

impl RedundantLink {
    /// Creates a redundant pair. `failover_threshold = 0` disables
    /// failover (single-link behaviour on the primary).
    pub fn new(
        primary_latency: u64,
        secondary_latency: u64,
        failover_threshold: u32,
        revert_after_ticks: u64,
    ) -> Self {
        Self {
            links: [
                InterNodeLink::new(primary_latency),
                InterNodeLink::new(secondary_latency),
            ],
            active: LinkRole::Primary,
            consecutive_losses: 0,
            failover_threshold,
            revert_after_ticks,
            failed_over_at: None,
            failovers: 0,
            reverts: 0,
        }
    }

    /// The currently active role.
    pub fn active(&self) -> LinkRole {
        self.active
    }

    /// The physical link playing `role`.
    pub fn link(&self, role: LinkRole) -> &InterNodeLink {
        &self.links[role.index()]
    }

    /// Mutable access to the physical link playing `role` (fault
    /// injection and tests).
    pub fn link_mut(&mut self, role: LinkRole) -> &mut InterNodeLink {
        &mut self.links[role.index()]
    }

    /// Sends on the active link.
    pub fn send(&mut self, from: LinkEndpoint, now: u64, payload: Vec<u8>) {
        self.links[self.active.index()].send(from, now, payload);
    }

    /// Receives the oldest deliverable frame addressed to `at`, draining
    /// the primary link before the secondary (stable order).
    pub fn receive(&mut self, at: LinkEndpoint, now: u64) -> Option<Vec<u8>> {
        if let Some(p) = self.links[0].receive(at, now) {
            return Some(p);
        }
        self.links[1].receive(at, now)
    }

    /// Whether either link has a deliverable frame for `at`.
    pub fn has_deliverable(&self, at: LinkEndpoint, now: u64) -> bool {
        self.links
            .iter()
            .any(|l| l.has_deliverable(at, now))
    }

    /// Records one loss round (a retransmission timeout reported by the
    /// transport). Crossing the failover threshold switches the active
    /// link and returns the *new* active role; otherwise `None`.
    pub fn record_loss(&mut self, now: u64) -> Option<LinkRole> {
        self.consecutive_losses += 1;
        if self.failover_threshold == 0 || self.consecutive_losses < self.failover_threshold {
            return None;
        }
        self.active = self.active.other();
        self.consecutive_losses = 0;
        self.failovers += 1;
        self.failed_over_at = match self.active {
            LinkRole::Secondary => Some(now),
            LinkRole::Primary => None,
        };
        Some(self.active)
    }

    /// Records a clean acknowledgement: the loss streak resets.
    pub fn record_delivery(&mut self) {
        self.consecutive_losses = 0;
    }

    /// Revertive switching: after `revert_after_ticks` on the secondary,
    /// traffic returns to the primary for a fresh probation. Returns
    /// whether a revert happened at this call.
    pub fn poll_revert(&mut self, now: u64) -> bool {
        let Some(at) = self.failed_over_at else {
            return false;
        };
        if self.active != LinkRole::Secondary || now.saturating_sub(at) < self.revert_after_ticks {
            return false;
        }
        self.active = LinkRole::Primary;
        self.failed_over_at = None;
        self.consecutive_losses = 0;
        self.reverts += 1;
        true
    }

    /// Starts a sustained outage of `duration` ticks on the active link.
    pub fn begin_outage_active(&mut self, now: u64, duration: u64) {
        self.links[self.active.index()].begin_outage(now + duration);
    }

    /// Whether the active link is inside a sustained outage at `now`.
    pub fn in_outage(&self, now: u64) -> bool {
        self.links[self.active.index()].in_outage(now)
    }

    /// Configures deterministic loss on the active link.
    pub fn set_drop_every(&mut self, n: u64) {
        self.links[self.active.index()].set_drop_every(n);
    }

    /// The active link's propagation latency.
    pub fn latency_ticks(&self) -> u64 {
        self.links[self.active.index()].latency_ticks()
    }

    /// Destroys the newest in-flight frame towards `to`, preferring the
    /// active link. Returns whether a frame was there to lose.
    pub fn drop_in_flight(&mut self, to: LinkEndpoint) -> bool {
        let active = self.active.index();
        self.links[active].drop_in_flight(to) || self.links[1 - active].drop_in_flight(to)
    }

    /// Destroys the newest matching in-flight frame towards `to`,
    /// preferring the active link. Returns whether a frame matched.
    pub fn drop_in_flight_where(
        &mut self,
        to: LinkEndpoint,
        pred: impl Fn(&[u8]) -> bool,
    ) -> bool {
        let active = self.active.index();
        self.links[active].drop_in_flight_where(to, &pred)
            || self.links[1 - active].drop_in_flight_where(to, &pred)
    }

    /// Corrupts the newest in-flight frame towards `to`, preferring the
    /// active link. Returns whether a frame was there to corrupt.
    pub fn tamper_in_flight(&mut self, to: LinkEndpoint, byte_index: usize, mask: u8) -> bool {
        let active = self.active.index();
        self.links[active].tamper_in_flight(to, byte_index, mask)
            || self.links[1 - active].tamper_in_flight(to, byte_index, mask)
    }

    /// Current consecutive-loss streak on the active link.
    pub fn consecutive_losses(&self) -> u32 {
        self.consecutive_losses
    }

    /// The configured failover threshold (0 = failover disabled).
    pub fn failover_threshold(&self) -> u32 {
        self.failover_threshold
    }

    /// Failovers performed so far (in either direction).
    pub fn failovers(&self) -> u64 {
        self.failovers
    }

    /// Revertive switches back to the primary so far.
    pub fn reverts(&self) -> u64 {
        self.reverts
    }

    /// Frames sent over both links (including dropped ones).
    pub fn sent(&self) -> u64 {
        self.links.iter().map(InterNodeLink::sent).sum()
    }

    /// Frames dropped over both links.
    pub fn dropped(&self) -> u64 {
        self.links.iter().map(InterNodeLink::dropped).sum()
    }

    /// Frames delivered over both links.
    pub fn delivered(&self) -> u64 {
        self.links.iter().map(InterNodeLink::delivered).sum()
    }

    /// Frames corrupted in flight over both links.
    pub fn tampered(&self) -> u64 {
        self.links.iter().map(InterNodeLink::tampered).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> RedundantLink {
        RedundantLink::new(1, 3, 2, 50)
    }

    #[test]
    fn failover_trips_at_threshold_and_switches_latency() {
        let mut link = pair();
        assert_eq!(link.latency_ticks(), 1);
        assert_eq!(link.record_loss(10), None);
        assert_eq!(link.record_loss(12), Some(LinkRole::Secondary));
        assert_eq!(link.active(), LinkRole::Secondary);
        assert_eq!(link.latency_ticks(), 3);
        assert_eq!(link.failovers(), 1);
        assert_eq!(link.consecutive_losses(), 0);
    }

    #[test]
    fn clean_delivery_resets_the_streak() {
        let mut link = pair();
        assert_eq!(link.record_loss(0), None);
        link.record_delivery();
        assert_eq!(link.record_loss(1), None, "streak restarted");
        assert_eq!(link.active(), LinkRole::Primary);
    }

    #[test]
    fn zero_threshold_disables_failover() {
        let mut link = RedundantLink::new(1, 1, 0, 50);
        for t in 0..100 {
            assert_eq!(link.record_loss(t), None);
        }
        assert_eq!(link.active(), LinkRole::Primary);
    }

    #[test]
    fn revert_returns_to_primary_after_probation() {
        let mut link = pair();
        link.record_loss(0);
        link.record_loss(1);
        assert_eq!(link.active(), LinkRole::Secondary);
        assert!(!link.poll_revert(50), "probation not over (failed over at 1)");
        assert!(link.poll_revert(51));
        assert_eq!(link.active(), LinkRole::Primary);
        assert_eq!(link.reverts(), 1);
        assert!(!link.poll_revert(200), "nothing to revert");
    }

    #[test]
    fn receive_drains_both_links_primary_first() {
        let mut link = pair();
        link.send(LinkEndpoint::B, 0, vec![1]); // primary, latency 1
        link.record_loss(0);
        link.record_loss(0);
        link.send(LinkEndpoint::B, 0, vec![2]); // secondary, latency 3
        assert_eq!(link.receive(LinkEndpoint::A, 5), Some(vec![1]));
        assert_eq!(link.receive(LinkEndpoint::A, 5), Some(vec![2]));
        assert!(!link.has_deliverable(LinkEndpoint::A, 5));
        assert_eq!(link.sent(), 2);
        assert_eq!(link.delivered(), 2);
    }

    #[test]
    fn outage_applies_to_the_active_link_only() {
        let mut link = pair();
        link.begin_outage_active(0, 10);
        assert!(link.in_outage(5));
        link.send(LinkEndpoint::A, 5, vec![9]);
        assert_eq!(link.dropped(), 1);
        link.record_loss(5);
        link.record_loss(6);
        assert_eq!(link.active(), LinkRole::Secondary);
        assert!(!link.in_outage(7), "secondary is healthy");
        link.send(LinkEndpoint::A, 7, vec![8]);
        assert_eq!(link.receive(LinkEndpoint::B, 10), Some(vec![8]));
    }

    #[test]
    fn injection_prefers_the_active_link() {
        let mut link = pair();
        link.record_loss(0);
        link.record_loss(0); // active: secondary
        link.send(LinkEndpoint::A, 0, vec![1]); // on secondary
        link.link_mut(LinkRole::Primary).send(LinkEndpoint::A, 0, vec![2]);
        assert!(link.drop_in_flight(LinkEndpoint::B));
        // The secondary's frame went first.
        assert!(!link.link(LinkRole::Secondary).has_deliverable(LinkEndpoint::B, 100));
        assert!(link.drop_in_flight(LinkEndpoint::B), "falls back to primary");
        assert!(!link.drop_in_flight(LinkEndpoint::B));
    }
}
