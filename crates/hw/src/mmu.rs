//! LEON3-style three-level page-table MMU: the hardware mechanism spatial
//! partitioning is mapped onto.
//!
//! "The high-level abstract spatial partitioning description needs to be
//! mapped in runtime to the specific processor memory protection
//! mechanisms… An example of such mapping is the Gaisler SPARC V8 LEON3
//! three-level page-based MMU core" (Sect. 2.1, Fig. 3). This module models
//! that core:
//!
//! * a **context table** selecting one address space per partition;
//! * three table levels covering a 32-bit virtual space — level 1 indexes
//!   256 × 16 MiB regions, level 2 64 × 256 KiB regions, level 3
//!   64 × 4 KiB pages (the SPARC V8 reference MMU split 8/6/6 + 12-bit
//!   page offset);
//! * leaf entries allowed at **any** level, so large ranges map with one
//!   16 MiB or 256 KiB entry as on the real hardware;
//! * SPARC-style access-permission codes checked against the access kind
//!   and privilege level, raising [`MmuFault::Protection`] on violation —
//!   the event AIR health monitoring classifies as a memory protection
//!   violation;
//! * a direct-mapped **TLB** in front of the table walk, mirroring the
//!   untagged translation caches of the era's hardware: it is flushed on
//!   context switch (partition dispatch) and on unmap, so a hit can never
//!   leak a translation across partitions. Permissions are re-checked on
//!   every access and faults are never cached.

use std::collections::HashMap;
use std::fmt;

/// Page size at level 3 (4 KiB) and required mapping granularity.
pub const PAGE_SIZE: u64 = 4096;
/// Region covered by one level-2 entry (256 KiB).
pub const L2_REGION: u64 = 64 * PAGE_SIZE;
/// Region covered by one level-1 entry (16 MiB).
pub const L1_REGION: u64 = 64 * L2_REGION;

/// An MMU context: one per partition address space, selected by the
/// context register on partition dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct MmuContextId(pub u32);

impl fmt::Display for MmuContextId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mmu-ctx{}", self.0)
    }
}

/// The kind of memory access being translated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Data read.
    Read,
    /// Data write.
    Write,
    /// Instruction fetch.
    Execute,
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessKind::Read => f.write_str("read"),
            AccessKind::Write => f.write_str("write"),
            AccessKind::Execute => f.write_str("execute"),
        }
    }
}

/// Privilege level of the access (SPARC supervisor bit).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Privilege {
    /// Application code.
    User,
    /// POS kernel or AIR PMK code.
    Supervisor,
}

/// Permission triple for one privilege level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct AccessPermissions {
    /// Data reads permitted.
    pub read: bool,
    /// Data writes permitted.
    pub write: bool,
    /// Instruction fetches permitted.
    pub execute: bool,
}

impl AccessPermissions {
    /// No access at all.
    pub const NONE: Self = Self {
        read: false,
        write: false,
        execute: false,
    };
    /// Read-only.
    pub const R: Self = Self {
        read: true,
        write: false,
        execute: false,
    };
    /// Read + write.
    pub const RW: Self = Self {
        read: true,
        write: true,
        execute: false,
    };
    /// Read + execute.
    pub const RX: Self = Self {
        read: true,
        write: false,
        execute: true,
    };
    /// Read + write + execute.
    pub const RWX: Self = Self {
        read: true,
        write: true,
        execute: true,
    };

    /// Whether `kind` is permitted.
    pub fn allows(self, kind: AccessKind) -> bool {
        match kind {
            AccessKind::Read => self.read,
            AccessKind::Write => self.write,
            AccessKind::Execute => self.execute,
        }
    }
}

/// Per-page permissions for both privilege levels, as encoded by the SPARC
/// V8 `ACC` field of a page table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PageFlags {
    /// Permissions for user-level accesses.
    pub user: AccessPermissions,
    /// Permissions for supervisor-level accesses.
    pub supervisor: AccessPermissions,
}

impl PageFlags {
    /// Decodes a SPARC V8 reference-MMU `ACC` code (0–7).
    ///
    /// | ACC | user | supervisor |
    /// |-----|------|------------|
    /// | 0 | R | R | | 1 | RW | RW | | 2 | RX | RX | | 3 | RWX | RWX |
    /// | 4 | X | X | | 5 | R | RW | | 6 | — | RX | | 7 | — | RWX |
    ///
    /// # Panics
    ///
    /// Panics if `acc > 7`.
    pub fn from_sparc_acc(acc: u8) -> Self {
        let x = AccessPermissions {
            read: false,
            write: false,
            execute: true,
        };
        match acc {
            0 => Self { user: AccessPermissions::R, supervisor: AccessPermissions::R },
            1 => Self { user: AccessPermissions::RW, supervisor: AccessPermissions::RW },
            2 => Self { user: AccessPermissions::RX, supervisor: AccessPermissions::RX },
            3 => Self { user: AccessPermissions::RWX, supervisor: AccessPermissions::RWX },
            4 => Self { user: x, supervisor: x },
            5 => Self { user: AccessPermissions::R, supervisor: AccessPermissions::RW },
            6 => Self { user: AccessPermissions::NONE, supervisor: AccessPermissions::RX },
            7 => Self { user: AccessPermissions::NONE, supervisor: AccessPermissions::RWX },
            other => panic!("SPARC ACC code out of range: {other}"), // lint: allow(panic) -- 3-bit field, values 0..=7 are exhaustive; hardware halt
        }
    }

    /// Permissions applying to accesses at `privilege`.
    pub fn for_privilege(self, privilege: Privilege) -> AccessPermissions {
        match privilege {
            Privilege::User => self.user,
            Privilege::Supervisor => self.supervisor,
        }
    }
}

/// A translation or protection fault, delivered to the PMK as a trap and
/// routed to health monitoring as a (partition-level) memory protection
/// violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum MmuFault {
    /// No valid mapping covers the virtual address.
    Unmapped {
        /// Faulting virtual address.
        va: u64,
    },
    /// A mapping exists but forbids this access.
    Protection {
        /// Faulting virtual address.
        va: u64,
        /// The attempted access kind.
        kind: AccessKind,
        /// The privilege level of the attempt.
        privilege: Privilege,
    },
    /// The context register holds an id with no context table entry.
    InvalidContext {
        /// The unknown context.
        context: MmuContextId,
    },
}

impl fmt::Display for MmuFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MmuFault::Unmapped { va } => write!(f, "unmapped virtual address {va:#x}"),
            MmuFault::Protection { va, kind, privilege } => write!(
                f,
                "protection violation: {kind} at {va:#x} from {privilege:?} level"
            ),
            MmuFault::InvalidContext { context } => {
                write!(f, "invalid MMU context {context}")
            }
        }
    }
}

impl std::error::Error for MmuFault {}

/// Errors from establishing mappings (integration-time mistakes, distinct
/// from runtime [`MmuFault`]s).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum MapError {
    /// Address or size not aligned to [`PAGE_SIZE`].
    Misaligned {
        /// The misaligned value.
        value: u64,
    },
    /// The range overlaps an existing mapping in the same context.
    Overlap {
        /// Start of the conflicting page.
        va: u64,
    },
    /// The context does not exist.
    InvalidContext {
        /// The unknown context.
        context: MmuContextId,
    },
    /// The range wraps past the top of the 32-bit virtual space.
    OutOfVirtualSpace,
}

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapError::Misaligned { value } => {
                write!(f, "value {value:#x} is not 4 KiB-aligned")
            }
            MapError::Overlap { va } => {
                write!(f, "mapping overlaps existing page at {va:#x}")
            }
            MapError::InvalidContext { context } => {
                write!(f, "invalid MMU context {context}")
            }
            MapError::OutOfVirtualSpace => f.write_str("range exceeds the 32-bit virtual space"),
        }
    }
}

impl std::error::Error for MapError {}

/// A leaf page-table entry: physical base plus permissions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Pte {
    pa_base: u64,
    flags: PageFlags,
}

/// One table level: sparse children and leaves.
#[derive(Debug, Clone, Default)]
struct Table {
    /// Leaf entries at this level, by index.
    leaves: HashMap<u16, Pte>,
    /// Next-level tables, by index.
    children: HashMap<u16, Table>,
}

/// Per-context address space: the root (level-1) table.
#[derive(Debug, Clone, Default)]
struct AddressSpace {
    root: Table,
}

/// Number of entries in the direct-mapped TLB.
pub const TLB_ENTRIES: usize = 64;

/// Sentinel VPN marking an invalid TLB entry (a real VPN of a 32-bit
/// virtual space never exceeds 20 bits).
const TLB_INVALID_VPN: u64 = u64::MAX;

/// One direct-mapped TLB entry: a 4 KiB translation plus its permissions.
#[derive(Debug, Clone, Copy)]
struct TlbEntry {
    /// Virtual page number (`va >> 12`); [`TLB_INVALID_VPN`] when empty.
    vpn: u64,
    /// Physical base address of the page.
    pa_page: u64,
    /// Page permissions, re-checked on every hit.
    flags: PageFlags,
}

impl TlbEntry {
    const INVALID: Self = Self {
        vpn: TLB_INVALID_VPN,
        pa_page: 0,
        flags: PageFlags {
            user: AccessPermissions::NONE,
            supervisor: AccessPermissions::NONE,
        },
    };
}

/// The direct-mapped translation lookaside buffer.
///
/// Untagged, like the translation caches this models: entries belong to
/// `current` and the whole buffer is flushed whenever a different context
/// is activated, so partition isolation never rests on TLB state. Large
/// leaves (16 MiB / 256 KiB) are cached page by page — each referenced
/// 4 KiB page gets its own entry.
#[derive(Debug, Clone)]
struct Tlb {
    entries: [TlbEntry; TLB_ENTRIES],
    /// Context the cached entries belong to.
    current: Option<MmuContextId>,
    hits: u64,
    misses: u64,
    flushes: u64,
}

impl Default for Tlb {
    fn default() -> Self {
        Self {
            entries: [TlbEntry::INVALID; TLB_ENTRIES],
            current: None,
            hits: 0,
            misses: 0,
            flushes: 0,
        }
    }
}

impl Tlb {
    fn flush(&mut self) {
        self.entries = [TlbEntry::INVALID; TLB_ENTRIES];
        self.flushes += 1;
    }
}

/// The three-level software MMU.
///
/// # Examples
///
/// ```
/// use air_hw::mmu::{AccessKind, Mmu, PageFlags, Privilege, PAGE_SIZE};
///
/// let mut mmu = Mmu::new();
/// let ctx = mmu.create_context();
/// mmu.map(ctx, 0x4000_0000, 0x10_0000, PAGE_SIZE, PageFlags::from_sparc_acc(1))?;
/// let pa = mmu.translate(ctx, 0x4000_0010, AccessKind::Read, Privilege::User)?;
/// assert_eq!(pa, 0x10_0010);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Mmu {
    contexts: HashMap<MmuContextId, AddressSpace>,
    next_context: u32,
    tlb: Tlb,
    tlb_enabled: bool,
    translations: u64,
    faults: u64,
}

impl Default for Mmu {
    fn default() -> Self {
        Self::new()
    }
}

impl Mmu {
    /// Creates an MMU with no contexts and the TLB enabled.
    pub fn new() -> Self {
        Self {
            contexts: HashMap::new(),
            next_context: 0,
            tlb: Tlb::default(),
            tlb_enabled: true,
            translations: 0,
            faults: 0,
        }
    }

    /// Enables or disables the TLB; disabling flushes it. With the TLB off
    /// every translation takes the three-level walk — the comparison
    /// baseline for benchmarks and the differential tests.
    pub fn set_tlb_enabled(&mut self, enabled: bool) {
        if !enabled {
            self.tlb.flush();
            self.tlb.current = None;
        }
        self.tlb_enabled = enabled;
    }

    /// Whether the TLB is enabled.
    pub fn tlb_enabled(&self) -> bool {
        self.tlb_enabled
    }

    /// TLB hits since boot.
    pub fn tlb_hits(&self) -> u64 {
        self.tlb.hits
    }

    /// TLB misses since boot.
    pub fn tlb_misses(&self) -> u64 {
        self.tlb.misses
    }

    /// TLB flushes since boot (context switches, unmaps, disables).
    pub fn tlb_flushes(&self) -> u64 {
        self.tlb.flushes
    }

    /// Activates `context` for subsequent translations, flushing the TLB
    /// when it differs from the currently-active one — the partition
    /// dispatcher calls this on every spatial switch, exactly like loading
    /// the hardware context register.
    ///
    /// [`translate`](Self::translate) performs the same flush implicitly
    /// when handed a different context; an explicit activation just makes
    /// the switch cost land in the dispatcher where it belongs.
    pub fn activate_context(&mut self, context: MmuContextId) {
        if self.tlb.current != Some(context) {
            self.tlb.flush();
            self.tlb.current = Some(context);
        }
    }

    /// Allocates a fresh, empty context (one per partition).
    pub fn create_context(&mut self) -> MmuContextId {
        let id = MmuContextId(self.next_context);
        self.next_context += 1;
        self.contexts.insert(id, AddressSpace::default());
        id
    }

    /// Whether `context` exists.
    pub fn has_context(&self, context: MmuContextId) -> bool {
        self.contexts.contains_key(&context)
    }

    /// Number of translations performed.
    pub fn translations(&self) -> u64 {
        self.translations
    }

    /// Number of faults raised.
    pub fn faults(&self) -> u64 {
        self.faults
    }

    /// Maps `[va, va+size)` to `[pa, pa+size)` in `context` with `flags`.
    ///
    /// Greedily uses 16 MiB level-1 and 256 KiB level-2 leaf entries where
    /// alignment allows, 4 KiB pages otherwise — as an integration tool
    /// would when loading the spatial-partitioning descriptors.
    ///
    /// # Errors
    ///
    /// [`MapError`] on misalignment, overlap with an existing mapping,
    /// unknown context, or virtual-space overflow.
    pub fn map(
        &mut self,
        context: MmuContextId,
        va: u64,
        pa: u64,
        size: u64,
        flags: PageFlags,
    ) -> Result<(), MapError> {
        for value in [va, pa, size] {
            if value % PAGE_SIZE != 0 {
                return Err(MapError::Misaligned { value });
            }
        }
        let end = va.checked_add(size).ok_or(MapError::OutOfVirtualSpace)?;
        if end > 1 << 32 {
            return Err(MapError::OutOfVirtualSpace);
        }
        // Pre-check the whole range for overlaps so the map is atomic.
        {
            let space = self
                .contexts
                .get(&context)
                .ok_or(MapError::InvalidContext { context })?;
            let mut cur = va;
            while cur < end {
                if walk(&space.root, cur).is_some() {
                    return Err(MapError::Overlap { va: cur });
                }
                cur += PAGE_SIZE;
            }
        }
        let space = self
            .contexts
            .get_mut(&context)
            .expect("checked above"); // lint: allow(panic) -- presence verified by the loop above
        let mut cur_va = va;
        let mut cur_pa = pa;
        while cur_va < end {
            let remaining = end - cur_va;
            let (idx1, idx2, idx3) = split(cur_va);
            let step = if cur_va.is_multiple_of(L1_REGION) && cur_pa.is_multiple_of(L1_REGION) && remaining >= L1_REGION
            {
                space.root.leaves.insert(
                    idx1,
                    Pte {
                        pa_base: cur_pa,
                        flags,
                    },
                );
                L1_REGION
            } else if cur_va.is_multiple_of(L2_REGION) && cur_pa.is_multiple_of(L2_REGION) && remaining >= L2_REGION {
                let l2 = space.root.children.entry(idx1).or_default();
                l2.leaves.insert(
                    idx2,
                    Pte {
                        pa_base: cur_pa,
                        flags,
                    },
                );
                L2_REGION
            } else {
                let l2 = space.root.children.entry(idx1).or_default();
                let l3 = l2.children.entry(idx2).or_default();
                l3.leaves.insert(
                    idx3,
                    Pte {
                        pa_base: cur_pa,
                        flags,
                    },
                );
                PAGE_SIZE
            };
            cur_va += step;
            cur_pa += step;
        }
        Ok(())
    }

    /// Removes every mapping of `[va, va+size)` in `context`.
    ///
    /// Pages in the range that are not mapped are skipped. Large leaf
    /// entries are removed when the range covers their start — partial
    /// unmapping of a 16 MiB/256 KiB leaf is not supported (the descriptor
    /// loader always unmaps what it mapped).
    ///
    /// # Errors
    ///
    /// [`MapError::InvalidContext`] when `context` does not exist;
    /// [`MapError::Misaligned`] for unaligned bounds.
    pub fn unmap(&mut self, context: MmuContextId, va: u64, size: u64) -> Result<(), MapError> {
        for value in [va, size] {
            if value % PAGE_SIZE != 0 {
                return Err(MapError::Misaligned { value });
            }
        }
        let space = self
            .contexts
            .get_mut(&context)
            .ok_or(MapError::InvalidContext { context })?;
        // Flush-on-remap: cached translations of this context may be about
        // to go stale. (Mapping needs no flush — absences are not cached.)
        if self.tlb.current == Some(context) {
            self.tlb.flush();
        }
        let end = va.saturating_add(size);
        let mut cur = va;
        while cur < end {
            let (idx1, idx2, idx3) = split(cur);
            if space.root.leaves.contains_key(&idx1) && cur.is_multiple_of(L1_REGION) {
                space.root.leaves.remove(&idx1);
                cur += L1_REGION;
                continue;
            }
            if let Some(l2) = space.root.children.get_mut(&idx1) {
                if l2.leaves.contains_key(&idx2) && cur.is_multiple_of(L2_REGION) {
                    l2.leaves.remove(&idx2);
                    cur += L2_REGION;
                    continue;
                }
                if let Some(l3) = l2.children.get_mut(&idx2) {
                    l3.leaves.remove(&idx3);
                }
            }
            cur += PAGE_SIZE;
        }
        Ok(())
    }

    /// Translates virtual address `va` in `context` for an access of
    /// `kind` at `privilege`, returning the physical address.
    ///
    /// With the TLB enabled, a hit costs one array index and a permission
    /// check; a miss takes the three-level walk and installs the page.
    /// Translating against a context other than the active one flushes the
    /// TLB first (see [`activate_context`](Self::activate_context)) —
    /// isolation never depends on cached state.
    ///
    /// # Errors
    ///
    /// [`MmuFault`] when the context is invalid, the address unmapped, or
    /// the page's permissions forbid the access — the PMK routes the fault
    /// to health monitoring.
    pub fn translate(
        &mut self,
        context: MmuContextId,
        va: u64,
        kind: AccessKind,
        privilege: Privilege,
    ) -> Result<u64, MmuFault> {
        self.translations += 1;
        let vpn = va >> 12;
        if self.tlb_enabled {
            self.activate_context(context);
            let entry = &self.tlb.entries[(vpn as usize) % TLB_ENTRIES];
            if entry.vpn == vpn {
                self.tlb.hits += 1;
                // Permissions are re-checked on every hit; protection
                // faults are decided by the PTE, never by cache state.
                if !entry.flags.for_privilege(privilege).allows(kind) {
                    self.faults += 1;
                    return Err(MmuFault::Protection {
                        va,
                        kind,
                        privilege,
                    });
                }
                return Ok(entry.pa_page + (va & (PAGE_SIZE - 1)));
            }
            self.tlb.misses += 1;
        }
        let space = self.contexts.get(&context).ok_or_else(|| {
            self.faults += 1;
            MmuFault::InvalidContext { context }
        })?;
        let Some((pte, region_base, _region)) = walk(&space.root, va) else {
            self.faults += 1;
            return Err(MmuFault::Unmapped { va });
        };
        if self.tlb_enabled {
            // Cache the 4 KiB page around `va` regardless of leaf size;
            // faults (including protection) are never cached, but the PTE
            // of a protection fault is still a valid translation to keep.
            let page_va = va & !(PAGE_SIZE - 1);
            self.tlb.entries[(vpn as usize) % TLB_ENTRIES] = TlbEntry {
                vpn,
                pa_page: pte.pa_base + (page_va - region_base),
                flags: pte.flags,
            };
        }
        if !pte.flags.for_privilege(privilege).allows(kind) {
            self.faults += 1;
            return Err(MmuFault::Protection {
                va,
                kind,
                privilege,
            });
        }
        Ok(pte.pa_base + (va - region_base))
    }

    /// Translates by a pure three-level walk, bypassing (and not touching)
    /// the TLB or any statistics — the reference the TLB'd
    /// [`translate`](Self::translate) is differentially tested against.
    ///
    /// # Errors
    ///
    /// [`MmuFault`] exactly as [`translate`](Self::translate).
    pub fn translate_uncached(
        &self,
        context: MmuContextId,
        va: u64,
        kind: AccessKind,
        privilege: Privilege,
    ) -> Result<u64, MmuFault> {
        let space = self
            .contexts
            .get(&context)
            .ok_or(MmuFault::InvalidContext { context })?;
        let Some((pte, region_base, _region)) = walk(&space.root, va) else {
            return Err(MmuFault::Unmapped { va });
        };
        if !pte.flags.for_privilege(privilege).allows(kind) {
            return Err(MmuFault::Protection {
                va,
                kind,
                privilege,
            });
        }
        Ok(pte.pa_base + (va - region_base))
    }
}

/// Splits a 32-bit virtual address into the three table indices
/// (8 / 6 / 6 bits; the low 12 bits are the page offset).
fn split(va: u64) -> (u16, u16, u16) {
    let idx1 = ((va >> 24) & 0xff) as u16;
    let idx2 = ((va >> 18) & 0x3f) as u16;
    let idx3 = ((va >> 12) & 0x3f) as u16;
    (idx1, idx2, idx3)
}

/// Walks the tables for `va`; returns the leaf PTE, the base VA of the
/// region it covers, and the region size.
fn walk(root: &Table, va: u64) -> Option<(Pte, u64, u64)> {
    let (idx1, idx2, idx3) = split(va);
    if let Some(pte) = root.leaves.get(&idx1) {
        return Some((*pte, va & !(L1_REGION - 1), L1_REGION));
    }
    let l2 = root.children.get(&idx1)?;
    if let Some(pte) = l2.leaves.get(&idx2) {
        return Some((*pte, va & !(L2_REGION - 1), L2_REGION));
    }
    let l3 = l2.children.get(&idx2)?;
    let pte = l3.leaves.get(&idx3)?;
    Some((*pte, va & !(PAGE_SIZE - 1), PAGE_SIZE))
}

#[cfg(test)]
mod tests {
    use super::*;

    const RW: u8 = 1; // SPARC ACC 1: user RW, supervisor RW

    #[test]
    fn single_page_translation() {
        let mut mmu = Mmu::new();
        let ctx = mmu.create_context();
        mmu.map(ctx, 0x1000, 0x8000, PAGE_SIZE, PageFlags::from_sparc_acc(RW))
            .unwrap();
        assert_eq!(
            mmu.translate(ctx, 0x1abc, AccessKind::Read, Privilege::User)
                .unwrap(),
            0x8abc
        );
    }

    #[test]
    fn unmapped_address_faults() {
        let mut mmu = Mmu::new();
        let ctx = mmu.create_context();
        assert_eq!(
            mmu.translate(ctx, 0x0dea_d000, AccessKind::Read, Privilege::User),
            Err(MmuFault::Unmapped { va: 0x0dea_d000 })
        );
        assert_eq!(mmu.faults(), 1);
    }

    #[test]
    fn contexts_are_isolated() {
        // The spatial-partitioning property at hardware level: a mapping in
        // one context is invisible from another.
        let mut mmu = Mmu::new();
        let a = mmu.create_context();
        let b = mmu.create_context();
        mmu.map(a, 0x1000, 0x8000, PAGE_SIZE, PageFlags::from_sparc_acc(RW))
            .unwrap();
        assert!(mmu
            .translate(a, 0x1000, AccessKind::Read, Privilege::User)
            .is_ok());
        assert_eq!(
            mmu.translate(b, 0x1000, AccessKind::Read, Privilege::User),
            Err(MmuFault::Unmapped { va: 0x1000 })
        );
    }

    #[test]
    fn protection_codes_enforced() {
        let mut mmu = Mmu::new();
        let ctx = mmu.create_context();
        // ACC 6: user none, supervisor RX — a POS kernel text segment.
        mmu.map(ctx, 0x10_0000, 0x20_0000, PAGE_SIZE, PageFlags::from_sparc_acc(6))
            .unwrap();
        assert!(matches!(
            mmu.translate(ctx, 0x10_0000, AccessKind::Read, Privilege::User),
            Err(MmuFault::Protection { .. })
        ));
        assert!(mmu
            .translate(ctx, 0x10_0000, AccessKind::Execute, Privilege::Supervisor)
            .is_ok());
        assert!(matches!(
            mmu.translate(ctx, 0x10_0000, AccessKind::Write, Privilege::Supervisor),
            Err(MmuFault::Protection { .. })
        ));
    }

    #[test]
    fn acc5_read_only_for_user_rw_for_supervisor() {
        let mut mmu = Mmu::new();
        let ctx = mmu.create_context();
        mmu.map(ctx, 0x2000, 0x3000, PAGE_SIZE, PageFlags::from_sparc_acc(5))
            .unwrap();
        assert!(mmu
            .translate(ctx, 0x2000, AccessKind::Read, Privilege::User)
            .is_ok());
        assert!(matches!(
            mmu.translate(ctx, 0x2000, AccessKind::Write, Privilege::User),
            Err(MmuFault::Protection { .. })
        ));
        assert!(mmu
            .translate(ctx, 0x2000, AccessKind::Write, Privilege::Supervisor)
            .is_ok());
    }

    #[test]
    fn large_leaves_used_when_aligned() {
        let mut mmu = Mmu::new();
        let ctx = mmu.create_context();
        // 16 MiB aligned and sized: one L1 leaf should cover it.
        mmu.map(
            ctx,
            L1_REGION,
            2 * L1_REGION,
            L1_REGION,
            PageFlags::from_sparc_acc(RW),
        )
        .unwrap();
        let pa = mmu
            .translate(ctx, L1_REGION + 0x1234, AccessKind::Read, Privilege::User)
            .unwrap();
        assert_eq!(pa, 2 * L1_REGION + 0x1234);
        // And the end of the region still translates.
        let pa = mmu
            .translate(
                ctx,
                L1_REGION + L1_REGION - 1,
                AccessKind::Read,
                Privilege::User,
            )
            .unwrap();
        assert_eq!(pa, 2 * L1_REGION + L1_REGION - 1);
    }

    #[test]
    fn mixed_granularity_range() {
        let mut mmu = Mmu::new();
        let ctx = mmu.create_context();
        // 256 KiB + one page, starting 256 KiB-aligned: one L2 leaf + one L3.
        mmu.map(
            ctx,
            L2_REGION,
            0x100_0000,
            L2_REGION + PAGE_SIZE,
            PageFlags::from_sparc_acc(RW),
        )
        .unwrap();
        assert_eq!(
            mmu.translate(ctx, L2_REGION, AccessKind::Read, Privilege::User)
                .unwrap(),
            0x100_0000
        );
        assert_eq!(
            mmu.translate(ctx, 2 * L2_REGION, AccessKind::Read, Privilege::User)
                .unwrap(),
            0x100_0000 + L2_REGION
        );
        assert!(mmu
            .translate(
                ctx,
                2 * L2_REGION + PAGE_SIZE,
                AccessKind::Read,
                Privilege::User
            )
            .is_err());
    }

    #[test]
    fn overlap_rejected_atomically() {
        let mut mmu = Mmu::new();
        let ctx = mmu.create_context();
        mmu.map(ctx, 0x4000, 0x8000, PAGE_SIZE, PageFlags::from_sparc_acc(RW))
            .unwrap();
        // Second mapping starts one page earlier and would collide on page 2.
        let err = mmu
            .map(
                ctx,
                0x3000,
                0x9000,
                2 * PAGE_SIZE,
                PageFlags::from_sparc_acc(RW),
            )
            .unwrap_err();
        assert_eq!(err, MapError::Overlap { va: 0x4000 });
        // Atomicity: the non-colliding first page was not installed.
        assert!(mmu
            .translate(ctx, 0x3000, AccessKind::Read, Privilege::User)
            .is_err());
    }

    #[test]
    fn misalignment_rejected() {
        let mut mmu = Mmu::new();
        let ctx = mmu.create_context();
        assert_eq!(
            mmu.map(ctx, 0x100, 0, PAGE_SIZE, PageFlags::from_sparc_acc(RW)),
            Err(MapError::Misaligned { value: 0x100 })
        );
        assert_eq!(
            mmu.map(ctx, 0, 0x10, PAGE_SIZE, PageFlags::from_sparc_acc(RW)),
            Err(MapError::Misaligned { value: 0x10 })
        );
    }

    #[test]
    fn virtual_space_bound() {
        let mut mmu = Mmu::new();
        let ctx = mmu.create_context();
        assert_eq!(
            mmu.map(
                ctx,
                (1 << 32) - PAGE_SIZE,
                0,
                2 * PAGE_SIZE,
                PageFlags::from_sparc_acc(RW)
            ),
            Err(MapError::OutOfVirtualSpace)
        );
    }

    #[test]
    fn unmap_removes_translation() {
        let mut mmu = Mmu::new();
        let ctx = mmu.create_context();
        mmu.map(ctx, 0x5000, 0x6000, 2 * PAGE_SIZE, PageFlags::from_sparc_acc(RW))
            .unwrap();
        mmu.unmap(ctx, 0x5000, PAGE_SIZE).unwrap();
        assert!(mmu
            .translate(ctx, 0x5000, AccessKind::Read, Privilege::User)
            .is_err());
        assert!(mmu
            .translate(ctx, 0x6000, AccessKind::Read, Privilege::User)
            .is_ok());
    }

    #[test]
    fn invalid_context_faults() {
        let mut mmu = Mmu::new();
        let ghost = MmuContextId(99);
        assert_eq!(
            mmu.translate(ghost, 0, AccessKind::Read, Privilege::User),
            Err(MmuFault::InvalidContext { context: ghost })
        );
        assert!(matches!(
            mmu.map(ghost, 0, 0, PAGE_SIZE, PageFlags::from_sparc_acc(RW)),
            Err(MapError::InvalidContext { .. })
        ));
    }

    #[test]
    fn tlb_hits_after_first_walk() {
        let mut mmu = Mmu::new();
        let ctx = mmu.create_context();
        mmu.map(ctx, 0x1000, 0x8000, PAGE_SIZE, PageFlags::from_sparc_acc(RW))
            .unwrap();
        for _ in 0..3 {
            assert_eq!(
                mmu.translate(ctx, 0x1abc, AccessKind::Read, Privilege::User)
                    .unwrap(),
                0x8abc
            );
        }
        assert_eq!(mmu.tlb_misses(), 1);
        assert_eq!(mmu.tlb_hits(), 2);
    }

    #[test]
    fn tlb_flushes_on_context_switch() {
        let mut mmu = Mmu::new();
        let a = mmu.create_context();
        let b = mmu.create_context();
        mmu.map(a, 0x1000, 0x8000, PAGE_SIZE, PageFlags::from_sparc_acc(RW))
            .unwrap();
        mmu.map(b, 0x1000, 0x9000, PAGE_SIZE, PageFlags::from_sparc_acc(RW))
            .unwrap();
        // Same VA, alternating contexts: every translation must see its
        // own context's frame, never a stale entry of the other's.
        for _ in 0..4 {
            assert_eq!(
                mmu.translate(a, 0x1000, AccessKind::Read, Privilege::User),
                Ok(0x8000)
            );
            assert_eq!(
                mmu.translate(b, 0x1000, AccessKind::Read, Privilege::User),
                Ok(0x9000)
            );
        }
        assert_eq!(mmu.tlb_hits(), 0, "every switch flushed");
        assert!(mmu.tlb_flushes() >= 8);
    }

    #[test]
    fn tlb_flushes_on_unmap() {
        let mut mmu = Mmu::new();
        let ctx = mmu.create_context();
        mmu.map(ctx, 0x5000, 0x6000, PAGE_SIZE, PageFlags::from_sparc_acc(RW))
            .unwrap();
        assert!(mmu
            .translate(ctx, 0x5000, AccessKind::Read, Privilege::User)
            .is_ok());
        mmu.unmap(ctx, 0x5000, PAGE_SIZE).unwrap();
        assert_eq!(
            mmu.translate(ctx, 0x5000, AccessKind::Read, Privilege::User),
            Err(MmuFault::Unmapped { va: 0x5000 }),
            "no stale TLB entry survives an unmap"
        );
    }

    #[test]
    fn tlb_hit_still_checks_permissions() {
        let mut mmu = Mmu::new();
        let ctx = mmu.create_context();
        // ACC 5: user R, supervisor RW.
        mmu.map(ctx, 0x2000, 0x3000, PAGE_SIZE, PageFlags::from_sparc_acc(5))
            .unwrap();
        assert!(mmu
            .translate(ctx, 0x2000, AccessKind::Read, Privilege::User)
            .is_ok());
        // Cached now — the write must still fault.
        assert!(matches!(
            mmu.translate(ctx, 0x2000, AccessKind::Write, Privilege::User),
            Err(MmuFault::Protection { .. })
        ));
        assert!(mmu.tlb_hits() >= 1);
    }

    #[test]
    fn tlb_caches_large_leaves_page_by_page() {
        let mut mmu = Mmu::new();
        let ctx = mmu.create_context();
        mmu.map(
            ctx,
            L1_REGION,
            2 * L1_REGION,
            L1_REGION,
            PageFlags::from_sparc_acc(RW),
        )
        .unwrap();
        // Two pages of the same 16 MiB leaf: distinct TLB entries.
        for offset in [0u64, PAGE_SIZE] {
            for _ in 0..2 {
                assert_eq!(
                    mmu.translate(ctx, L1_REGION + offset, AccessKind::Read, Privilege::User),
                    Ok(2 * L1_REGION + offset)
                );
            }
        }
        assert_eq!(mmu.tlb_misses(), 2);
        assert_eq!(mmu.tlb_hits(), 2);
    }

    #[test]
    fn disabled_tlb_always_walks() {
        let mut mmu = Mmu::new();
        mmu.set_tlb_enabled(false);
        let ctx = mmu.create_context();
        mmu.map(ctx, 0x1000, 0x8000, PAGE_SIZE, PageFlags::from_sparc_acc(RW))
            .unwrap();
        for _ in 0..3 {
            assert_eq!(
                mmu.translate(ctx, 0x1000, AccessKind::Read, Privilege::User),
                Ok(0x8000)
            );
        }
        assert_eq!(mmu.tlb_hits(), 0);
        assert_eq!(mmu.tlb_misses(), 0);
    }

    #[test]
    fn uncached_translate_matches_cached() {
        let mut mmu = Mmu::new();
        let ctx = mmu.create_context();
        mmu.map(ctx, 0x1000, 0x8000, 4 * PAGE_SIZE, PageFlags::from_sparc_acc(RW))
            .unwrap();
        for va in [0x1000u64, 0x2fff, 0x4000, 0x9000] {
            let cached = mmu.translate(ctx, va, AccessKind::Read, Privilege::User);
            let raw = mmu.translate_uncached(ctx, va, AccessKind::Read, Privilege::User);
            assert_eq!(cached, raw, "va {va:#x}");
        }
    }

    #[test]
    fn stats_count_translations_and_faults() {
        let mut mmu = Mmu::new();
        let ctx = mmu.create_context();
        mmu.map(ctx, 0x1000, 0x1000, PAGE_SIZE, PageFlags::from_sparc_acc(RW))
            .unwrap();
        let _ = mmu.translate(ctx, 0x1000, AccessKind::Read, Privilege::User);
        let _ = mmu.translate(ctx, 0x9000, AccessKind::Read, Privilege::User);
        assert_eq!(mmu.translations(), 2);
        assert_eq!(mmu.faults(), 1);
    }
}
