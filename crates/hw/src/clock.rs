//! The system clock: the tick source the AIR Partition Scheduler runs on.
//!
//! "The AIR Partition Scheduler code is invoked at every system clock tick"
//! (Sect. 4.3). The clock is the authoritative time base of the machine;
//! `ticks` in Algorithm 1 is exactly [`SystemClock::now`].

/// A monotonically advancing tick counter with a configurable tick period.
///
/// The tick period (in simulated nanoseconds) only matters for reporting:
/// all scheduling arithmetic is carried out in whole ticks. The default
/// models a 1 ms tick, a common RTEMS clock configuration.
///
/// # Examples
///
/// ```
/// use air_hw::SystemClock;
///
/// let mut clock = SystemClock::new();
/// assert_eq!(clock.now(), 0);
/// clock.advance();
/// clock.advance();
/// assert_eq!(clock.now(), 2);
/// assert_eq!(clock.elapsed_ns(), 2_000_000);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SystemClock {
    ticks: u64,
    tick_period_ns: u64,
}

impl SystemClock {
    /// Default tick period: 1 ms.
    pub const DEFAULT_TICK_PERIOD_NS: u64 = 1_000_000;

    /// Creates a clock at tick 0 with the default 1 ms tick period.
    pub fn new() -> Self {
        Self::with_period_ns(Self::DEFAULT_TICK_PERIOD_NS)
    }

    /// Creates a clock with a custom tick period in nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `tick_period_ns` is zero.
    pub fn with_period_ns(tick_period_ns: u64) -> Self {
        assert!(tick_period_ns > 0, "tick period must be positive");
        Self {
            ticks: 0,
            tick_period_ns,
        }
    }

    /// The current tick count (`ticks` of Algorithm 1).
    #[inline]
    pub fn now(&self) -> u64 {
        self.ticks
    }

    /// The tick period in nanoseconds.
    #[inline]
    pub fn tick_period_ns(&self) -> u64 {
        self.tick_period_ns
    }

    /// Simulated time elapsed since initialisation, in nanoseconds.
    #[inline]
    pub fn elapsed_ns(&self) -> u64 {
        self.ticks * self.tick_period_ns
    }

    /// Advances the clock by one tick and returns the new tick count.
    ///
    /// The machine calls this once per simulation step, *before* delivering
    /// the clock interrupt, so handlers observe the incremented count —
    /// mirroring Algorithm 1 line 1 (`ticks ← ticks + 1`).
    #[inline]
    pub fn advance(&mut self) -> u64 {
        self.ticks += 1;
        self.ticks
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero_and_counts_up() {
        let mut c = SystemClock::new();
        assert_eq!(c.now(), 0);
        assert_eq!(c.advance(), 1);
        assert_eq!(c.advance(), 2);
        assert_eq!(c.now(), 2);
    }

    #[test]
    fn elapsed_ns_uses_period() {
        let mut c = SystemClock::with_period_ns(500);
        c.advance();
        c.advance();
        c.advance();
        assert_eq!(c.elapsed_ns(), 1500);
        assert_eq!(c.tick_period_ns(), 500);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_period_rejected() {
        let _ = SystemClock::with_period_ns(0);
    }
}
