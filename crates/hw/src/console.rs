//! Text console device: the output target of the VITRAL window manager and
//! the source of keyboard interaction events (Fig. 9).

use std::collections::VecDeque;

/// A keyboard event injected into the machine.
///
/// The prototype uses keyboard interaction "to allow switching to a given
/// partition scheduling table at the end of the present major time frame
/// and activating the faulty process on P1" (Sect. 6); demos and tests
/// script these events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KeyEvent {
    /// A printable character key.
    Char(char),
    /// A function key F1–F12 (1-based).
    Function(u8),
}

/// A character console with per-channel output streams and a keyboard
/// input queue.
///
/// Each partition gets its own output channel so that console output never
/// crosses partition boundaries — the device-side complement of spatial
/// partitioning; VITRAL multiplexes the channels into windows.
///
/// # Examples
///
/// ```
/// use air_hw::console::{Console, KeyEvent};
///
/// let mut con = Console::new(2);
/// con.write(0, "AOCS alive\n");
/// assert_eq!(con.output(0), "AOCS alive\n");
/// con.push_key(KeyEvent::Char('s'));
/// assert_eq!(con.pop_key(), Some(KeyEvent::Char('s')));
/// ```
#[derive(Debug, Clone)]
pub struct Console {
    channels: Vec<String>,
    keys: VecDeque<KeyEvent>,
}

impl Console {
    /// Creates a console with `channels` independent output streams.
    pub fn new(channels: usize) -> Self {
        Self {
            channels: vec![String::new(); channels],
            keys: VecDeque::new(),
        }
    }

    /// Number of output channels.
    pub fn channel_count(&self) -> usize {
        self.channels.len()
    }

    /// Appends `text` to channel `channel`.
    ///
    /// # Panics
    ///
    /// Panics if `channel` is out of range — channel assignment is fixed at
    /// integration time, so an out-of-range write is a wiring bug.
    pub fn write(&mut self, channel: usize, text: &str) {
        self.channels[channel].push_str(text);
    }

    /// The full output accumulated on `channel`.
    ///
    /// # Panics
    ///
    /// Panics if `channel` is out of range.
    pub fn output(&self, channel: usize) -> &str {
        &self.channels[channel]
    }

    /// Drains and returns the accumulated output of `channel`.
    ///
    /// # Panics
    ///
    /// Panics if `channel` is out of range.
    pub fn take_output(&mut self, channel: usize) -> String {
        std::mem::take(&mut self.channels[channel])
    }

    /// Queues a keyboard event.
    pub fn push_key(&mut self, key: KeyEvent) {
        self.keys.push_back(key);
    }

    /// Pops the oldest pending keyboard event.
    pub fn pop_key(&mut self) -> Option<KeyEvent> {
        self.keys.pop_front()
    }

    /// Whether keyboard events are pending.
    pub fn has_pending_keys(&self) -> bool {
        !self.keys.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channels_are_independent() {
        let mut c = Console::new(3);
        c.write(0, "a");
        c.write(2, "c");
        assert_eq!(c.output(0), "a");
        assert_eq!(c.output(1), "");
        assert_eq!(c.output(2), "c");
    }

    #[test]
    fn take_output_drains() {
        let mut c = Console::new(1);
        c.write(0, "x");
        assert_eq!(c.take_output(0), "x");
        assert_eq!(c.output(0), "");
    }

    #[test]
    fn keys_are_fifo() {
        let mut c = Console::new(1);
        assert!(!c.has_pending_keys());
        c.push_key(KeyEvent::Char('1'));
        c.push_key(KeyEvent::Function(2));
        assert_eq!(c.pop_key(), Some(KeyEvent::Char('1')));
        assert_eq!(c.pop_key(), Some(KeyEvent::Function(2)));
        assert_eq!(c.pop_key(), None);
    }

    #[test]
    #[should_panic]
    fn out_of_range_channel_is_a_wiring_bug() {
        let mut c = Console::new(1);
        c.write(5, "boom");
    }
}
