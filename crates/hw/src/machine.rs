//! The assembled machine: clock, CPU, memory, MMU, interrupt controller,
//! console and link, advanced one tick at a time.
//!
//! The machine substitutes the paper's QEMU/IA-32 target. One call to
//! [`Machine::advance_tick`] models one timer period elapsing: the clock
//! increments and the clock-tick interrupt is raised; the PMK (living in
//! `air-pmk`, driven by the simulator in `air-core`) then acknowledges and
//! services interrupts, exactly as an ISR would.

use crate::clock::SystemClock;
use crate::console::Console;
use crate::cpu::Cpu;
use crate::interrupt::{InterruptController, InterruptLine};
use crate::link::LinkEndpoint;
use crate::memory::PhysicalMemory;
use crate::mmu::Mmu;
use crate::redundant::RedundantLink;

/// Configuration of an emulated machine.
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// Installed physical memory in bytes.
    pub memory_size: usize,
    /// Number of console output channels (≥ number of partitions).
    pub console_channels: usize,
    /// Primary inter-node link propagation latency in ticks.
    pub link_latency_ticks: u64,
    /// Secondary (redundant) link latency; `None` clones the primary's.
    pub secondary_link_latency_ticks: Option<u64>,
    /// Consecutive-loss rounds before failing over (0 disables failover).
    pub link_failover_threshold: u32,
    /// Probation ticks on the secondary before reverting to the primary.
    pub link_revert_ticks: u64,
    /// Clock tick period in simulated nanoseconds.
    pub tick_period_ns: u64,
}

impl Default for MachineConfig {
    fn default() -> Self {
        Self {
            memory_size: 16 * 1024 * 1024,
            console_channels: 8,
            link_latency_ticks: 2,
            secondary_link_latency_ticks: None,
            link_failover_threshold: 4,
            link_revert_ticks: 400,
            tick_period_ns: SystemClock::DEFAULT_TICK_PERIOD_NS,
        }
    }
}

impl MachineConfig {
    /// A compact profile for fleet-scale emulation: enough installed
    /// memory for a handful of partitions under the standard application
    /// layout (each partition takes ~144 KiB of frames), and a narrow
    /// console fan-out. Thousands of compact machines fit in one process.
    ///
    /// Every field of a [`Machine`] is owned per instance — there is no
    /// shared or global state anywhere in `air-hw` — so compact machines
    /// built from the same config are fully independent: ticking them
    /// concurrently on different threads cannot leak state across the
    /// partition boundary of one emulated system into another.
    pub fn compact() -> Self {
        Self {
            memory_size: 2 * 1024 * 1024,
            console_channels: 4,
            ..Self::default()
        }
    }
}

/// The emulated onboard computer.
///
/// Components are public fields: the machine is a passive substrate and the
/// PMK is its only client; accessor indirection would add nothing but
/// friction (the fields are the documented interface, in the spirit of
/// C-STRUCT-PRIVATE's carve-out for passive compound structures).
///
/// # Examples
///
/// ```
/// use air_hw::machine::{Machine, MachineConfig};
/// use air_hw::interrupt::InterruptLine;
///
/// let mut machine = Machine::new(MachineConfig::default());
/// machine.advance_tick();
/// assert_eq!(machine.clock.now(), 1);
/// assert_eq!(machine.intc.acknowledge(), Some(InterruptLine::ClockTick));
/// ```
#[derive(Debug)]
pub struct Machine {
    /// The system clock (tick source).
    pub clock: SystemClock,
    /// The single CPU.
    pub cpu: Cpu,
    /// Installed physical memory.
    pub memory: PhysicalMemory,
    /// The three-level MMU.
    pub mmu: Mmu,
    /// The interrupt controller.
    pub intc: InterruptController,
    /// The text console device.
    pub console: Console,
    /// The redundant inter-node link pair (this node is endpoint A).
    pub link: RedundantLink,
}

impl Machine {
    /// Builds a machine from `config`.
    pub fn new(config: MachineConfig) -> Self {
        Self {
            clock: SystemClock::with_period_ns(config.tick_period_ns),
            cpu: Cpu::new(),
            memory: PhysicalMemory::new(config.memory_size),
            mmu: Mmu::new(),
            intc: InterruptController::new(),
            console: Console::new(config.console_channels),
            link: RedundantLink::new(
                config.link_latency_ticks,
                config
                    .secondary_link_latency_ticks
                    .unwrap_or(config.link_latency_ticks),
                config.link_failover_threshold,
                config.link_revert_ticks,
            ),
        }
    }

    /// Advances simulated time by one tick: increments the clock, raises
    /// the clock-tick interrupt, and raises the link/console lines if their
    /// devices have deliverable data. Returns the new tick count.
    pub fn advance_tick(&mut self) -> u64 {
        let now = self.clock.advance();
        self.intc.raise(InterruptLine::ClockTick);
        if self.link.has_deliverable(LinkEndpoint::A, now) {
            self.intc.raise(InterruptLine::Link);
        }
        if self.console.has_pending_keys() {
            self.intc.raise(InterruptLine::ConsoleInput);
        }
        now
    }
}

impl Default for Machine {
    fn default() -> Self {
        Self::new(MachineConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::console::KeyEvent;

    #[test]
    fn tick_raises_clock_interrupt_every_time() {
        let mut m = Machine::default();
        for expected in 1..=5u64 {
            assert_eq!(m.advance_tick(), expected);
            assert_eq!(m.intc.acknowledge(), Some(InterruptLine::ClockTick));
            assert_eq!(m.intc.acknowledge(), None);
        }
    }

    #[test]
    fn link_arrival_raises_link_line() {
        let mut m = Machine::new(MachineConfig {
            link_latency_ticks: 2,
            ..MachineConfig::default()
        });
        m.link.send(LinkEndpoint::B, 0, vec![7]);
        m.advance_tick(); // t=1: not yet deliverable
        assert_eq!(m.intc.acknowledge(), Some(InterruptLine::ClockTick));
        assert_eq!(m.intc.acknowledge(), None);
        m.advance_tick(); // t=2: deliverable → Link raised
        assert_eq!(m.intc.acknowledge(), Some(InterruptLine::ClockTick));
        assert_eq!(m.intc.acknowledge(), Some(InterruptLine::Link));
        assert_eq!(m.link.receive(LinkEndpoint::A, m.clock.now()), Some(vec![7]));
    }

    #[test]
    fn pending_key_raises_console_line() {
        let mut m = Machine::default();
        m.console.push_key(KeyEvent::Char('s'));
        m.advance_tick();
        assert_eq!(m.intc.acknowledge(), Some(InterruptLine::ClockTick));
        assert_eq!(m.intc.acknowledge(), Some(InterruptLine::ConsoleInput));
    }
}
