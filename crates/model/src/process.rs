//! Processes (tasks) and their status: Eq. 10–13 of the paper.
//!
//! Each partition `P_m` contains a task set `τ_m = {τ_{m,1} … τ_{m,n(τ_m)}}`
//! (Eq. 10), and each process is the tuple
//! `τ_{m,q} = ⟨T_{m,q}, D_{m,q}, p_{m,q}, C_{m,q}, S_{m,q}(t)⟩` (Eq. 11):
//! period (or minimum inter-arrival time), relative deadline, base priority,
//! worst-case execution time, and time-varying status. The status
//! `S_{m,q}(t) = ⟨D′, p′, St⟩` (Eq. 12) carries the absolute deadline time,
//! the current priority, and the process state (Eq. 13).

use std::fmt;


use crate::time::Ticks;

/// Priority of a process. **Lower numerical values are greater priorities**,
/// following the paper's convention for Eq. (14).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
)]
pub struct Priority(pub u8);

impl Priority {
    /// The most urgent priority.
    pub const HIGHEST: Priority = Priority(0);
    /// The least urgent priority.
    pub const LOWEST: Priority = Priority(u8::MAX);

    /// `true` if `self` is more urgent than `other`
    /// (i.e. numerically smaller).
    #[inline]
    pub const fn is_more_urgent_than(self, other: Priority) -> bool {
        self.0 < other.0
    }
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "prio{}", self.0)
    }
}

impl From<u8> for Priority {
    fn from(value: u8) -> Self {
        Priority(value)
    }
}

/// A relative deadline `D_{m,q}`; `D = ∞` means the process has no deadline
/// (Eq. 11: "If `D_{m,q} = ∞`, then `τ_{m,q}` has no deadlines").
///
/// # Examples
///
/// ```
/// use air_model::{Deadline, Ticks};
///
/// let hard = Deadline::relative(Ticks(650));
/// assert_eq!(hard.absolute_from(Ticks(100)), Some(Ticks(750)));
/// assert_eq!(Deadline::NONE.absolute_from(Ticks(100)), None);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash,
)]
pub enum Deadline {
    /// A finite relative deadline (the ARINC 653 `TIME_CAPACITY`).
    Relative(Ticks),
    /// No deadline (`D = ∞`); the notion of deadline violation does not
    /// apply (the `D_{m,q} ≠ ∞` condition in Eq. 24).
    Infinite,
}

impl Deadline {
    /// Shorthand for [`Deadline::Infinite`].
    pub const NONE: Deadline = Deadline::Infinite;

    /// Creates a finite relative deadline of `capacity` ticks.
    pub const fn relative(capacity: Ticks) -> Self {
        Deadline::Relative(capacity)
    }

    /// Whether the deadline is finite (the process is subject to deadline
    /// violation monitoring).
    #[inline]
    pub const fn is_finite(self) -> bool {
        matches!(self, Deadline::Relative(_))
    }

    /// Computes the absolute deadline `D′ = now + D`, or `None` for `D = ∞`.
    #[inline]
    pub fn absolute_from(self, now: Ticks) -> Option<Ticks> {
        match self {
            Deadline::Relative(d) => Some(now + d),
            Deadline::Infinite => None,
        }
    }

    /// The finite capacity, if any.
    #[inline]
    pub fn capacity(self) -> Option<Ticks> {
        match self {
            Deadline::Relative(d) => Some(d),
            Deadline::Infinite => None,
        }
    }
}

impl Default for Deadline {
    /// Defaults to `Infinite`: a process has no deadline unless one is
    /// configured, matching non-real-time processes.
    fn default() -> Self {
        Deadline::Infinite
    }
}

impl fmt::Display for Deadline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Deadline::Relative(d) => write!(f, "D={d}"),
            Deadline::Infinite => f.write_str("D=inf"),
        }
    }
}

/// Activation pattern of a process: the interpretation of `T_{m,q}`.
///
/// For a periodic process `T` is the period; for sporadic/aperiodic ones it
/// is "the lower bound for the time between consecutive activations"
/// (Sect. 3.3).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash,
)]
pub enum Recurrence {
    /// Strictly periodic activation with period `T`; consecutive release
    /// points are separated by exactly `T`.
    Periodic(Ticks),
    /// Sporadic activation with minimum inter-arrival time `T`.
    Sporadic(Ticks),
    /// Aperiodic activation (single-shot or externally triggered); ARINC 653
    /// encodes this as `PERIOD = INFINITE_TIME_VALUE`.
    Aperiodic,
}

impl Recurrence {
    /// The period for periodic processes, `None` otherwise.
    #[inline]
    pub fn period(self) -> Option<Ticks> {
        match self {
            Recurrence::Periodic(t) => Some(t),
            _ => None,
        }
    }

    /// The lower bound between consecutive activations, if bounded.
    #[inline]
    pub fn min_interarrival(self) -> Option<Ticks> {
        match self {
            Recurrence::Periodic(t) | Recurrence::Sporadic(t) => Some(t),
            Recurrence::Aperiodic => None,
        }
    }

    /// Whether the process is periodic (eligible for `PERIODIC_WAIT`).
    #[inline]
    pub const fn is_periodic(self) -> bool {
        matches!(self, Recurrence::Periodic(_))
    }
}

impl fmt::Display for Recurrence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Recurrence::Periodic(t) => write!(f, "periodic T={t}"),
            Recurrence::Sporadic(t) => write!(f, "sporadic T>={t}"),
            Recurrence::Aperiodic => f.write_str("aperiodic"),
        }
    }
}

/// The process state `St_{m,q}(t)` (Eq. 13).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, Default,
)]
pub enum ProcessState {
    /// Ineligible for resources: not yet started, or stopped.
    #[default]
    Dormant,
    /// Able to be executed.
    Ready,
    /// Currently executing (at most one per partition at any time).
    Running,
    /// Waiting for an event: a delay, a semaphore, the next period, or a
    /// resume after suspension.
    Waiting,
}

impl ProcessState {
    /// Whether the process belongs to `Ready_m(t)` (Eq. 15): schedulable,
    /// i.e. ready or already running.
    #[inline]
    pub const fn is_schedulable(self) -> bool {
        matches!(self, ProcessState::Ready | ProcessState::Running)
    }
}

impl fmt::Display for ProcessState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ProcessState::Dormant => "dormant",
            ProcessState::Ready => "ready",
            ProcessState::Running => "running",
            ProcessState::Waiting => "waiting",
        };
        f.write_str(s)
    }
}

/// Static attributes of a process `τ_{m,q}` (Eq. 11, without the status).
///
/// The worst-case execution time `C` "is not originally a process attribute
/// in the ARINC 653 specification. It is though added to the system model,
/// since it is essential for further scheduling analyses" (Sect. 3.3).
///
/// # Examples
///
/// ```
/// use air_model::{ProcessAttributes, Recurrence, Deadline, Ticks};
/// use air_model::process::Priority;
///
/// let attrs = ProcessAttributes::new("aocs-control")
///     .with_recurrence(Recurrence::Periodic(Ticks(1300)))
///     .with_deadline(Deadline::relative(Ticks(1300)))
///     .with_base_priority(Priority(10))
///     .with_wcet(Ticks(150));
/// assert!(attrs.deadline().is_finite());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ProcessAttributes {
    name: String,
    recurrence: Recurrence,
    deadline: Deadline,
    base_priority: Priority,
    /// Worst-case execution time `C_{m,q}`; `None` when unknown (it is a
    /// model-side attribute used by analyses, not required at runtime).
    wcet: Option<Ticks>,
    /// Stack size in bytes, used by spatial-partitioning sizing.
    stack_size: u32,
}

impl ProcessAttributes {
    /// Default stack size allotted to a process, in bytes.
    pub const DEFAULT_STACK_SIZE: u32 = 4096;

    /// Creates attributes for an aperiodic, deadline-free process with the
    /// lowest priority — every property is then refined with the builder
    /// methods.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            recurrence: Recurrence::Aperiodic,
            deadline: Deadline::Infinite,
            base_priority: Priority::LOWEST,
            wcet: None,
            stack_size: Self::DEFAULT_STACK_SIZE,
        }
    }

    /// Sets the activation pattern (`T_{m,q}`).
    #[must_use]
    pub fn with_recurrence(mut self, recurrence: Recurrence) -> Self {
        self.recurrence = recurrence;
        self
    }

    /// Sets the relative deadline (`D_{m,q}`, the ARINC `TIME_CAPACITY`).
    #[must_use]
    pub fn with_deadline(mut self, deadline: Deadline) -> Self {
        self.deadline = deadline;
        self
    }

    /// Sets the base priority (`p_{m,q}`; lower value = more urgent).
    #[must_use]
    pub fn with_base_priority(mut self, priority: Priority) -> Self {
        self.base_priority = priority;
        self
    }

    /// Sets the worst-case execution time (`C_{m,q}`).
    #[must_use]
    pub fn with_wcet(mut self, wcet: Ticks) -> Self {
        self.wcet = Some(wcet);
        self
    }

    /// Sets the stack size in bytes.
    #[must_use]
    pub fn with_stack_size(mut self, bytes: u32) -> Self {
        self.stack_size = bytes;
        self
    }

    /// The process name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The activation pattern.
    pub fn recurrence(&self) -> Recurrence {
        self.recurrence
    }

    /// The relative deadline.
    pub fn deadline(&self) -> Deadline {
        self.deadline
    }

    /// The base priority.
    pub fn base_priority(&self) -> Priority {
        self.base_priority
    }

    /// The worst-case execution time, if specified.
    pub fn wcet(&self) -> Option<Ticks> {
        self.wcet
    }

    /// The stack size in bytes.
    pub fn stack_size(&self) -> u32 {
        self.stack_size
    }
}

/// Time-varying status `S_{m,q}(t) = ⟨D′, p′, St⟩` (Eq. 12).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash,
)]
pub struct ProcessStatus {
    /// Absolute deadline time `D′_{m,q}(t)`; `None` when no deadline is
    /// armed (dormant process, or `D = ∞`).
    pub absolute_deadline: Option<Ticks>,
    /// Current priority `p′_{m,q}(t)` (may differ from base priority after
    /// `SET_PRIORITY`).
    pub current_priority: Priority,
    /// Current state `St_{m,q}(t)`.
    pub state: ProcessState,
}

impl ProcessStatus {
    /// The status of a process that has never been started.
    pub fn dormant(base_priority: Priority) -> Self {
        Self {
            absolute_deadline: None,
            current_priority: base_priority,
            state: ProcessState::Dormant,
        }
    }

    /// Whether the process has, at instant `t`, violated its deadline:
    /// the per-process condition of Eq. (24), `D ≠ ∞ ∧ D′(t) < t`.
    #[inline]
    pub fn has_violated_deadline_at(&self, t: Ticks) -> bool {
        matches!(self.absolute_deadline, Some(d) if d < t)
    }
}

impl fmt::Display for ProcessStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.absolute_deadline {
            Some(d) => write!(f, "{} {} D'={}", self.state, self.current_priority, d),
            None => write!(f, "{} {}", self.state, self.current_priority),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_ordering_lower_is_more_urgent() {
        assert!(Priority(1).is_more_urgent_than(Priority(2)));
        assert!(!Priority(2).is_more_urgent_than(Priority(2)));
        assert!(Priority::HIGHEST.is_more_urgent_than(Priority::LOWEST));
    }

    #[test]
    fn deadline_absolute_computation() {
        assert_eq!(
            Deadline::relative(Ticks(50)).absolute_from(Ticks(100)),
            Some(Ticks(150))
        );
        assert_eq!(Deadline::Infinite.absolute_from(Ticks(100)), None);
        assert_eq!(Deadline::relative(Ticks(50)).capacity(), Some(Ticks(50)));
        assert_eq!(Deadline::Infinite.capacity(), None);
    }

    #[test]
    fn recurrence_accessors() {
        assert_eq!(Recurrence::Periodic(Ticks(10)).period(), Some(Ticks(10)));
        assert_eq!(Recurrence::Sporadic(Ticks(10)).period(), None);
        assert_eq!(
            Recurrence::Sporadic(Ticks(10)).min_interarrival(),
            Some(Ticks(10))
        );
        assert_eq!(Recurrence::Aperiodic.min_interarrival(), None);
        assert!(Recurrence::Periodic(Ticks(1)).is_periodic());
        assert!(!Recurrence::Aperiodic.is_periodic());
    }

    #[test]
    fn schedulable_states_match_eq15() {
        assert!(ProcessState::Ready.is_schedulable());
        assert!(ProcessState::Running.is_schedulable());
        assert!(!ProcessState::Dormant.is_schedulable());
        assert!(!ProcessState::Waiting.is_schedulable());
    }

    #[test]
    fn violation_condition_matches_eq24() {
        let mut st = ProcessStatus::dormant(Priority(5));
        assert!(!st.has_violated_deadline_at(Ticks(100)));
        st.absolute_deadline = Some(Ticks(99));
        assert!(st.has_violated_deadline_at(Ticks(100)));
        // At exactly D′ = t the deadline is not yet violated (strict <).
        st.absolute_deadline = Some(Ticks(100));
        assert!(!st.has_violated_deadline_at(Ticks(100)));
    }

    #[test]
    fn attribute_builder_chain() {
        let a = ProcessAttributes::new("telemetry")
            .with_recurrence(Recurrence::Periodic(Ticks(650)))
            .with_deadline(Deadline::relative(Ticks(650)))
            .with_base_priority(Priority(3))
            .with_wcet(Ticks(40))
            .with_stack_size(8192);
        assert_eq!(a.name(), "telemetry");
        assert_eq!(a.recurrence().period(), Some(Ticks(650)));
        assert_eq!(a.deadline().capacity(), Some(Ticks(650)));
        assert_eq!(a.base_priority(), Priority(3));
        assert_eq!(a.wcet(), Some(Ticks(40)));
        assert_eq!(a.stack_size(), 8192);
    }

    #[test]
    fn default_deadline_is_infinite() {
        assert_eq!(Deadline::default(), Deadline::Infinite);
        assert!(!ProcessAttributes::new("x").deadline().is_finite());
    }
}
