//! Partitions and their operating modes (Eq. 1–3 and 16 of the paper).
//!
//! After the introduction of mode-based schedules (Sect. 4.1) a partition is
//! `P_m = ⟨τ_m, M_m(t)⟩` — the *timing requirements moved into the schedule*
//! (see [`crate::schedule::PartitionRequirement`]). This module models the
//! partition itself: its identity, criticality, the kind of operating system
//! it hosts, and its ARINC 653 operating mode automaton.

use std::fmt;


use crate::ids::PartitionId;

/// The ARINC 653 operating mode `M_m(t)` of a partition (Eq. 3).
///
/// ```text
/// M_m(t) ∈ {normal, idle, coldStart, warmStart}
/// ```
///
/// * [`Normal`](OperatingMode::Normal) — operational, process scheduler
///   active;
/// * [`Idle`](OperatingMode::Idle) — shut down, no processes execute;
/// * [`ColdStart`](OperatingMode::ColdStart) / [`WarmStart`](OperatingMode::WarmStart)
///   — initialising, process scheduling disabled; they differ only in the
///   initial context (a warm start preserves state surviving the restart
///   cause, e.g. a power transient).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, Default,
)]
pub enum OperatingMode {
    /// Partition operational; its process scheduler is active.
    Normal,
    /// Partition shut down; no processes are executed.
    #[default]
    Idle,
    /// Initialising after power-on or integrator command; no prior context.
    ColdStart,
    /// Initialising while preserving context from before the restart.
    WarmStart,
}

impl OperatingMode {
    /// Whether the partition's process scheduler runs in this mode.
    ///
    /// Only `Normal` schedules processes; in both start modes and in `Idle`
    /// process scheduling is disabled (Sect. 3.1).
    #[inline]
    pub const fn schedules_processes(self) -> bool {
        matches!(self, OperatingMode::Normal)
    }

    /// Whether the partition is in one of the initialisation modes.
    #[inline]
    pub const fn is_starting(self) -> bool {
        matches!(self, OperatingMode::ColdStart | OperatingMode::WarmStart)
    }

    /// Validates an ARINC 653 mode transition requested via
    /// `SET_PARTITION_MODE`.
    ///
    /// The specification forbids exactly one transition: a partition in
    /// `coldStart` cannot move to `warmStart` (there is no preserved context
    /// to warm-start from). Every other transition is permitted — including
    /// re-entering the current mode, which acts as a restart.
    pub fn can_transition_to(self, target: OperatingMode) -> bool {
        !(matches!(self, OperatingMode::ColdStart) && matches!(target, OperatingMode::WarmStart))
    }
}

impl fmt::Display for OperatingMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OperatingMode::Normal => "normal",
            OperatingMode::Idle => "idle",
            OperatingMode::ColdStart => "coldStart",
            OperatingMode::WarmStart => "warmStart",
        };
        f.write_str(s)
    }
}

/// Why a partition entered a start mode; ARINC 653 `START_CONDITION`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, Default,
)]
pub enum StartCondition {
    /// Initial power-on of the module.
    #[default]
    NormalStart,
    /// Restart commanded by the partition itself.
    PartitionRestart,
    /// Restart decided by health monitoring after an error.
    HmModuleRestart,
    /// Restart decided by partition-level health monitoring.
    HmPartitionRestart,
}

impl fmt::Display for StartCondition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            StartCondition::NormalStart => "normal start",
            StartCondition::PartitionRestart => "partition restart",
            StartCondition::HmModuleRestart => "HM module restart",
            StartCondition::HmPartitionRestart => "HM partition restart",
        };
        f.write_str(s)
    }
}

/// The kind of operating system a partition hosts (Sect. 2.2 and 2.5).
///
/// AIR foresees heterogeneous partition operating systems: hard real-time
/// kernels (RTEMS in the prototype) and generic non-real-time ones (an
/// embedded Linux variant). Non-real-time partitions carry no process
/// deadlines and may be given `d_m = 0` requirements.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, Default,
)]
pub enum PosKind {
    /// A real-time POS with a preemptive priority-driven process scheduler
    /// (the ARINC 653-mandated policy, Eq. 14).
    #[default]
    RealTime,
    /// A generic non-real-time POS (e.g. embedded Linux) whose clock
    /// interactions are paravirtualised (Sect. 2.5).
    GenericNonRealTime,
}

impl fmt::Display for PosKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PosKind::RealTime => f.write_str("real-time"),
            PosKind::GenericNonRealTime => f.write_str("generic non-real-time"),
        }
    }
}

/// Criticality classification of a partition's application.
///
/// System partitions may bypass the APEX interface and call POS-kernel
/// functions directly (Sect. 2, Fig. 1); application partitions may not.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, Default,
)]
pub enum PartitionKind {
    /// A standard application partition restricted to the APEX interface.
    #[default]
    Application,
    /// A system partition (administration/management functions) that may
    /// bypass APEX, subject to increased verification (Sect. 2).
    System,
}

/// Static description of a partition `P_m` (Eq. 16): identity and properties
/// that do **not** vary between schedules.
///
/// The task set `τ_m` lives with the runtime (process control blocks in
/// `air-pos`); the model keeps the static process attributes in
/// [`crate::process::ProcessAttributes`], associated to a partition by the
/// configuration layer.
///
/// # Examples
///
/// ```
/// use air_model::{Partition, PartitionId};
///
/// let aocs = Partition::new(PartitionId(0), "AOCS");
/// assert_eq!(aocs.name(), "AOCS");
/// assert!(!aocs.is_system());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Partition {
    id: PartitionId,
    name: String,
    kind: PartitionKind,
    pos_kind: PosKind,
    /// Whether this partition is authorised to request schedule switches
    /// via `SET_MODULE_SCHEDULE` (Sect. 4.2: "must be invoked by an
    /// authorized partition").
    may_set_module_schedule: bool,
}

impl Partition {
    /// Creates an application partition hosting a real-time POS.
    pub fn new(id: PartitionId, name: impl Into<String>) -> Self {
        Self {
            id,
            name: name.into(),
            kind: PartitionKind::Application,
            pos_kind: PosKind::RealTime,
            may_set_module_schedule: false,
        }
    }

    /// Marks the partition as a system partition (may bypass APEX).
    #[must_use]
    pub fn system(mut self) -> Self {
        self.kind = PartitionKind::System;
        self
    }

    /// Sets the kind of operating system the partition hosts.
    #[must_use]
    pub fn with_pos_kind(mut self, pos_kind: PosKind) -> Self {
        self.pos_kind = pos_kind;
        self
    }

    /// Authorises the partition to request module schedule switches.
    #[must_use]
    pub fn with_schedule_authority(mut self) -> Self {
        self.may_set_module_schedule = true;
        self
    }

    /// The partition's identifier within `P`.
    pub fn id(&self) -> PartitionId {
        self.id
    }

    /// The partition's human-readable name (e.g. `"AOCS"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The partition's criticality classification.
    pub fn kind(&self) -> PartitionKind {
        self.kind
    }

    /// The kind of operating system the partition hosts.
    pub fn pos_kind(&self) -> PosKind {
        self.pos_kind
    }

    /// Whether this is a system partition.
    pub fn is_system(&self) -> bool {
        self.kind == PartitionKind::System
    }

    /// Whether the partition may request a module schedule switch.
    pub fn may_set_module_schedule(&self) -> bool {
        self.may_set_module_schedule
    }
}

impl fmt::Display for Partition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.name, self.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_mode_is_idle() {
        assert_eq!(OperatingMode::default(), OperatingMode::Idle);
    }

    #[test]
    fn only_normal_schedules_processes() {
        assert!(OperatingMode::Normal.schedules_processes());
        assert!(!OperatingMode::Idle.schedules_processes());
        assert!(!OperatingMode::ColdStart.schedules_processes());
        assert!(!OperatingMode::WarmStart.schedules_processes());
    }

    #[test]
    fn start_modes() {
        assert!(OperatingMode::ColdStart.is_starting());
        assert!(OperatingMode::WarmStart.is_starting());
        assert!(!OperatingMode::Normal.is_starting());
        assert!(!OperatingMode::Idle.is_starting());
    }

    #[test]
    fn cold_start_cannot_warm_start() {
        assert!(!OperatingMode::ColdStart.can_transition_to(OperatingMode::WarmStart));
        assert!(OperatingMode::ColdStart.can_transition_to(OperatingMode::Normal));
        assert!(OperatingMode::ColdStart.can_transition_to(OperatingMode::Idle));
        assert!(OperatingMode::ColdStart.can_transition_to(OperatingMode::ColdStart));
        assert!(OperatingMode::Normal.can_transition_to(OperatingMode::WarmStart));
        assert!(OperatingMode::Idle.can_transition_to(OperatingMode::WarmStart));
        assert!(OperatingMode::WarmStart.can_transition_to(OperatingMode::WarmStart));
    }

    #[test]
    fn builder_flags() {
        let p = Partition::new(PartitionId(3), "FDIR")
            .system()
            .with_schedule_authority()
            .with_pos_kind(PosKind::GenericNonRealTime);
        assert!(p.is_system());
        assert!(p.may_set_module_schedule());
        assert_eq!(p.pos_kind(), PosKind::GenericNonRealTime);
        assert_eq!(p.to_string(), "FDIR (P3)");
    }

    #[test]
    fn modes_display_like_the_paper() {
        assert_eq!(OperatingMode::ColdStart.to_string(), "coldStart");
        assert_eq!(OperatingMode::Normal.to_string(), "normal");
    }
}
