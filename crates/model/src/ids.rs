//! Identifier newtypes for the entities of an AIR system.
//!
//! Identifiers are small integers assigned at system integration time (they
//! index configuration tables), wrapped in dedicated types so that a
//! partition index can never be passed where a process index is expected
//! ([C-NEWTYPE]).
//!
//! [C-NEWTYPE]: https://rust-lang.github.io/api-guidelines/type-safety.html

use std::fmt;


macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// Returns the raw index value.
            #[inline]
            pub const fn as_u32(self) -> u32 {
                self.0
            }

            /// Returns the identifier as a `usize`, for indexing tables.
            #[inline]
            pub const fn as_usize(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u32> for $name {
            fn from(value: u32) -> Self {
                Self(value)
            }
        }

        impl From<$name> for u32 {
            fn from(value: $name) -> u32 {
                value.0
            }
        }
    };
}

id_type!(
    /// Identifies a partition `P_m` within the system's partition set `P`.
    ///
    /// The paper numbers partitions from 1 (`P_1 … P_4` in the prototype);
    /// this type is zero-based as is idiomatic for table indices, and the
    /// pretty-printer follows the paper's convention (`P1` is `PartitionId(0)`
    /// displayed as `P0`; the prototype preset uses explicit labels).
    PartitionId,
    "P"
);

id_type!(
    /// Identifies a process `τ_{m,q}` *within its partition*.
    ///
    /// Process management scope is restricted to the partition (Sect. 3.3),
    /// so a `ProcessId` is only meaningful together with a [`PartitionId`].
    ProcessId,
    "tau"
);

id_type!(
    /// Identifies a partition scheduling table `χ_i` in the schedule set `χ`.
    ScheduleId,
    "chi"
);

id_type!(
    /// Identifies an interpartition communication port (APEX sampling or
    /// queuing port) within its owning partition.
    PortId,
    "port"
);

/// A fully-qualified process name: the pair `(m, q)` of Eq. (10).
///
/// # Examples
///
/// ```
/// use air_model::ids::{GlobalProcessId, PartitionId, ProcessId};
///
/// let gp = GlobalProcessId::new(PartitionId(0), ProcessId(2));
/// assert_eq!(gp.to_string(), "P0/tau2");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash,
)]
pub struct GlobalProcessId {
    /// The owning partition `P_m`.
    pub partition: PartitionId,
    /// The process index `q` within the partition's task set `τ_m`.
    pub process: ProcessId,
}

impl GlobalProcessId {
    /// Creates a fully-qualified process identifier.
    pub const fn new(partition: PartitionId, process: ProcessId) -> Self {
        Self { partition, process }
    }
}

impl fmt::Display for GlobalProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.partition, self.process)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_distinct_types() {
        // This is a compile-time property; here we just exercise conversions.
        let p: PartitionId = 3u32.into();
        assert_eq!(u32::from(p), 3);
        assert_eq!(p.as_usize(), 3);
        assert_eq!(p.to_string(), "P3");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(ProcessId(1) < ProcessId(2));
        assert!(ScheduleId(0) < ScheduleId(1));
    }

    #[test]
    fn global_process_id_display_and_order() {
        let a = GlobalProcessId::new(PartitionId(0), ProcessId(1));
        let b = GlobalProcessId::new(PartitionId(1), ProcessId(0));
        assert!(a < b);
        assert_eq!(a.to_string(), "P0/tau1");
    }
}
