//! Error type for model-level operations.

use std::error::Error;
use std::fmt;

use crate::ids::{PartitionId, ScheduleId};
use crate::time::Ticks;

/// Errors raised by model construction and verification helpers.
///
/// Verification of integrator-defined parameters produces the richer
/// [`crate::verify::Violation`] report; `ModelError` covers structural
/// problems that prevent analysis altogether.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ModelError {
    /// A schedule id was referenced that does not exist in the set.
    UnknownSchedule(ScheduleId),
    /// A partition id was referenced that is not configured.
    UnknownPartition(PartitionId),
    /// A quantity that must be positive was zero.
    ZeroDuration {
        /// What the zero value was supposed to be (e.g. `"MTF"`).
        what: &'static str,
    },
    /// A time value overflowed the tick range.
    TickOverflow {
        /// The operation that overflowed.
        context: &'static str,
    },
    /// A window extends past the major time frame.
    WindowBeyondMtf {
        /// The offending schedule.
        schedule: ScheduleId,
        /// End of the offending window.
        window_end: Ticks,
        /// The schedule's MTF.
        mtf: Ticks,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::UnknownSchedule(id) => {
                write!(f, "schedule {id} is not part of the schedule set")
            }
            ModelError::UnknownPartition(id) => {
                write!(f, "partition {id} is not configured in the system")
            }
            ModelError::ZeroDuration { what } => {
                write!(f, "{what} must be a positive number of ticks")
            }
            ModelError::TickOverflow { context } => {
                write!(f, "tick arithmetic overflow while computing {context}")
            }
            ModelError::WindowBeyondMtf {
                schedule,
                window_end,
                mtf,
            } => write!(
                f,
                "window ending at {window_end} exceeds the MTF {mtf} of schedule {schedule}"
            ),
        }
    }
}

impl Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_concise() {
        let e = ModelError::ZeroDuration { what: "MTF" };
        assert_eq!(e.to_string(), "MTF must be a positive number of ticks");
        let e = ModelError::UnknownSchedule(ScheduleId(4));
        assert!(e.to_string().contains("chi4"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<ModelError>();
    }
}
