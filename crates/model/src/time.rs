//! Time base of the model: abstract clock ticks and arithmetic helpers.
//!
//! The AIR Partition Scheduler runs at every system clock tick (Sect. 4.3 of
//! the paper), so the natural time unit of the whole model is the **tick**.
//! All durations, offsets, periods and deadlines are integer multiples of a
//! tick; the paper's prototype MTF of "1300 time units" is `Ticks(1300)`.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Rem, Sub, SubAssign};


/// A duration or instant measured in system clock ticks.
///
/// `Ticks` is a transparent newtype over `u64` ([C-NEWTYPE]) so that
/// durations cannot be accidentally mixed with counters or identifiers.
/// Instants are ticks since system initialisation (`ticks` in Algorithm 1).
///
/// # Examples
///
/// ```
/// use air_model::Ticks;
///
/// let mtf = Ticks(1300);
/// let cycle = Ticks(650);
/// assert_eq!(mtf / cycle, 2);
/// assert_eq!(cycle * 2, mtf);
/// ```
///
/// [C-NEWTYPE]: https://rust-lang.github.io/api-guidelines/type-safety.html
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
)]
pub struct Ticks(pub u64);

impl Ticks {
    /// The zero duration / the system-initialisation instant.
    pub const ZERO: Ticks = Ticks(0);

    /// One clock tick.
    pub const ONE: Ticks = Ticks(1);

    /// The largest representable instant; used as "never".
    pub const MAX: Ticks = Ticks(u64::MAX);

    /// Returns the raw tick count.
    #[inline]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Saturating subtraction: `a.saturating_sub(b)` is `0` when `b > a`.
    #[inline]
    pub const fn saturating_sub(self, rhs: Ticks) -> Ticks {
        Ticks(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition, `None` on overflow.
    #[inline]
    pub fn checked_add(self, rhs: Ticks) -> Option<Ticks> {
        self.0.checked_add(rhs.0).map(Ticks)
    }

    /// Checked multiplication by a scalar, `None` on overflow.
    #[inline]
    pub fn checked_mul(self, rhs: u64) -> Option<Ticks> {
        self.0.checked_mul(rhs).map(Ticks)
    }

    /// Whether this value is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Rounds `self` up to the next multiple of `step`.
    ///
    /// # Panics
    ///
    /// Panics if `step` is zero.
    #[inline]
    pub fn round_up_to(self, step: Ticks) -> Ticks {
        assert!(!step.is_zero(), "cannot round to a zero step");
        let rem = self.0 % step.0;
        if rem == 0 {
            self
        } else {
            Ticks(self.0 + (step.0 - rem))
        }
    }
}

impl fmt::Display for Ticks {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}t", self.0)
    }
}

impl From<u64> for Ticks {
    fn from(value: u64) -> Self {
        Ticks(value)
    }
}

impl From<Ticks> for u64 {
    fn from(value: Ticks) -> Self {
        value.0
    }
}

impl Add for Ticks {
    type Output = Ticks;
    #[inline]
    fn add(self, rhs: Ticks) -> Ticks {
        Ticks(self.0 + rhs.0)
    }
}

impl AddAssign for Ticks {
    #[inline]
    fn add_assign(&mut self, rhs: Ticks) {
        self.0 += rhs.0;
    }
}

impl Sub for Ticks {
    type Output = Ticks;
    #[inline]
    fn sub(self, rhs: Ticks) -> Ticks {
        Ticks(self.0 - rhs.0)
    }
}

impl SubAssign for Ticks {
    #[inline]
    fn sub_assign(&mut self, rhs: Ticks) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Ticks {
    type Output = Ticks;
    #[inline]
    fn mul(self, rhs: u64) -> Ticks {
        Ticks(self.0 * rhs)
    }
}

impl Rem for Ticks {
    type Output = Ticks;
    #[inline]
    fn rem(self, rhs: Ticks) -> Ticks {
        Ticks(self.0 % rhs.0)
    }
}

/// Integer division of two durations yields a dimensionless count
/// (e.g. `MTF / η_m` = number of partition cycles per major time frame).
impl std::ops::Div for Ticks {
    type Output = u64;
    #[inline]
    fn div(self, rhs: Ticks) -> u64 {
        self.0 / rhs.0
    }
}

impl Sum for Ticks {
    fn sum<I: Iterator<Item = Ticks>>(iter: I) -> Ticks {
        iter.fold(Ticks::ZERO, Add::add)
    }
}

/// Greatest common divisor (Euclid).
#[inline]
pub fn gcd(a: u64, b: u64) -> u64 {
    let (mut a, mut b) = (a, b);
    while b != 0 {
        let t = b;
        b = a % b;
        a = t;
    }
    a
}

/// Least common multiple; `lcm(0, x) = 0` by convention.
///
/// Used by the MTF condition of Eq. (7)/(22): the major time frame must be a
/// natural multiple of the lcm of all partition cycles in the schedule.
#[inline]
pub fn lcm(a: u64, b: u64) -> u64 {
    if a == 0 || b == 0 {
        0
    } else {
        a / gcd(a, b) * b
    }
}

/// Least common multiple of a set of durations, skipping zero entries.
///
/// Partitions without strict time requirements have `d_m = 0` and may have a
/// degenerate cycle; zero cycles do not constrain the MTF.
pub fn lcm_all<I: IntoIterator<Item = Ticks>>(cycles: I) -> Ticks {
    Ticks(
        cycles
            .into_iter()
            .map(Ticks::as_u64)
            .filter(|&c| c != 0)
            .fold(1, lcm),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrip() {
        let a = Ticks(650);
        assert_eq!(a + a, Ticks(1300));
        assert_eq!(Ticks(1300) - a, a);
        assert_eq!(a * 2, Ticks(1300));
        assert_eq!(Ticks(1300) / a, 2);
        assert_eq!(Ticks(1301) % Ticks(1300), Ticks(1));
    }

    #[test]
    fn saturating_sub_floors_at_zero() {
        assert_eq!(Ticks(3).saturating_sub(Ticks(5)), Ticks::ZERO);
        assert_eq!(Ticks(5).saturating_sub(Ticks(3)), Ticks(2));
    }

    #[test]
    fn round_up() {
        assert_eq!(Ticks(0).round_up_to(Ticks(100)), Ticks(0));
        assert_eq!(Ticks(1).round_up_to(Ticks(100)), Ticks(100));
        assert_eq!(Ticks(100).round_up_to(Ticks(100)), Ticks(100));
        assert_eq!(Ticks(101).round_up_to(Ticks(100)), Ticks(200));
    }

    #[test]
    #[should_panic(expected = "zero step")]
    fn round_up_zero_step_panics() {
        let _ = Ticks(1).round_up_to(Ticks::ZERO);
    }

    #[test]
    fn gcd_lcm_basics() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(17, 5), 1);
        assert_eq!(lcm(4, 6), 12);
        assert_eq!(lcm(0, 6), 0);
        assert_eq!(lcm_all([Ticks(650), Ticks(1300)]), Ticks(1300));
        assert_eq!(lcm_all([Ticks(650), Ticks(0), Ticks(1300)]), Ticks(1300));
        // The paper's prototype: cycles 1300, 650, 650, 1300 → lcm 1300.
        assert_eq!(
            lcm_all([Ticks(1300), Ticks(650), Ticks(650), Ticks(1300)]),
            Ticks(1300)
        );
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(Ticks(1300).to_string(), "1300t");
    }

    #[test]
    fn checked_ops() {
        assert_eq!(Ticks(u64::MAX).checked_add(Ticks(1)), None);
        assert_eq!(Ticks(2).checked_mul(u64::MAX), None);
        assert_eq!(Ticks(2).checked_mul(3), Some(Ticks(6)));
    }

    #[test]
    fn sum_of_window_durations() {
        let windows = [Ticks(200), Ticks(100), Ticks(100)];
        let total: Ticks = windows.iter().copied().sum();
        assert_eq!(total, Ticks(400));
    }
}
