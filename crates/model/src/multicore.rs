//! Multicore partition scheduling: future-work item (iv) of the paper —
//! "parallelism between partition time windows on a multicore platform".
//!
//! The model extension is conservative, in the spirit of the paper's
//! single-core semantics: each core runs its own cyclic scheduling table,
//! and a partition may hold windows on several cores, but **never two
//! cores at the same instant** — a partition is a single sequential
//! containment domain unless the application model says otherwise, and
//! its POS process scheduler (Eq. 14) selects exactly one running process
//! at any time. Partitions explicitly marked *parallel-capable* are
//! exempted from the exclusivity condition (an SMP-aware POS).

use std::fmt;


use crate::ids::PartitionId;
use crate::partition::Partition;
use crate::schedule::Schedule;
use crate::time::{lcm, Ticks};
use crate::verify::{verify_schedule, Report};

/// Identifies a processor core.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
)]
pub struct CoreId(pub u32);

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core{}", self.0)
    }
}

/// A multicore schedule: one cyclic table per core.
///
/// # Examples
///
/// ```
/// use air_model::multicore::MulticoreSchedule;
/// use air_model::schedule::{PartitionRequirement, Schedule, TimeWindow};
/// use air_model::{PartitionId, ScheduleId, Ticks};
///
/// let p0 = PartitionId(0);
/// let p1 = PartitionId(1);
/// let core0 = Schedule::new(
///     ScheduleId(0), "core0", Ticks(100),
///     vec![PartitionRequirement::new(p0, Ticks(100), Ticks(50))],
///     vec![TimeWindow::new(p0, Ticks(0), Ticks(50))],
/// );
/// let core1 = Schedule::new(
///     ScheduleId(1), "core1", Ticks(100),
///     vec![PartitionRequirement::new(p1, Ticks(100), Ticks(100))],
///     vec![TimeWindow::new(p1, Ticks(0), Ticks(100))],
/// );
/// let mc = MulticoreSchedule::new(vec![core0, core1]);
/// assert!(mc.verify(&[]).is_ok());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MulticoreSchedule {
    cores: Vec<Schedule>,
    /// Partitions allowed to hold windows on several cores simultaneously.
    parallel_capable: Vec<PartitionId>,
}

/// A violation of the multicore exclusivity condition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParallelismViolation {
    /// The doubly-scheduled partition.
    pub partition: PartitionId,
    /// The first core involved.
    pub core_a: CoreId,
    /// The second core involved.
    pub core_b: CoreId,
    /// An instant (within the hyperperiod) at which both schedule it.
    pub at: Ticks,
}

impl fmt::Display for ParallelismViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} is scheduled on {} and {} simultaneously at {}",
            self.partition, self.core_a, self.core_b, self.at
        )
    }
}

/// The outcome of multicore verification: the per-core reports plus the
/// cross-core exclusivity violations.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MulticoreReport {
    /// Per-core Eq. (21)–(23) reports, in core order.
    pub per_core: Vec<Report>,
    /// Cross-core double-scheduling violations.
    pub parallelism: Vec<ParallelismViolation>,
}

impl MulticoreReport {
    /// Whether everything holds.
    pub fn is_ok(&self) -> bool {
        self.per_core.iter().all(Report::is_ok) && self.parallelism.is_empty()
    }
}

impl MulticoreSchedule {
    /// Creates a multicore schedule from per-core tables.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is empty.
    pub fn new(cores: Vec<Schedule>) -> Self {
        assert!(!cores.is_empty(), "at least one core is required");
        Self {
            cores,
            parallel_capable: Vec::new(),
        }
    }

    /// Marks `partition` as parallel-capable (exempt from exclusivity).
    #[must_use]
    pub fn with_parallel_capable(mut self, partition: PartitionId) -> Self {
        self.parallel_capable.push(partition);
        self
    }

    /// Number of cores.
    pub fn core_count(&self) -> usize {
        self.cores.len()
    }

    /// The table of `core`.
    pub fn core(&self, core: CoreId) -> Option<&Schedule> {
        self.cores.get(core.0 as usize)
    }

    /// The hyperperiod: lcm of the per-core MTFs.
    pub fn hyperperiod(&self) -> Ticks {
        Ticks(
            self.cores
                .iter()
                .map(|s| s.mtf().as_u64())
                .fold(1, lcm),
        )
    }

    /// The partition active on `core` at absolute instant `t`.
    pub fn partition_active_at(&self, core: CoreId, t: Ticks) -> Option<PartitionId> {
        let schedule = self.core(core)?;
        schedule.partition_active_at(t % schedule.mtf())
    }

    /// Verifies every core's table (Eq. 21–23) and the cross-core
    /// exclusivity condition over one hyperperiod. One violation is
    /// reported per (partition, core pair) — the earliest instant.
    pub fn verify(&self, known_partitions: &[Partition]) -> MulticoreReport {
        let per_core = self
            .cores
            .iter()
            .map(|s| verify_schedule(s, known_partitions))
            .collect::<Vec<_>>();

        let mut parallelism = Vec::new();
        let hyper = self.hyperperiod().as_u64();
        for a in 0..self.cores.len() {
            for b in a + 1..self.cores.len() {
                let mut reported: Vec<PartitionId> = Vec::new();
                for t in 0..hyper {
                    let pa = self.partition_active_at(CoreId(a as u32), Ticks(t));
                    let pb = self.partition_active_at(CoreId(b as u32), Ticks(t));
                    if let (Some(pa), Some(pb)) = (pa, pb) {
                        if pa == pb
                            && !self.parallel_capable.contains(&pa)
                            && !reported.contains(&pa)
                        {
                            reported.push(pa);
                            parallelism.push(ParallelismViolation {
                                partition: pa,
                                core_a: CoreId(a as u32),
                                core_b: CoreId(b as u32),
                                at: Ticks(t),
                            });
                        }
                    }
                }
            }
        }
        MulticoreReport {
            per_core,
            parallelism,
        }
    }

    /// Aggregate utilisation: total window time per hyperperiod over all
    /// cores, divided by `cores × hyperperiod` (1.0 = fully packed).
    pub fn utilization(&self) -> f64 {
        let total: f64 = self.cores.iter().map(Schedule::utilization).sum();
        total / self.cores.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{PartitionRequirement, TimeWindow};
    use crate::ScheduleId;

    fn table(
        id: u32,
        mtf: u64,
        entries: &[(u32, u64, u64)],
    ) -> Schedule {
        Schedule::new(
            ScheduleId(id),
            format!("core{id}"),
            Ticks(mtf),
            entries
                .iter()
                .map(|&(m, _, _)| {
                    // One requirement per distinct partition; duration is
                    // the sum of its windows.
                    PartitionRequirement::new(
                        PartitionId(m),
                        Ticks(mtf),
                        Ticks(
                            entries
                                .iter()
                                .filter(|&&(mm, _, _)| mm == m)
                                .map(|&(_, _, c)| c)
                                .sum(),
                        ),
                    )
                })
                .collect::<Vec<_>>()
                .into_iter()
                .fold(Vec::new(), |mut acc, q| {
                    if !acc.iter().any(|x: &PartitionRequirement| x.partition == q.partition) {
                        acc.push(q);
                    }
                    acc
                }),
            entries
                .iter()
                .map(|&(m, o, c)| TimeWindow::new(PartitionId(m), Ticks(o), Ticks(c)))
                .collect(),
        )
    }

    #[test]
    fn disjoint_partitions_across_cores_are_fine() {
        let mc = MulticoreSchedule::new(vec![
            table(0, 100, &[(0, 0, 50), (1, 50, 50)]),
            table(1, 100, &[(2, 0, 60), (3, 60, 40)]),
        ]);
        let report = mc.verify(&[]);
        assert!(report.is_ok(), "{report:?}");
        assert_eq!(mc.hyperperiod(), Ticks(100));
    }

    #[test]
    fn double_scheduling_is_caught() {
        // Partition 0 on both cores with overlapping windows [0,50)∩[40,90).
        let mc = MulticoreSchedule::new(vec![
            table(0, 100, &[(0, 0, 50)]),
            table(1, 100, &[(0, 40, 50)]),
        ]);
        let report = mc.verify(&[]);
        assert!(!report.is_ok());
        assert_eq!(report.parallelism.len(), 1);
        let v = &report.parallelism[0];
        assert_eq!(v.partition, PartitionId(0));
        assert_eq!(v.at, Ticks(40), "earliest overlap instant");
    }

    #[test]
    fn migration_without_overlap_is_fine() {
        // Partition 0 migrates: core 0 in [0,50), core 1 in [50,100).
        let mc = MulticoreSchedule::new(vec![
            table(0, 100, &[(0, 0, 50)]),
            table(1, 100, &[(0, 50, 50)]),
        ]);
        assert!(mc.verify(&[]).is_ok());
    }

    #[test]
    fn parallel_capable_partitions_are_exempt() {
        let mc = MulticoreSchedule::new(vec![
            table(0, 100, &[(0, 0, 50)]),
            table(1, 100, &[(0, 40, 50)]),
        ])
        .with_parallel_capable(PartitionId(0));
        assert!(mc.verify(&[]).is_ok());
    }

    #[test]
    fn different_mtfs_verified_over_the_hyperperiod() {
        // Core 0: MTF 60, partition 0 in [0,30). Core 1: MTF 40,
        // partition 0 in [20,40). First overlap: t=80..?
        // core0 pattern: active on t mod 60 < 30; core1: t mod 40 >= 20.
        // t=20: c0 active (20<30), c1 active (20>=20) → overlap at 20.
        let mc = MulticoreSchedule::new(vec![
            table(0, 60, &[(0, 0, 30)]),
            table(1, 40, &[(0, 20, 20)]),
        ]);
        assert_eq!(mc.hyperperiod(), Ticks(120));
        let report = mc.verify(&[]);
        assert_eq!(report.parallelism.len(), 1);
        assert_eq!(report.parallelism[0].at, Ticks(20));
    }

    #[test]
    fn per_core_condition_failures_still_reported() {
        // Core 1's table is invalid (window beyond MTF).
        let bad = Schedule::new(
            ScheduleId(1),
            "bad",
            Ticks(100),
            vec![PartitionRequirement::new(PartitionId(1), Ticks(100), Ticks(50))],
            vec![TimeWindow::new(PartitionId(1), Ticks(80), Ticks(50))],
        );
        let mc = MulticoreSchedule::new(vec![table(0, 100, &[(0, 0, 50)]), bad]);
        let report = mc.verify(&[]);
        assert!(!report.is_ok());
        assert!(report.per_core[0].is_ok());
        assert!(!report.per_core[1].is_ok());
    }

    #[test]
    fn utilization_averages_cores() {
        let mc = MulticoreSchedule::new(vec![
            table(0, 100, &[(0, 0, 100)]), // fully packed
            table(1, 100, &[(1, 0, 50)]),  // half packed
        ]);
        assert!((mc.utilization() - 0.75).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn empty_core_set_rejected() {
        let _ = MulticoreSchedule::new(vec![]);
    }
}
