//! # air-model — formal system model of the AIR TSP architecture
//!
//! This crate is the Rust rendition of the formal system model defined in
//! Sect. 3–5 of *"Architecting Robustness and Timeliness in a New Generation
//! of Aerospace Systems"* (Rufino, Craveiro, Veríssimo). It captures, as
//! plain data types and pure functions:
//!
//! * **partitions** `P_m = ⟨τ_m, M_m(t)⟩` and their operating modes
//!   (Eq. 1–3, 16) — [`partition`];
//! * **processes** `τ_{m,q} = ⟨T, D, p, C, S(t)⟩`, their status and states
//!   (Eq. 10–13) — [`process`];
//! * the intra-partition **heir selection** rule of the preemptive
//!   priority-driven scheduler (Eq. 14–15) — [`ready`];
//! * **partition scheduling tables** `χ_i = ⟨MTF_i, Q_i, ω_i⟩` with their
//!   time windows and per-schedule partition requirements
//!   (Eq. 4–5 and the mode-based generalisation Eq. 17–20) — [`schedule`];
//! * the **verification conditions** an integrator-defined configuration
//!   must satisfy: window ordering/containment (Eq. 6/21), the MTF/lcm
//!   relation (Eq. 7/22) and the per-cycle duration requirement
//!   (Eq. 8–9/23) — [`verify`];
//! * the **deadline-violation set** `V(t)` (Eq. 24) — [`violation`];
//! * the **multicore** extension of future-work item (iv): per-core
//!   tables with a cross-core exclusivity condition — [`multicore`].
//!
//! The model is deliberately independent from any execution machinery: the
//! `air-pmk`, `air-pos` and `air-pal` crates *implement* the behaviour this
//! crate *specifies*, and the integration test-suite checks the
//! implementation against the model (e.g. the partition scheduler is checked
//! tick-by-tick against [`schedule::Schedule::partition_active_at`]).
//!
//! ## Quickstart
//!
//! Build the prototype scheduling tables of the paper's Sect. 6 (Fig. 8) and
//! verify them:
//!
//! ```
//! use air_model::prototype;
//! use air_model::verify::verify_schedule_set;
//!
//! let system = prototype::fig8_system();
//! let report = verify_schedule_set(&system.schedules, &system.partitions);
//! assert!(report.is_ok(), "{report:?}");
//! ```
//!
//! Time is expressed in abstract clock **ticks** ([`time::Ticks`]); the
//! paper's prototype uses an MTF of 1300 time units, which maps 1:1.

#![warn(missing_docs)]

pub mod explore;
pub mod ids;
pub mod multicore;
pub mod partition;
pub mod process;
pub mod prototype;
pub mod ready;
pub mod schedule;
pub mod testkit;
pub mod time;
pub mod verify;
pub mod violation;

mod error;

pub use error::ModelError;
pub use ids::{PartitionId, PortId, ProcessId, ScheduleId};
pub use partition::{OperatingMode, Partition, StartCondition};
pub use process::{Deadline, ProcessAttributes, ProcessState, ProcessStatus, Recurrence};
pub use schedule::{
    PartitionRequirement, Schedule, ScheduleChangeAction, ScheduleSet, TimeWindow,
};
pub use time::Ticks;
