//! The deadline-violation set `V(t)`: Eq. (24) of the paper.
//!
//! ```text
//! V(t) = ⋃_{m=1}^{n(P)} { τ_{m,q} ∈ τ_m | D_{m,q} ≠ ∞ ∧ D′_{m,q}(t) < t }
//! ```
//!
//! The `D ≠ ∞` condition "translates the fact that the notion of deadline
//! violation does not apply to non-real-time processes" (Sect. 5.1). This
//! module computes `V(t)` over a model snapshot; the runtime detector in
//! `air-pal` is checked against it in the integration suite.

use crate::ids::GlobalProcessId;
use crate::process::{Deadline, ProcessStatus};
use crate::time::Ticks;

/// A snapshot row: one process's static deadline and current status.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProcessSnapshot {
    /// Fully-qualified process identifier `(m, q)`.
    pub id: GlobalProcessId,
    /// The static relative deadline `D_{m,q}`.
    pub deadline: Deadline,
    /// The process status `S_{m,q}(t)` at the snapshot instant.
    pub status: ProcessStatus,
}

/// Computes `V(t)` (Eq. 24): the processes that, at instant `t`, have a
/// finite deadline whose armed absolute deadline time has passed.
///
/// Processes whose deadline is not currently armed (dormant, or between
/// activations) have `status.absolute_deadline = None` and are never in
/// `V(t)`.
///
/// # Examples
///
/// ```
/// use air_model::violation::{violated_at, ProcessSnapshot};
/// use air_model::ids::{GlobalProcessId, PartitionId, ProcessId};
/// use air_model::process::{Deadline, Priority, ProcessState, ProcessStatus};
/// use air_model::Ticks;
///
/// let late = ProcessSnapshot {
///     id: GlobalProcessId::new(PartitionId(0), ProcessId(0)),
///     deadline: Deadline::relative(Ticks(10)),
///     status: ProcessStatus {
///         absolute_deadline: Some(Ticks(99)),
///         current_priority: Priority(1),
///         state: ProcessState::Ready,
///     },
/// };
/// assert_eq!(violated_at([late], Ticks(100)).len(), 1);
/// ```
pub fn violated_at<I>(snapshot: I, t: Ticks) -> Vec<GlobalProcessId>
where
    I: IntoIterator<Item = ProcessSnapshot>,
{
    snapshot
        .into_iter()
        .filter(|p| p.deadline.is_finite() && p.status.has_violated_deadline_at(t))
        .map(|p| p.id)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{PartitionId, ProcessId};
    use crate::process::{Priority, ProcessState};

    fn snap(
        m: u32,
        q: u32,
        deadline: Deadline,
        armed: Option<u64>,
    ) -> ProcessSnapshot {
        ProcessSnapshot {
            id: GlobalProcessId::new(PartitionId(m), ProcessId(q)),
            deadline,
            status: ProcessStatus {
                absolute_deadline: armed.map(Ticks),
                current_priority: Priority(5),
                state: ProcessState::Ready,
            },
        }
    }

    #[test]
    fn infinite_deadline_never_violates() {
        // Even with a (bogus) armed absolute deadline, D = ∞ excludes the
        // process from V(t): the Eq. 24 guard.
        let rows = [snap(0, 0, Deadline::Infinite, Some(1))];
        assert!(violated_at(rows, Ticks(100)).is_empty());
    }

    #[test]
    fn unarmed_deadline_never_violates() {
        let rows = [snap(0, 0, Deadline::relative(Ticks(10)), None)];
        assert!(violated_at(rows, Ticks(100)).is_empty());
    }

    #[test]
    fn strict_inequality_at_boundary() {
        let rows = [snap(0, 0, Deadline::relative(Ticks(10)), Some(100))];
        // D′ = t is not a violation; D′ < t is.
        assert!(violated_at(rows, Ticks(100)).is_empty());
        assert_eq!(violated_at(rows, Ticks(101)).len(), 1);
    }

    #[test]
    fn union_over_partitions() {
        let rows = [
            snap(0, 0, Deadline::relative(Ticks(10)), Some(50)),
            snap(1, 0, Deadline::relative(Ticks(10)), Some(60)),
            snap(2, 0, Deadline::relative(Ticks(10)), Some(500)),
        ];
        let v = violated_at(rows, Ticks(100));
        assert_eq!(v.len(), 2);
        assert!(v.contains(&GlobalProcessId::new(PartitionId(0), ProcessId(0))));
        assert!(v.contains(&GlobalProcessId::new(PartitionId(1), ProcessId(0))));
    }
}
