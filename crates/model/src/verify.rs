//! Verification of integrator-defined system parameters: the conditions of
//! Eq. (6)/(21), Eq. (7)/(22) and Eq. (8)–(9)/(23).
//!
//! "Temporal analysis in TSP systems has not been addressed in the
//! literature to the full extent needed to aid design, integration and
//! deployment" (Sect. 1) — the formal model "allows for the verification of
//! the integrator-defined system parameters, such as partition scheduling
//! according to the respective temporal requirements". This module is that
//! verifier: it takes scheduling tables as configured and returns either a
//! clean bill of health or a precise, per-condition list of
//! [`Violation`]s.
//!
//! Three families of conditions are checked per schedule `χ_i`:
//!
//! 1. **Window well-formedness** (Eq. 21): windows do not intersect —
//!    `O_{i,j} + c_{i,j} ≤ O_{i,j+1}` — and are fully contained in one MTF —
//!    `O_{i,n} + c_{i,n} ≤ MTF_i`.
//! 2. **MTF/lcm relation** (Eq. 22): `MTF_i = k · lcm(η)` for a natural `k`
//!    — necessary but not sufficient for system-wide schedulability.
//! 3. **Per-cycle duration** (Eq. 23): every partition receives its
//!    assigned duration `d` within **each** of its `MTF/η` cycles, not
//!    merely on average over the MTF (which would be the weaker Eq. 8).
//!
//! A brute-force re-check ([`verify_schedule_brute_force`]) validates the
//! analytic conditions tick-by-tick; the property-test suite keeps the two
//! in agreement.

use std::fmt;


use crate::ids::{PartitionId, ScheduleId};
use crate::partition::Partition;
use crate::schedule::{Schedule, ScheduleSet};
use crate::time::{lcm_all, Ticks};

/// One violated verification condition, pinpointing schedule, partition and
/// the numbers involved so integration tooling can render actionable
/// reports.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Violation {
    /// The MTF is zero — no schedule can repeat over it.
    ZeroMtf {
        /// Offending schedule.
        schedule: ScheduleId,
    },
    /// A window has zero duration; such windows cannot grant time and are
    /// almost certainly configuration mistakes.
    ZeroWindowDuration {
        /// Offending schedule.
        schedule: ScheduleId,
        /// Index of the window within the table.
        window_index: usize,
    },
    /// Two consecutive windows overlap: Eq. (21) first clause violated.
    WindowsOverlap {
        /// Offending schedule.
        schedule: ScheduleId,
        /// Index of the first of the overlapping pair.
        first_index: usize,
        /// End of the first window.
        first_end: Ticks,
        /// Offset of the second window, strictly before `first_end`.
        second_offset: Ticks,
    },
    /// The last window runs past the MTF: Eq. (21) second clause violated.
    WindowBeyondMtf {
        /// Offending schedule.
        schedule: ScheduleId,
        /// Index of the offending window.
        window_index: usize,
        /// End of the offending window.
        window_end: Ticks,
        /// The schedule's MTF.
        mtf: Ticks,
    },
    /// A window names a partition with no requirement entry in `Q_i`
    /// (Eq. 20 demands `P^ω_{i,j} ∈ Q_i`).
    WindowForUnknownPartition {
        /// Offending schedule.
        schedule: ScheduleId,
        /// Index of the offending window.
        window_index: usize,
        /// The partition the window names.
        partition: PartitionId,
    },
    /// A requirement entry's partition is not in the system partition set.
    RequirementForUnknownPartition {
        /// Offending schedule.
        schedule: ScheduleId,
        /// The unknown partition.
        partition: PartitionId,
    },
    /// A partition has a requirement with `d > 0` but no window at all;
    /// Eq. (23) is then violated for every cycle — reported once, distinctly,
    /// for clearer diagnostics.
    PartitionWithoutWindows {
        /// Offending schedule.
        schedule: ScheduleId,
        /// The partition lacking windows.
        partition: PartitionId,
    },
    /// A partition's cycle is zero while its duration is positive.
    ZeroCycle {
        /// Offending schedule.
        schedule: ScheduleId,
        /// The partition with the degenerate cycle.
        partition: PartitionId,
    },
    /// A partition's cycle does not divide the MTF; its cycles would not
    /// align with MTF repetitions and Eq. (23)'s cycle enumeration breaks.
    CycleDoesNotDivideMtf {
        /// Offending schedule.
        schedule: ScheduleId,
        /// The partition with the misaligned cycle.
        partition: PartitionId,
        /// The partition's cycle `η`.
        cycle: Ticks,
        /// The schedule's MTF.
        mtf: Ticks,
    },
    /// Eq. (22) violated: the MTF is not a natural multiple of the lcm of
    /// all partition cycles.
    MtfNotMultipleOfLcm {
        /// Offending schedule.
        schedule: ScheduleId,
        /// lcm of all participating partitions' cycles.
        lcm: Ticks,
        /// The schedule's MTF.
        mtf: Ticks,
    },
    /// Eq. (23) violated: within cycle `k`, `partition` receives
    /// `assigned < required`.
    InsufficientDurationInCycle {
        /// Offending schedule.
        schedule: ScheduleId,
        /// The under-served partition.
        partition: PartitionId,
        /// The cycle index `k ∈ [0, MTF/η)`.
        cycle_index: u64,
        /// Window time attributed to the cycle.
        assigned: Ticks,
        /// Required duration `d`.
        required: Ticks,
    },
    /// Robustness: an injected fault never surfaced as a health-monitor
    /// event — detection coverage is broken (Sect. 2.4's claim is that
    /// every such event is "detected and handled").
    FaultUndetected {
        /// Injection instant.
        at: Ticks,
        /// Human-readable fault description (class and target).
        fault: String,
    },
    /// Robustness: a health-monitor event matched no injected fault —
    /// either a false positive or a real fault the campaign did not plan.
    SpuriousDetection {
        /// Detection instant.
        at: Ticks,
        /// The unexplained health-monitor entry.
        detail: String,
    },
    /// Robustness: one injected fault produced more than one
    /// health-monitor decision ("exactly one" is the campaign invariant).
    DuplicateDetection {
        /// Injection instant of the over-reported fault.
        at: Ticks,
        /// Human-readable fault description.
        fault: String,
        /// How many health-monitor events matched it.
        count: u64,
    },
    /// Robustness: a fault aimed at one partition perturbed the behaviour
    /// of another — the partitioning (temporal or spatial) leaked.
    IsolationBreach {
        /// The partition that should have been unaffected.
        partition: PartitionId,
        /// What diverged from the clean run.
        detail: String,
    },
    /// Robustness: a log-N-then-act recovery action escalated at the wrong
    /// occurrence count.
    EscalationMiscount {
        /// What fired when, versus what was configured.
        detail: String,
    },
    /// Reliability: a queuing-port message offered to the reliable
    /// transport was never delivered — the ARQ no-loss guarantee broke.
    MessageLost {
        /// Sender-side message index (0-based) that never arrived.
        seq: u64,
    },
    /// Reliability: a queuing-port message was delivered more than once —
    /// duplicate suppression broke.
    DuplicateDelivery {
        /// Sender-side message index delivered repeatedly.
        seq: u64,
    },
    /// Reliability: messages arrived out of order despite the in-order
    /// delivery guarantee.
    OutOfOrderDelivery {
        /// The message index expected next.
        expected: u64,
        /// The message index actually observed.
        got: u64,
    },
    /// Reliability: a sampling-port reading exceeded its staleness budget
    /// (refresh period plus the ARQ worst-case delay).
    StaleSample {
        /// Observation instant.
        at: Ticks,
        /// Observed age of the sample.
        age: Ticks,
        /// The configured staleness bound.
        bound: Ticks,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::ZeroMtf { schedule } => {
                write!(f, "{schedule}: MTF is zero")
            }
            Violation::ZeroWindowDuration {
                schedule,
                window_index,
            } => write!(f, "{schedule}: window #{window_index} has zero duration"),
            Violation::WindowsOverlap {
                schedule,
                first_index,
                first_end,
                second_offset,
            } => write!(
                f,
                "{schedule}: window #{first_index} ends at {first_end} after the next window starts at {second_offset} (Eq. 21)"
            ),
            Violation::WindowBeyondMtf {
                schedule,
                window_index,
                window_end,
                mtf,
            } => write!(
                f,
                "{schedule}: window #{window_index} ends at {window_end}, beyond the MTF {mtf} (Eq. 21)"
            ),
            Violation::WindowForUnknownPartition {
                schedule,
                window_index,
                partition,
            } => write!(
                f,
                "{schedule}: window #{window_index} names {partition} which has no requirement entry (Eq. 20)"
            ),
            Violation::RequirementForUnknownPartition {
                schedule,
                partition,
            } => write!(
                f,
                "{schedule}: requirement names {partition} which is not a configured partition"
            ),
            Violation::PartitionWithoutWindows {
                schedule,
                partition,
            } => write!(
                f,
                "{schedule}: {partition} requires time but has no windows"
            ),
            Violation::ZeroCycle {
                schedule,
                partition,
            } => write!(
                f,
                "{schedule}: {partition} has a zero activation cycle with positive duration"
            ),
            Violation::CycleDoesNotDivideMtf {
                schedule,
                partition,
                cycle,
                mtf,
            } => write!(
                f,
                "{schedule}: cycle {cycle} of {partition} does not divide the MTF {mtf}"
            ),
            Violation::MtfNotMultipleOfLcm { schedule, lcm, mtf } => write!(
                f,
                "{schedule}: MTF {mtf} is not a natural multiple of lcm(cycles) = {lcm} (Eq. 22)"
            ),
            Violation::InsufficientDurationInCycle {
                schedule,
                partition,
                cycle_index,
                assigned,
                required,
            } => write!(
                f,
                "{schedule}: {partition} gets {assigned} in cycle {cycle_index}, needs {required} (Eq. 23)"
            ),
            Violation::FaultUndetected { at, fault } => {
                write!(f, "fault injected at {at} never detected: {fault}")
            }
            Violation::SpuriousDetection { at, detail } => {
                write!(f, "health-monitor event at {at} matches no injected fault: {detail}")
            }
            Violation::DuplicateDetection { at, fault, count } => write!(
                f,
                "fault injected at {at} detected {count} times (expected exactly one): {fault}"
            ),
            Violation::IsolationBreach { partition, detail } => {
                write!(f, "isolation breach: {partition} perturbed by a foreign fault: {detail}")
            }
            Violation::EscalationMiscount { detail } => {
                write!(f, "log-N-then-act escalation miscount: {detail}")
            }
            Violation::MessageLost { seq } => {
                write!(f, "reliable transport lost message #{seq}")
            }
            Violation::DuplicateDelivery { seq } => {
                write!(f, "reliable transport delivered message #{seq} more than once")
            }
            Violation::OutOfOrderDelivery { expected, got } => write!(
                f,
                "reliable transport delivered message #{got} while #{expected} was expected"
            ),
            Violation::StaleSample { at, age, bound } => write!(
                f,
                "sampling reading at {at} is {age} old, beyond the staleness bound {bound}"
            ),
        }
    }
}

/// The outcome of verifying one or more scheduling tables.
///
/// `Report::is_ok()` means every checked condition holds; otherwise
/// [`Report::violations`] lists every failure found (verification does not
/// stop at the first problem — integration reports need the full picture).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Report {
    violations: Vec<Violation>,
}

impl Report {
    /// A report with no violations.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether all verified conditions hold.
    pub fn is_ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// The violations found, in discovery order.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Merges another report's findings into this one, dropping violations
    /// already present.
    ///
    /// Deduplication matters when the same schedule is verified along
    /// several analysis paths (per-schedule lint plus every route the mode
    /// explorer reaches it by): identical findings must not inflate the
    /// count.
    pub fn merge(&mut self, other: Report) {
        for v in other.violations {
            if !self.violations.contains(&v) {
                self.violations.push(v);
            }
        }
    }

    /// Records an externally discovered violation — the entry point for
    /// checkers living outside this module (e.g. the fault-injection
    /// campaign's robustness invariants), so their findings flow into the
    /// same report type integration tooling already consumes.
    pub fn record(&mut self, v: Violation) {
        self.violations.push(v);
    }

    fn push(&mut self, v: Violation) {
        self.violations.push(v);
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_ok() {
            return f.write_str("all verification conditions hold");
        }
        writeln!(f, "{} violation(s):", self.violations.len())?;
        for v in &self.violations {
            writeln!(f, "  - {v}")?;
        }
        Ok(())
    }
}

/// Verifies one scheduling table against Eq. (21), (22) and (23).
///
/// `known_partitions` is the system partition set `P`; pass an empty slice
/// to skip the membership check (useful for standalone table analysis).
///
/// # Examples
///
/// ```
/// use air_model::prototype;
/// use air_model::verify::verify_schedule;
///
/// let sys = prototype::fig8_system();
/// let report = verify_schedule(sys.schedules.initial(), &sys.partitions);
/// assert!(report.is_ok());
/// ```
pub fn verify_schedule(schedule: &Schedule, known_partitions: &[Partition]) -> Report {
    let mut report = Report::new();
    let sid = schedule.id();
    let mtf = schedule.mtf();

    if mtf.is_zero() {
        report.push(Violation::ZeroMtf { schedule: sid });
        // Every other condition divides by or compares to the MTF.
        return report;
    }

    check_window_geometry(schedule, &mut report);
    check_partition_membership(schedule, known_partitions, &mut report);
    check_mtf_lcm(schedule, &mut report);
    check_per_cycle_durations(schedule, &mut report);

    report
}

/// Verifies every table in a schedule set; the per-schedule reports are
/// concatenated.
pub fn verify_schedule_set(set: &ScheduleSet, known_partitions: &[Partition]) -> Report {
    let mut report = Report::new();
    for schedule in set {
        report.merge(verify_schedule(schedule, known_partitions));
    }
    report
}

/// Window ordering, disjointness and MTF containment: Eq. (21).
fn check_window_geometry(schedule: &Schedule, report: &mut Report) {
    let sid = schedule.id();
    let windows = schedule.windows();
    for (j, w) in windows.iter().enumerate() {
        if w.duration.is_zero() {
            report.push(Violation::ZeroWindowDuration {
                schedule: sid,
                window_index: j,
            });
        }
        if w.end() > schedule.mtf() {
            report.push(Violation::WindowBeyondMtf {
                schedule: sid,
                window_index: j,
                window_end: w.end(),
                mtf: schedule.mtf(),
            });
        }
        if let Some(next) = windows.get(j + 1) {
            if w.end() > next.offset {
                report.push(Violation::WindowsOverlap {
                    schedule: sid,
                    first_index: j,
                    first_end: w.end(),
                    second_offset: next.offset,
                });
            }
        }
    }
}

/// Windows name partitions in `Q_i`; requirements name partitions in `P`.
fn check_partition_membership(
    schedule: &Schedule,
    known_partitions: &[Partition],
    report: &mut Report,
) {
    let sid = schedule.id();
    for (j, w) in schedule.windows().iter().enumerate() {
        if schedule.requirement_for(w.partition).is_none() {
            report.push(Violation::WindowForUnknownPartition {
                schedule: sid,
                window_index: j,
                partition: w.partition,
            });
        }
    }
    if !known_partitions.is_empty() {
        for q in schedule.requirements() {
            if !known_partitions.iter().any(|p| p.id() == q.partition) {
                report.push(Violation::RequirementForUnknownPartition {
                    schedule: sid,
                    partition: q.partition,
                });
            }
        }
    }
}

/// Eq. (22): `MTF_i = k_i × lcm over Q_i of η`, `k_i ∈ ℕ`.
fn check_mtf_lcm(schedule: &Schedule, report: &mut Report) {
    let sid = schedule.id();
    let cycles: Vec<Ticks> = schedule
        .requirements()
        .iter()
        .filter(|q| !q.duration.is_zero())
        .map(|q| q.cycle)
        .collect();
    if cycles.is_empty() {
        return; // no strict timing requirements constrain the MTF
    }
    if cycles.iter().any(|c| c.is_zero()) {
        // Reported per-partition by check_per_cycle_durations.
        return;
    }
    let l = lcm_all(cycles);
    if l.is_zero() || !(schedule.mtf() % l).is_zero() {
        report.push(Violation::MtfNotMultipleOfLcm {
            schedule: sid,
            lcm: l,
            mtf: schedule.mtf(),
        });
    }
}

/// Eq. (23): for every participating partition and every cycle `k` within
/// the MTF, the windows whose offset falls in `[kη, (k+1)η)` sum to at
/// least `d`.
fn check_per_cycle_durations(schedule: &Schedule, report: &mut Report) {
    let sid = schedule.id();
    for q in schedule.requirements() {
        if q.duration.is_zero() {
            continue; // no strict requirement (e.g. non-real-time partition)
        }
        if q.cycle.is_zero() {
            report.push(Violation::ZeroCycle {
                schedule: sid,
                partition: q.partition,
            });
            continue;
        }
        if !(schedule.mtf() % q.cycle).is_zero() {
            report.push(Violation::CycleDoesNotDivideMtf {
                schedule: sid,
                partition: q.partition,
                cycle: q.cycle,
                mtf: schedule.mtf(),
            });
            continue;
        }
        if schedule.windows_for(q.partition).next().is_none() {
            report.push(Violation::PartitionWithoutWindows {
                schedule: sid,
                partition: q.partition,
            });
            continue;
        }
        let cycles_in_mtf = schedule.mtf() / q.cycle;
        for k in 0..cycles_in_mtf {
            let assigned = schedule.assigned_in_cycle(q.partition, q.cycle, k);
            if assigned < q.duration {
                report.push(Violation::InsufficientDurationInCycle {
                    schedule: sid,
                    partition: q.partition,
                    cycle_index: k,
                    assigned,
                    required: q.duration,
                });
            }
        }
    }
}

/// Brute-force duration check: simulates the table tick-by-tick over one
/// MTF and verifies that every partition with `d > 0` accumulates at least
/// `d` ticks in each of its cycles.
///
/// Quadratic in the MTF and only meant as an oracle for testing the
/// analytic verifier ([`verify_schedule`]); the two must agree on any table
/// whose windows are geometrically well-formed.
pub fn verify_schedule_brute_force(schedule: &Schedule) -> bool {
    let mtf = schedule.mtf();
    if mtf.is_zero() {
        return false;
    }
    for q in schedule.requirements() {
        if q.duration.is_zero() {
            continue;
        }
        if q.cycle.is_zero() || !(mtf % q.cycle).is_zero() {
            return false;
        }
        let cycles = mtf / q.cycle;
        for k in 0..cycles {
            let lo = (q.cycle * k).as_u64();
            let hi = (q.cycle * (k + 1)).as_u64();
            let mut got = 0u64;
            for t in lo..hi {
                if schedule.partition_active_at(Ticks(t)) == Some(q.partition) {
                    got += 1;
                }
            }
            // The analytic condition attributes whole windows to the cycle
            // containing their offset; for tables whose windows do not
            // straddle cycle boundaries (the well-formed case) both
            // computations coincide.
            if got < q.duration.as_u64() {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{PartitionId, ScheduleId};
    use crate::schedule::{PartitionRequirement, TimeWindow};

    fn p(m: u32) -> PartitionId {
        PartitionId(m)
    }

    fn schedule(
        mtf: u64,
        reqs: Vec<(u32, u64, u64)>,
        wins: Vec<(u32, u64, u64)>,
    ) -> Schedule {
        Schedule::new(
            ScheduleId(0),
            "t",
            Ticks(mtf),
            reqs.into_iter()
                .map(|(m, eta, d)| PartitionRequirement::new(p(m), Ticks(eta), Ticks(d)))
                .collect(),
            wins.into_iter()
                .map(|(m, o, c)| TimeWindow::new(p(m), Ticks(o), Ticks(c)))
                .collect(),
        )
    }

    #[test]
    fn valid_single_partition_schedule() {
        let s = schedule(100, vec![(0, 100, 40)], vec![(0, 0, 40)]);
        let r = verify_schedule(&s, &[]);
        assert!(r.is_ok(), "{r}");
        assert!(verify_schedule_brute_force(&s));
    }

    #[test]
    fn zero_mtf_detected() {
        let s = schedule(0, vec![], vec![]);
        let r = verify_schedule(&s, &[]);
        assert_eq!(r.violations().len(), 1);
        assert!(matches!(r.violations()[0], Violation::ZeroMtf { .. }));
        assert!(!verify_schedule_brute_force(&s));
    }

    #[test]
    fn overlap_detected() {
        let s = schedule(
            100,
            vec![(0, 100, 30), (1, 100, 30)],
            vec![(0, 0, 40), (1, 30, 30)],
        );
        let r = verify_schedule(&s, &[]);
        assert!(r
            .violations()
            .iter()
            .any(|v| matches!(v, Violation::WindowsOverlap { .. })));
    }

    #[test]
    fn window_beyond_mtf_detected() {
        let s = schedule(100, vec![(0, 100, 40)], vec![(0, 80, 40)]);
        let r = verify_schedule(&s, &[]);
        assert!(r
            .violations()
            .iter()
            .any(|v| matches!(v, Violation::WindowBeyondMtf { .. })));
    }

    #[test]
    fn zero_duration_window_detected() {
        let s = schedule(100, vec![(0, 100, 0)], vec![(0, 0, 0)]);
        let r = verify_schedule(&s, &[]);
        assert!(r
            .violations()
            .iter()
            .any(|v| matches!(v, Violation::ZeroWindowDuration { .. })));
    }

    #[test]
    fn window_for_partition_outside_q_detected() {
        // Window names partition 1 which has no requirement entry (Eq. 20).
        let s = schedule(100, vec![(0, 100, 10)], vec![(0, 0, 10), (1, 10, 10)]);
        let r = verify_schedule(&s, &[]);
        assert!(r.violations().iter().any(|v| matches!(
            v,
            Violation::WindowForUnknownPartition {
                partition: PartitionId(1),
                ..
            }
        )));
    }

    #[test]
    fn requirement_for_unconfigured_partition_detected() {
        let s = schedule(100, vec![(5, 100, 10)], vec![(5, 0, 10)]);
        let known = vec![Partition::new(p(0), "only-p0")];
        let r = verify_schedule(&s, &known);
        assert!(r.violations().iter().any(|v| matches!(
            v,
            Violation::RequirementForUnknownPartition {
                partition: PartitionId(5),
                ..
            }
        )));
    }

    #[test]
    fn mtf_lcm_condition_eq22() {
        // Cycles 40 and 60 → lcm 120; MTF 100 is not a multiple.
        let s = schedule(
            100,
            vec![(0, 40, 1), (1, 60, 1)],
            vec![(0, 0, 1), (1, 1, 1)],
        );
        let r = verify_schedule(&s, &[]);
        assert!(r
            .violations()
            .iter()
            .any(|v| matches!(v, Violation::MtfNotMultipleOfLcm { .. })));
    }

    #[test]
    fn mtf_may_be_k_times_lcm() {
        // lcm(50) = 50; MTF = 100 = 2×50 is acceptable (k=2 in Eq. 22).
        let s = schedule(
            100,
            vec![(0, 50, 10)],
            vec![(0, 0, 10), (0, 50, 10)],
        );
        let r = verify_schedule(&s, &[]);
        assert!(r.is_ok(), "{r}");
    }

    #[test]
    fn per_cycle_duration_eq23_catches_back_loading() {
        // Partition needs 10 per 50-tick cycle; all 20 ticks in cycle 1.
        // Eq. (8) (the average condition) would pass; Eq. (23) must fail.
        let s = schedule(
            100,
            vec![(0, 50, 10)],
            vec![(0, 50, 10), (0, 60, 10)],
        );
        let r = verify_schedule(&s, &[]);
        let bad: Vec<_> = r
            .violations()
            .iter()
            .filter(|v| matches!(v, Violation::InsufficientDurationInCycle { cycle_index: 0, .. }))
            .collect();
        assert_eq!(bad.len(), 1, "{r}");
        assert!(!verify_schedule_brute_force(&s));
    }

    #[test]
    fn partition_without_windows_detected() {
        let s = schedule(100, vec![(0, 100, 10), (1, 100, 10)], vec![(0, 0, 10)]);
        let r = verify_schedule(&s, &[]);
        assert!(r.violations().iter().any(|v| matches!(
            v,
            Violation::PartitionWithoutWindows {
                partition: PartitionId(1),
                ..
            }
        )));
    }

    #[test]
    fn zero_duration_requirement_is_unconstrained() {
        // Non-real-time partition with d = 0 and no windows: fine.
        let s = schedule(100, vec![(0, 100, 40), (1, 100, 0)], vec![(0, 0, 40)]);
        let r = verify_schedule(&s, &[]);
        assert!(r.is_ok(), "{r}");
    }

    #[test]
    fn zero_cycle_with_positive_duration_detected() {
        let s = schedule(100, vec![(0, 0, 10)], vec![(0, 0, 10)]);
        let r = verify_schedule(&s, &[]);
        assert!(r
            .violations()
            .iter()
            .any(|v| matches!(v, Violation::ZeroCycle { .. })));
    }

    #[test]
    fn cycle_not_dividing_mtf_detected() {
        let s = schedule(100, vec![(0, 30, 5)], vec![(0, 0, 5)]);
        let r = verify_schedule(&s, &[]);
        assert!(r
            .violations()
            .iter()
            .any(|v| matches!(v, Violation::CycleDoesNotDivideMtf { .. })));
    }

    #[test]
    fn report_display_lists_everything() {
        let s = schedule(100, vec![(0, 50, 30)], vec![(0, 0, 30)]);
        // Cycle 1 ([50,100)) gets nothing → one violation.
        let r = verify_schedule(&s, &[]);
        assert!(!r.is_ok());
        let text = r.to_string();
        assert!(text.contains("Eq. 23"), "{text}");
    }

    #[test]
    fn report_merge_deduplicates_identical_violations() {
        let bad = schedule(0, vec![], vec![]);
        let mut r = verify_schedule(&bad, &[]);
        let baseline = r.violations().len();
        assert!(baseline > 0, "empty schedule must have violations");
        // Verifying the same schedule again yields identical findings;
        // merging must not double-report them.
        r.merge(verify_schedule(&bad, &[]));
        assert_eq!(r.violations().len(), baseline);
    }

    #[test]
    fn report_merge_keeps_distinct_violations() {
        let s0 = ScheduleId(0);
        let s1 = ScheduleId(1);
        let mut r = Report::new();
        r.record(Violation::ZeroMtf { schedule: s0 });
        let mut other = Report::new();
        other.record(Violation::ZeroMtf { schedule: s0 });
        other.record(Violation::ZeroMtf { schedule: s1 });
        r.merge(other);
        assert_eq!(
            r.violations(),
            &[
                Violation::ZeroMtf { schedule: s0 },
                Violation::ZeroMtf { schedule: s1 },
            ]
        );
    }

    #[test]
    fn brute_force_agrees_on_valid_two_cycle_table() {
        let s = schedule(
            100,
            vec![(0, 50, 10), (1, 100, 20)],
            vec![(0, 0, 10), (1, 10, 20), (0, 50, 10)],
        );
        assert!(verify_schedule(&s, &[]).is_ok());
        assert!(verify_schedule_brute_force(&s));
    }
}
