//! The paper's Sect. 6 prototype configuration (Fig. 8), as model values.
//!
//! The prototype comprises four partitions running RTEMS-based mockup
//! applications "representative of typical functions present in a satellite
//! system", configured with two partition scheduling tables between which
//! the mode-based schedules service can alternate:
//!
//! ```text
//! P  = {P1, P2, P3, P4}
//! Q1 = Q2 = {⟨P1,1300,200⟩, ⟨P2,650,100⟩, ⟨P3,650,100⟩, ⟨P4,1300,100⟩}
//! χ1 = ⟨1300, {⟨P1,0,200⟩,⟨P2,200,100⟩,⟨P3,300,100⟩,⟨P4,400,600⟩,
//!              ⟨P2,1000,100⟩,⟨P3,1100,100⟩,⟨P4,1200,100⟩}⟩
//! χ2 = ⟨1300, {⟨P1,0,200⟩,⟨P4,200,100⟩,⟨P3,300,100⟩,⟨P2,400,600⟩,
//!              ⟨P4,1000,100⟩,⟨P3,1100,100⟩,⟨P2,1200,100⟩}⟩
//! ```
//!
//! Both tables repeat over an MTF of 1300 time units — "not a strict
//! requirement; it stems from the partitions' timing requirements as per
//! (22)". Note that, exactly as in the paper, window `⟨P4,400,600⟩` of χ1
//! grants P4 far more than its required 100/1300 — the duration conditions
//! of Eq. (23) are *at least* inequalities.
//!
//! The partitions are given the satellite-function names the paper's
//! introduction motivates (AOCS, OBDH, TTC, payload/FDIR mockups).

use crate::ids::{PartitionId, ScheduleId};
use crate::partition::Partition;
use crate::schedule::{PartitionRequirement, Schedule, ScheduleSet, TimeWindow};
use crate::time::Ticks;

/// `P1` — Attitude and Orbit Control Subsystem mockup (hosts the injectable
/// faulty process).
pub const P1: PartitionId = PartitionId(0);
/// `P2` — Onboard Data Handling mockup.
pub const P2: PartitionId = PartitionId(1);
/// `P3` — Telemetry, Tracking and Command mockup.
pub const P3: PartitionId = PartitionId(2);
/// `P4` — payload + Fault Detection, Isolation and Recovery mockup.
pub const P4: PartitionId = PartitionId(3);

/// Identifier of χ₁ (the initial schedule).
pub const CHI_1: ScheduleId = ScheduleId(0);
/// Identifier of χ₂.
pub const CHI_2: ScheduleId = ScheduleId(1);

/// The prototype MTF: 1300 time units for both tables.
pub const MTF: Ticks = Ticks(1300);

/// A fully-assembled model of the Fig. 8 prototype.
#[derive(Debug, Clone)]
pub struct PrototypeSystem {
    /// The partition set `P` (P1–P4 with satellite-function names).
    pub partitions: Vec<Partition>,
    /// The schedule set `χ = {χ1, χ2}`.
    pub schedules: ScheduleSet,
}

/// The shared requirement set `Q1 = Q2` of Fig. 8.
pub fn fig8_requirements() -> Vec<PartitionRequirement> {
    vec![
        PartitionRequirement::new(P1, Ticks(1300), Ticks(200)),
        PartitionRequirement::new(P2, Ticks(650), Ticks(100)),
        PartitionRequirement::new(P3, Ticks(650), Ticks(100)),
        PartitionRequirement::new(P4, Ticks(1300), Ticks(100)),
    ]
}

/// The χ₁ table of Fig. 8.
pub fn fig8_chi1() -> Schedule {
    Schedule::new(
        CHI_1,
        "chi1",
        MTF,
        fig8_requirements(),
        vec![
            TimeWindow::new(P1, Ticks(0), Ticks(200)),
            TimeWindow::new(P2, Ticks(200), Ticks(100)),
            TimeWindow::new(P3, Ticks(300), Ticks(100)),
            TimeWindow::new(P4, Ticks(400), Ticks(600)),
            TimeWindow::new(P2, Ticks(1000), Ticks(100)),
            TimeWindow::new(P3, Ticks(1100), Ticks(100)),
            TimeWindow::new(P4, Ticks(1200), Ticks(100)),
        ],
    )
}

/// The χ₂ table of Fig. 8 (P2 and P4 swap their window pattern).
pub fn fig8_chi2() -> Schedule {
    Schedule::new(
        CHI_2,
        "chi2",
        MTF,
        fig8_requirements(),
        vec![
            TimeWindow::new(P1, Ticks(0), Ticks(200)),
            TimeWindow::new(P4, Ticks(200), Ticks(100)),
            TimeWindow::new(P3, Ticks(300), Ticks(100)),
            TimeWindow::new(P2, Ticks(400), Ticks(600)),
            TimeWindow::new(P4, Ticks(1000), Ticks(100)),
            TimeWindow::new(P3, Ticks(1100), Ticks(100)),
            TimeWindow::new(P2, Ticks(1200), Ticks(100)),
        ],
    )
}

/// The four prototype partitions with their satellite-function names.
///
/// P1 (the AOCS mockup) is granted module-schedule authority: the demo's
/// keyboard interaction requests schedule switches through it.
pub fn fig8_partitions() -> Vec<Partition> {
    vec![
        Partition::new(P1, "AOCS").with_schedule_authority(),
        Partition::new(P2, "OBDH"),
        Partition::new(P3, "TTC"),
        Partition::new(P4, "PAYLOAD-FDIR"),
    ]
}

/// Builds the complete Fig. 8 system model: partitions plus `{χ1, χ2}`,
/// with χ₁ as the initial schedule.
///
/// # Examples
///
/// ```
/// use air_model::prototype::{fig8_system, MTF, P4};
/// use air_model::Ticks;
///
/// let sys = fig8_system();
/// assert_eq!(sys.schedules.len(), 2);
/// let chi1 = sys.schedules.initial();
/// assert_eq!(chi1.mtf(), MTF);
/// // P4's big window of chi1: active at t=700.
/// assert_eq!(chi1.partition_active_at(Ticks(700)), Some(P4));
/// ```
pub fn fig8_system() -> PrototypeSystem {
    PrototypeSystem {
        partitions: fig8_partitions(),
        schedules: ScheduleSet::new(vec![fig8_chi1(), fig8_chi2()]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{verify_schedule_brute_force, verify_schedule_set};

    #[test]
    fn fig8_tables_are_valid() {
        let sys = fig8_system();
        let report = verify_schedule_set(&sys.schedules, &sys.partitions);
        assert!(report.is_ok(), "{report}");
        assert!(verify_schedule_brute_force(sys.schedules.initial()));
        assert!(verify_schedule_brute_force(
            sys.schedules.get(CHI_2).unwrap()
        ));
    }

    #[test]
    fn eq25_worked_example() {
        // The paper's Eq. (25): for i=1, P_m = Q_{1,1} (= P1), k = 0, the
        // windows of χ1 assigned to P1 with offset in [0, 1300) sum to
        // exactly 200 ≥ d_1 = 200.
        let chi1 = fig8_chi1();
        assert_eq!(chi1.assigned_in_cycle(P1, Ticks(1300), 0), Ticks(200));
    }

    #[test]
    fn chi1_window_layout_matches_fig8() {
        let chi1 = fig8_chi1();
        let layout: Vec<(u32, u64, u64)> = chi1
            .windows()
            .iter()
            .map(|w| (w.partition.as_u32(), w.offset.as_u64(), w.duration.as_u64()))
            .collect();
        assert_eq!(
            layout,
            vec![
                (0, 0, 200),
                (1, 200, 100),
                (2, 300, 100),
                (3, 400, 600),
                (1, 1000, 100),
                (2, 1100, 100),
                (3, 1200, 100),
            ]
        );
    }

    #[test]
    fn chi2_swaps_p2_and_p4() {
        let chi2 = fig8_chi2();
        assert_eq!(chi2.partition_active_at(Ticks(250)), Some(P4));
        assert_eq!(chi2.partition_active_at(Ticks(700)), Some(P2));
        assert_eq!(chi2.partition_active_at(Ticks(1050)), Some(P4));
        assert_eq!(chi2.partition_active_at(Ticks(1250)), Some(P2));
    }

    #[test]
    fn p2_p3_get_their_duration_in_both_cycles() {
        // P2 and P3 have cycle 650: two cycles per MTF, at least 100 ticks
        // in each (Eq. 23 is an at-least condition; χ2 grants P2 a generous
        // 600-tick window in its first cycle).
        for chi in [fig8_chi1(), fig8_chi2()] {
            for pm in [P2, P3] {
                for k in 0..2 {
                    assert!(chi.assigned_in_cycle(pm, Ticks(650), k) >= Ticks(100));
                }
            }
        }
        let chi1 = fig8_chi1();
        assert_eq!(chi1.assigned_in_cycle(P2, Ticks(650), 0), Ticks(100));
        assert_eq!(chi1.assigned_in_cycle(P2, Ticks(650), 1), Ticks(100));
        let chi2 = fig8_chi2();
        assert_eq!(chi2.assigned_in_cycle(P2, Ticks(650), 0), Ticks(600));
        assert_eq!(chi2.assigned_in_cycle(P2, Ticks(650), 1), Ticks(100));
    }

    #[test]
    fn both_tables_fully_utilize_the_mtf() {
        // Fig. 8's windows tile the whole 1300-tick MTF with no gaps.
        assert!((fig8_chi1().utilization() - 1.0).abs() < 1e-12);
        assert!((fig8_chi2().utilization() - 1.0).abs() < 1e-12);
        for t in 0..1300 {
            assert!(fig8_chi1().partition_active_at(Ticks(t)).is_some());
            assert!(fig8_chi2().partition_active_at(Ticks(t)).is_some());
        }
    }

    #[test]
    fn only_p1_has_schedule_authority() {
        let parts = fig8_partitions();
        assert!(parts[0].may_set_module_schedule());
        assert!(parts[1..].iter().all(|p| !p.may_set_module_schedule()));
    }
}
